//! Dynamic sentiment dashboard: stream the corpus day by day through the
//! [`SentimentEngine`], track the aggregate sentiment share over time,
//! and surface individual users whose stance *changed* — the "Adam"
//! scenario of Fig. 1 that static methods miss.
//!
//! Everything flows through the engine facade: snapshots are ingested on
//! its bounded queue (the producer never waits on a solve), the timeline
//! and per-user histories come back through [`EngineQuery`], and the
//! session is checkpointed and restored at the end to show the query
//! layer surviving a process restart.
//!
//! ```text
//! cargo run --release --example streaming_dashboard
//! ```

use tripartite_sentiment::prelude::*;

fn main() -> Result<(), TgsError> {
    let corpus = generate(&presets::prop30_small(7));
    let mut pipe = PipelineConfig::paper_defaults();
    pipe.vocab.min_count = 2;
    let engine = EngineBuilder::new().k(3).pipeline(pipe).fit(&corpus)?;

    // Producer side: hand the engine one snapshot per 4-day window. The
    // ingest queue is bounded, so this loop only waits when more than
    // `queue_depth` snapshots are pending — never on a solve.
    for (lo, hi) in day_windows(corpus.num_days, 4) {
        engine.ingest(EngineSnapshot::from_corpus_window(&corpus, lo, hi))?;
    }
    engine.flush()?;

    // Read side: the aggregate timeline.
    let query = engine.query();
    println!(
        "{:<8} {:>6} {:>6} {:>7} {:>7} {:>7}",
        "t", "tweets", "users", "pos%", "neg%", "neu%"
    );
    let timeline = query.timeline(..);
    for entry in &timeline {
        let shares = entry.tweet_shares();
        println!(
            "{:<8} {:>6} {:>6} {:>6.1}% {:>6.1}% {:>6.1}%",
            entry.timestamp,
            entry.tweets,
            entry.users,
            100.0 * shares[0],
            100.0 * shares[1],
            100.0 * shares[2],
        );
    }
    let (first_t, last_t) = match (timeline.first(), timeline.last()) {
        (Some(a), Some(b)) => (a.timestamp, b.timestamp),
        _ => return Ok(()),
    };

    // Users whose inferred stance flipped between the start and the end
    // of the stream, via the per-user history API.
    println!("\nusers with detected stance changes (early != late estimate):");
    let mut flips = 0;
    for user in 0..corpus.num_users() {
        let (Ok(early), Ok(late)) = (
            query.user_sentiment(user, first_t),
            query.user_sentiment(user, last_t),
        ) else {
            continue;
        };
        if early.label() != late.label() {
            flips += 1;
            if flips <= 8 {
                let truly_flipped = corpus.users[user].trajectory.flips();
                println!(
                    "  user {:>3}: {} -> {} (ground truth {})",
                    user,
                    Sentiment::from_index(early.label())
                        .map(|s| s.as_str())
                        .unwrap_or("?"),
                    Sentiment::from_index(late.label())
                        .map(|s| s.as_str())
                        .unwrap_or("?"),
                    if truly_flipped { "flips" } else { "stable" },
                );
            }
        }
    }
    let true_flippers = corpus.users.iter().filter(|u| u.trajectory.flips()).count();
    println!(
        "\ndetected {flips} candidate changers; the generator planted {true_flippers} \
         true flippers among {} users",
        corpus.num_users()
    );

    // The words each sentiment cluster leaned on in the final window.
    println!("\ntop features of the final snapshot:");
    for (c, cluster) in query.top_words(last_t, 5)?.iter().enumerate() {
        let words: Vec<&str> = cluster.iter().map(|(w, _)| w.as_str()).collect();
        println!(
            "  {:<9} {}",
            Sentiment::from_index(c).map(|s| s.as_str()).unwrap_or("?"),
            words.join(", ")
        );
    }

    // Checkpoint the session and restore it into a fresh engine — the
    // whole history survives, byte-for-byte.
    let checkpoint = engine.checkpoint()?;
    let restored = SentimentEngine::restore(&checkpoint)?;
    assert_eq!(restored.query().timeline(..), timeline);
    println!(
        "\ncheckpointed and restored the session ({} bytes, {} snapshots)",
        checkpoint.len(),
        restored.steps()
    );
    Ok(())
}

//! Dynamic sentiment dashboard: stream the corpus day by day through the
//! online solver (Algorithm 2), track the aggregate sentiment share over
//! time, and surface individual users whose stance *changed* — the
//! "Adam" scenario of Fig. 1 that static methods miss.
//!
//! ```text
//! cargo run --release --example streaming_dashboard
//! ```

use std::collections::HashMap;

use tripartite_sentiment::prelude::*;

fn main() {
    let corpus = generate(&presets::prop30_small(7));
    let mut pipe = PipelineConfig::paper_defaults();
    pipe.vocab.min_count = 2;
    let builder = SnapshotBuilder::new(&corpus, 3, &pipe);
    let mut solver = OnlineSolver::new(OnlineConfig::default());

    // Per-user label history: (window index, label).
    let mut user_history: HashMap<usize, Vec<(usize, usize)>> = HashMap::new();

    println!(
        "{:<8} {:>6} {:>6} {:>7} {:>7} {:>7}",
        "days", "tweets", "users", "pos%", "neg%", "neu%"
    );
    for (step, (lo, hi)) in day_windows(corpus.num_days, 4).into_iter().enumerate() {
        let snap = builder.snapshot(&corpus, lo, hi);
        if snap.tweet_ids.is_empty() {
            continue;
        }
        let input = TriInput {
            xp: &snap.xp,
            xu: &snap.xu,
            xr: &snap.xr,
            graph: &snap.graph,
            sf0: builder.sf0(),
        };
        let result = solver.step(&SnapshotData {
            input,
            user_ids: &snap.user_ids,
        });
        let labels = result.tweet_labels();
        let share = |class: Sentiment| {
            100.0 * labels.iter().filter(|&&l| l == class.index()).count() as f64
                / labels.len() as f64
        };
        println!(
            "{:<8} {:>6} {:>6} {:>6.1}% {:>6.1}% {:>6.1}%",
            format!("{lo}-{hi}"),
            snap.tweet_ids.len(),
            snap.user_ids.len(),
            share(Sentiment::Positive),
            share(Sentiment::Negative),
            share(Sentiment::Neutral),
        );
        for (row, &u) in snap.user_ids.iter().enumerate() {
            user_history
                .entry(u)
                .or_default()
                .push((step, result.user_labels()[row]));
        }
    }

    // Users whose inferred stance flipped between the first and last
    // third of the stream.
    println!("\nusers with detected stance changes (early != late estimate):");
    let mut flips = 0;
    for (&u, hist) in user_history.iter() {
        if hist.len() < 4 {
            continue;
        }
        let early = hist[hist.len() / 4].1;
        let late = hist[hist.len() - 1].1;
        if early != late {
            flips += 1;
            if flips <= 8 {
                let truly_flipped = corpus.users[u].trajectory.flips();
                println!(
                    "  user {:>3}: {} -> {} (ground truth {})",
                    u,
                    Sentiment::from_index(early)
                        .map(|s| s.as_str())
                        .unwrap_or("?"),
                    Sentiment::from_index(late)
                        .map(|s| s.as_str())
                        .unwrap_or("?"),
                    if truly_flipped { "flips" } else { "stable" },
                );
            }
        }
    }
    let true_flippers = corpus.users.iter().filter(|u| u.trajectory.flips()).count();
    println!(
        "\ndetected {flips} candidate changers; the generator planted {true_flippers} \
         true flippers among {} users",
        corpus.num_users()
    );
}

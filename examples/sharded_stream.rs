//! Sharded streaming demo: fan a daily stream across an elastic fleet
//! of user-range shard workers — ghost rows keep every cross-shard
//! re-tweet edge, a live rebalance moves a shard boundary mid-stream —
//! then checkpoint the whole fleet and serve queries from the restored
//! copy.
//!
//! ```text
//! cargo run --release --example sharded_stream
//! ```

use tripartite_sentiment::data::{RepartitionOp, RepartitionPlan};
use tripartite_sentiment::prelude::*;

fn main() -> Result<(), TgsError> {
    let corpus = generate(&presets::prop30_small(42));
    println!(
        "corpus: {} tweets, {} users, {} days",
        corpus.num_tweets(),
        corpus.num_users(),
        corpus.num_days
    );

    // One engine worker per user-range shard; documents follow their
    // author's shard, the word axis stays global. `--shards 1` would be
    // bit-identical to the unsharded SentimentEngine. Ghost mode keeps
    // cross-shard re-tweet edges instead of dropping them.
    let shards = 4;
    let engine = EngineBuilder::new()
        .k(3)
        .max_iters(15)
        .ghost_users(true)
        .fit_sharded(&corpus, shards)?;

    let windows = day_windows(corpus.num_days, 1);
    let (head, tail) = windows.split_at(windows.len() / 2);
    for &(lo, hi) in head {
        engine.ingest(EngineSnapshot::from_corpus_window(&corpus, lo, hi))?;
    }
    engine.flush()?;

    // Live rebalance mid-stream: move the first boundary a few users to
    // the right. The affected users' history migrates losslessly (a
    // plan plus its inverse would be byte-identical to never
    // rebalancing); `--max-skew` automates this from load statistics.
    let b1 = engine.map().starts()[1];
    let new_map = engine.rebalance(&RepartitionPlan::single(RepartitionOp::MoveBoundary {
        boundary: 1,
        to: b1 + 5,
    }))?;
    println!(
        "rebalanced mid-stream: boundaries now {:?} (skew {:.2})",
        new_map.starts(),
        engine.load_skew()
    );

    for &(lo, hi) in tail {
        engine.ingest(EngineSnapshot::from_corpus_window(&corpus, lo, hi))?;
    }
    let steps = engine.flush()?;
    let stats = engine.stats();
    println!(
        "streamed {steps} snapshots over {shards} shards \
         (ingested {} shard-slices, slowest step {:.2} ms, \
         {} ghost edges kept, {} cross-shard retweets dropped)",
        stats.ingested,
        stats.last_step_ns as f64 / 1e6,
        stats.ghost_edges,
        stats.dropped_cross_shard,
    );

    // Queries fan in: merged timeline, shard-transparent user lookups.
    let query = engine.query();
    for entry in query.timeline(..)?.iter().take(3) {
        let shares: Vec<String> = entry
            .tweet_shares()
            .iter()
            .map(|s| format!("{:.0}%", 100.0 * s))
            .collect();
        println!(
            "  t={}: {} tweets / {} users -> [{}]",
            entry.timestamp,
            entry.tweets,
            entry.users,
            shares.join(" ")
        );
    }

    // Checkpoint the fleet (validated multi-shard header + one section
    // per worker) and answer from the restored copy.
    let ckpt = engine.checkpoint()?;
    let restored = ShardedEngine::restore_any(ckpt.as_bytes().to_vec())?;
    let last = restored.query().latest()?.expect("history recorded");
    let words = restored.query().top_words(last.timestamp, 4)?;
    println!(
        "restored {} shards from a {}-byte checkpoint; top words at t={}:",
        restored.shards(),
        ckpt.len(),
        last.timestamp
    );
    for (c, cluster) in words.iter().enumerate() {
        let listed: Vec<String> = cluster.iter().map(|(w, _)| w.clone()).collect();
        println!("  class {c}: {}", listed.join(", "));
    }
    Ok(())
}

//! Feature-side analysis: after co-clustering, the `Sf` factor assigns
//! every vocabulary word a sentiment-class distribution. This example
//! prints the words the model considers most polar — effectively an
//! automatically *expanded* sentiment lexicon — and checks it against
//! the generator's planted word pools and the seed lexicon.
//!
//! ```text
//! cargo run --release --example lexicon_explorer
//! ```

use tripartite_sentiment::prelude::*;

fn main() {
    let corpus = generate(&presets::prop37_small(99));
    let mut pipe = PipelineConfig::paper_defaults();
    pipe.vocab.min_count = 2;
    let inst = build_offline(&corpus, 3, &pipe);
    let input = TriInput {
        xp: &inst.xp,
        xu: &inst.xu,
        xr: &inst.xr,
        graph: &inst.graph,
        sf0: &inst.sf0,
    };
    let result = solve_offline(&input, &OfflineConfig::default());

    // Rank features by their normalized class affinity in Sf.
    let mut sf = result.factors.sf.clone();
    sf.normalize_rows_l1();
    for class in [Sentiment::Positive, Sentiment::Negative] {
        let j = class.index();
        // Rare words trivially reach affinity 1.0; require real support
        // before calling a word polar.
        let mut scored: Vec<(usize, f64)> = (0..sf.rows())
            .filter(|&f| inst.vocab.count(f) >= 15)
            .map(|f| (f, sf.get(f, j)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        println!("top-12 learned {class} words (Sf affinity | in seed lexicon?):");
        for (f, affinity) in scored.iter().take(12) {
            let word = inst.vocab.token(*f);
            let in_lexicon = corpus
                .lexicon
                .class_of(word)
                .map(|c| c.as_str())
                .unwrap_or("-");
            println!("  {word:<16} {affinity:.3}  lexicon: {in_lexicon}");
        }
        println!();
    }

    // How much did the model expand beyond the seed lexicon?
    let coverage = corpus.lexicon.coverage(&inst.vocab);
    let polar_features = (0..sf.rows())
        .filter(|&f| {
            let row = sf.row(f);
            row[0].max(row[1]) > 0.5
        })
        .count();
    println!(
        "seed lexicon covers {:.1}% of the vocabulary; the learned Sf marks {} of {} \
         features (>{:.0}%) as clearly polar — lexicon expansion is a free by-product \
         of the co-clustering.",
        100.0 * coverage,
        polar_features,
        sf.rows(),
        100.0 * polar_features as f64 / sf.rows() as f64
    );
}

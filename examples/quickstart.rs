//! Quickstart: generate a small corpus, co-cluster the tripartite graph
//! offline, then stream it through the [`SentimentEngine`] facade and
//! query the history.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tripartite_sentiment::prelude::*;

fn main() -> Result<(), TgsError> {
    // 1. A corpus standing in for a Twitter crawl (300 tweets, 30 users).
    let corpus = generate(&presets::tiny(42));
    println!(
        "corpus: {} tweets, {} users, {} re-tweets over {} days",
        corpus.num_tweets(),
        corpus.num_users(),
        corpus.retweets.len(),
        corpus.num_days
    );

    // 2. Offline (Algorithm 1): build the tripartite matrices and solve
    //    the joint co-clustering problem over the whole corpus. The
    //    `try_` entry point returns a typed `TgsError` instead of
    //    panicking on malformed shapes or configs.
    let mut pipe = PipelineConfig::paper_defaults();
    pipe.vocab.min_count = 2;
    let inst = build_offline(&corpus, 3, &pipe);
    let input = TriInput {
        xp: &inst.xp,
        xu: &inst.xu,
        xr: &inst.xr,
        graph: &inst.graph,
        sf0: &inst.sf0,
    };
    let result = try_solve_offline(&input, &OfflineConfig::default())?;
    println!(
        "offline: solved in {} iterations (converged: {}), objective {:.1}",
        result.iterations, result.converged, result.objective
    );
    let tweet_acc = clustering_accuracy(&result.tweet_labels(), &inst.tweet_truth);
    let user_acc = clustering_accuracy(&result.user_labels(), &inst.user_truth);
    let tweet_nmi = nmi(&result.tweet_labels(), &inst.tweet_truth);
    println!("  tweet-level: accuracy {tweet_acc:.3}, NMI {tweet_nmi:.3}");
    println!("  user-level:  accuracy {user_acc:.3}");

    // 3. Online (Algorithm 2) through the engine facade: the builder
    //    fits the global vocabulary and lexicon prior, the engine owns
    //    the solver, and snapshots are ingested as owned payloads.
    let engine = EngineBuilder::new().k(3).pipeline(pipe).fit(&corpus)?;
    for (lo, hi) in day_windows(corpus.num_days, 4) {
        engine.ingest(EngineSnapshot::from_corpus_window(&corpus, lo, hi))?;
    }
    engine.flush()?;

    // 4. Query the recorded history.
    let query = engine.query();
    println!("\nstream: {} snapshots processed", query.timeline(..).len());
    if let Some(latest) = query.latest() {
        let summary = query.cluster_summary(latest.timestamp)?;
        for c in 0..summary.tweet_counts.len() {
            println!(
                "  t={} {:<9} {:>4} tweets ({:>5.1}%), {:>3} users",
                latest.timestamp,
                Sentiment::from_index(c).map(|s| s.as_str()).unwrap_or("?"),
                summary.tweet_counts[c],
                100.0 * summary.tweet_shares[c],
                summary.user_counts[c],
            );
        }
        // An author's estimate as of the final snapshot.
        let author = corpus.tweets[0].author;
        let s = query.user_sentiment(author, latest.timestamp)?;
        println!(
            "  user {author} leans {} (distribution {:?})",
            Sentiment::from_index(s.label())
                .map(|s| s.as_str())
                .unwrap_or("?"),
            s.distribution
                .iter()
                .map(|p| (p * 1000.0).round() / 1000.0)
                .collect::<Vec<_>>(),
        );
    }
    Ok(())
}

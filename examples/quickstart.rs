//! Quickstart: generate a small corpus, co-cluster the tripartite graph,
//! and read out tweet-level and user-level sentiments.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tripartite_sentiment::prelude::*;

fn main() {
    // 1. A corpus standing in for a Twitter crawl (300 tweets, 30 users).
    let corpus = generate(&presets::tiny(42));
    println!(
        "corpus: {} tweets, {} users, {} re-tweets over {} days",
        corpus.num_tweets(),
        corpus.num_users(),
        corpus.retweets.len(),
        corpus.num_days
    );

    // 2. Build the tripartite matrices: Xp (tweet-feature), Xu
    //    (user-feature), Xr (user-tweet), Gu (user-user re-tweet graph)
    //    and the lexicon prior Sf0.
    let mut pipe = PipelineConfig::paper_defaults();
    pipe.vocab.min_count = 2;
    let inst = build_offline(&corpus, 3, &pipe);
    println!(
        "matrices: Xp {}x{} ({} nnz), Xu {}x{}, Xr {}x{}, Gu with {} edges",
        inst.xp.rows(),
        inst.xp.cols(),
        inst.xp.nnz(),
        inst.xu.rows(),
        inst.xu.cols(),
        inst.xr.rows(),
        inst.xr.cols(),
        inst.graph.num_edges()
    );

    // 3. Solve the joint co-clustering problem (Algorithm 1).
    let input = TriInput {
        xp: &inst.xp,
        xu: &inst.xu,
        xr: &inst.xr,
        graph: &inst.graph,
        sf0: &inst.sf0,
    };
    let result = solve_offline(&input, &OfflineConfig::default());
    println!(
        "solved in {} iterations (converged: {}), objective {:.1}",
        result.iterations, result.converged, result.objective
    );

    // 4. Evaluate against the generator's ground truth.
    let tweet_acc = clustering_accuracy(&result.tweet_labels(), &inst.tweet_truth);
    let user_acc = clustering_accuracy(&result.user_labels(), &inst.user_truth);
    let tweet_nmi = nmi(&result.tweet_labels(), &inst.tweet_truth);
    println!("tweet-level: accuracy {tweet_acc:.3}, NMI {tweet_nmi:.3}");
    println!("user-level:  accuracy {user_acc:.3}");

    // 5. Inspect a few tweets with their inferred sentiment cluster.
    let labels = result.tweet_labels();
    println!("\nsample tweets (cluster = argmax of Sp row):");
    for tweet in corpus.tweets.iter().take(5) {
        println!(
            "  [cluster {}] (truth: {}) {}",
            labels[tweet.id],
            tweet.sentiment,
            tweet.tokens.join(" ")
        );
    }
}

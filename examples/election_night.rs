//! Election-night burst handling: compare the online solver against the
//! mini-batch and full-batch strawmen while tweet volume spikes (the
//! iPhone5-release scenario of the introduction, and Figs. 11–12).
//!
//! ```text
//! cargo run --release --example election_night
//! ```

use std::time::Instant;

use tripartite_sentiment::prelude::*;

fn main() {
    let corpus = generate(&presets::prop30_small(5));
    let counts = daily_tweet_counts(&corpus);
    let burst_day = counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, &c)| c)
        .map(|(d, _)| d as u32)
        .unwrap_or(0);
    println!(
        "peak volume on day {burst_day}: {} tweets (baseline ~{} tweets/day)\n",
        counts[burst_day as usize],
        counts.iter().sum::<usize>() / counts.len().max(1)
    );

    let mut pipe = PipelineConfig::paper_defaults();
    pipe.vocab.min_count = 2;
    let builder = SnapshotBuilder::new(&corpus, 3, &pipe);

    let mut online = OnlineSolver::new(OnlineConfig::default());
    let mut mini = MiniBatch::new(OfflineConfig::default());
    let mut full = FullBatch::new(OfflineConfig::default());

    println!(
        "{:<8} {:>6} | {:>9} {:>9} {:>9} | {:>7} {:>7} {:>7}",
        "days", "n(t)", "online ms", "mini ms", "full ms", "on acc", "mini", "full"
    );
    for (lo, hi) in day_windows(corpus.num_days, 2) {
        let snap = builder.snapshot(&corpus, lo, hi);
        if snap.tweet_ids.is_empty() {
            continue;
        }
        let acc = |labels: &[usize]| clustering_accuracy(labels, &snap.tweet_truth);

        let input = TriInput {
            xp: &snap.xp,
            xu: &snap.xu,
            xr: &snap.xr,
            graph: &snap.graph,
            sf0: builder.sf0(),
        };
        let t = Instant::now();
        let on = online.step(&SnapshotData {
            input,
            user_ids: &snap.user_ids,
        });
        let online_ms = t.elapsed().as_secs_f64() * 1e3;

        let mb = mini.step(&input);

        // full-batch re-solves everything so far
        let cumulative = builder.snapshot(&corpus, 0, hi);
        let cum_input = TriInput {
            xp: &cumulative.xp,
            xu: &cumulative.xu,
            xr: &cumulative.xr,
            graph: &cumulative.graph,
            sf0: builder.sf0(),
        };
        let fb = full.step(&cum_input);
        // slice the cumulative solution down to this snapshot's tweets
        let fb_labels_all = fb.result.tweet_labels();
        let fb_labels: Vec<usize> = snap
            .tweet_ids
            .iter()
            .map(|id| {
                let row = cumulative.tweet_ids.iter().position(|t| t == id).unwrap();
                fb_labels_all[row]
            })
            .collect();

        println!(
            "{:<8} {:>6} | {:>9.1} {:>9.1} {:>9.1} | {:>6.1}% {:>6.1}% {:>6.1}%",
            format!("{lo}-{hi}"),
            snap.tweet_ids.len(),
            online_ms,
            mb.elapsed.as_secs_f64() * 1e3,
            fb.elapsed.as_secs_f64() * 1e3,
            100.0 * acc(&on.tweet_labels()),
            100.0 * acc(&mb.result.tweet_labels()),
            100.0 * acc(&fb_labels),
        );
    }
    println!(
        "\nthe online solver's cost tracks n(t) while full-batch grows with *all* data \
         accumulated so far — exactly the paper's Figs. 11(a)/12(a)."
    );
}

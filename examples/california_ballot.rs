//! The paper's headline scenario: analyze stances toward a California
//! ballot proposition and compare the unsupervised tri-clustering
//! framework against supervised and unsupervised baselines.
//!
//! ```text
//! cargo run --release --example california_ballot
//! ```

use tripartite_sentiment::prelude::*;

fn main() {
    // A ~2k-tweet Proposition 30 corpus ("Temporary Taxes to Fund
    // Education").
    let corpus = generate(&presets::prop30_small(2012));
    let stats = corpus_stats(&corpus);
    println!("== Proposition 30 (synthetic) ==");
    println!(
        "labeled tweets: {} pos / {} neg; users: {} labeled / {} unlabeled\n",
        stats.labeled_pos_tweets,
        stats.labeled_neg_tweets,
        stats.total_users - stats.unlabeled_users,
        stats.unlabeled_users
    );

    let mut pipe = PipelineConfig::paper_defaults();
    pipe.vocab.min_count = 2;
    let inst = build_offline(&corpus, 3, &pipe);
    let input = TriInput {
        xp: &inst.xp,
        xu: &inst.xu,
        xr: &inst.xr,
        graph: &inst.graph,
        sf0: &inst.sf0,
    };

    // Tri-clustering: no labels used at all.
    let tri = solve_offline(&input, &OfflineConfig::default());

    // Supervised Naive Bayes using the visible tweet labels.
    let nb = NaiveBayes::train(&inst.encoded, &inst.tweet_labels, inst.vocab.len(), 3, 1.0);
    let nb_pred = nb.predict_all(&inst.encoded);

    // Unsupervised ESSA: text + lexicon only (no users, no graph).
    let essa = solve_essa(
        &inst.xp,
        &inst.sf0,
        None,
        &EssaConfig {
            k: 3,
            ..Default::default()
        },
    );

    println!("{:<22} {:>10} {:>10}", "method", "tweet acc", "user acc");
    // The paper evaluates tweets on the labeled (pos/neg) subset — Table 3
    // has no neutral tweets — so restrict to polar ground truth.
    let polar: Vec<usize> = (0..inst.tweet_truth.len())
        .filter(|&i| inst.tweet_truth[i] != Sentiment::Neutral.index())
        .collect();
    let tweet_acc = |pred: &[usize]| {
        let p: Vec<usize> = polar.iter().map(|&i| pred[i]).collect();
        let t: Vec<usize> = polar.iter().map(|&i| inst.tweet_truth[i]).collect();
        clustering_accuracy(&p, &t)
    };
    let user_acc = |pred: &[usize]| clustering_accuracy(pred, &inst.user_truth);
    println!(
        "{:<22} {:>10.3} {:>10}",
        "NB (supervised)",
        tweet_acc(&nb_pred),
        "-"
    );
    println!(
        "{:<22} {:>10.3} {:>10}",
        "ESSA (unsupervised)",
        tweet_acc(&essa.tweet_labels()),
        "-"
    );
    println!(
        "{:<22} {:>10.3} {:>10.3}",
        "Tri-clustering",
        tweet_acc(&tri.tweet_labels()),
        user_acc(&tri.user_labels())
    );

    // Which users does the graph regularizer help? Show the stance
    // distribution of the most active users.
    println!("\nmost active users and their inferred stance:");
    let mut users: Vec<_> = corpus.users.iter().collect();
    users.sort_by(|a, b| b.activity.partial_cmp(&a.activity).unwrap());
    let labels = tri.user_labels();
    for u in users.iter().take(5) {
        let class = Sentiment::from_index(labels[u.id])
            .map(|s| s.as_str())
            .unwrap_or("?");
        println!(
            "  user {:>3}: inferred {:>3}, true {:>3}, {} re-tweet partners",
            u.id,
            class,
            u.trajectory.majority_stance(corpus.num_days),
            inst.graph.neighbors(u.id).count()
        );
    }
}

//! Term weighting: building the tweet–feature matrix `Xp` and the
//! user–feature matrix `Xu` from encoded documents.

use tgs_linalg::CsrMatrix;

use crate::vocab::Vocabulary;

/// Term weighting schemes for document vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Weighting {
    /// Raw term counts.
    Counts,
    /// Presence/absence.
    Binary,
    /// Term frequency × smoothed inverse document frequency
    /// (`idf = ln((1 + N) / (1 + df)) + 1`), the paper's "tf-idf term
    /// vector representation".
    #[default]
    TfIdf,
}

/// Builds document vectors over a fixed vocabulary.
#[derive(Debug, Clone)]
pub struct Vectorizer {
    weighting: Weighting,
    /// Smoothed idf per feature (all ones for non-tf-idf schemes).
    idf: Vec<f64>,
    vocab_len: usize,
    /// L2-normalize each document/user vector. Standard for tf-idf and
    /// essential for the paper's regularization weights: with raw
    /// magnitudes the Frobenius data terms dwarf `α‖Sf−Sf0‖²` and
    /// `β·tr(SuᵀLuSu)` by orders of magnitude and α, β ∈ [0, 1] become
    /// inert.
    l2_normalize: bool,
}

impl Vectorizer {
    /// Fits idf statistics on `docs` (documents as feature-id slices).
    /// Vectors stay raw (the scale the tri-clustering solver is balanced
    /// for); use [`Vectorizer::fit_with_norm`] for L2-normalized rows.
    pub fn fit(vocab: &Vocabulary, docs: &[Vec<usize>], weighting: Weighting) -> Self {
        Self::fit_with_norm(vocab, docs, weighting, false)
    }

    /// [`Vectorizer::fit`] with explicit control over L2 normalization.
    pub fn fit_with_norm(
        vocab: &Vocabulary,
        docs: &[Vec<usize>],
        weighting: Weighting,
        l2_normalize: bool,
    ) -> Self {
        let mut df = vec![0u64; vocab.len()];
        for doc in docs {
            let mut seen = doc.clone();
            seen.sort_unstable();
            seen.dedup();
            for &f in &seen {
                df[f] += 1;
            }
        }
        let n = docs.len() as f64;
        let idf = match weighting {
            Weighting::TfIdf => df
                .iter()
                .map(|&d| ((1.0 + n) / (1.0 + d as f64)).ln() + 1.0)
                .collect(),
            _ => vec![1.0; vocab.len()],
        };
        Self {
            weighting,
            idf,
            vocab_len: vocab.len(),
            l2_normalize,
        }
    }

    /// Number of features this vectorizer emits.
    pub fn num_features(&self) -> usize {
        self.vocab_len
    }

    /// Weights a single encoded document into `(feature, weight)` pairs.
    pub fn transform_doc(&self, doc: &[usize]) -> Vec<(usize, f64)> {
        let mut counts: Vec<(usize, f64)> = Vec::with_capacity(doc.len());
        let mut sorted = doc.to_vec();
        sorted.sort_unstable();
        let mut i = 0;
        while i < sorted.len() {
            let f = sorted[i];
            let mut c = 0.0;
            while i < sorted.len() && sorted[i] == f {
                c += 1.0;
                i += 1;
            }
            let w = match self.weighting {
                Weighting::Counts => c,
                Weighting::Binary => 1.0,
                Weighting::TfIdf => c * self.idf[f],
            };
            counts.push((f, w));
        }
        if self.l2_normalize {
            normalize_l2(&mut counts);
        }
        counts
    }

    /// Builds the document–feature matrix (`docs.len() × vocab`) —
    /// the paper's `Xp` when documents are tweets.
    pub fn doc_feature_matrix(&self, docs: &[Vec<usize>]) -> CsrMatrix {
        let mut triplets = Vec::new();
        for (d, doc) in docs.iter().enumerate() {
            for (f, w) in self.transform_doc(doc) {
                triplets.push((d, f, w));
            }
        }
        CsrMatrix::from_triplets(docs.len(), self.vocab_len, &triplets)
            .expect("vectorizer produces in-bounds triplets")
    }

    /// Builds the user–feature matrix (`num_users × vocab`) by summing the
    /// weighted vectors of each user's documents — the paper's `Xu`
    /// ("users can be characterized by the word features of their tweets").
    /// User rows are L2-normalized when the vectorizer normalizes, so a
    /// prolific user's row stays on the same scale as everyone else's.
    pub fn user_feature_matrix(
        &self,
        docs: &[Vec<usize>],
        doc_user: &[usize],
        num_users: usize,
    ) -> CsrMatrix {
        assert_eq!(docs.len(), doc_user.len(), "one user per document required");
        let mut per_user: Vec<std::collections::HashMap<usize, f64>> =
            vec![std::collections::HashMap::new(); num_users];
        for (doc, &u) in docs.iter().zip(doc_user.iter()) {
            assert!(
                u < num_users,
                "user id {u} out of range ({num_users} users)"
            );
            for (f, w) in self.transform_doc(doc) {
                *per_user[u].entry(f).or_insert(0.0) += w;
            }
        }
        let mut triplets = Vec::new();
        for (u, feats) in per_user.into_iter().enumerate() {
            let mut row: Vec<(usize, f64)> = feats.into_iter().collect();
            if self.l2_normalize {
                normalize_l2(&mut row);
            }
            for (f, w) in row {
                triplets.push((u, f, w));
            }
        }
        CsrMatrix::from_triplets(num_users, self.vocab_len, &triplets)
            .expect("vectorizer produces in-bounds triplets")
    }
}

fn normalize_l2(entries: &mut [(usize, f64)]) {
    let norm: f64 = entries.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
    if norm > 0.0 {
        for (_, w) in entries.iter_mut() {
            *w /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Vocabulary;

    fn setup() -> (Vocabulary, Vec<Vec<usize>>) {
        let vocab = Vocabulary::from_tokens(["gmo", "labeling", "evil", "safe"]);
        let docs = vec![
            vocab.encode(["gmo", "labeling", "gmo"]),
            vocab.encode(["evil", "gmo"]),
            vocab.encode(["safe"]),
        ];
        (vocab, docs)
    }

    #[test]
    fn counts_weighting_counts_occurrences() {
        let (vocab, docs) = setup();
        let v = Vectorizer::fit(&vocab, &docs, Weighting::Counts);
        let x = v.doc_feature_matrix(&docs);
        assert_eq!(x.get(0, vocab.id("gmo").unwrap()), 2.0);
        assert_eq!(x.get(0, vocab.id("labeling").unwrap()), 1.0);
        assert_eq!(x.get(2, vocab.id("safe").unwrap()), 1.0);
    }

    #[test]
    fn binary_weighting_caps_at_one() {
        let (vocab, docs) = setup();
        let v = Vectorizer::fit(&vocab, &docs, Weighting::Binary);
        let x = v.doc_feature_matrix(&docs);
        assert_eq!(x.get(0, vocab.id("gmo").unwrap()), 1.0);
    }

    #[test]
    fn tfidf_downweights_common_terms() {
        let (vocab, docs) = setup();
        let v = Vectorizer::fit(&vocab, &docs, Weighting::TfIdf);
        let x = v.doc_feature_matrix(&docs);
        // "gmo" appears in 2 of 3 docs, "evil" in 1: idf(evil) > idf(gmo).
        let gmo_w = x.get(1, vocab.id("gmo").unwrap());
        let evil_w = x.get(1, vocab.id("evil").unwrap());
        assert!(evil_w > gmo_w, "evil={evil_w} gmo={gmo_w}");
    }

    #[test]
    fn tfidf_rows_are_l2_normalized() {
        let (vocab, docs) = setup();
        let v = Vectorizer::fit_with_norm(&vocab, &docs, Weighting::TfIdf, true);
        let x = v.doc_feature_matrix(&docs);
        for i in 0..x.rows() {
            let norm: f64 = x.iter_row(i).map(|(_, w)| w * w).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9, "row {i} norm {norm}");
        }
    }

    #[test]
    fn counts_stay_raw_unless_asked() {
        let (vocab, docs) = setup();
        let v = Vectorizer::fit(&vocab, &docs, Weighting::Counts);
        let x = v.doc_feature_matrix(&docs);
        assert_eq!(x.get(0, vocab.id("gmo").unwrap()), 2.0);
        let vn = Vectorizer::fit_with_norm(&vocab, &docs, Weighting::Counts, true);
        let xn = vn.doc_feature_matrix(&docs);
        assert!(xn.get(0, vocab.id("gmo").unwrap()) < 1.0);
    }

    #[test]
    fn user_rows_l2_normalized_for_tfidf() {
        let (vocab, docs) = setup();
        let v = Vectorizer::fit_with_norm(&vocab, &docs, Weighting::TfIdf, true);
        let xu = v.user_feature_matrix(&docs, &[0, 0, 1], 2);
        for i in 0..2 {
            let norm: f64 = xu.iter_row(i).map(|(_, w)| w * w).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9, "user row {i} norm {norm}");
        }
    }

    #[test]
    fn user_matrix_aggregates_docs() {
        let (vocab, docs) = setup();
        let v = Vectorizer::fit(&vocab, &docs, Weighting::Counts);
        // Docs 0 and 1 belong to user 0, doc 2 to user 1.
        let xu = v.user_feature_matrix(&docs, &[0, 0, 1], 2);
        assert_eq!(xu.rows(), 2);
        assert_eq!(xu.get(0, vocab.id("gmo").unwrap()), 3.0);
        assert_eq!(xu.get(1, vocab.id("safe").unwrap()), 1.0);
        assert_eq!(xu.get(1, vocab.id("gmo").unwrap()), 0.0);
    }

    #[test]
    fn empty_docs_produce_empty_rows() {
        let (vocab, mut docs) = setup();
        docs.push(vec![]);
        let v = Vectorizer::fit(&vocab, &docs, Weighting::TfIdf);
        let x = v.doc_feature_matrix(&docs);
        assert_eq!(x.rows(), 4);
        assert_eq!(x.iter_row(3).count(), 0);
    }
}

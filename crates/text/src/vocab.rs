//! Vocabulary construction: the feature layer `F` of the tripartite graph.

use std::collections::HashMap;

/// A small built-in English stopword list. Stopwords carry no sentiment
/// and would otherwise dominate the tf-idf mass of the feature layer.
pub const STOPWORDS: &[&str] = &[
    "a", "an", "the", "and", "or", "but", "if", "then", "than", "so", "of", "at", "by", "for",
    "with", "about", "into", "through", "to", "from", "in", "out", "on", "off", "over", "under",
    "again", "once", "here", "there", "all", "any", "both", "each", "few", "more", "most", "other",
    "some", "such", "no", "nor", "not", "only", "own", "same", "too", "very", "can", "will",
    "just", "is", "am", "are", "was", "were", "be", "been", "being", "have", "has", "had",
    "having", "do", "does", "did", "doing", "it", "its", "this", "that", "these", "those", "i",
    "me", "my", "we", "our", "you", "your", "he", "him", "his", "she", "her", "they", "them",
    "their", "what", "which", "who", "whom", "as", "rt", "via",
];

/// Options controlling which tokens become vocabulary features.
#[derive(Debug, Clone)]
pub struct VocabConfig {
    /// Drop features observed fewer than this many times in total.
    pub min_count: usize,
    /// Keep at most this many features (highest total count wins; ties
    /// break lexicographically for determinism). `0` disables the cap.
    pub max_features: usize,
    /// Remove stopwords.
    pub remove_stopwords: bool,
}

impl Default for VocabConfig {
    fn default() -> Self {
        Self {
            min_count: 2,
            max_features: 0,
            remove_stopwords: true,
        }
    }
}

/// A frozen token → feature-id mapping.
///
/// Feature ids are dense `0..len()` and stable for a given input corpus
/// and configuration (insertion-independent: ids are assigned after
/// sorting by `(count desc, token asc)`).
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    index: HashMap<String, usize>,
    tokens: Vec<String>,
    counts: Vec<u64>,
}

impl Vocabulary {
    /// Builds a vocabulary from an iterator of documents (each a slice of
    /// feature strings).
    pub fn build<'a, D, I>(docs: D, config: &VocabConfig) -> Self
    where
        D: IntoIterator<Item = I>,
        I: IntoIterator<Item = &'a str>,
    {
        let mut counts: HashMap<String, u64> = HashMap::new();
        for doc in docs {
            for tok in doc {
                *counts.entry(tok.to_string()).or_insert(0) += 1;
            }
        }
        if config.remove_stopwords {
            for sw in STOPWORDS {
                counts.remove(*sw);
            }
        }
        let mut entries: Vec<(String, u64)> = counts
            .into_iter()
            .filter(|&(_, c)| c as usize >= config.min_count)
            .collect();
        entries.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        if config.max_features > 0 {
            entries.truncate(config.max_features);
        }
        let mut vocab = Vocabulary::default();
        for (tok, c) in entries {
            vocab.index.insert(tok.clone(), vocab.tokens.len());
            vocab.tokens.push(tok);
            vocab.counts.push(c);
        }
        vocab
    }

    /// Builds a vocabulary directly from a list of unique tokens (used by
    /// the synthetic generator where the token set is known).
    pub fn from_tokens<S: Into<String>>(tokens: impl IntoIterator<Item = S>) -> Self {
        let mut vocab = Vocabulary::default();
        for tok in tokens {
            let tok = tok.into();
            if !vocab.index.contains_key(&tok) {
                vocab.index.insert(tok.clone(), vocab.tokens.len());
                vocab.tokens.push(tok);
                vocab.counts.push(0);
            }
        }
        vocab
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when no features are present.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Feature id of `token`, if in the vocabulary.
    pub fn id(&self, token: &str) -> Option<usize> {
        self.index.get(token).copied()
    }

    /// Token string of feature `id`.
    pub fn token(&self, id: usize) -> &str {
        &self.tokens[id]
    }

    /// Total corpus count of feature `id` at build time.
    pub fn count(&self, id: usize) -> u64 {
        self.counts[id]
    }

    /// All tokens in id order.
    pub fn tokens(&self) -> &[String] {
        &self.tokens
    }

    /// Maps a document to feature ids, dropping out-of-vocabulary tokens.
    pub fn encode<'a>(&self, doc: impl IntoIterator<Item = &'a str>) -> Vec<usize> {
        let mut out = Vec::new();
        self.encode_into(doc, &mut out);
        out
    }

    /// Buffer-reusing variant of [`Vocabulary::encode`]: clears `out`
    /// and fills it with the known-token ids. Lets ingest paths reuse
    /// per-document id buffers across snapshots.
    pub fn encode_into<'a>(&self, doc: impl IntoIterator<Item = &'a str>, out: &mut Vec<usize>) {
        out.clear();
        out.extend(doc.into_iter().filter_map(|t| self.id(t)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<Vec<&'static str>> {
        vec![
            vec!["gmo", "labeling", "is", "good", "#yeson37"],
            vec!["gmo", "crops", "safe", "#noprop37"],
            vec!["gmo", "labeling", "#yeson37", "#yeson37"],
        ]
    }

    #[test]
    fn build_counts_and_orders_by_frequency() {
        let v = Vocabulary::build(
            docs().iter().map(|d| d.iter().copied()),
            &VocabConfig {
                min_count: 1,
                max_features: 0,
                remove_stopwords: true,
            },
        );
        // "is" removed as stopword; "gmo" (3) and "#yeson37" (3) lead.
        assert!(v.id("is").is_none());
        assert_eq!(v.token(0), "#yeson37"); // count 3, ties broken lexicographically
        assert_eq!(v.token(1), "gmo");
        assert_eq!(v.count(0), 3);
    }

    #[test]
    fn min_count_filters_rare_tokens() {
        let v = Vocabulary::build(
            docs().iter().map(|d| d.iter().copied()),
            &VocabConfig {
                min_count: 2,
                max_features: 0,
                remove_stopwords: true,
            },
        );
        assert!(v.id("crops").is_none());
        assert!(v.id("labeling").is_some());
    }

    #[test]
    fn max_features_caps_size() {
        let v = Vocabulary::build(
            docs().iter().map(|d| d.iter().copied()),
            &VocabConfig {
                min_count: 1,
                max_features: 2,
                remove_stopwords: true,
            },
        );
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn encode_drops_oov() {
        let v = Vocabulary::build(
            docs().iter().map(|d| d.iter().copied()),
            &VocabConfig {
                min_count: 2,
                max_features: 0,
                remove_stopwords: true,
            },
        );
        let ids = v.encode(["gmo", "unknowntoken", "labeling"]);
        assert_eq!(ids.len(), 2);
        assert_eq!(v.token(ids[0]), "gmo");
    }

    #[test]
    fn from_tokens_dedups_and_preserves_order() {
        let v = Vocabulary::from_tokens(["b", "a", "b"]);
        assert_eq!(v.len(), 2);
        assert_eq!(v.id("b"), Some(0));
        assert_eq!(v.id("a"), Some(1));
    }

    #[test]
    fn deterministic_ids_across_builds() {
        let a = Vocabulary::build(
            docs().iter().map(|d| d.iter().copied()),
            &VocabConfig::default(),
        );
        let b = Vocabulary::build(
            docs().iter().map(|d| d.iter().copied()),
            &VocabConfig::default(),
        );
        assert_eq!(a.tokens(), b.tokens());
    }
}

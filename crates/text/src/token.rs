//! Tweet-aware tokenization.
//!
//! Twitter text is short, noisy, and full of platform artifacts that carry
//! sentiment signal (hashtags like `#yeson37`, emoticons) or none at all
//! (URLs, mention targets). The tokenizer keeps the former, normalizes or
//! drops the latter, and lowercases everything else.

/// Kinds of tokens a tweet decomposes into.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Token {
    /// A plain word, lowercased.
    Word(String),
    /// A `#hashtag`, lowercased, without the `#`.
    Hashtag(String),
    /// A `@mention`, lowercased, without the `@`.
    Mention(String),
    /// An emoticon such as `:)` or `:(`.
    Emoticon(String),
}

impl Token {
    /// The token's feature string as used in the vocabulary. Hashtags keep
    /// a `#` prefix and mentions a `@` prefix so they remain distinct
    /// features from plain words; emoticons are kept verbatim.
    pub fn feature(&self) -> String {
        match self {
            Token::Word(w) => w.clone(),
            Token::Hashtag(h) => format!("#{h}"),
            Token::Mention(m) => format!("@{m}"),
            Token::Emoticon(e) => e.clone(),
        }
    }
}

/// Configuration for [`tokenize`].
#[derive(Debug, Clone)]
pub struct TokenizerConfig {
    /// Drop tokens shorter than this many characters (after stripping).
    pub min_token_len: usize,
    /// Keep `@mention` tokens (they identify interaction, rarely sentiment).
    pub keep_mentions: bool,
    /// Keep numeric tokens such as `2012` or `$14`.
    pub keep_numbers: bool,
}

impl Default for TokenizerConfig {
    fn default() -> Self {
        Self {
            min_token_len: 2,
            keep_mentions: false,
            keep_numbers: false,
        }
    }
}

/// Emoticons recognized as single tokens (checked before punctuation
/// stripping). Sentiment-bearing, so worth preserving.
const EMOTICONS: &[&str] = &[
    ":)", ":-)", ":d", ":-d", ";)", ";-)", ":(", ":-(", ":'(", ":/", ":-/", "<3", "=)", "=(",
];

/// Splits raw tweet text into [`Token`]s.
///
/// Rules, in order:
/// 1. whitespace-split;
/// 2. URLs (`http…`, `www.…`) are dropped;
/// 3. known emoticons are kept verbatim;
/// 4. `#tag` / `@user` become [`Token::Hashtag`] / [`Token::Mention`];
/// 5. everything else is lowercased and stripped of non-alphanumerics;
/// 6. too-short and (optionally) numeric tokens are dropped.
pub fn tokenize(text: &str, config: &TokenizerConfig) -> Vec<Token> {
    let mut out = Vec::new();
    for raw in text.split_whitespace() {
        let lower = raw.to_lowercase();
        if lower.starts_with("http://")
            || lower.starts_with("https://")
            || lower.starts_with("www.")
        {
            continue;
        }
        if EMOTICONS.contains(&lower.as_str()) {
            out.push(Token::Emoticon(lower));
            continue;
        }
        if let Some(tag) = lower.strip_prefix('#') {
            let clean = strip_non_alnum(tag);
            if clean.len() >= config.min_token_len {
                out.push(Token::Hashtag(clean));
            }
            continue;
        }
        if let Some(user) = lower.strip_prefix('@') {
            if config.keep_mentions {
                let clean = strip_non_alnum(user);
                if clean.len() >= config.min_token_len {
                    out.push(Token::Mention(clean));
                }
            }
            continue;
        }
        // A word possibly glued to punctuation; split runs of alphanumerics.
        for piece in lower.split(|c: char| !c.is_alphanumeric() && c != '\'') {
            let clean: String = piece.chars().filter(|c| c.is_alphanumeric()).collect();
            if clean.len() < config.min_token_len {
                continue;
            }
            if !config.keep_numbers && clean.chars().all(|c| c.is_ascii_digit()) {
                continue;
            }
            out.push(Token::Word(clean));
        }
    }
    out
}

fn strip_non_alnum(s: &str) -> String {
    s.chars().filter(|c| c.is_alphanumeric()).collect()
}

/// Convenience: tokenize and return feature strings directly.
pub fn tokenize_features(text: &str, config: &TokenizerConfig) -> Vec<String> {
    let mut out = Vec::new();
    tokenize_features_into(text, config, &mut out);
    out
}

/// Buffer-reusing variant of [`tokenize_features`]: clears `out` and
/// fills it with the feature strings. High-rate ingest paths (the
/// `tgs-engine` worker) call this with a scratch buffer hoisted across
/// documents instead of allocating a fresh `Vec` per document.
pub fn tokenize_features_into(text: &str, config: &TokenizerConfig, out: &mut Vec<String>) {
    out.clear();
    out.extend(tokenize(text, config).iter().map(Token::feature));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(text: &str) -> Vec<String> {
        tokenize_features(text, &TokenizerConfig::default())
    }

    #[test]
    fn lowercases_and_strips_punctuation() {
        assert_eq!(
            features("Monsanto is PURE evil!!!"),
            vec!["monsanto", "is", "pure", "evil"]
        );
    }

    #[test]
    fn keeps_hashtags_with_prefix() {
        assert_eq!(
            features("Support the #California #GMO labeling"),
            vec!["support", "the", "#california", "#gmo", "labeling"]
        );
    }

    #[test]
    fn drops_urls_and_mentions_by_default() {
        assert_eq!(
            features("read this http://t.co/abc @someone now"),
            vec!["read", "this", "now"]
        );
    }

    #[test]
    fn keeps_mentions_when_configured() {
        let cfg = TokenizerConfig {
            keep_mentions: true,
            ..Default::default()
        };
        assert_eq!(tokenize_features("hi @Bob!", &cfg), vec!["hi", "@bob"]);
    }

    #[test]
    fn recognizes_emoticons() {
        let toks = tokenize("Love this :) so much", &TokenizerConfig::default());
        assert!(toks.contains(&Token::Emoticon(":)".into())));
    }

    #[test]
    fn drops_numbers_by_default_keeps_when_asked() {
        assert_eq!(features("14 billion in 2010"), vec!["billion", "in"]);
        let cfg = TokenizerConfig {
            keep_numbers: true,
            ..Default::default()
        };
        assert_eq!(
            tokenize_features("14 billion in 2010", &cfg),
            vec!["14", "billion", "in", "2010"]
        );
    }

    #[test]
    fn splits_glued_punctuation() {
        assert_eq!(
            features("risk,than conventional/food"),
            vec!["risk", "than", "conventional", "food"]
        );
    }

    #[test]
    fn min_len_filters_single_chars() {
        assert_eq!(features("a b cc"), vec!["cc"]);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        assert!(features("").is_empty());
        assert!(features("   \t \n ").is_empty());
    }
}

//! Sentiment lexicons and the prior matrix `Sf0`.
//!
//! The paper initializes the feature–sentiment prior `Sf0` from an
//! automatically built lexicon ("Yes" and "No" word lists from Smith et
//! al.). `Sf0(ij)` is the probability that feature `i` belongs to
//! sentiment class `j`; features absent from the lexicon receive a uniform
//! prior so the `α‖Sf − Sf0‖²` regularizer neither pushes nor pulls them.

use std::collections::HashMap;

use tgs_linalg::DenseMatrix;

use crate::sentiment::Sentiment;
use crate::vocab::Vocabulary;

/// A word → sentiment-class prior map.
#[derive(Debug, Clone, Default)]
pub struct Lexicon {
    entries: HashMap<String, Sentiment>,
}

impl Lexicon {
    /// An empty lexicon.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a lexicon from "yes"(positive) and "no"(negative) word
    /// lists, mirroring the paper's automatically built ballot lexicon.
    pub fn from_word_lists<S: AsRef<str>>(positive: &[S], negative: &[S]) -> Self {
        let mut lex = Self::new();
        for w in positive {
            lex.insert(w.as_ref(), Sentiment::Positive);
        }
        for w in negative {
            lex.insert(w.as_ref(), Sentiment::Negative);
        }
        lex
    }

    /// Adds or replaces a word's class.
    pub fn insert(&mut self, word: &str, class: Sentiment) {
        self.entries.insert(word.to_lowercase(), class);
    }

    /// Looks up a word (case-insensitive).
    pub fn class_of(&self, word: &str) -> Option<Sentiment> {
        self.entries.get(&word.to_lowercase()).copied()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(word, class)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Sentiment)> {
        self.entries.iter().map(|(w, &c)| (w.as_str(), c))
    }

    /// Builds the `l × k` prior matrix `Sf0` over a vocabulary.
    ///
    /// Lexicon words put `confidence` mass on their class and spread the
    /// remainder uniformly; out-of-lexicon words get the uniform prior
    /// `1/k`. Rows always sum to one.
    pub fn prior_matrix(&self, vocab: &Vocabulary, k: usize, confidence: f64) -> DenseMatrix {
        assert!(k >= 2, "need at least two sentiment classes");
        assert!(
            (0.0..=1.0).contains(&confidence),
            "confidence must be in [0, 1]"
        );
        let uniform = 1.0 / k as f64;
        let off = (1.0 - confidence) / (k as f64 - 1.0);
        let mut sf0 = DenseMatrix::filled(vocab.len(), k, uniform);
        for (w, class) in self.iter() {
            let j = class.index();
            if j >= k {
                continue; // e.g. a Neutral entry with k = 2
            }
            if let Some(i) = vocab.id(w) {
                let row = sf0.row_mut(i);
                for (col, v) in row.iter_mut().enumerate() {
                    *v = if col == j { confidence } else { off };
                }
            }
        }
        sf0
    }

    /// Lexicon coverage of a vocabulary: fraction of features with a
    /// lexicon entry.
    pub fn coverage(&self, vocab: &Vocabulary) -> f64 {
        if vocab.is_empty() {
            return 0.0;
        }
        let hit = vocab
            .tokens()
            .iter()
            .filter(|t| self.class_of(t).is_some())
            .count();
        hit as f64 / vocab.len() as f64
    }
}

/// Simple lexicon-only classifier: sums class votes of a document's
/// tokens. Used as a trivial baseline and for sanity checks.
pub fn lexicon_vote(lexicon: &Lexicon, tokens: &[String]) -> Option<Sentiment> {
    let mut pos = 0usize;
    let mut neg = 0usize;
    for t in tokens {
        match lexicon.class_of(t) {
            Some(Sentiment::Positive) => pos += 1,
            Some(Sentiment::Negative) => neg += 1,
            _ => {}
        }
    }
    match pos.cmp(&neg) {
        std::cmp::Ordering::Greater => Some(Sentiment::Positive),
        std::cmp::Ordering::Less => Some(Sentiment::Negative),
        std::cmp::Ordering::Equal if pos > 0 => Some(Sentiment::Neutral),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex() -> Lexicon {
        Lexicon::from_word_lists(&["yeson37", "labelgmo", "safe"], &["noprop37", "evil"])
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let l = lex();
        assert_eq!(l.class_of("YesOn37"), Some(Sentiment::Positive));
        assert_eq!(l.class_of("EVIL"), Some(Sentiment::Negative));
        assert_eq!(l.class_of("unknown"), None);
    }

    #[test]
    fn prior_matrix_rows_sum_to_one() {
        let l = lex();
        let vocab = Vocabulary::from_tokens(["yeson37", "evil", "corn"]);
        let sf0 = l.prior_matrix(&vocab, 3, 0.8);
        for i in 0..3 {
            let s: f64 = sf0.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "row {i} sums to {s}");
        }
    }

    #[test]
    fn prior_matrix_places_confidence_on_class() {
        let l = lex();
        let vocab = Vocabulary::from_tokens(["yeson37", "evil", "corn"]);
        let sf0 = l.prior_matrix(&vocab, 3, 0.8);
        let yid = vocab.id("yeson37").unwrap();
        let eid = vocab.id("evil").unwrap();
        let cid = vocab.id("corn").unwrap();
        assert!((sf0.get(yid, Sentiment::Positive.index()) - 0.8).abs() < 1e-12);
        assert!((sf0.get(eid, Sentiment::Negative.index()) - 0.8).abs() < 1e-12);
        assert!((sf0.get(cid, 0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn prior_matrix_k2_ignores_neutral_entries() {
        let mut l = lex();
        l.insert("meh", Sentiment::Neutral);
        let vocab = Vocabulary::from_tokens(["meh"]);
        let sf0 = l.prior_matrix(&vocab, 2, 0.9);
        assert!((sf0.get(0, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn coverage_fraction() {
        let l = lex();
        let vocab = Vocabulary::from_tokens(["yeson37", "evil", "corn", "farmer"]);
        assert!((l.coverage(&vocab) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn vote_majority_and_ties() {
        let l = lex();
        let toks = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            lexicon_vote(&l, &toks(&["safe", "evil", "labelgmo"])),
            Some(Sentiment::Positive)
        );
        assert_eq!(
            lexicon_vote(&l, &toks(&["evil", "noprop37"])),
            Some(Sentiment::Negative)
        );
        assert_eq!(
            lexicon_vote(&l, &toks(&["safe", "evil"])),
            Some(Sentiment::Neutral)
        );
        assert_eq!(lexicon_vote(&l, &toks(&["corn"])), None);
    }
}

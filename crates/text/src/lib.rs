//! # tgs-text
//!
//! The text/NLP substrate of the tripartite sentiment workspace: a
//! tweet-aware tokenizer, vocabulary construction, tf-idf vectorization
//! (producing the paper's `Xp` and `Xu` matrices), sentiment lexicons and
//! the `Sf0` feature–sentiment prior.
//!
//! ```
//! use tgs_text::{build_text_matrices, Lexicon, PipelineConfig};
//!
//! let texts = vec!["I love #gmo labeling :)".to_string(), "no on 37, gmo crops are safe".to_string()];
//! let mut cfg = PipelineConfig::paper_defaults();
//! cfg.vocab.min_count = 1;
//! let lexicon = Lexicon::from_word_lists(&["love"], &["no"]);
//! let m = build_text_matrices(&texts, &[0, 1], 2, &lexicon, 3, &cfg);
//! assert_eq!(m.xp.rows(), 2);
//! ```

pub mod lexicon;
pub mod pipeline;
pub mod sentiment;
pub mod tfidf;
pub mod token;
pub mod vocab;

pub use lexicon::{lexicon_vote, Lexicon};
pub use pipeline::{build_from_tokens, build_text_matrices, PipelineConfig, TextMatrices};
pub use sentiment::Sentiment;
pub use tfidf::{Vectorizer, Weighting};
pub use token::{tokenize, tokenize_features, tokenize_features_into, Token, TokenizerConfig};
pub use vocab::{VocabConfig, Vocabulary, STOPWORDS};

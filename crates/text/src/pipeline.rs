//! End-to-end text pipeline: raw tweets → vocabulary → `Xp`, `Xu`, `Sf0`.
//!
//! This is the front door most callers want: feed it raw text with user
//! ids, get back everything the tri-clustering framework needs on the
//! text side.

use tgs_linalg::{CsrMatrix, DenseMatrix};

use crate::lexicon::Lexicon;
use crate::tfidf::{Vectorizer, Weighting};
use crate::token::{tokenize_features, TokenizerConfig};
use crate::vocab::{VocabConfig, Vocabulary};

/// Pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct PipelineConfig {
    /// Tokenizer settings.
    pub tokenizer: TokenizerConfig,
    /// Vocabulary settings.
    pub vocab: VocabConfig,
    /// Term weighting for `Xp` / `Xu`.
    pub weighting: Weighting,
    /// Lexicon confidence mass for `Sf0` rows (see
    /// [`Lexicon::prior_matrix`]).
    pub lexicon_confidence: f64,
}

impl PipelineConfig {
    /// Default with the paper-style settings (tf-idf, 0.8 lexicon mass).
    pub fn paper_defaults() -> Self {
        Self {
            tokenizer: TokenizerConfig::default(),
            vocab: VocabConfig::default(),
            weighting: Weighting::TfIdf,
            lexicon_confidence: 0.8,
        }
    }
}

/// Output of the text pipeline.
#[derive(Debug, Clone)]
pub struct TextMatrices {
    /// Frozen vocabulary (feature layer `F`).
    pub vocab: Vocabulary,
    /// Tweet–feature matrix `Xp` (`n × l`).
    pub xp: CsrMatrix,
    /// User–feature matrix `Xu` (`m × l`).
    pub xu: CsrMatrix,
    /// Feature-sentiment prior `Sf0` (`l × k`).
    pub sf0: DenseMatrix,
    /// Encoded documents (feature ids per tweet), for downstream reuse.
    pub encoded: Vec<Vec<usize>>,
}

/// Runs the full pipeline.
///
/// * `texts[i]` is the raw text of tweet `i`;
/// * `doc_user[i]` is the (dense, `0..num_users`) id of its author;
/// * `lexicon` seeds the `Sf0` prior;
/// * `k` is the number of sentiment classes.
pub fn build_text_matrices(
    texts: &[String],
    doc_user: &[usize],
    num_users: usize,
    lexicon: &Lexicon,
    k: usize,
    config: &PipelineConfig,
) -> TextMatrices {
    assert_eq!(texts.len(), doc_user.len(), "one author per tweet required");
    let tokenized: Vec<Vec<String>> = texts
        .iter()
        .map(|t| tokenize_features(t, &config.tokenizer))
        .collect();
    let vocab = Vocabulary::build(
        tokenized.iter().map(|d| d.iter().map(String::as_str)),
        &config.vocab,
    );
    let encoded: Vec<Vec<usize>> = tokenized
        .iter()
        .map(|d| vocab.encode(d.iter().map(String::as_str)))
        .collect();
    let vectorizer = Vectorizer::fit(&vocab, &encoded, config.weighting);
    let xp = vectorizer.doc_feature_matrix(&encoded);
    let xu = vectorizer.user_feature_matrix(&encoded, doc_user, num_users);
    let sf0 = lexicon.prior_matrix(&vocab, k, config.lexicon_confidence);
    TextMatrices {
        vocab,
        xp,
        xu,
        sf0,
        encoded,
    }
}

/// Builds matrices from pre-tokenized documents (the synthetic generator
/// produces tokens directly, skipping raw text).
pub fn build_from_tokens(
    docs: &[Vec<String>],
    doc_user: &[usize],
    num_users: usize,
    lexicon: &Lexicon,
    k: usize,
    config: &PipelineConfig,
) -> TextMatrices {
    assert_eq!(
        docs.len(),
        doc_user.len(),
        "one author per document required"
    );
    let vocab = Vocabulary::build(
        docs.iter().map(|d| d.iter().map(String::as_str)),
        &config.vocab,
    );
    let encoded: Vec<Vec<usize>> = docs
        .iter()
        .map(|d| vocab.encode(d.iter().map(String::as_str)))
        .collect();
    let vectorizer = Vectorizer::fit(&vocab, &encoded, config.weighting);
    let xp = vectorizer.doc_feature_matrix(&encoded);
    let xu = vectorizer.user_feature_matrix(&encoded, doc_user, num_users);
    let sf0 = lexicon.prior_matrix(&vocab, k, config.lexicon_confidence);
    TextMatrices {
        vocab,
        xp,
        xu,
        sf0,
        encoded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sentiment::Sentiment;

    #[test]
    fn pipeline_end_to_end_shapes() {
        let texts = vec![
            "Support the #GMO Labeling Ballot Initiative #prop37".to_string(),
            "Monsanto is pure evil".to_string(),
            "GM crops poses no greater risk than conventional food".to_string(),
            "Love this Yes on #Prop37 add :)".to_string(),
        ];
        let users = vec![0, 1, 1, 0];
        let lexicon = Lexicon::from_word_lists(&["love", "support"], &["evil", "risk"]);
        let mut cfg = PipelineConfig::paper_defaults();
        cfg.vocab.min_count = 1;
        let out = build_text_matrices(&texts, &users, 2, &lexicon, 3, &cfg);
        assert_eq!(out.xp.rows(), 4);
        assert_eq!(out.xu.rows(), 2);
        assert_eq!(out.xp.cols(), out.vocab.len());
        assert_eq!(out.xu.cols(), out.vocab.len());
        assert_eq!(out.sf0.shape(), (out.vocab.len(), 3));
        // lexicon word present in vocab ends up with high prior on its class
        let evil = out.vocab.id("evil").unwrap();
        assert!(out.sf0.get(evil, Sentiment::Negative.index()) > 0.5);
    }

    #[test]
    fn user_rows_aggregate_multiple_tweets() {
        let texts = vec!["gmo gmo labeling".to_string(), "gmo safe".to_string()];
        let users = vec![0, 0];
        let mut cfg = PipelineConfig::paper_defaults();
        cfg.vocab.min_count = 1;
        cfg.weighting = Weighting::Counts;
        let out = build_text_matrices(&texts, &users, 1, &Lexicon::new(), 3, &cfg);
        let gmo = out.vocab.id("gmo").unwrap();
        assert_eq!(out.xu.get(0, gmo), 3.0);
    }

    #[test]
    fn build_from_tokens_matches_manual_encoding() {
        let docs = vec![
            vec!["alpha".to_string(), "beta".to_string()],
            vec!["beta".to_string(), "beta".to_string()],
        ];
        let mut cfg = PipelineConfig::paper_defaults();
        cfg.vocab.min_count = 1;
        cfg.weighting = Weighting::Counts;
        let out = build_from_tokens(&docs, &[0, 1], 2, &Lexicon::new(), 2, &cfg);
        let beta = out.vocab.id("beta").unwrap();
        assert_eq!(out.xp.get(1, beta), 2.0);
        assert_eq!(out.encoded[1].len(), 2);
    }
}

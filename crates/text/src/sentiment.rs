//! The sentiment label domain shared across the workspace.

/// A sentiment class. The paper clusters into `k = 2` (pos/neg) or
/// `k = 3` (pos/neg/neu) classes; the numeric discriminants are the
/// canonical cluster-column indices used by every factor matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sentiment {
    /// Positive attitude toward the topic.
    Positive = 0,
    /// Negative attitude toward the topic.
    Negative = 1,
    /// Neutral / no clear attitude.
    Neutral = 2,
}

impl Sentiment {
    /// All three classes in canonical column order.
    pub const ALL: [Sentiment; 3] = [Sentiment::Positive, Sentiment::Negative, Sentiment::Neutral];

    /// Canonical column index of this class.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Sentiment::index`]; `None` for indices `>= 3`.
    pub fn from_index(i: usize) -> Option<Sentiment> {
        match i {
            0 => Some(Sentiment::Positive),
            1 => Some(Sentiment::Negative),
            2 => Some(Sentiment::Neutral),
            _ => None,
        }
    }

    /// Short lowercase name (`pos` / `neg` / `neu`).
    pub fn as_str(self) -> &'static str {
        match self {
            Sentiment::Positive => "pos",
            Sentiment::Negative => "neg",
            Sentiment::Neutral => "neu",
        }
    }
}

impl std::fmt::Display for Sentiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for s in Sentiment::ALL {
            assert_eq!(Sentiment::from_index(s.index()), Some(s));
        }
        assert_eq!(Sentiment::from_index(3), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(Sentiment::Positive.to_string(), "pos");
        assert_eq!(Sentiment::Negative.to_string(), "neg");
        assert_eq!(Sentiment::Neutral.to_string(), "neu");
    }
}

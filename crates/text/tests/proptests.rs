//! Property-based tests for the text substrate.

use proptest::prelude::*;
use tgs_text::{
    tokenize_features, Lexicon, Sentiment, TokenizerConfig, Vectorizer, VocabConfig, Vocabulary,
    Weighting,
};

/// Strategy: short "tweets" of lowercase words, hashtags and junk.
fn raw_tweet() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            "[a-z]{2,8}",
            "#[a-z]{2,8}",
            "@[a-z]{2,8}",
            Just("http://t.co/xyz".to_string()),
            Just(":)".to_string()),
            "[0-9]{1,4}",
        ],
        0..12,
    )
    .prop_map(|words| words.join(" "))
}

proptest! {
    #[test]
    fn tokenizer_never_panics_and_output_is_clean(text in raw_tweet()) {
        let toks = tokenize_features(&text, &TokenizerConfig::default());
        for t in &toks {
            prop_assert!(!t.is_empty());
            prop_assert!(!t.starts_with("http"), "URLs must be dropped: {t}");
            prop_assert!(!t.starts_with('@'), "mentions dropped by default: {t}");
            prop_assert_eq!(t.to_lowercase(), t.clone(), "tokens are lowercased");
        }
    }

    #[test]
    fn tokenizer_idempotent_on_its_own_output(text in raw_tweet()) {
        let cfg = TokenizerConfig::default();
        let once = tokenize_features(&text, &cfg);
        let rejoined = once.join(" ");
        let twice = tokenize_features(&rejoined, &cfg);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn vocabulary_ids_are_dense_and_consistent(
        docs in proptest::collection::vec(
            proptest::collection::vec("[a-z]{2,5}", 1..8),
            1..10,
        )
    ) {
        let vocab = Vocabulary::build(
            docs.iter().map(|d| d.iter().map(String::as_str)),
            &VocabConfig { min_count: 1, max_features: 0, remove_stopwords: false },
        );
        for id in 0..vocab.len() {
            let tok = vocab.token(id);
            prop_assert_eq!(vocab.id(tok), Some(id), "id/token must roundtrip");
        }
        // every document token must be in the vocabulary (min_count = 1)
        for d in &docs {
            let enc = vocab.encode(d.iter().map(String::as_str));
            prop_assert_eq!(enc.len(), d.len());
        }
    }

    #[test]
    fn doc_feature_matrix_preserves_token_mass(
        docs in proptest::collection::vec(
            proptest::collection::vec(0usize..6, 1..10),
            1..8,
        )
    ) {
        let vocab = Vocabulary::from_tokens((0..6).map(|i| format!("w{i}")));
        let v = Vectorizer::fit(&vocab, &docs, Weighting::Counts);
        let x = v.doc_feature_matrix(&docs);
        let total_tokens: usize = docs.iter().map(Vec::len).sum();
        prop_assert!((x.sum() - total_tokens as f64).abs() < 1e-9);
    }

    #[test]
    fn prior_matrix_rows_always_sum_to_one(
        words in proptest::collection::btree_set("[a-z]{3,6}", 1..10),
        confidence in 0.0..1.0f64,
    ) {
        let words: Vec<String> = words.into_iter().collect();
        let mut lexicon = Lexicon::new();
        for (i, w) in words.iter().enumerate() {
            let class = if i % 2 == 0 { Sentiment::Positive } else { Sentiment::Negative };
            lexicon.insert(w, class);
        }
        let vocab = Vocabulary::from_tokens(words.iter().cloned().chain(["neutralword".into()]));
        for k in [2usize, 3] {
            let sf0 = lexicon.prior_matrix(&vocab, k, confidence);
            for i in 0..vocab.len() {
                let sum: f64 = sf0.row(i).iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-9, "row {i} sums to {sum}");
                prop_assert!(sf0.row(i).iter().all(|&v| v >= 0.0));
            }
        }
    }
}

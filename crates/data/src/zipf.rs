//! Zipf-distributed sampling.
//!
//! Word frequencies and user activity in social media follow heavy-tailed
//! (approximately Zipfian) distributions; this sampler backs both.

use rand::Rng;
use rand::RngExt;

/// A Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank = r) ∝ 1/(r+1)^s`. Sampling is O(log n) via an inverse-CDF
/// binary search on a precomputed table.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution. Panics for `n == 0` or non-finite `s`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            s.is_finite() && s >= 0.0,
            "Zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the distribution has a single rank.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.random_range(0.0..1.0);
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of rank `r`.
    pub fn pmf(&self, r: usize) -> f64 {
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgs_linalg::seeded_rng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(50, 1.1);
        let total: f64 = (0..50).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lower_ranks_more_likely() {
        let z = Zipf::new(10, 1.0);
        for r in 1..10 {
            assert!(z.pmf(r - 1) > z.pmf(r));
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for r in 0..4 {
            assert!((z.pmf(r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_in_range_and_head_heavy() {
        let z = Zipf::new(100, 1.2);
        let mut rng = seeded_rng(7);
        let mut head = 0;
        const N: usize = 10_000;
        for _ in 0..N {
            let r = z.sample(&mut rng);
            assert!(r < 100);
            if r < 10 {
                head += 1;
            }
        }
        // With s=1.2 the top-10 ranks carry well over half the mass.
        assert!(head > N / 2, "head draws: {head}");
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(20, 1.0);
        let a: Vec<usize> = {
            let mut rng = seeded_rng(42);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = seeded_rng(42);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}

//! Generator configuration.

/// Sizes of the four word pools making up the synthetic vocabulary.
#[derive(Debug, Clone, Copy)]
pub struct PoolSizes {
    /// Positive-stance words (e.g. `#yeson37`, `labelgmo`).
    pub positive: usize,
    /// Negative-stance words (e.g. `#noprop37`, `corn`).
    pub negative: usize,
    /// Topic words shared by all stances (e.g. `gmo`, `ballot`).
    pub topic: usize,
    /// Generic chatter words with no topical or sentiment signal.
    pub noise: usize,
}

/// A Gaussian bump added to the daily tweet-volume curve (models the
/// Sep 1 surge and the Nov 6 election spike of Figs. 11–12).
#[derive(Debug, Clone, Copy)]
pub struct VolumeBurst {
    /// Center day of the burst.
    pub day: u32,
    /// Peak multiplier relative to the base volume.
    pub amplitude: f64,
    /// Gaussian width in days.
    pub width: f64,
}

/// Full configuration of the synthetic corpus generator.
///
/// The defaults produce a small, fast corpus; the presets in
/// [`crate::presets`] mirror the paper's Prop 30 / Prop 37 datasets.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Topic tag recorded on the corpus.
    pub topic: String,
    /// Master RNG seed; every derived random choice is deterministic.
    pub seed: u64,
    /// Number of users.
    pub num_users: usize,
    /// Total number of tweets over the whole period.
    pub total_tweets: usize,
    /// Number of days covered.
    pub num_days: u32,
    /// User stance priors `[pos, neg, neu]`; must sum to ~1.
    pub class_priors: [f64; 3],
    /// Fraction of users whose stance flips once (Observation 2 keeps
    /// this small).
    pub flip_fraction: f64,
    /// Zipf exponent of the user-activity distribution (long tail:
    /// larger ⇒ more super-active users).
    pub user_activity_exponent: f64,
    /// Inclusive token-count range of a tweet.
    pub tweet_len: (usize, usize),
    /// Probability a token is drawn from the tweet's stance pool.
    pub class_token_prob: f64,
    /// Probability a token is drawn from the shared topic pool.
    pub topic_token_prob: f64,
    /// When drawing a stance token, probability it comes from the
    /// *opposite* stance pool instead (sarcasm, quoting, rebuttals —
    /// keeps word-based classifiers honest: "Monsanto is pure evil" is a
    /// positive-stance tweet full of negative words).
    pub stance_confusion: f64,
    /// Probability a tweet's sentiment deviates from its author's current
    /// stance (tweet-level noise; what makes naive aggregation fail).
    pub tweet_noise: f64,
    /// Expected re-tweets per tweet (Poisson).
    pub retweets_per_tweet: f64,
    /// Probability a re-tweeter shares the tweet author's stance
    /// (Smith et al.: re-tweet relations are strongly homophilous).
    pub retweet_homophily: f64,
    /// Fraction of stance-pool words included in the auto-built lexicon.
    pub lexicon_coverage: f64,
    /// Fraction of lexicon entries assigned the *wrong* class
    /// (auto-built lexicons are noisy).
    pub lexicon_error: f64,
    /// Fraction of pos/neg tweets carrying a visible label.
    pub labeled_tweet_fraction: f64,
    /// Fraction of users carrying a visible label.
    pub labeled_user_fraction: f64,
    /// Word-pool sizes.
    pub pools: PoolSizes,
    /// Zipf exponent of within-pool word frequencies.
    pub word_zipf_exponent: f64,
    /// Bursts on the daily volume curve.
    pub bursts: Vec<VolumeBurst>,
    /// Per-class activity multiplier `[pos, neg, neu]`. Real campaigns
    /// have activist asymmetry — Prop 37's labeled tweets are 93% positive
    /// while its labeled users are only 83% positive, i.e. positive users
    /// tweet disproportionately more.
    pub class_activity_boost: [f64; 3],
    /// Fraction of users with a partial activity window (drives the
    /// new/disappeared user dynamics of the online setting).
    pub churn: f64,
    /// Strength of vocabulary drift over time in `[0, 1]`
    /// (0 = static vocabulary; larger values sharpen each word's
    /// temporal popularity envelope — Observation 1 / Fig. 4).
    pub vocabulary_drift: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            topic: "demo".into(),
            seed: 42,
            num_users: 60,
            total_tweets: 600,
            num_days: 20,
            class_priors: [0.45, 0.3, 0.25],
            flip_fraction: 0.05,
            user_activity_exponent: 0.7,
            tweet_len: (6, 14),
            class_token_prob: 0.35,
            topic_token_prob: 0.35,
            stance_confusion: 0.10,
            tweet_noise: 0.12,
            retweets_per_tweet: 0.6,
            retweet_homophily: 0.85,
            lexicon_coverage: 0.5,
            lexicon_error: 0.05,
            labeled_tweet_fraction: 0.9,
            labeled_user_fraction: 0.4,
            pools: PoolSizes {
                positive: 60,
                negative: 60,
                topic: 80,
                noise: 150,
            },
            word_zipf_exponent: 1.05,
            bursts: vec![VolumeBurst {
                day: 12,
                amplitude: 2.0,
                width: 2.0,
            }],
            class_activity_boost: [1.0, 1.0, 1.0],
            churn: 0.3,
            vocabulary_drift: 0.5,
        }
    }
}

impl GeneratorConfig {
    /// Validates invariants, panicking with a descriptive message on the
    /// first violation. Called by the generator before doing any work.
    pub fn validate(&self) {
        assert!(self.num_users > 1, "need at least two users");
        assert!(self.total_tweets > 0, "need at least one tweet");
        assert!(self.num_days > 0, "need at least one day");
        let prior_sum: f64 = self.class_priors.iter().sum();
        assert!(
            (prior_sum - 1.0).abs() < 1e-6,
            "class priors must sum to 1, got {prior_sum}"
        );
        assert!(
            self.tweet_len.0 >= 1 && self.tweet_len.0 <= self.tweet_len.1,
            "bad tweet_len"
        );
        for (name, v) in [
            ("flip_fraction", self.flip_fraction),
            ("class_token_prob", self.class_token_prob),
            ("topic_token_prob", self.topic_token_prob),
            ("stance_confusion", self.stance_confusion),
            ("tweet_noise", self.tweet_noise),
            ("retweet_homophily", self.retweet_homophily),
            ("lexicon_coverage", self.lexicon_coverage),
            ("lexicon_error", self.lexicon_error),
            ("labeled_tweet_fraction", self.labeled_tweet_fraction),
            ("labeled_user_fraction", self.labeled_user_fraction),
            ("churn", self.churn),
            ("vocabulary_drift", self.vocabulary_drift),
        ] {
            assert!(
                (0.0..=1.0).contains(&v),
                "{name} must be in [0, 1], got {v}"
            );
        }
        assert!(
            self.class_token_prob + self.topic_token_prob <= 1.0,
            "class_token_prob + topic_token_prob must be <= 1"
        );
        for (i, &b) in self.class_activity_boost.iter().enumerate() {
            assert!(
                b > 0.0 && b.is_finite(),
                "class_activity_boost[{i}] must be positive"
            );
        }
        assert!(
            self.pools.positive > 0 && self.pools.negative > 0,
            "stance pools required"
        );
        assert!(
            self.pools.topic > 0 && self.pools.noise > 0,
            "topic/noise pools required"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        GeneratorConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "class priors must sum to 1")]
    fn bad_priors_rejected() {
        let cfg = GeneratorConfig {
            class_priors: [0.5, 0.5, 0.5],
            ..Default::default()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "tweet_noise must be in [0, 1]")]
    fn bad_noise_rejected() {
        let cfg = GeneratorConfig {
            tweet_noise: 1.5,
            ..Default::default()
        };
        cfg.validate();
    }
}

//! Elastic user-range sharding of tripartite problems.
//!
//! The paper's co-clustering couples users to tweets and tweets to words,
//! but the user/tweet dimensions dominate (`n ≈ 40k` tweets vs `k = 10`
//! clusters). A [`PartitionMap`] splits the heavy axes into `S` disjoint
//! contiguous user-id ranges — every user, and all the tweets they
//! author, land in exactly one shard — while the *word* axis stays global
//! over the frozen vocabulary, so per-shard factor matrices keep a shared
//! feature space and the small cluster-level factors (`Sf`, `Hp`, `Hu`)
//! remain mergeable across shards.
//!
//! Unlike the original stride-derived [`UserRangePartitioner`] (kept for
//! v1 checkpoint compatibility — [`UserRangePartitioner::to_map`] lifts
//! it into the elastic world), a [`PartitionMap`] carries an **explicit
//! sorted boundary list**, so shard ranges can be reshaped at runtime: a
//! [`RepartitionPlan`] describes split / merge / boundary-move deltas,
//! [`RepartitionPlan::apply`] derives the successor map, and
//! [`PartitionMap::diff`] lists exactly which user ranges change owner —
//! the contract the engine-level live rebalance is built on.
//!
//! Cross-shard re-tweets (user in shard A re-tweeting a document authored
//! in shard B) have two routing modes:
//!
//! * **drop mode** ([`route_docs`]) — the PR-3 behaviour: the edge cannot
//!   be represented once the user axis is partitioned, so it is counted
//!   and dropped;
//! * **ghost mode** ([`route_docs_ghost`]) — the edge follows its
//!   document, and the re-tweeting user materializes as a *ghost row* on
//!   the document's shard: the local `Gu` keeps the edge, the ghost row
//!   carries the remote user's current sentiment factor (broadcast by the
//!   solvers), and the row is excluded from that shard's ownership and
//!   history weighting. No edge is ever dropped.
//!
//! With `shards = 1` both modes are the identity, which is the basis of
//! the stack-wide "one shard is bit-identical to the unsharded path"
//! guarantee.

use tgs_linalg::DenseMatrix;
use tgs_text::{PipelineConfig, Vocabulary};

use crate::matrices::{assemble_snapshot_matrices, SnapshotMatrices};
use crate::model::Corpus;

/// Deterministic contiguous-range partitioner over global user ids.
///
/// The frozen stride-derived layout of PR 3, kept because v1 multi-shard
/// checkpoints validate against its `(shards, universe, stride)` triple.
/// New code should route through [`PartitionMap`]
/// (via [`UserRangePartitioner::to_map`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserRangePartitioner {
    shards: usize,
    universe: usize,
    stride: usize,
}

impl UserRangePartitioner {
    /// A partitioner splitting `0..universe` user ids into `shards`
    /// near-equal contiguous ranges. Ids at or beyond `universe` (sparse
    /// ids first seen after fitting) map to the last shard, so
    /// [`UserRangePartitioner::shard_of`] is total.
    pub fn new(universe: usize, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        let stride = universe.max(1).div_ceil(shards).max(1);
        Self {
            shards,
            universe,
            stride,
        }
    }

    /// Number of shards `S`.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The user-id universe the ranges were derived from.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Users per shard range (last shard may be short).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The shard owning `user`. Total: ids beyond the universe land in
    /// the last shard.
    pub fn shard_of(&self, user: usize) -> usize {
        (user / self.stride).min(self.shards - 1)
    }

    /// The `[start, end)` user-id range of `shard` within the universe
    /// (the last shard additionally owns every id `>= universe`).
    pub fn range(&self, shard: usize) -> (usize, usize) {
        assert!(shard < self.shards, "shard {shard} out of {}", self.shards);
        let start = shard * self.stride;
        let end = if shard + 1 == self.shards {
            self.universe.max(start)
        } else {
            ((shard + 1) * self.stride).min(self.universe)
        };
        (start, end)
    }

    /// FNV-1a digest of the routing parameters. Two partitioners with
    /// equal fingerprints make identical routing decisions; v1
    /// multi-shard checkpoints embed it so a restore cannot silently
    /// re-route users.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for word in [self.shards as u64, self.universe as u64, self.stride as u64] {
            for byte in word.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// The equivalent explicit-boundary [`PartitionMap`]: identical
    /// routing decisions for every user id (tested below).
    pub fn to_map(&self) -> PartitionMap {
        let starts = (0..self.shards).map(|s| s * self.stride).collect();
        PartitionMap::new(self.universe, starts).expect("stride layout is always well-formed")
    }
}

/// A malformed [`PartitionMap`] or inapplicable [`RepartitionPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionError(pub String);

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for PartitionError {}

fn err<T>(message: impl Into<String>) -> Result<T, PartitionError> {
    Err(PartitionError(message.into()))
}

/// An explicit contiguous user-range partition: shard `s` owns user ids
/// `[starts[s], starts[s + 1])`, the last shard additionally owns every
/// id `>= universe` (sparse ids first seen after fitting), so
/// [`PartitionMap::shard_of`] is total.
///
/// The boundary list is the *whole* routing state — two maps with equal
/// [`PartitionMap::fingerprint`]s make identical routing decisions — and
/// it is what the v2 multi-shard checkpoint serializes verbatim.
///
/// A map additionally carries a **topology generation** counter: every
/// [`RepartitionPlan::apply`] bumps it by one, and the distributed fleet
/// stamps it into every wire frame so a stale handle routing through an
/// outdated map is rejected with `StaleTopology` instead of silently
/// misrouting. The generation is an *ephemeral routing epoch*, not
/// routing state: it is excluded from equality, from the fingerprint,
/// and from checkpoints (a restored fleet starts a fresh epoch).
#[derive(Debug, Clone, Eq)]
pub struct PartitionMap {
    universe: usize,
    /// Sorted, strictly increasing shard start ids; `starts[0] == 0`.
    starts: Vec<usize>,
    /// Topology epoch; bumped by every applied repartition plan.
    generation: u64,
}

impl PartialEq for PartitionMap {
    /// Routing-state equality: two maps are equal when they make the same
    /// routing decisions. The [`PartitionMap::generation`] epoch is
    /// deliberately ignored — a rebalanced-then-reverted fleet routes
    /// identically to one that never rebalanced.
    fn eq(&self, other: &Self) -> bool {
        self.universe == other.universe && self.starts == other.starts
    }
}

impl PartitionMap {
    /// A map from an explicit start list. `starts` must begin at 0 and be
    /// strictly increasing; starts at or beyond the universe are legal
    /// (they describe empty shards, e.g. a stride layout over a tiny
    /// universe).
    pub fn new(universe: usize, starts: Vec<usize>) -> Result<Self, PartitionError> {
        if starts.first() != Some(&0) {
            return err("partition map must start at user 0");
        }
        if starts.windows(2).any(|w| w[0] >= w[1]) {
            return err(format!(
                "partition starts must be strictly increasing, got {starts:?}"
            ));
        }
        Ok(Self {
            universe,
            starts,
            generation: 0,
        })
    }

    /// The stride layout of [`UserRangePartitioner::new`] as an explicit
    /// map — `S` near-equal ranges over `0..universe`.
    pub fn even(universe: usize, shards: usize) -> Self {
        UserRangePartitioner::new(universe, shards).to_map()
    }

    /// Number of shards `S`.
    pub fn shards(&self) -> usize {
        self.starts.len()
    }

    /// The user-id universe the map partitions.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// The explicit shard start ids (`starts[0] == 0`, strictly
    /// increasing).
    pub fn starts(&self) -> &[usize] {
        &self.starts
    }

    /// The topology generation (routing epoch) of this map. Freshly
    /// constructed maps start at 0; every [`RepartitionPlan::apply`]
    /// returns a successor with the epoch bumped by one. Excluded from
    /// equality, [`PartitionMap::fingerprint`], and checkpoints.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The same routing state re-stamped with an explicit generation
    /// (used when adopting a topology announced by a remote router).
    pub fn with_generation(mut self, generation: u64) -> Self {
        self.generation = generation;
        self
    }

    /// The shard owning `user`. Total: ids beyond every boundary land in
    /// the last shard.
    pub fn shard_of(&self, user: usize) -> usize {
        self.starts.partition_point(|&start| start <= user) - 1
    }

    /// The `[start, end)` user-id range of `shard` within the universe
    /// (the last shard additionally owns every id `>= universe`).
    pub fn range(&self, shard: usize) -> (usize, usize) {
        assert!(
            shard < self.shards(),
            "shard {shard} out of {}",
            self.shards()
        );
        let start = self.starts[shard];
        let end = match self.starts.get(shard + 1) {
            Some(&next) => next.min(self.universe),
            None => self.universe.max(start),
        };
        (start, end)
    }

    /// FNV-1a digest of the routing state (universe + every boundary).
    /// Embedded in the v2 multi-shard checkpoint so a restore cannot
    /// silently re-route users.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let words = [self.universe as u64, self.starts.len() as u64]
            .into_iter()
            .chain(self.starts.iter().map(|&s| s as u64));
        for word in words {
            for byte in word.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// The user ranges whose owner differs between `self` and `next`,
    /// in ascending order. The final range is open-ended
    /// (`hi == usize::MAX`) when ownership of the ids at and beyond the
    /// last boundary changes — sparse ids beyond the universe follow the
    /// last shard and must migrate with it.
    pub fn diff(&self, next: &PartitionMap) -> Vec<MigrationRange> {
        let mut cuts: Vec<usize> = self
            .starts
            .iter()
            .chain(next.starts.iter())
            .copied()
            .collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut out = Vec::new();
        for (i, &lo) in cuts.iter().enumerate() {
            let hi = cuts.get(i + 1).copied().unwrap_or(usize::MAX);
            let (from, to) = (self.shard_of(lo), next.shard_of(lo));
            if from != to {
                // Coalesce with the previous range when it is contiguous
                // and moves between the same pair of shards.
                if let Some(prev) = out.last_mut() {
                    let prev: &mut MigrationRange = prev;
                    if prev.hi == lo && prev.from == from && prev.to == to {
                        prev.hi = hi;
                        continue;
                    }
                }
                out.push(MigrationRange { lo, hi, from, to });
            }
        }
        out
    }
}

/// One contiguous user range changing owner in a repartition:
/// users `lo..hi` move from shard `from` (index in the old map) to shard
/// `to` (index in the new map).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationRange {
    /// First migrating user id (inclusive).
    pub lo: usize,
    /// One past the last migrating user id (`usize::MAX` = open-ended).
    pub hi: usize,
    /// Owning shard index in the *old* map.
    pub from: usize,
    /// Owning shard index in the *new* map.
    pub to: usize,
}

/// One topology delta of a [`RepartitionPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepartitionOp {
    /// Split `shard` in two at user id `at` (strictly inside its range):
    /// the left half keeps the shard index, the right half becomes a new
    /// shard at `shard + 1`, later shards shift up.
    Split {
        /// The shard to split.
        shard: usize,
        /// The first user id of the new right-hand shard.
        at: usize,
    },
    /// Merge shard `left` with shard `left + 1` (the boundary between
    /// them disappears; later shards shift down).
    Merge {
        /// The left-hand shard of the merged pair.
        left: usize,
    },
    /// Move the boundary between shards `boundary - 1` and `boundary`
    /// to user id `to` (strictly between the surrounding boundaries).
    MoveBoundary {
        /// Index of the boundary (`1..shards`): the start of shard
        /// `boundary`.
        boundary: usize,
        /// The new start id of shard `boundary`.
        to: usize,
    },
}

/// An ordered list of topology deltas taking one [`PartitionMap`] to a
/// successor. Applying a plan never changes the universe — only which
/// shard owns which range — and [`PartitionMap::diff`] of the two maps
/// lists exactly the user ranges that must migrate. The successor's
/// [`PartitionMap::generation`] is the input's plus one.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RepartitionPlan {
    /// The deltas, applied in order.
    pub ops: Vec<RepartitionOp>,
}

impl RepartitionPlan {
    /// A plan with a single op.
    pub fn single(op: RepartitionOp) -> Self {
        Self { ops: vec![op] }
    }

    /// Applies every delta in order, validating each against the map it
    /// operates on. The input map is untouched on error.
    pub fn apply(&self, map: &PartitionMap) -> Result<PartitionMap, PartitionError> {
        let mut starts = map.starts.clone();
        let universe = map.universe;
        for op in &self.ops {
            match *op {
                RepartitionOp::Split { shard, at } => {
                    if shard >= starts.len() {
                        return err(format!("split: shard {shard} out of {}", starts.len()));
                    }
                    let lo = starts[shard];
                    let hi = starts.get(shard + 1).copied().unwrap_or(universe);
                    if at <= lo || at >= hi {
                        return err(format!(
                            "split: boundary {at} must lie strictly inside shard {shard}'s \
                             range [{lo}, {hi})"
                        ));
                    }
                    starts.insert(shard + 1, at);
                }
                RepartitionOp::Merge { left } => {
                    if left + 1 >= starts.len() {
                        return err(format!(
                            "merge: shard {left} has no right-hand neighbour (shards = {})",
                            starts.len()
                        ));
                    }
                    starts.remove(left + 1);
                }
                RepartitionOp::MoveBoundary { boundary, to } => {
                    if boundary == 0 || boundary >= starts.len() {
                        return err(format!(
                            "move: boundary {boundary} out of 1..{}",
                            starts.len()
                        ));
                    }
                    let lo = starts[boundary - 1];
                    let hi = starts.get(boundary + 1).copied().unwrap_or(universe);
                    if to <= lo || to >= hi {
                        return err(format!(
                            "move: boundary {boundary} must land strictly inside \
                             ({lo}, {hi}), got {to}"
                        ));
                    }
                    starts[boundary] = to;
                }
            }
        }
        PartitionMap::new(universe, starts).map(|next| next.with_generation(map.generation + 1))
    }
}

/// The routing decision for one document list: which shard every document
/// goes to, per-shard document order, per-shard re-tweets remapped to
/// shard-local document indices, and (in ghost mode) the remote users
/// materialized as ghost rows.
#[derive(Debug, Clone)]
pub struct ShardRouting {
    /// Shard of each input document (index-parallel to the input list).
    pub doc_shard: Vec<usize>,
    /// Per shard: global indices of its documents, in input order.
    pub shard_docs: Vec<Vec<usize>>,
    /// Per shard: `(global user, shard-local doc index)` re-tweets kept
    /// on the shard (in ghost mode this includes cross-shard re-tweets,
    /// whose users appear in [`ShardRouting::shard_ghosts`]).
    pub shard_retweets: Vec<Vec<(usize, usize)>>,
    /// Per shard: sorted, deduplicated global ids of remote users
    /// materialized as ghost rows (empty in drop mode).
    pub shard_ghosts: Vec<Vec<usize>>,
    /// Cross-shard re-tweets that had to be dropped (drop mode only).
    pub dropped_retweets: usize,
    /// Cross-shard re-tweets kept as ghost edges (ghost mode only).
    pub ghost_edges: usize,
}

fn route_docs_impl(
    map: &PartitionMap,
    doc_authors: &[usize],
    retweets: &[(usize, usize)],
    ghosts: bool,
) -> ShardRouting {
    let shards = map.shards();
    let mut doc_shard = Vec::with_capacity(doc_authors.len());
    let mut doc_local = Vec::with_capacity(doc_authors.len());
    let mut shard_docs = vec![Vec::new(); shards];
    for (doc, &author) in doc_authors.iter().enumerate() {
        let s = map.shard_of(author);
        doc_shard.push(s);
        doc_local.push(shard_docs[s].len());
        shard_docs[s].push(doc);
    }
    let mut shard_retweets = vec![Vec::new(); shards];
    let mut shard_ghosts = vec![Vec::new(); shards];
    let mut dropped_retweets = 0;
    let mut ghost_edges = 0;
    for &(user, doc) in retweets {
        assert!(
            doc < doc_authors.len(),
            "retweet references document {doc} but only {} exist",
            doc_authors.len()
        );
        let s = doc_shard[doc];
        if map.shard_of(user) == s {
            shard_retweets[s].push((user, doc_local[doc]));
        } else if ghosts {
            shard_retweets[s].push((user, doc_local[doc]));
            shard_ghosts[s].push(user);
            ghost_edges += 1;
        } else {
            dropped_retweets += 1;
        }
    }
    for ghosts in &mut shard_ghosts {
        ghosts.sort_unstable();
        ghosts.dedup();
    }
    ShardRouting {
        doc_shard,
        shard_docs,
        shard_retweets,
        shard_ghosts,
        dropped_retweets,
        ghost_edges,
    }
}

/// Routes documents (by author) and re-tweets through the partition map,
/// dropping cross-shard re-tweets (the PR-3 behaviour).
///
/// * `doc_authors[i]` — global user id authoring document `i`;
/// * `retweets` — `(global user, global doc index)` events.
///
/// Each document follows its author's shard; a re-tweet follows its
/// *document* and is kept only when the re-tweeting user lives in the
/// same shard (cross-shard interactions are counted in
/// [`ShardRouting::dropped_retweets`]). With one shard, routing is the
/// identity and nothing is dropped.
///
/// # Panics
///
/// Panics when a re-tweet references a document index `>=
/// doc_authors.len()` — like the rest of this crate's assembly surface,
/// routing treats its inputs as pre-validated. Callers holding untrusted
/// snapshots must check the references first and surface a typed error
/// (the `tgs-engine` router does exactly that before calling in).
pub fn route_docs(
    map: &PartitionMap,
    doc_authors: &[usize],
    retweets: &[(usize, usize)],
) -> ShardRouting {
    route_docs_impl(map, doc_authors, retweets, false)
}

/// Like [`route_docs`], but cross-shard re-tweets are *kept* on their
/// document's shard and the remote user is recorded as a ghost row
/// ([`ShardRouting::shard_ghosts`]). No edge is ever dropped
/// (`dropped_retweets == 0`); the kept cross-shard edges are counted in
/// [`ShardRouting::ghost_edges`]. Same panic contract as [`route_docs`].
pub fn route_docs_ghost(
    map: &PartitionMap,
    doc_authors: &[usize],
    retweets: &[(usize, usize)],
) -> ShardRouting {
    route_docs_impl(map, doc_authors, retweets, true)
}

/// One shard's slice of an offline problem: its tweets, its users, and
/// the tripartite matrices over the *global* feature axis.
#[derive(Debug, Clone)]
pub struct ShardSlice {
    /// The shard index.
    pub shard: usize,
    /// Global tweet ids, in row order of `xp`.
    pub tweet_ids: Vec<usize>,
    /// Global user ids, in row order of `xu` / `xr` (includes ghost
    /// users when the problem was built in ghost mode).
    pub user_ids: Vec<usize>,
    /// Sorted local row indices (into `user_ids`) that are ghost rows:
    /// remote users materialized for a cross-shard re-tweet edge. Empty
    /// in drop mode.
    pub ghost_rows: Vec<usize>,
    /// The shard's matrices (`xp`, `xu`, `xr`, `graph`).
    pub matrices: SnapshotMatrices,
}

/// A ghost row's link back to its owning shard: shard `shard`'s local
/// user row `row` mirrors shard `owner_shard`'s local user row
/// `owner_row` (the solvers broadcast the owner's `Su` row into the
/// ghost row each coupling round).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GhostLink {
    /// The shard holding the ghost row.
    pub shard: usize,
    /// Local user row of the ghost on `shard`.
    pub row: usize,
    /// The shard that owns the user.
    pub owner_shard: usize,
    /// The user's local row on the owning shard.
    pub owner_row: usize,
}

/// A whole corpus partitioned into shard-local problem slices sharing one
/// frozen vocabulary and lexicon prior.
#[derive(Debug, Clone)]
pub struct ShardedProblem {
    /// The routing function used (checkpointable via its fingerprint).
    pub map: PartitionMap,
    /// The global vocabulary (shared feature axis of every shard).
    pub vocab: Vocabulary,
    /// The `l × k` lexicon prior, shared by every shard.
    pub sf0: DenseMatrix,
    /// Number of sentiment classes.
    pub k: usize,
    /// One slice per shard (possibly with zero tweets for tiny corpora).
    pub shards: Vec<ShardSlice>,
    /// Ghost-row links (ghost mode only): how each ghost row mirrors its
    /// owner. Ghosts whose owner has no presence on their home shard
    /// (users who only ever re-tweet, cross-shard) carry no link.
    pub ghosts: Vec<GhostLink>,
    /// Cross-shard re-tweets dropped during routing (drop mode).
    pub dropped_retweets: usize,
    /// Cross-shard re-tweets kept as ghost edges (ghost mode).
    pub ghost_edges: usize,
}

fn build_offline_sharded_impl(
    corpus: &Corpus,
    k: usize,
    map: PartitionMap,
    config: &PipelineConfig,
    ghosts: bool,
) -> ShardedProblem {
    let vocab = Vocabulary::build(
        corpus
            .tweets
            .iter()
            .map(|t| t.tokens.iter().map(String::as_str)),
        &config.vocab,
    );
    let sf0 = corpus
        .lexicon
        .prior_matrix(&vocab, k, config.lexicon_confidence);
    let shards = map.shards();
    let doc_authors: Vec<usize> = corpus.tweets.iter().map(|t| t.author).collect();
    let retweets: Vec<(usize, usize)> = corpus.retweets.iter().map(|r| (r.user, r.tweet)).collect();
    let routing = route_docs_impl(&map, &doc_authors, &retweets, ghosts);

    let mut slices = Vec::with_capacity(shards);
    for shard in 0..shards {
        let tweet_ids = routing.shard_docs[shard].clone();
        // Users present in the shard: authors of its tweets plus its kept
        // re-tweeters (same-shard, plus ghosts in ghost mode), in
        // ascending global-id order.
        let mut user_ids: Vec<usize> = tweet_ids
            .iter()
            .map(|&t| doc_authors[t])
            .chain(routing.shard_retweets[shard].iter().map(|&(u, _)| u))
            .collect();
        user_ids.sort_unstable();
        user_ids.dedup();
        let ghost_rows: Vec<usize> = routing.shard_ghosts[shard]
            .iter()
            .map(|g| user_ids.binary_search(g).expect("ghost user has a row"))
            .collect();
        let user_local: std::collections::HashMap<usize, usize> =
            user_ids.iter().enumerate().map(|(i, &u)| (u, i)).collect();
        let encoded: Vec<Vec<usize>> = tweet_ids
            .iter()
            .map(|&t| vocab.encode(corpus.tweets[t].tokens.iter().map(String::as_str)))
            .collect();
        let doc_user_local: Vec<usize> = tweet_ids
            .iter()
            .map(|&t| user_local[&doc_authors[t]])
            .collect();
        let retweet_pairs: Vec<(usize, usize)> = routing.shard_retweets[shard]
            .iter()
            .map(|&(u, local_doc)| (user_local[&u], local_doc))
            .collect();
        let matrices = assemble_snapshot_matrices(
            &vocab,
            &encoded,
            &doc_user_local,
            user_ids.len(),
            &retweet_pairs,
            config.weighting,
        );
        slices.push(ShardSlice {
            shard,
            tweet_ids,
            user_ids,
            ghost_rows,
            matrices,
        });
    }

    // Ghost links: each ghost row mirrors the owner's local row on the
    // user's home shard (present iff the user has any activity there).
    let mut ghost_links = Vec::new();
    for slice in &slices {
        for &row in &slice.ghost_rows {
            let user = slice.user_ids[row];
            let owner_shard = map.shard_of(user);
            if let Ok(owner_row) = slices[owner_shard].user_ids.binary_search(&user) {
                ghost_links.push(GhostLink {
                    shard: slice.shard,
                    row,
                    owner_shard,
                    owner_row,
                });
            }
        }
    }

    ShardedProblem {
        map,
        vocab,
        sf0,
        k,
        shards: slices,
        ghosts: ghost_links,
        dropped_retweets: routing.dropped_retweets,
        ghost_edges: routing.ghost_edges,
    }
}

/// Splits a corpus into `shards` disjoint shard-local offline problems:
/// the vocabulary and lexicon prior are fitted globally (frozen feature
/// axis), then each shard's matrices are assembled through the same
/// [`assemble_snapshot_matrices`] pipeline the unsharded paths use.
///
/// Every user and all their tweets land in exactly one shard;
/// concatenating the shard slices recovers the unsharded assembly up to
/// row order (exactly for count/binary weighting — TF-IDF weights are
/// fitted per document set, so they are shard-dependent by construction —
/// and minus cross-shard re-tweet edges, which are counted in
/// [`ShardedProblem::dropped_retweets`]). Use
/// [`build_offline_sharded_ghost`] to keep those edges instead.
pub fn build_offline_sharded(
    corpus: &Corpus,
    k: usize,
    shards: usize,
    config: &PipelineConfig,
) -> ShardedProblem {
    build_offline_sharded_impl(
        corpus,
        k,
        PartitionMap::even(corpus.num_users(), shards),
        config,
        false,
    )
}

/// Like [`build_offline_sharded`], but over an explicit [`PartitionMap`]
/// and in ghost mode: cross-shard re-tweet edges stay on their document's
/// shard with the remote user materialized as a ghost row
/// ([`ShardSlice::ghost_rows`], linked via [`ShardedProblem::ghosts`]).
/// No edge is dropped.
pub fn build_offline_sharded_ghost(
    corpus: &Corpus,
    k: usize,
    map: PartitionMap,
    config: &PipelineConfig,
) -> ShardedProblem {
    build_offline_sharded_impl(corpus, k, map, config, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GeneratorConfig;
    use crate::generator::generate;
    use tgs_text::Weighting;

    fn corpus() -> Corpus {
        generate(&GeneratorConfig {
            num_users: 30,
            total_tweets: 200,
            num_days: 8,
            ..Default::default()
        })
    }

    fn pipeline() -> PipelineConfig {
        let mut cfg = PipelineConfig::paper_defaults();
        cfg.vocab.min_count = 1;
        cfg.weighting = Weighting::Counts;
        cfg
    }

    #[test]
    fn ranges_cover_universe_disjointly() {
        for (universe, shards) in [(10, 3), (7, 7), (100, 8), (5, 1), (3, 8)] {
            let p = UserRangePartitioner::new(universe, shards);
            let mut seen = vec![0usize; universe];
            for s in 0..shards {
                let (lo, hi) = p.range(s);
                for (u, count) in seen.iter_mut().enumerate().take(hi).skip(lo) {
                    *count += 1;
                    assert_eq!(p.shard_of(u), s, "user {u} in range of shard {s}");
                }
            }
            assert!(
                seen.iter().all(|&c| c == 1),
                "{universe}/{shards}: {seen:?}"
            );
            // ids beyond the universe are owned by the last shard
            assert_eq!(p.shard_of(universe + 1000), shards - 1);
        }
    }

    #[test]
    fn partition_map_matches_stride_partitioner_everywhere() {
        for (universe, shards) in [(10, 3), (7, 7), (100, 8), (5, 1), (3, 8), (1, 4)] {
            let p = UserRangePartitioner::new(universe, shards);
            let m = p.to_map();
            assert_eq!(m.shards(), shards);
            assert_eq!(m.universe(), universe);
            for u in 0..universe + 20 {
                assert_eq!(m.shard_of(u), p.shard_of(u), "{universe}/{shards} user {u}");
            }
            for s in 0..shards {
                assert_eq!(m.range(s), p.range(s), "{universe}/{shards} shard {s}");
            }
        }
    }

    #[test]
    fn partition_map_rejects_malformed_starts() {
        assert!(PartitionMap::new(10, vec![]).is_err());
        assert!(
            PartitionMap::new(10, vec![1, 5]).is_err(),
            "must start at 0"
        );
        assert!(PartitionMap::new(10, vec![0, 5, 5]).is_err(), "not strict");
        assert!(PartitionMap::new(10, vec![0, 7, 3]).is_err(), "not sorted");
        assert!(PartitionMap::new(10, vec![0, 3, 7]).is_ok());
    }

    #[test]
    fn fingerprint_distinguishes_parameters() {
        let a = UserRangePartitioner::new(100, 4);
        assert_eq!(
            a.fingerprint(),
            UserRangePartitioner::new(100, 4).fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            UserRangePartitioner::new(100, 2).fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            UserRangePartitioner::new(99, 4).fingerprint()
        );
        let m = PartitionMap::new(100, vec![0, 25, 50]).unwrap();
        assert_eq!(
            m.fingerprint(),
            PartitionMap::new(100, vec![0, 25, 50])
                .unwrap()
                .fingerprint()
        );
        assert_ne!(
            m.fingerprint(),
            PartitionMap::new(100, vec![0, 25, 51])
                .unwrap()
                .fingerprint()
        );
        assert_ne!(
            m.fingerprint(),
            PartitionMap::new(99, vec![0, 25, 50])
                .unwrap()
                .fingerprint()
        );
    }

    #[test]
    fn plan_split_merge_move_roundtrip() {
        let m = PartitionMap::even(100, 2); // starts [0, 50]
        let split = RepartitionPlan::single(RepartitionOp::Split { shard: 1, at: 75 })
            .apply(&m)
            .unwrap();
        assert_eq!(split.starts(), &[0, 50, 75]);
        assert_eq!(split.shard_of(60), 1);
        assert_eq!(split.shard_of(80), 2);
        let moved = RepartitionPlan::single(RepartitionOp::MoveBoundary {
            boundary: 1,
            to: 40,
        })
        .apply(&split)
        .unwrap();
        assert_eq!(moved.starts(), &[0, 40, 75]);
        let merged = RepartitionPlan::single(RepartitionOp::Merge { left: 1 })
            .apply(&moved)
            .unwrap();
        assert_eq!(merged.starts(), &[0, 40]);
        // Invalid deltas are rejected without touching the input.
        assert!(
            RepartitionPlan::single(RepartitionOp::Split { shard: 0, at: 0 })
                .apply(&m)
                .is_err()
        );
        assert!(
            RepartitionPlan::single(RepartitionOp::Split { shard: 1, at: 50 })
                .apply(&m)
                .is_err()
        );
        assert!(RepartitionPlan::single(RepartitionOp::Merge { left: 1 })
            .apply(&m)
            .is_err());
        assert!(
            RepartitionPlan::single(RepartitionOp::MoveBoundary { boundary: 1, to: 0 })
                .apply(&m)
                .is_err()
        );
    }

    #[test]
    fn generation_bumps_on_apply_but_never_affects_equality() {
        let m = PartitionMap::even(100, 2);
        assert_eq!(m.generation(), 0);
        let split = RepartitionPlan::single(RepartitionOp::Split { shard: 1, at: 75 })
            .apply(&m)
            .unwrap();
        assert_eq!(split.generation(), 1);
        let merged = RepartitionPlan::single(RepartitionOp::Merge { left: 1 })
            .apply(&split)
            .unwrap();
        assert_eq!(merged.generation(), 2);
        // Routing state round-tripped: equal (and equal fingerprints)
        // despite the epoch difference.
        assert_eq!(merged, m);
        assert_eq!(merged.fingerprint(), m.fingerprint());
        assert_eq!(m.clone().with_generation(7).generation(), 7);
    }

    #[test]
    fn diff_lists_exactly_the_moved_ranges() {
        let old = PartitionMap::new(100, vec![0, 30, 60]).unwrap();
        let new = PartitionMap::new(100, vec![0, 40, 60]).unwrap();
        assert_eq!(
            old.diff(&new),
            vec![MigrationRange {
                lo: 30,
                hi: 40,
                from: 1,
                to: 0
            }]
        );
        // A split moves the tail of the split shard — including sparse
        // ids beyond the universe, which follow the last shard.
        let split = PartitionMap::new(100, vec![0, 30, 60, 80]).unwrap();
        assert_eq!(
            old.diff(&split),
            vec![MigrationRange {
                lo: 80,
                hi: usize::MAX,
                from: 2,
                to: 3
            }]
        );
        assert!(old.diff(&old).is_empty());
    }

    #[test]
    fn single_shard_routing_is_identity() {
        let p = PartitionMap::even(20, 1);
        let authors = [3, 17, 3, 9];
        let retweets = [(5, 0), (19, 3)];
        for r in [
            route_docs(&p, &authors, &retweets),
            route_docs_ghost(&p, &authors, &retweets),
        ] {
            assert_eq!(r.shard_docs[0], vec![0, 1, 2, 3]);
            assert_eq!(r.shard_retweets[0], vec![(5, 0), (19, 3)]);
            assert_eq!(r.dropped_retweets, 0);
            assert_eq!(r.ghost_edges, 0);
            assert!(r.shard_ghosts[0].is_empty());
        }
    }

    #[test]
    fn cross_shard_retweets_are_dropped_and_counted() {
        let p = PartitionMap::even(4, 2); // users 0,1 -> shard 0; 2,3 -> shard 1
        let authors = [0, 3];
        let retweets = [(1, 0), (2, 0), (3, 1)];
        let r = route_docs(&p, &authors, &retweets);
        assert_eq!(r.shard_docs, vec![vec![0], vec![1]]);
        assert_eq!(r.shard_retweets[0], vec![(1, 0)]);
        assert_eq!(r.shard_retweets[1], vec![(3, 0)]);
        assert_eq!(r.dropped_retweets, 1);
    }

    #[test]
    fn ghost_mode_keeps_cross_shard_retweets() {
        let p = PartitionMap::even(4, 2);
        let authors = [0, 3];
        let retweets = [(1, 0), (2, 0), (3, 1)];
        let r = route_docs_ghost(&p, &authors, &retweets);
        assert_eq!(r.dropped_retweets, 0);
        assert_eq!(r.ghost_edges, 1);
        // User 2 (shard 1) re-tweeted doc 0 (shard 0): the edge stays on
        // shard 0 and user 2 becomes a ghost there.
        assert_eq!(r.shard_retweets[0], vec![(1, 0), (2, 0)]);
        assert_eq!(r.shard_ghosts[0], vec![2]);
        assert!(r.shard_ghosts[1].is_empty());
    }

    #[test]
    fn sharded_problem_partitions_tweets_and_users() {
        let c = corpus();
        for shards in [1, 2, 4] {
            let p = build_offline_sharded(&c, 3, shards, &pipeline());
            let mut tweet_seen = vec![0usize; c.num_tweets()];
            for slice in &p.shards {
                assert_eq!(slice.matrices.xp.rows(), slice.tweet_ids.len());
                assert_eq!(slice.matrices.xp.cols(), p.vocab.len());
                assert_eq!(slice.matrices.xu.rows(), slice.user_ids.len());
                assert!(slice.ghost_rows.is_empty(), "drop mode has no ghosts");
                for &t in &slice.tweet_ids {
                    tweet_seen[t] += 1;
                    assert_eq!(
                        p.map.shard_of(c.tweets[t].author),
                        slice.shard,
                        "tweet {t} must follow its author"
                    );
                }
                for &u in &slice.user_ids {
                    assert_eq!(p.map.shard_of(u), slice.shard);
                }
            }
            assert!(tweet_seen.iter().all(|&n| n == 1), "shards={shards}");
        }
    }

    #[test]
    fn ghost_problem_keeps_every_edge_and_links_owners() {
        let c = corpus();
        let map = PartitionMap::even(c.num_users(), 4);
        let p = build_offline_sharded_ghost(&c, 3, map, &pipeline());
        assert_eq!(p.dropped_retweets, 0);
        // No re-tweet event vanishes: routing keeps every edge somewhere.
        let authors: Vec<usize> = c.tweets.iter().map(|t| t.author).collect();
        let events: Vec<(usize, usize)> = c.retweets.iter().map(|r| (r.user, r.tweet)).collect();
        let routing = route_docs_ghost(&p.map, &authors, &events);
        let kept: usize = routing.shard_retweets.iter().map(Vec::len).sum();
        assert_eq!(kept, events.len());
        assert!(p.ghost_edges > 0, "tiny corpus re-tweets across 4 shards");
        for link in &p.ghosts {
            let ghost_user = p.shards[link.shard].user_ids[link.row];
            assert_eq!(
                p.shards[link.owner_shard].user_ids[link.owner_row],
                ghost_user
            );
            assert_eq!(p.map.shard_of(ghost_user), link.owner_shard);
            assert!(p.shards[link.shard].ghost_rows.contains(&link.row));
        }
        // Every ghost row is either linked or its user has no home-shard
        // presence.
        for slice in &p.shards {
            for &row in &slice.ghost_rows {
                let user = slice.user_ids[row];
                let owner = p.map.shard_of(user);
                let linked = p
                    .ghosts
                    .iter()
                    .any(|l| l.shard == slice.shard && l.row == row);
                assert_eq!(
                    linked,
                    p.shards[owner].user_ids.binary_search(&user).is_ok(),
                    "link present iff the owner shard has the user"
                );
            }
        }
    }

    #[test]
    fn single_shard_matches_unsharded_assembly() {
        let c = corpus();
        let cfg = pipeline();
        let p = build_offline_sharded(&c, 3, 1, &cfg);
        assert_eq!(p.dropped_retweets, 0);
        let slice = &p.shards[0];
        // Unsharded assembly over the same frozen vocabulary.
        let doc_authors: Vec<usize> = c.tweets.iter().map(|t| t.author).collect();
        let mut users: Vec<usize> = doc_authors
            .iter()
            .copied()
            .chain(c.retweets.iter().map(|r| r.user))
            .collect();
        users.sort_unstable();
        users.dedup();
        let local: std::collections::HashMap<usize, usize> =
            users.iter().enumerate().map(|(i, &u)| (u, i)).collect();
        let encoded: Vec<Vec<usize>> = c
            .tweets
            .iter()
            .map(|t| p.vocab.encode(t.tokens.iter().map(String::as_str)))
            .collect();
        let doc_user_local: Vec<usize> = doc_authors.iter().map(|u| local[u]).collect();
        let retweet_pairs: Vec<(usize, usize)> = c
            .retweets
            .iter()
            .map(|r| (local[&r.user], r.tweet))
            .collect();
        let reference = assemble_snapshot_matrices(
            &p.vocab,
            &encoded,
            &doc_user_local,
            users.len(),
            &retweet_pairs,
            cfg.weighting,
        );
        assert_eq!(slice.user_ids, users);
        assert_eq!(slice.matrices.xp, reference.xp);
        assert_eq!(slice.matrices.xu, reference.xu);
        assert_eq!(slice.matrices.xr, reference.xr);
    }
}

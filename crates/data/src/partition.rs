//! User-range sharding of tripartite problems.
//!
//! The paper's co-clustering couples users to tweets and tweets to words,
//! but the user/tweet dimensions dominate (`n ≈ 40k` tweets vs `k = 10`
//! clusters). A [`UserRangePartitioner`] splits the heavy axes into `S`
//! disjoint shards — every user, and all the tweets they author, land in
//! exactly one shard — while the *word* axis stays global over the frozen
//! vocabulary, so per-shard factor matrices keep a shared feature space
//! and the small cluster-level factors (`Sf`, `Hp`, `Hu`) remain
//! mergeable across shards.
//!
//! Routing is deterministic and purely arithmetic (contiguous user-id
//! ranges), so two processes with the same `(universe, shards)` pair
//! agree on every assignment — the property the multi-shard checkpoint
//! format validates via [`UserRangePartitioner::fingerprint`].
//!
//! Cross-shard re-tweets (user in shard A re-tweeting a document authored
//! in shard B) cannot be represented once the user axis is partitioned;
//! they are counted and dropped. With `shards = 1` nothing is dropped and
//! routing is the identity, which is the basis of the stack-wide
//! "one shard is bit-identical to the unsharded path" guarantee.

use tgs_linalg::DenseMatrix;
use tgs_text::{PipelineConfig, Vocabulary};

use crate::matrices::{assemble_snapshot_matrices, SnapshotMatrices};
use crate::model::Corpus;

/// Deterministic contiguous-range partitioner over global user ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserRangePartitioner {
    shards: usize,
    universe: usize,
    stride: usize,
}

impl UserRangePartitioner {
    /// A partitioner splitting `0..universe` user ids into `shards`
    /// near-equal contiguous ranges. Ids at or beyond `universe` (sparse
    /// ids first seen after fitting) map to the last shard, so
    /// [`UserRangePartitioner::shard_of`] is total.
    pub fn new(universe: usize, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        let stride = universe.max(1).div_ceil(shards).max(1);
        Self {
            shards,
            universe,
            stride,
        }
    }

    /// Number of shards `S`.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The user-id universe the ranges were derived from.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Users per shard range (last shard may be short).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The shard owning `user`. Total: ids beyond the universe land in
    /// the last shard.
    pub fn shard_of(&self, user: usize) -> usize {
        (user / self.stride).min(self.shards - 1)
    }

    /// The `[start, end)` user-id range of `shard` within the universe
    /// (the last shard additionally owns every id `>= universe`).
    pub fn range(&self, shard: usize) -> (usize, usize) {
        assert!(shard < self.shards, "shard {shard} out of {}", self.shards);
        let start = shard * self.stride;
        let end = if shard + 1 == self.shards {
            self.universe.max(start)
        } else {
            ((shard + 1) * self.stride).min(self.universe)
        };
        (start, end)
    }

    /// FNV-1a digest of the routing parameters. Two partitioners with
    /// equal fingerprints make identical routing decisions; multi-shard
    /// checkpoints embed it so a restore cannot silently re-route users.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for word in [self.shards as u64, self.universe as u64, self.stride as u64] {
            for byte in word.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

/// The routing decision for one document list: which shard every document
/// goes to, per-shard document order, and per-shard re-tweets remapped to
/// shard-local document indices.
#[derive(Debug, Clone)]
pub struct ShardRouting {
    /// Shard of each input document (index-parallel to the input list).
    pub doc_shard: Vec<usize>,
    /// Per shard: global indices of its documents, in input order.
    pub shard_docs: Vec<Vec<usize>>,
    /// Per shard: `(global user, shard-local doc index)` re-tweets whose
    /// user shares the document's shard.
    pub shard_retweets: Vec<Vec<(usize, usize)>>,
    /// Cross-shard re-tweets that had to be dropped.
    pub dropped_retweets: usize,
}

/// Routes documents (by author) and re-tweets through the partitioner.
///
/// * `doc_authors[i]` — global user id authoring document `i`;
/// * `retweets` — `(global user, global doc index)` events.
///
/// Each document follows its author's shard; a re-tweet follows its
/// *document* and is kept only when the re-tweeting user lives in the
/// same shard (cross-shard interactions are counted in
/// [`ShardRouting::dropped_retweets`]). With one shard, routing is the
/// identity and nothing is dropped.
///
/// # Panics
///
/// Panics when a re-tweet references a document index `>=
/// doc_authors.len()` — like the rest of this crate's assembly surface,
/// routing treats its inputs as pre-validated. Callers holding untrusted
/// snapshots must check the references first and surface a typed error
/// (the `tgs-engine` router does exactly that before calling in).
pub fn route_docs(
    partitioner: &UserRangePartitioner,
    doc_authors: &[usize],
    retweets: &[(usize, usize)],
) -> ShardRouting {
    let shards = partitioner.shards();
    let mut doc_shard = Vec::with_capacity(doc_authors.len());
    let mut doc_local = Vec::with_capacity(doc_authors.len());
    let mut shard_docs = vec![Vec::new(); shards];
    for (doc, &author) in doc_authors.iter().enumerate() {
        let s = partitioner.shard_of(author);
        doc_shard.push(s);
        doc_local.push(shard_docs[s].len());
        shard_docs[s].push(doc);
    }
    let mut shard_retweets = vec![Vec::new(); shards];
    let mut dropped_retweets = 0;
    for &(user, doc) in retweets {
        assert!(
            doc < doc_authors.len(),
            "retweet references document {doc} but only {} exist",
            doc_authors.len()
        );
        let s = doc_shard[doc];
        if partitioner.shard_of(user) == s {
            shard_retweets[s].push((user, doc_local[doc]));
        } else {
            dropped_retweets += 1;
        }
    }
    ShardRouting {
        doc_shard,
        shard_docs,
        shard_retweets,
        dropped_retweets,
    }
}

/// One shard's slice of an offline problem: its tweets, its users, and
/// the tripartite matrices over the *global* feature axis.
#[derive(Debug, Clone)]
pub struct ShardSlice {
    /// The shard index.
    pub shard: usize,
    /// Global tweet ids, in row order of `xp`.
    pub tweet_ids: Vec<usize>,
    /// Global user ids, in row order of `xu` / `xr`.
    pub user_ids: Vec<usize>,
    /// The shard's matrices (`xp`, `xu`, `xr`, `graph`).
    pub matrices: SnapshotMatrices,
}

/// A whole corpus partitioned into shard-local problem slices sharing one
/// frozen vocabulary and lexicon prior.
#[derive(Debug, Clone)]
pub struct ShardedProblem {
    /// The routing function used (checkpointable via its fingerprint).
    pub partitioner: UserRangePartitioner,
    /// The global vocabulary (shared feature axis of every shard).
    pub vocab: Vocabulary,
    /// The `l × k` lexicon prior, shared by every shard.
    pub sf0: DenseMatrix,
    /// Number of sentiment classes.
    pub k: usize,
    /// One slice per shard (possibly with zero tweets for tiny corpora).
    pub shards: Vec<ShardSlice>,
    /// Cross-shard re-tweets dropped during routing.
    pub dropped_retweets: usize,
}

/// Splits a corpus into `shards` disjoint shard-local offline problems:
/// the vocabulary and lexicon prior are fitted globally (frozen feature
/// axis), then each shard's matrices are assembled through the same
/// [`assemble_snapshot_matrices`] pipeline the unsharded paths use.
///
/// Every user and all their tweets land in exactly one shard;
/// concatenating the shard slices recovers the unsharded assembly up to
/// row order (exactly for count/binary weighting — TF-IDF weights are
/// fitted per document set, so they are shard-dependent by construction —
/// and minus cross-shard re-tweet edges, which are counted in
/// [`ShardedProblem::dropped_retweets`]).
pub fn build_offline_sharded(
    corpus: &Corpus,
    k: usize,
    shards: usize,
    config: &PipelineConfig,
) -> ShardedProblem {
    let vocab = Vocabulary::build(
        corpus
            .tweets
            .iter()
            .map(|t| t.tokens.iter().map(String::as_str)),
        &config.vocab,
    );
    let sf0 = corpus
        .lexicon
        .prior_matrix(&vocab, k, config.lexicon_confidence);
    let partitioner = UserRangePartitioner::new(corpus.num_users(), shards);
    let doc_authors: Vec<usize> = corpus.tweets.iter().map(|t| t.author).collect();
    let retweets: Vec<(usize, usize)> = corpus.retweets.iter().map(|r| (r.user, r.tweet)).collect();
    let routing = route_docs(&partitioner, &doc_authors, &retweets);

    let mut slices = Vec::with_capacity(shards);
    for shard in 0..shards {
        let tweet_ids = routing.shard_docs[shard].clone();
        // Users present in the shard: authors of its tweets plus
        // same-shard re-tweeters, in ascending global-id order.
        let mut user_ids: Vec<usize> = tweet_ids
            .iter()
            .map(|&t| doc_authors[t])
            .chain(routing.shard_retweets[shard].iter().map(|&(u, _)| u))
            .collect();
        user_ids.sort_unstable();
        user_ids.dedup();
        let user_local: std::collections::HashMap<usize, usize> =
            user_ids.iter().enumerate().map(|(i, &u)| (u, i)).collect();
        let encoded: Vec<Vec<usize>> = tweet_ids
            .iter()
            .map(|&t| vocab.encode(corpus.tweets[t].tokens.iter().map(String::as_str)))
            .collect();
        let doc_user_local: Vec<usize> = tweet_ids
            .iter()
            .map(|&t| user_local[&doc_authors[t]])
            .collect();
        let retweet_pairs: Vec<(usize, usize)> = routing.shard_retweets[shard]
            .iter()
            .map(|&(u, local_doc)| (user_local[&u], local_doc))
            .collect();
        let matrices = assemble_snapshot_matrices(
            &vocab,
            &encoded,
            &doc_user_local,
            user_ids.len(),
            &retweet_pairs,
            config.weighting,
        );
        slices.push(ShardSlice {
            shard,
            tweet_ids,
            user_ids,
            matrices,
        });
    }
    ShardedProblem {
        partitioner,
        vocab,
        sf0,
        k,
        shards: slices,
        dropped_retweets: routing.dropped_retweets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GeneratorConfig;
    use crate::generator::generate;
    use tgs_text::Weighting;

    fn corpus() -> Corpus {
        generate(&GeneratorConfig {
            num_users: 30,
            total_tweets: 200,
            num_days: 8,
            ..Default::default()
        })
    }

    fn pipeline() -> PipelineConfig {
        let mut cfg = PipelineConfig::paper_defaults();
        cfg.vocab.min_count = 1;
        cfg.weighting = Weighting::Counts;
        cfg
    }

    #[test]
    fn ranges_cover_universe_disjointly() {
        for (universe, shards) in [(10, 3), (7, 7), (100, 8), (5, 1), (3, 8)] {
            let p = UserRangePartitioner::new(universe, shards);
            let mut seen = vec![0usize; universe];
            for s in 0..shards {
                let (lo, hi) = p.range(s);
                for (u, count) in seen.iter_mut().enumerate().take(hi).skip(lo) {
                    *count += 1;
                    assert_eq!(p.shard_of(u), s, "user {u} in range of shard {s}");
                }
            }
            assert!(
                seen.iter().all(|&c| c == 1),
                "{universe}/{shards}: {seen:?}"
            );
            // ids beyond the universe are owned by the last shard
            assert_eq!(p.shard_of(universe + 1000), shards - 1);
        }
    }

    #[test]
    fn fingerprint_distinguishes_parameters() {
        let a = UserRangePartitioner::new(100, 4);
        assert_eq!(
            a.fingerprint(),
            UserRangePartitioner::new(100, 4).fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            UserRangePartitioner::new(100, 2).fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            UserRangePartitioner::new(99, 4).fingerprint()
        );
    }

    #[test]
    fn single_shard_routing_is_identity() {
        let p = UserRangePartitioner::new(20, 1);
        let authors = [3, 17, 3, 9];
        let retweets = [(5, 0), (19, 3)];
        let r = route_docs(&p, &authors, &retweets);
        assert_eq!(r.shard_docs[0], vec![0, 1, 2, 3]);
        assert_eq!(r.shard_retweets[0], vec![(5, 0), (19, 3)]);
        assert_eq!(r.dropped_retweets, 0);
    }

    #[test]
    fn cross_shard_retweets_are_dropped_and_counted() {
        let p = UserRangePartitioner::new(4, 2); // users 0,1 -> shard 0; 2,3 -> shard 1
        let authors = [0, 3];
        let retweets = [(1, 0), (2, 0), (3, 1)];
        let r = route_docs(&p, &authors, &retweets);
        assert_eq!(r.shard_docs, vec![vec![0], vec![1]]);
        assert_eq!(r.shard_retweets[0], vec![(1, 0)]);
        assert_eq!(r.shard_retweets[1], vec![(3, 0)]);
        assert_eq!(r.dropped_retweets, 1);
    }

    #[test]
    fn sharded_problem_partitions_tweets_and_users() {
        let c = corpus();
        for shards in [1, 2, 4] {
            let p = build_offline_sharded(&c, 3, shards, &pipeline());
            let mut tweet_seen = vec![0usize; c.num_tweets()];
            for slice in &p.shards {
                assert_eq!(slice.matrices.xp.rows(), slice.tweet_ids.len());
                assert_eq!(slice.matrices.xp.cols(), p.vocab.len());
                assert_eq!(slice.matrices.xu.rows(), slice.user_ids.len());
                for &t in &slice.tweet_ids {
                    tweet_seen[t] += 1;
                    assert_eq!(
                        p.partitioner.shard_of(c.tweets[t].author),
                        slice.shard,
                        "tweet {t} must follow its author"
                    );
                }
                for &u in &slice.user_ids {
                    assert_eq!(p.partitioner.shard_of(u), slice.shard);
                }
            }
            assert!(tweet_seen.iter().all(|&n| n == 1), "shards={shards}");
        }
    }

    #[test]
    fn single_shard_matches_unsharded_assembly() {
        let c = corpus();
        let cfg = pipeline();
        let p = build_offline_sharded(&c, 3, 1, &cfg);
        assert_eq!(p.dropped_retweets, 0);
        let slice = &p.shards[0];
        // Unsharded assembly over the same frozen vocabulary.
        let doc_authors: Vec<usize> = c.tweets.iter().map(|t| t.author).collect();
        let mut users: Vec<usize> = doc_authors
            .iter()
            .copied()
            .chain(c.retweets.iter().map(|r| r.user))
            .collect();
        users.sort_unstable();
        users.dedup();
        let local: std::collections::HashMap<usize, usize> =
            users.iter().enumerate().map(|(i, &u)| (u, i)).collect();
        let encoded: Vec<Vec<usize>> = c
            .tweets
            .iter()
            .map(|t| p.vocab.encode(t.tokens.iter().map(String::as_str)))
            .collect();
        let doc_user_local: Vec<usize> = doc_authors.iter().map(|u| local[u]).collect();
        let retweet_pairs: Vec<(usize, usize)> = c
            .retweets
            .iter()
            .map(|r| (local[&r.user], r.tweet))
            .collect();
        let reference = assemble_snapshot_matrices(
            &p.vocab,
            &encoded,
            &doc_user_local,
            users.len(),
            &retweet_pairs,
            cfg.weighting,
        );
        assert_eq!(slice.user_ids, users);
        assert_eq!(slice.matrices.xp, reference.xp);
        assert_eq!(slice.matrices.xu, reference.xu);
        assert_eq!(slice.matrices.xr, reference.xr);
    }
}

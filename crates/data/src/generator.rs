//! The corpus generator: the stand-in for the paper's 2012 California
//! ballot Twitter crawl (see DESIGN.md §4 for the substitution rationale).

use rand::rngs::StdRng;
use rand::RngExt;

use tgs_linalg::seeded_rng;
use tgs_text::{Lexicon, Sentiment};

use crate::config::GeneratorConfig;
use crate::model::{Corpus, Retweet, Trajectory, Tweet, UserProfile};
use crate::pools::WordPools;
use crate::zipf::Zipf;

/// Generates a full corpus from a configuration. Deterministic in
/// `config.seed`.
pub fn generate(config: &GeneratorConfig) -> Corpus {
    config.validate();
    let mut rng = seeded_rng(config.seed);
    let pools = WordPools::build(config, &mut rng);
    let users = generate_users(config, &mut rng);
    let lexicon = build_lexicon(config, &pools, &mut rng);
    let mut tweets = generate_tweets(config, &pools, &users, &mut rng);
    let retweets = generate_retweets(config, &users, &tweets, &mut rng);
    assign_tweet_labels(config, &mut tweets, &mut rng);
    Corpus {
        topic: config.topic.clone(),
        users,
        tweets,
        retweets,
        lexicon,
        num_days: config.num_days,
    }
}

fn sample_class(priors: &[f64; 3], rng: &mut StdRng) -> Sentiment {
    let u: f64 = rng.random_range(0.0..1.0);
    if u < priors[0] {
        Sentiment::Positive
    } else if u < priors[0] + priors[1] {
        Sentiment::Negative
    } else {
        Sentiment::Neutral
    }
}

/// Class of a *noisy* tweet whose author holds `from`: polar stances
/// mostly produce ambiguous (neutral-looking) text, occasionally the
/// opposite polarity; neutral authors drift to either pole.
fn noisy_class(from: Sentiment, rng: &mut StdRng) -> Sentiment {
    match from {
        Sentiment::Neutral => {
            if rng.random_range(0.0..1.0) < 0.5 {
                Sentiment::Positive
            } else {
                Sentiment::Negative
            }
        }
        polar => {
            if rng.random_range(0.0..1.0) < 0.7 {
                Sentiment::Neutral
            } else if polar == Sentiment::Positive {
                Sentiment::Negative
            } else {
                Sentiment::Positive
            }
        }
    }
}

fn different_class(from: Sentiment, rng: &mut StdRng) -> Sentiment {
    let others: Vec<Sentiment> = Sentiment::ALL
        .iter()
        .copied()
        .filter(|&s| s != from)
        .collect();
    others[rng.random_range(0..others.len())]
}

/// A user's base (day-0) stance class.
fn initial_class(user: &UserProfile) -> Sentiment {
    user.trajectory.stance_at(0)
}

fn generate_users(config: &GeneratorConfig, rng: &mut StdRng) -> Vec<UserProfile> {
    let m = config.num_users;
    let zipf = Zipf::new(m, config.user_activity_exponent);
    let mut users = Vec::with_capacity(m);
    for id in 0..m {
        let base = sample_class(&config.class_priors, rng);
        let trajectory = if rng.random_range(0.0..1.0) < config.flip_fraction {
            let after = different_class(base, rng);
            let lo = config.num_days / 5;
            let hi = (config.num_days * 4) / 5;
            let at_day = if hi > lo {
                rng.random_range(lo..hi)
            } else {
                lo
            };
            Trajectory::Flip {
                before: base,
                after,
                at_day,
            }
        } else {
            Trajectory::Stable(base)
        };
        let (join_day, leave_day) =
            if rng.random_range(0.0..1.0) < config.churn && config.num_days >= 4 {
                let join = rng.random_range(0..config.num_days / 2);
                let leave = rng.random_range(
                    (join + config.num_days / 4).min(config.num_days - 1)..config.num_days,
                );
                (join, leave)
            } else {
                (0, config.num_days - 1)
            };
        users.push(UserProfile {
            id,
            trajectory,
            label: None,
            activity: 0.0, // assigned below via stratified ranks
            join_day,
            leave_day,
        });
    }
    // Long-tail activity, *stratified* across stance classes: activity
    // ranks are dealt to classes proportionally to their priors, so the
    // realized tweet-volume mix tracks `class_priors` (x `boost`) with
    // low variance instead of hinging on which class the handful of
    // super-active users happened to land in.
    let mut by_class: [Vec<usize>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for u in &users {
        by_class[initial_class(u).index()].push(u.id);
    }
    for pool in &mut by_class {
        shuffle(pool, rng);
    }
    let mut assigned = [0usize; 3];
    for rank in 0..m {
        // pick the non-empty class with the largest proportional deficit
        let c = (0..3)
            .filter(|&c| assigned[c] < by_class[c].len())
            .max_by(|&a, &b| {
                let da = config.class_priors[a] * (rank + 1) as f64 - assigned[a] as f64;
                let db = config.class_priors[b] * (rank + 1) as f64 - assigned[b] as f64;
                da.partial_cmp(&db).expect("finite deficits")
            })
            .expect("some class still has users");
        let id = by_class[c][assigned[c]];
        assigned[c] += 1;
        users[id].activity = zipf.pmf(rank) * config.class_activity_boost[c];
    }
    // Human annotators label users with enough visible history, so label
    // mass concentrates on *active* users: take the labeled fraction from
    // the top of the activity distribution, with a small random overhang
    // so the cut-off is not perfectly sharp.
    let target = ((m as f64) * config.labeled_user_fraction).round() as usize;
    if target > 0 {
        let mut by_activity: Vec<usize> = (0..m).collect();
        by_activity.sort_unstable_by(|&a, &b| {
            users[b]
                .activity
                .partial_cmp(&users[a].activity)
                .expect("finite activity")
        });
        let pool = (target * 5 / 2).min(m);
        let mut candidates: Vec<usize> = by_activity[..pool].to_vec();
        shuffle(&mut candidates, rng);
        for &id in candidates.iter().take(target) {
            users[id].label = Some(users[id].trajectory.majority_stance(config.num_days));
        }
    }
    users
}

fn build_lexicon(config: &GeneratorConfig, pools: &WordPools, rng: &mut StdRng) -> Lexicon {
    let mut lexicon = Lexicon::new();
    let mut add_pool = |words: &[String], class: Sentiment, rng: &mut StdRng| {
        for w in words {
            if rng.random_range(0.0..1.0) < config.lexicon_coverage {
                let assigned = if rng.random_range(0.0..1.0) < config.lexicon_error {
                    different_class(class, rng)
                } else {
                    class
                };
                lexicon.insert(w, assigned);
            }
        }
    };
    add_pool(pools.positive.words(), Sentiment::Positive, rng);
    add_pool(pools.negative.words(), Sentiment::Negative, rng);
    lexicon
}

/// Relative tweet volume per day: base load plus Gaussian bursts.
pub fn daily_volume_weights(config: &GeneratorConfig) -> Vec<f64> {
    (0..config.num_days)
        .map(|d| {
            let mut v = 1.0;
            for b in &config.bursts {
                let z = (d as f64 - b.day as f64) / b.width.max(1e-9);
                v += b.amplitude * (-0.5 * z * z).exp();
            }
            v
        })
        .collect()
}

/// Samples an index proportionally to `weights` (linear scan; hot paths
/// precompute cumulative sums instead).
fn weighted_choice(weights: &[f64], total: f64, rng: &mut StdRng) -> usize {
    let mut u = rng.random_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

/// Per-day cache of active users and their activity mass.
struct DayRoster {
    /// Active user ids.
    users: Vec<usize>,
    /// Activity weight per active user (parallel to `users`).
    weights: Vec<f64>,
    total: f64,
    /// Active users per current stance class.
    by_class: [Vec<usize>; 3],
    class_weights: [Vec<f64>; 3],
    class_totals: [f64; 3],
}

impl DayRoster {
    fn build(users: &[UserProfile], day: u32) -> Self {
        let mut roster = DayRoster {
            users: Vec::new(),
            weights: Vec::new(),
            total: 0.0,
            by_class: [Vec::new(), Vec::new(), Vec::new()],
            class_weights: [Vec::new(), Vec::new(), Vec::new()],
            class_totals: [0.0; 3],
        };
        for u in users {
            if u.active_on(day) {
                roster.users.push(u.id);
                roster.weights.push(u.activity);
                roster.total += u.activity;
                let c = u.trajectory.stance_at(day).index();
                roster.by_class[c].push(u.id);
                roster.class_weights[c].push(u.activity);
                roster.class_totals[c] += u.activity;
            }
        }
        roster
    }

    fn sample_any(&self, rng: &mut StdRng) -> Option<usize> {
        if self.users.is_empty() {
            return None;
        }
        let i = weighted_choice(&self.weights, self.total, rng);
        Some(self.users[i])
    }

    fn sample_class(&self, class: usize, rng: &mut StdRng) -> Option<usize> {
        if self.by_class[class].is_empty() {
            return None;
        }
        let i = weighted_choice(&self.class_weights[class], self.class_totals[class], rng);
        Some(self.by_class[class][i])
    }
}

fn generate_tweets(
    config: &GeneratorConfig,
    pools: &WordPools,
    users: &[UserProfile],
    rng: &mut StdRng,
) -> Vec<Tweet> {
    // Sample a day per tweet from the volume curve, then sort so tweet
    // ids are chronological.
    let weights = daily_volume_weights(config);
    let total: f64 = weights.iter().sum();
    let mut days: Vec<u32> = (0..config.total_tweets)
        .map(|_| weighted_choice(&weights, total, rng) as u32)
        .collect();
    days.sort_unstable();

    let mut tweets = Vec::with_capacity(days.len());
    let mut roster_day = u32::MAX;
    let mut roster: Option<DayRoster> = None;
    for (id, day) in days.into_iter().enumerate() {
        if day != roster_day {
            roster = Some(DayRoster::build(users, day));
            roster_day = day;
        }
        let roster_ref = roster.as_ref().expect("roster built above");
        let author = roster_ref
            .sample_any(rng)
            // Degenerate day with nobody active: fall back to any user.
            .unwrap_or_else(|| rng.random_range(0..users.len()));
        let stance = users[author].trajectory.stance_at(day);
        let sentiment = if rng.random_range(0.0..1.0) < config.tweet_noise {
            noisy_class(stance, rng)
        } else {
            stance
        };
        let tokens = compose_tokens(config, pools, sentiment, day, rng);
        tweets.push(Tweet {
            id,
            author,
            tokens,
            day,
            sentiment,
            label: None,
        });
    }
    tweets
}

fn compose_tokens(
    config: &GeneratorConfig,
    pools: &WordPools,
    sentiment: Sentiment,
    day: u32,
    rng: &mut StdRng,
) -> Vec<String> {
    let len = rng.random_range(config.tweet_len.0..=config.tweet_len.1);
    let stance_pool = pools.stance_pool(sentiment);
    let mut tokens = Vec::with_capacity(len);
    for _ in 0..len {
        let u: f64 = rng.random_range(0.0..1.0);
        let word = if u < config.class_token_prob {
            match stance_pool {
                Some(pool) => {
                    // Occasionally quote the other side (stance_confusion).
                    if rng.random_range(0.0..1.0) < config.stance_confusion {
                        let opposite = if sentiment == Sentiment::Positive {
                            &pools.negative
                        } else {
                            &pools.positive
                        };
                        opposite.sample(day, rng)
                    } else {
                        pool.sample(day, rng)
                    }
                }
                // Neutral tweets draw topic words where stance words
                // would go.
                None => pools.topic.sample(day, rng),
            }
        } else if u < config.class_token_prob + config.topic_token_prob {
            pools.topic.sample(day, rng)
        } else {
            pools.noise.sample(day, rng)
        };
        tokens.push(word.to_string());
    }
    tokens
}

fn poisson(lambda: f64, rng: &mut StdRng) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.random_range(0.0..1.0f64);
        if p <= l {
            return k;
        }
        k += 1;
        if k > 1000 {
            return k; // guard against pathological lambda
        }
    }
}

fn generate_retweets(
    config: &GeneratorConfig,
    users: &[UserProfile],
    tweets: &[Tweet],
    rng: &mut StdRng,
) -> Vec<Retweet> {
    let mut retweets = Vec::new();
    let mut roster_day = u32::MAX;
    let mut roster: Option<DayRoster> = None;
    for tweet in tweets {
        if tweet.day != roster_day {
            roster = Some(DayRoster::build(users, tweet.day));
            roster_day = tweet.day;
        }
        let roster_ref = roster.as_ref().expect("roster built above");
        let count = poisson(config.retweets_per_tweet, rng);
        for _ in 0..count {
            let pick = if rng.random_range(0.0..1.0) < config.retweet_homophily {
                // Homophily: re-tweeter shares the *author's current
                // stance* (the social signal the β regularizer exploits).
                let author_stance = users[tweet.author].trajectory.stance_at(tweet.day).index();
                roster_ref
                    .sample_class(author_stance, rng)
                    .or_else(|| roster_ref.sample_any(rng))
            } else {
                roster_ref.sample_any(rng)
            };
            if let Some(user) = pick {
                if user != tweet.author {
                    retweets.push(Retweet {
                        user,
                        tweet: tweet.id,
                        day: tweet.day,
                    });
                }
            }
        }
    }
    retweets
}

fn assign_tweet_labels(config: &GeneratorConfig, tweets: &mut [Tweet], rng: &mut StdRng) {
    for t in tweets.iter_mut() {
        // Following Table 3, only pos/neg tweets carry labels.
        if t.sentiment != Sentiment::Neutral
            && rng.random_range(0.0..1.0) < config.labeled_tweet_fraction
        {
            t.label = Some(t.sentiment);
        }
    }
}

/// Fisher–Yates shuffle (rand's `SliceRandom` equivalent, kept local to
/// pin behaviour across rand versions).
fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> GeneratorConfig {
        GeneratorConfig {
            num_users: 20,
            total_tweets: 150,
            num_days: 10,
            ..Default::default()
        }
    }

    #[test]
    fn generates_requested_sizes() {
        let corpus = generate(&tiny());
        assert_eq!(corpus.num_tweets(), 150);
        assert_eq!(corpus.num_users(), 20);
        assert_eq!(corpus.num_days, 10);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(&tiny());
        let b = generate(&tiny());
        assert_eq!(a.tweets.len(), b.tweets.len());
        for (x, y) in a.tweets.iter().zip(b.tweets.iter()) {
            assert_eq!(x.tokens, y.tokens);
            assert_eq!(x.author, y.author);
            assert_eq!(x.sentiment, y.sentiment);
        }
        assert_eq!(a.retweets, b.retweets);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&tiny());
        let b = generate(&GeneratorConfig { seed: 43, ..tiny() });
        let same = a
            .tweets
            .iter()
            .zip(b.tweets.iter())
            .filter(|(x, y)| x.tokens == y.tokens)
            .count();
        assert!(same < a.tweets.len() / 2);
    }

    #[test]
    fn tweets_sorted_by_day_with_valid_authors() {
        let corpus = generate(&tiny());
        let mut prev = 0;
        for t in &corpus.tweets {
            assert!(t.day >= prev);
            prev = t.day;
            assert!(t.author < corpus.num_users());
            assert!(t.day < corpus.num_days);
            assert!(!t.tokens.is_empty());
        }
    }

    #[test]
    fn tweet_sentiment_mostly_matches_author_stance() {
        let corpus = generate(&tiny());
        let matching = corpus
            .tweets
            .iter()
            .filter(|t| corpus.users[t.author].trajectory.stance_at(t.day) == t.sentiment)
            .count();
        let frac = matching as f64 / corpus.num_tweets() as f64;
        assert!(frac > 0.8, "stance match fraction {frac}");
    }

    #[test]
    fn retweets_reference_valid_ids_and_mostly_homophilous() {
        let corpus = generate(&tiny());
        assert!(!corpus.retweets.is_empty());
        let mut same_stance = 0usize;
        for r in &corpus.retweets {
            assert!(r.user < corpus.num_users());
            assert!(r.tweet < corpus.num_tweets());
            let tweet = &corpus.tweets[r.tweet];
            assert_ne!(r.user, tweet.author, "no self-retweets");
            let author_stance = corpus.users[tweet.author].trajectory.stance_at(r.day);
            let user_stance = corpus.users[r.user].trajectory.stance_at(r.day);
            if author_stance == user_stance {
                same_stance += 1;
            }
        }
        let frac = same_stance as f64 / corpus.retweets.len() as f64;
        assert!(frac > 0.6, "homophily fraction {frac}");
    }

    #[test]
    fn lexicon_nonempty_and_mostly_correct() {
        let corpus = generate(&tiny());
        assert!(corpus.lexicon.len() > 10);
        // Seed words that made it into the lexicon should mostly carry
        // their true class.
        let mut correct = 0;
        let mut total = 0;
        for (w, c) in corpus.lexicon.iter() {
            total += 1;
            let truly_pos = w.starts_with("upbeat") || w == "#yeson37" || w == "labelgmo";
            let truly_neg = w.starts_with("gloomy") || w == "corn" || w == "#noprop37";
            if (truly_pos && c == Sentiment::Positive) || (truly_neg && c == Sentiment::Negative) {
                correct += 1;
            } else if !truly_pos && !truly_neg {
                correct += 1; // other seed words, skip strict check
            }
        }
        assert!(correct as f64 / total as f64 > 0.8);
    }

    #[test]
    fn labels_respect_fractions() {
        let corpus = generate(&tiny());
        let labeled_users = corpus.users.iter().filter(|u| u.label.is_some()).count();
        assert!(labeled_users > 0 && labeled_users < corpus.num_users());
        let labeled_tweets = corpus.tweets.iter().filter(|t| t.label.is_some()).count();
        assert!(labeled_tweets > 0);
        // neutral tweets never labeled
        assert!(corpus
            .tweets
            .iter()
            .filter(|t| t.sentiment == Sentiment::Neutral)
            .all(|t| t.label.is_none()));
    }

    #[test]
    fn volume_bursts_raise_weights() {
        let cfg = tiny();
        let w = daily_volume_weights(&cfg);
        assert_eq!(w.len(), 10);
        assert!(w.iter().all(|&v| v >= 1.0));
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = seeded_rng(1);
        assert_eq!(poisson(0.0, &mut rng), 0);
    }

    #[test]
    fn poisson_mean_close_to_lambda() {
        let mut rng = seeded_rng(5);
        let n = 5000;
        let mean: f64 = (0..n).map(|_| poisson(2.0, &mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.15, "poisson mean {mean}");
    }
}

//! # tgs-data
//!
//! Synthetic California-ballot Twitter corpus generator — the substitution
//! for the paper's (unobtainable) November 2012 crawl. See DESIGN.md §4.
//!
//! The generator reproduces every statistical property the paper's
//! evaluation depends on: Table 3-style class/label proportions, Zipfian
//! word frequencies with temporal drift (Observation 1 / Fig. 4), mostly
//! stable user stances with rare flips (Observation 2), re-tweet
//! homophily, long-tail user activity, election-night volume bursts
//! (Figs. 11–12) and an imperfect auto-built lexicon.
//!
//! ```
//! use tgs_data::{generate, presets};
//!
//! let corpus = generate(&presets::tiny(42));
//! assert_eq!(corpus.num_tweets(), 300);
//! ```

pub mod config;
pub mod generator;
pub mod io;
pub mod matrices;
pub mod model;
pub mod partition;
pub mod pools;
pub mod presets;
pub mod stats;
pub mod zipf;

pub use config::{GeneratorConfig, PoolSizes, VolumeBurst};
pub use generator::{daily_volume_weights, generate};
pub use io::{read_corpus, write_corpus, CorpusIoError};
pub use matrices::{
    assemble_snapshot_matrices, build_offline, day_windows, ProblemInstance, SnapshotBuilder,
    SnapshotInstance, SnapshotMatrices, SnapshotScratch,
};
pub use model::{Corpus, Retweet, Trajectory, Tweet, UserProfile};
pub use partition::{
    build_offline_sharded, build_offline_sharded_ghost, route_docs, route_docs_ghost, GhostLink,
    MigrationRange, PartitionError, PartitionMap, RepartitionOp, RepartitionPlan, ShardRouting,
    ShardSlice, ShardedProblem, UserRangePartitioner,
};
pub use pools::{WordPool, WordPools};
pub use stats::{
    corpus_stats, daily_tweet_counts, flip_fraction, period_feature_frequencies, top_words,
    CorpusStats,
};
pub use zipf::Zipf;

//! Domain model of the synthetic Twitter corpus.

use tgs_text::Sentiment;

/// How a user's stance evolves over the collection period.
///
/// Observation 2 of the paper: "the majority of users rarely change their
/// mind within a short time" — most users are [`Trajectory::Stable`], a
/// small fraction flip once (like user Adam in Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trajectory {
    /// The stance never changes.
    Stable(Sentiment),
    /// The stance flips exactly once, at the start of `at_day`.
    Flip {
        /// Stance before `at_day`.
        before: Sentiment,
        /// Stance from `at_day` on.
        after: Sentiment,
        /// First day with the new stance.
        at_day: u32,
    },
}

impl Trajectory {
    /// The stance on a given day.
    pub fn stance_at(&self, day: u32) -> Sentiment {
        match *self {
            Trajectory::Stable(s) => s,
            Trajectory::Flip {
                before,
                after,
                at_day,
            } => {
                if day < at_day {
                    before
                } else {
                    after
                }
            }
        }
    }

    /// The stance held for the majority of `0..num_days` (what a human
    /// annotator would label the user with).
    pub fn majority_stance(&self, num_days: u32) -> Sentiment {
        match *self {
            Trajectory::Stable(s) => s,
            Trajectory::Flip {
                before,
                after,
                at_day,
            } => {
                if at_day * 2 > num_days {
                    before
                } else {
                    after
                }
            }
        }
    }

    /// True when the stance changes at some point.
    pub fn flips(&self) -> bool {
        matches!(self, Trajectory::Flip { .. })
    }
}

/// A synthetic user.
#[derive(Debug, Clone)]
pub struct UserProfile {
    /// Dense id `0..num_users`.
    pub id: usize,
    /// Stance trajectory (ground truth).
    pub trajectory: Trajectory,
    /// Human-style label available to (semi-)supervised baselines;
    /// `None` for the "unlabeled" pool of Table 3.
    pub label: Option<Sentiment>,
    /// Long-tail activity weight (tweets are allocated ∝ this).
    pub activity: f64,
    /// First day the user is active.
    pub join_day: u32,
    /// Last active day (inclusive).
    pub leave_day: u32,
}

impl UserProfile {
    /// Whether the user can act on `day`.
    pub fn active_on(&self, day: u32) -> bool {
        (self.join_day..=self.leave_day).contains(&day)
    }
}

/// A synthetic tweet.
#[derive(Debug, Clone)]
pub struct Tweet {
    /// Dense id `0..num_tweets`, ordered by day.
    pub id: usize,
    /// Author user id.
    pub author: usize,
    /// Token features (already normalized, vocabulary-ready).
    pub tokens: Vec<String>,
    /// Day offset from the collection start.
    pub day: u32,
    /// Ground-truth sentiment of the tweet text.
    pub sentiment: Sentiment,
    /// Label visible to supervised baselines (`None` = unlabeled).
    pub label: Option<Sentiment>,
}

/// A re-tweet event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retweet {
    /// The re-tweeting user.
    pub user: usize,
    /// The re-tweeted tweet id.
    pub tweet: usize,
    /// Day of the re-tweet.
    pub day: u32,
}

/// The complete synthetic corpus: the stand-in for the paper's 2012
/// California-ballot Twitter crawl.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Topic tag, e.g. `"prop30"`.
    pub topic: String,
    /// All users.
    pub users: Vec<UserProfile>,
    /// All tweets, sorted by `day`.
    pub tweets: Vec<Tweet>,
    /// All re-tweet events.
    pub retweets: Vec<Retweet>,
    /// The auto-built "Yes"/"No" lexicon (imperfect by construction).
    pub lexicon: tgs_text::Lexicon,
    /// Number of days covered (`day ∈ 0..num_days`).
    pub num_days: u32,
}

impl Corpus {
    /// Number of tweets.
    pub fn num_tweets(&self) -> usize {
        self.tweets.len()
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Ground-truth tweet sentiments as class indices.
    pub fn tweet_truth(&self) -> Vec<usize> {
        self.tweets.iter().map(|t| t.sentiment.index()).collect()
    }

    /// Tweet labels visible to supervised methods.
    pub fn tweet_labels(&self) -> Vec<Option<usize>> {
        self.tweets
            .iter()
            .map(|t| t.label.map(Sentiment::index))
            .collect()
    }

    /// Ground-truth *overall* user stances (majority over the period).
    pub fn user_truth(&self) -> Vec<usize> {
        self.users
            .iter()
            .map(|u| u.trajectory.majority_stance(self.num_days).index())
            .collect()
    }

    /// Ground-truth user stances on a specific day.
    pub fn user_truth_at(&self, day: u32) -> Vec<usize> {
        self.users
            .iter()
            .map(|u| u.trajectory.stance_at(day).index())
            .collect()
    }

    /// User labels visible to (semi-)supervised methods.
    pub fn user_labels(&self) -> Vec<Option<usize>> {
        self.users
            .iter()
            .map(|u| u.label.map(Sentiment::index))
            .collect()
    }

    /// Tweet ids authored on days `lo..hi`.
    pub fn tweets_in_days(&self, lo: u32, hi: u32) -> Vec<usize> {
        self.tweets
            .iter()
            .filter(|t| (lo..hi).contains(&t.day))
            .map(|t| t.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_trajectory_constant() {
        let t = Trajectory::Stable(Sentiment::Positive);
        assert_eq!(t.stance_at(0), Sentiment::Positive);
        assert_eq!(t.stance_at(100), Sentiment::Positive);
        assert!(!t.flips());
        assert_eq!(t.majority_stance(10), Sentiment::Positive);
    }

    #[test]
    fn flip_trajectory_switches_at_day() {
        let t = Trajectory::Flip {
            before: Sentiment::Negative,
            after: Sentiment::Positive,
            at_day: 5,
        };
        assert_eq!(t.stance_at(4), Sentiment::Negative);
        assert_eq!(t.stance_at(5), Sentiment::Positive);
        assert!(t.flips());
        // flipped early → majority is "after"
        assert_eq!(t.majority_stance(100), Sentiment::Positive);
        // flipped late → majority is "before"
        let late = Trajectory::Flip {
            before: Sentiment::Negative,
            after: Sentiment::Positive,
            at_day: 90,
        };
        assert_eq!(late.majority_stance(100), Sentiment::Negative);
    }

    #[test]
    fn user_activity_window() {
        let u = UserProfile {
            id: 0,
            trajectory: Trajectory::Stable(Sentiment::Neutral),
            label: None,
            activity: 1.0,
            join_day: 3,
            leave_day: 7,
        };
        assert!(!u.active_on(2));
        assert!(u.active_on(3));
        assert!(u.active_on(7));
        assert!(!u.active_on(8));
    }
}

//! Assembling tri-clustering problem instances (offline and per-snapshot)
//! from a corpus.

use tgs_graph::{build_interactions, Interaction, InteractionWeights, UserGraph};
use tgs_linalg::{CsrMatrix, DenseMatrix};
use tgs_text::{PipelineConfig, Vectorizer, Vocabulary, Weighting};

use crate::model::Corpus;

/// A complete offline problem instance: every matrix Eq. (1) consumes,
/// plus ground truth and labels for evaluation.
#[derive(Debug, Clone)]
pub struct ProblemInstance {
    /// Frozen vocabulary over the whole corpus.
    pub vocab: Vocabulary,
    /// Tweet–feature matrix (`n × l`).
    pub xp: CsrMatrix,
    /// User–feature matrix (`m × l`).
    pub xu: CsrMatrix,
    /// User–tweet matrix (`m × n`).
    pub xr: CsrMatrix,
    /// User–user re-tweet graph (`Gu`, `Du`).
    pub graph: UserGraph,
    /// Feature–sentiment prior (`l × k`).
    pub sf0: DenseMatrix,
    /// Encoded tweets (feature ids), for the baselines.
    pub encoded: Vec<Vec<usize>>,
    /// Ground-truth tweet classes.
    pub tweet_truth: Vec<usize>,
    /// Tweet labels visible to supervised methods.
    pub tweet_labels: Vec<Option<usize>>,
    /// Ground-truth user classes (majority stance).
    pub user_truth: Vec<usize>,
    /// User labels visible to (semi-)supervised methods.
    pub user_labels: Vec<Option<usize>>,
    /// Number of sentiment classes.
    pub k: usize,
}

/// Builds the offline instance over the full corpus.
pub fn build_offline(corpus: &Corpus, k: usize, config: &PipelineConfig) -> ProblemInstance {
    let doc_user: Vec<usize> = corpus.tweets.iter().map(|t| t.author).collect();
    let docs: Vec<Vec<String>> = corpus.tweets.iter().map(|t| t.tokens.clone()).collect();
    let text = tgs_text::build_from_tokens(
        &docs,
        &doc_user,
        corpus.num_users(),
        &corpus.lexicon,
        k,
        config,
    );
    let (xr, graph) = interactions(corpus);
    ProblemInstance {
        vocab: text.vocab,
        xp: text.xp,
        xu: text.xu,
        xr,
        graph,
        sf0: text.sf0,
        encoded: text.encoded,
        tweet_truth: corpus.tweet_truth(),
        tweet_labels: corpus.tweet_labels(),
        user_truth: corpus.user_truth(),
        user_labels: corpus.user_labels(),
        k,
    }
}

fn interactions(corpus: &Corpus) -> (CsrMatrix, UserGraph) {
    let mut events = Vec::with_capacity(corpus.num_tweets() + corpus.retweets.len());
    for t in &corpus.tweets {
        events.push(Interaction::Post {
            user: t.author,
            tweet: t.id,
        });
    }
    for r in &corpus.retweets {
        events.push(Interaction::Retweet {
            user: r.user,
            tweet: r.tweet,
            author: corpus.tweets[r.tweet].author,
        });
    }
    build_interactions(
        corpus.num_users(),
        corpus.num_tweets(),
        &events,
        InteractionWeights::default(),
    )
}

/// The matrix bundle of one snapshot: everything [`assemble_snapshot_matrices`]
/// produces from encoded documents.
#[derive(Debug, Clone)]
pub struct SnapshotMatrices {
    /// Tweet–feature matrix (`n × l`).
    pub xp: CsrMatrix,
    /// User–feature matrix (`m × l`).
    pub xu: CsrMatrix,
    /// User–tweet matrix (`m × n`).
    pub xr: CsrMatrix,
    /// Snapshot re-tweet graph over local user indices.
    pub graph: UserGraph,
}

/// Assembles one snapshot's tripartite matrices from already-encoded
/// documents over a frozen global vocabulary — the single pipeline shared
/// by [`SnapshotBuilder::snapshot`] and the `tgs-engine` ingest worker,
/// so snapshot semantics (vectorization, interaction weights) cannot
/// drift between the batch and streaming paths.
///
/// * `encoded[i]` — feature ids of document `i`;
/// * `doc_authors[i]` — *local* (dense `0..num_users`) id of its author;
/// * `retweets` — `(local re-tweeting user, document index)` pairs.
pub fn assemble_snapshot_matrices(
    vocab: &Vocabulary,
    encoded: &[Vec<usize>],
    doc_authors: &[usize],
    num_users: usize,
    retweets: &[(usize, usize)],
    weighting: Weighting,
) -> SnapshotMatrices {
    let vectorizer = Vectorizer::fit(vocab, encoded, weighting);
    let xp = vectorizer.doc_feature_matrix(encoded);
    let xu = vectorizer.user_feature_matrix(encoded, doc_authors, num_users);
    let mut events = Vec::with_capacity(encoded.len() + retweets.len());
    for (doc, &author) in doc_authors.iter().enumerate() {
        events.push(Interaction::Post {
            user: author,
            tweet: doc,
        });
    }
    for &(user, doc) in retweets {
        events.push(Interaction::Retweet {
            user,
            tweet: doc,
            author: doc_authors[doc],
        });
    }
    let (xr, graph) = build_interactions(
        num_users,
        encoded.len(),
        &events,
        InteractionWeights::default(),
    );
    SnapshotMatrices { xp, xu, xr, graph }
}

/// A per-snapshot instance for the online setting. Rows of `xp`/`xu`
/// cover only the snapshot's tweets/users, while the *feature* dimension
/// stays the global vocabulary so factor matrices align across time.
#[derive(Debug, Clone)]
pub struct SnapshotInstance {
    /// Day range `[lo, hi)` of this snapshot.
    pub day_range: (u32, u32),
    /// Global tweet ids, in row order of `xp`.
    pub tweet_ids: Vec<usize>,
    /// Global user ids, in row order of `xu` / `xr`.
    pub user_ids: Vec<usize>,
    /// Tweet–feature matrix (`n(t) × l`).
    pub xp: CsrMatrix,
    /// User–feature matrix (`m(t) × l`).
    pub xu: CsrMatrix,
    /// User–tweet matrix (`m(t) × n(t)`).
    pub xr: CsrMatrix,
    /// Snapshot re-tweet graph over local user indices.
    pub graph: UserGraph,
    /// Ground-truth tweet classes (parallel to `tweet_ids`).
    pub tweet_truth: Vec<usize>,
    /// Ground-truth user stances *during this snapshot* (parallel to
    /// `user_ids`).
    pub user_truth: Vec<usize>,
}

/// Builds [`SnapshotInstance`]s against a fixed global vocabulary.
#[derive(Debug, Clone)]
pub struct SnapshotBuilder {
    vocab: Vocabulary,
    sf0: DenseMatrix,
    config: PipelineConfig,
    k: usize,
}

impl SnapshotBuilder {
    /// Fits the global vocabulary and lexicon prior on the full corpus.
    pub fn new(corpus: &Corpus, k: usize, config: &PipelineConfig) -> Self {
        let vocab = Vocabulary::build(
            corpus
                .tweets
                .iter()
                .map(|t| t.tokens.iter().map(String::as_str)),
            &config.vocab,
        );
        let sf0 = corpus
            .lexicon
            .prior_matrix(&vocab, k, config.lexicon_confidence);
        Self {
            vocab,
            sf0,
            config: config.clone(),
            k,
        }
    }

    /// The global vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The `l × k` lexicon prior (shared across snapshots).
    pub fn sf0(&self) -> &DenseMatrix {
        &self.sf0
    }

    /// Number of classes.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Builds the instance for days `lo..hi`.
    pub fn snapshot(&self, corpus: &Corpus, lo: u32, hi: u32) -> SnapshotInstance {
        self.snapshot_with(corpus, lo, hi, &mut SnapshotScratch::default())
    }

    /// Buffer-reusing variant of [`SnapshotBuilder::snapshot`]: the
    /// per-document encode buffers live in `scratch` and are recycled
    /// across calls, so a stream driver building one snapshot per day
    /// stops allocating a fresh id `Vec` per document once warm.
    pub fn snapshot_with(
        &self,
        corpus: &Corpus,
        lo: u32,
        hi: u32,
        scratch: &mut SnapshotScratch,
    ) -> SnapshotInstance {
        let tweet_ids = corpus.tweets_in_days(lo, hi);
        let tweet_local: std::collections::HashMap<usize, usize> = tweet_ids
            .iter()
            .enumerate()
            .map(|(local, &id)| (id, local))
            .collect();

        // Users present: authors of snapshot tweets + snapshot re-tweeters.
        let mut present = vec![false; corpus.num_users()];
        for &tid in &tweet_ids {
            present[corpus.tweets[tid].author] = true;
        }
        let snapshot_retweets: Vec<&crate::model::Retweet> = corpus
            .retweets
            .iter()
            .filter(|r| (lo..hi).contains(&r.day) && tweet_local.contains_key(&r.tweet))
            .collect();
        for r in &snapshot_retweets {
            present[r.user] = true;
        }
        let user_ids: Vec<usize> = (0..corpus.num_users()).filter(|&u| present[u]).collect();
        let user_local: std::collections::HashMap<usize, usize> = user_ids
            .iter()
            .enumerate()
            .map(|(local, &id)| (id, local))
            .collect();

        // Text + interaction matrices over the *global* vocabulary,
        // through the shared assembly pipeline (encode buffers recycled
        // via `scratch`).
        let n = tweet_ids.len();
        // Grow-only: buffers beyond `n` are kept (high-water reuse),
        // the assembly below reads exactly `..n`.
        if scratch.encoded.len() < n {
            scratch.encoded.resize_with(n, Vec::new);
        }
        for (&tid, ids) in tweet_ids.iter().zip(scratch.encoded.iter_mut()) {
            self.vocab
                .encode_into(corpus.tweets[tid].tokens.iter().map(String::as_str), ids);
        }
        let doc_user_local: Vec<usize> = tweet_ids
            .iter()
            .map(|&tid| user_local[&corpus.tweets[tid].author])
            .collect();
        let retweet_pairs: Vec<(usize, usize)> = snapshot_retweets
            .iter()
            .map(|r| (user_local[&r.user], tweet_local[&r.tweet]))
            .collect();
        let SnapshotMatrices { xp, xu, xr, graph } = assemble_snapshot_matrices(
            &self.vocab,
            &scratch.encoded[..n],
            &doc_user_local,
            user_ids.len(),
            &retweet_pairs,
            self.config.weighting,
        );

        let mid_day = lo + (hi.saturating_sub(lo + 1)) / 2;
        let tweet_truth = tweet_ids
            .iter()
            .map(|&tid| corpus.tweets[tid].sentiment.index())
            .collect();
        let user_truth = user_ids
            .iter()
            .map(|&u| corpus.users[u].trajectory.stance_at(mid_day).index())
            .collect();
        SnapshotInstance {
            day_range: (lo, hi),
            tweet_ids,
            user_ids,
            xp,
            xu,
            xr,
            graph,
            tweet_truth,
            user_truth,
        }
    }
}

/// Reusable encode buffers for [`SnapshotBuilder::snapshot_with`]: the
/// per-document id buffers are recycled across snapshots (only growth
/// beyond previous high-water marks allocates).
#[derive(Debug, Clone, Default)]
pub struct SnapshotScratch {
    encoded: Vec<Vec<usize>>,
}

/// Enumerates `[lo, hi)` windows of `window` days covering `0..num_days`.
pub fn day_windows(num_days: u32, window: u32) -> Vec<(u32, u32)> {
    assert!(window > 0, "window must be positive");
    let mut out = Vec::new();
    let mut lo = 0;
    while lo < num_days {
        out.push((lo, (lo + window).min(num_days)));
        lo += window;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GeneratorConfig;
    use crate::generator::generate;

    fn corpus() -> Corpus {
        generate(&GeneratorConfig {
            num_users: 25,
            total_tweets: 200,
            num_days: 12,
            ..Default::default()
        })
    }

    fn pipeline() -> PipelineConfig {
        let mut cfg = PipelineConfig::paper_defaults();
        cfg.vocab.min_count = 1;
        cfg
    }

    #[test]
    fn offline_instance_shapes_consistent() {
        let c = corpus();
        let inst = build_offline(&c, 3, &pipeline());
        let (n, m, l) = (c.num_tweets(), c.num_users(), inst.vocab.len());
        assert_eq!(inst.xp.shape(), (n, l));
        assert_eq!(inst.xu.shape(), (m, l));
        assert_eq!(inst.xr.shape(), (m, n));
        assert_eq!(inst.graph.num_nodes(), m);
        assert_eq!(inst.sf0.shape(), (l, 3));
        assert_eq!(inst.tweet_truth.len(), n);
        assert_eq!(inst.user_truth.len(), m);
    }

    #[test]
    fn xr_contains_posting_edges() {
        let c = corpus();
        let inst = build_offline(&c, 3, &pipeline());
        for t in c.tweets.iter().take(20) {
            assert!(
                inst.xr.get(t.author, t.id) > 0.0,
                "missing post edge for tweet {}",
                t.id
            );
        }
    }

    #[test]
    fn day_windows_cover_everything() {
        assert_eq!(day_windows(10, 3), vec![(0, 3), (3, 6), (6, 9), (9, 10)]);
        assert_eq!(day_windows(4, 4), vec![(0, 4)]);
        let total: u32 = day_windows(130, 7).iter().map(|(a, b)| b - a).sum();
        assert_eq!(total, 130);
    }

    #[test]
    fn snapshots_partition_tweets() {
        let c = corpus();
        let builder = SnapshotBuilder::new(&c, 3, &pipeline());
        let mut seen = 0usize;
        for (lo, hi) in day_windows(c.num_days, 3) {
            let snap = builder.snapshot(&c, lo, hi);
            seen += snap.tweet_ids.len();
            assert_eq!(snap.xp.rows(), snap.tweet_ids.len());
            assert_eq!(snap.xp.cols(), builder.vocab().len());
            assert_eq!(snap.xu.rows(), snap.user_ids.len());
            assert_eq!(snap.xr.shape(), (snap.user_ids.len(), snap.tweet_ids.len()));
            assert_eq!(snap.tweet_truth.len(), snap.tweet_ids.len());
            assert_eq!(snap.user_truth.len(), snap.user_ids.len());
        }
        assert_eq!(seen, c.num_tweets());
    }

    #[test]
    fn snapshot_users_author_their_tweets() {
        let c = corpus();
        let builder = SnapshotBuilder::new(&c, 3, &pipeline());
        let snap = builder.snapshot(&c, 0, 6);
        for (local, &tid) in snap.tweet_ids.iter().enumerate() {
            let author = c.tweets[tid].author;
            let local_user = snap
                .user_ids
                .iter()
                .position(|&u| u == author)
                .expect("author present");
            assert!(snap.xr.get(local_user, local) > 0.0);
        }
    }

    #[test]
    fn snapshot_vocab_shared_across_windows() {
        let c = corpus();
        let builder = SnapshotBuilder::new(&c, 3, &pipeline());
        let a = builder.snapshot(&c, 0, 4);
        let b = builder.snapshot(&c, 4, 8);
        assert_eq!(a.xp.cols(), b.xp.cols());
        assert_eq!(builder.sf0().shape(), (builder.vocab().len(), 3));
    }
}

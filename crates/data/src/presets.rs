//! Corpus presets mirroring the paper's datasets (Table 3) plus smaller
//! configurations for tests and examples.
//!
//! Day 0 is Aug 1, 2012. Calendar anchors used by the burst profiles and
//! the experiment harness:
//!
//! | day | date          |
//! |-----|---------------|
//! | 0   | Aug 1         |
//! | 31  | Sep 1         |
//! | 61  | Oct 1         |
//! | 97  | Nov 6 (election) |
//! | 122 | Dec 1         |

use crate::config::{GeneratorConfig, PoolSizes, VolumeBurst};

/// Day index of Sep 1 (the Prop 30 volume surge the paper points out).
pub const DAY_SEP1: u32 = 31;
/// Day index of Oct 1.
pub const DAY_OCT1: u32 = 61;
/// Day index of the Nov 6, 2012 election.
pub const DAY_ELECTION: u32 = 97;
/// Day index of Dec 1.
pub const DAY_DEC1: u32 = 122;
/// Number of days in the collection period (Aug 1 – Dec 8).
pub const NUM_DAYS: u32 = 130;

/// Proposition 30 ("Temporary Taxes to Fund Education"): a moderately
/// contested topic — Table 3 reports 8777 pos / 5014 neg labeled tweets
/// and 146/100/98 labeled users out of 837.
pub fn prop30(seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        topic: "prop30".into(),
        seed,
        num_users: 837,
        total_tweets: 18_000,
        num_days: NUM_DAYS,
        class_priors: [0.44, 0.29, 0.27],
        flip_fraction: 0.06,
        user_activity_exponent: 0.7,
        tweet_len: (6, 14),
        class_token_prob: 0.35,
        topic_token_prob: 0.35,
        stance_confusion: 0.13,
        tweet_noise: 0.12,
        retweets_per_tweet: 0.5,
        retweet_homophily: 0.85,
        lexicon_coverage: 0.45,
        lexicon_error: 0.06,
        labeled_tweet_fraction: 0.95,
        labeled_user_fraction: 0.41,
        pools: PoolSizes {
            positive: 300,
            negative: 300,
            topic: 450,
            noise: 1200,
        },
        word_zipf_exponent: 1.05,
        bursts: vec![
            VolumeBurst {
                day: DAY_SEP1,
                amplitude: 2.5,
                width: 2.5,
            },
            VolumeBurst {
                day: DAY_ELECTION,
                amplitude: 6.0,
                width: 3.5,
            },
        ],
        class_activity_boost: [1.15, 1.0, 0.9],
        churn: 0.35,
        vocabulary_drift: 0.55,
    }
}

/// Proposition 37 ("Genetically Engineered Foods, Labeling"): heavily
/// pro-labeling — Table 3 reports 34789 pos / 2587 neg labeled tweets and
/// 294/61/8 labeled users out of 1927, with much higher daily volume.
pub fn prop37(seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        topic: "prop37".into(),
        seed,
        num_users: 1_927,
        total_tweets: 40_000,
        num_days: NUM_DAYS,
        class_priors: [0.82, 0.12, 0.06],
        flip_fraction: 0.05,
        user_activity_exponent: 0.7,
        tweet_len: (6, 14),
        class_token_prob: 0.35,
        topic_token_prob: 0.35,
        stance_confusion: 0.13,
        tweet_noise: 0.10,
        retweets_per_tweet: 0.6,
        retweet_homophily: 0.85,
        lexicon_coverage: 0.45,
        lexicon_error: 0.06,
        labeled_tweet_fraction: 0.95,
        labeled_user_fraction: 0.19,
        pools: PoolSizes {
            positive: 350,
            negative: 350,
            topic: 500,
            noise: 1400,
        },
        word_zipf_exponent: 1.05,
        bursts: vec![
            VolumeBurst {
                day: DAY_SEP1,
                amplitude: 1.5,
                width: 2.5,
            },
            VolumeBurst {
                day: DAY_ELECTION,
                amplitude: 6.0,
                width: 3.5,
            },
        ],
        class_activity_boost: [2.0, 0.7, 0.7],
        churn: 0.35,
        vocabulary_drift: 0.55,
    }
}

/// A scaled-down Prop 30 (≈10%) for fast experiments and integration
/// tests — same shape, minutes become seconds.
pub fn prop30_small(seed: u64) -> GeneratorConfig {
    let mut cfg = prop30(seed);
    cfg.topic = "prop30-small".into();
    cfg.num_users = 120;
    cfg.total_tweets = 2_000;
    cfg.num_days = 40;
    cfg.bursts = vec![
        VolumeBurst {
            day: 10,
            amplitude: 2.5,
            width: 2.0,
        },
        VolumeBurst {
            day: 30,
            amplitude: 6.0,
            width: 2.0,
        },
    ];
    cfg.pools = PoolSizes {
        positive: 80,
        negative: 80,
        topic: 120,
        noise: 300,
    };
    cfg
}

/// A scaled-down Prop 37 for fast experiments.
pub fn prop37_small(seed: u64) -> GeneratorConfig {
    let mut cfg = prop37(seed);
    cfg.topic = "prop37-small".into();
    cfg.num_users = 200;
    cfg.total_tweets = 4_000;
    cfg.num_days = 40;
    cfg.bursts = vec![
        VolumeBurst {
            day: 10,
            amplitude: 1.5,
            width: 2.0,
        },
        VolumeBurst {
            day: 30,
            amplitude: 6.0,
            width: 2.0,
        },
    ];
    cfg.pools = PoolSizes {
        positive: 90,
        negative: 90,
        topic: 140,
        noise: 350,
    };
    cfg
}

/// A tiny corpus for unit tests (hundreds of tweets, runs in
/// milliseconds).
pub fn tiny(seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        topic: "tiny".into(),
        seed,
        num_users: 30,
        total_tweets: 300,
        num_days: 12,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use crate::stats::corpus_stats;

    #[test]
    fn presets_validate() {
        prop30(1).validate();
        prop37(1).validate();
        prop30_small(1).validate();
        prop37_small(1).validate();
        tiny(1).validate();
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn calendar_anchors_ordered() {
        assert!(DAY_SEP1 < DAY_OCT1);
        assert!(DAY_OCT1 < DAY_ELECTION);
        assert!(DAY_ELECTION < DAY_DEC1);
        assert!(DAY_DEC1 < NUM_DAYS);
    }

    #[test]
    fn prop30_small_statistics_shape() {
        let corpus = generate(&prop30_small(7));
        let s = corpus_stats(&corpus);
        // pos tweets should outnumber neg roughly 60/40 like the paper's
        // 8777/5014 split
        assert!(s.labeled_pos_tweets > s.labeled_neg_tweets);
        let ratio =
            s.labeled_pos_tweets as f64 / (s.labeled_pos_tweets + s.labeled_neg_tweets) as f64;
        assert!((0.5..0.75).contains(&ratio), "pos ratio {ratio}");
        // users: labeled minority, unlabeled majority
        assert!(s.unlabeled_users > s.labeled_pos_users);
    }

    #[test]
    fn prop37_small_heavily_positive() {
        let corpus = generate(&prop37_small(7));
        let s = corpus_stats(&corpus);
        let ratio =
            s.labeled_pos_tweets as f64 / (s.labeled_pos_tweets + s.labeled_neg_tweets) as f64;
        assert!(ratio > 0.8, "prop37 pos ratio {ratio}");
        assert!(s.labeled_neu_users < s.labeled_pos_users);
    }

    #[test]
    fn election_burst_visible_in_small_presets() {
        let corpus = generate(&prop30_small(3));
        let counts = crate::stats::daily_tweet_counts(&corpus);
        let at_burst = counts[30];
        let baseline = counts[20];
        assert!(
            at_burst as f64 > 1.5 * baseline.max(1) as f64,
            "burst {at_burst} vs baseline {baseline}"
        );
    }
}

//! Word pools with Zipfian frequencies and temporal popularity envelopes.
//!
//! Observation 1 of the paper: the *frequency distribution* of
//! vocabularies changes over time while word *sentiments* stay put. Each
//! word here has a fixed class (its pool) and a Gaussian popularity
//! envelope over the collection period, producing exactly that behaviour
//! (reproduced as Fig. 4).

use rand::Rng;
use rand::RngExt;

use tgs_text::Sentiment;

use crate::config::GeneratorConfig;
use crate::zipf::Zipf;

/// Seed words lending the generated corpora a recognizable ballot-topic
/// flavor (drawn from the paper's Table 2 and examples).
const SEED_POS: &[&str] = &[
    "#yeson37",
    "labelgmo",
    "monsanto",
    "stopmonsanto",
    "carighttoknow",
    "health",
    "safe",
    "cancer",
    "righttoknow",
    "labelit",
];
const SEED_NEG: &[&str] = &[
    "corn",
    "farmer",
    "#noprop37",
    "crop",
    "million",
    "feed",
    "india",
    "seed",
    "costly",
    "bureaucracy",
];
const SEED_TOPIC: &[&str] = &[
    "gmo",
    "label",
    "food",
    "california",
    "ballot",
    "vote",
    "election",
    "prop",
    "measure",
    "initiative",
    "genetically",
    "modified",
];
const SEED_NOISE: &[&str] = &[
    "today", "people", "think", "really", "make", "time", "good", "new", "know", "going",
];

/// One pool of words: tokens, a Zipf rank distribution, and per-word
/// temporal envelopes.
#[derive(Debug, Clone)]
pub struct WordPool {
    words: Vec<String>,
    zipf: Zipf,
    /// `(peak_day, width)` of each word's popularity envelope.
    envelope: Vec<(f64, f64)>,
    /// Popularity floor in `[0, 1]` (1 = no drift at all).
    floor: f64,
}

impl WordPool {
    fn build(
        prefix: &str,
        seeds: &[&str],
        size: usize,
        zipf_s: f64,
        num_days: u32,
        drift: f64,
        rng: &mut impl Rng,
    ) -> Self {
        let mut words: Vec<String> = seeds.iter().take(size).map(|s| s.to_string()).collect();
        for i in words.len()..size {
            words.push(format!("{prefix}{i}"));
        }
        let envelope = (0..size)
            .map(|_| {
                let peak = rng.random_range(0.0..num_days.max(1) as f64);
                let width = rng.random_range(0.15..0.6) * num_days.max(1) as f64;
                (peak, width)
            })
            .collect();
        Self {
            words,
            zipf: Zipf::new(size, zipf_s),
            envelope,
            floor: 1.0 - drift,
        }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when empty (never, post-validation).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// All words in rank order.
    pub fn words(&self) -> &[String] {
        &self.words
    }

    /// Relative popularity of rank `r` on `day`, in `(0, 1]`.
    pub fn popularity(&self, r: usize, day: u32) -> f64 {
        let (peak, width) = self.envelope[r];
        let z = (day as f64 - peak) / width;
        self.floor + (1.0 - self.floor) * (-0.5 * z * z).exp()
    }

    /// Samples a word for `day`: Zipf rank proposal, accepted against the
    /// temporal envelope (acceptance ≥ `floor`, so the loop is short).
    pub fn sample<'a>(&'a self, day: u32, rng: &mut impl Rng) -> &'a str {
        loop {
            let r = self.zipf.sample(rng);
            if self.floor >= 1.0 || rng.random_range(0.0..1.0) < self.popularity(r, day) {
                return &self.words[r];
            }
        }
    }
}

/// The four pools of a corpus.
#[derive(Debug, Clone)]
pub struct WordPools {
    /// Positive-stance pool.
    pub positive: WordPool,
    /// Negative-stance pool.
    pub negative: WordPool,
    /// Shared topic pool.
    pub topic: WordPool,
    /// Noise pool.
    pub noise: WordPool,
}

impl WordPools {
    /// Builds all pools from the generator configuration.
    pub fn build(config: &GeneratorConfig, rng: &mut impl Rng) -> Self {
        let d = config.num_days;
        let s = config.word_zipf_exponent;
        let drift = config.vocabulary_drift;
        Self {
            positive: WordPool::build("upbeat", SEED_POS, config.pools.positive, s, d, drift, rng),
            negative: WordPool::build("gloomy", SEED_NEG, config.pools.negative, s, d, drift, rng),
            topic: WordPool::build("topic", SEED_TOPIC, config.pools.topic, s, d, drift, rng),
            noise: WordPool::build("w", SEED_NOISE, config.pools.noise, s, d, drift, rng),
        }
    }

    /// The stance pool for a class (`None` for Neutral).
    pub fn stance_pool(&self, class: Sentiment) -> Option<&WordPool> {
        match class {
            Sentiment::Positive => Some(&self.positive),
            Sentiment::Negative => Some(&self.negative),
            Sentiment::Neutral => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgs_linalg::seeded_rng;

    fn pools() -> WordPools {
        let cfg = GeneratorConfig::default();
        let mut rng = seeded_rng(1);
        WordPools::build(&cfg, &mut rng)
    }

    #[test]
    fn pools_have_configured_sizes() {
        let p = pools();
        let cfg = GeneratorConfig::default();
        assert_eq!(p.positive.len(), cfg.pools.positive);
        assert_eq!(p.negative.len(), cfg.pools.negative);
        assert_eq!(p.topic.len(), cfg.pools.topic);
        assert_eq!(p.noise.len(), cfg.pools.noise);
    }

    #[test]
    fn seed_words_present_and_disjoint_fillers() {
        let p = pools();
        assert_eq!(p.positive.words()[0], "#yeson37");
        assert_eq!(p.negative.words()[0], "corn");
        assert!(p.positive.words().iter().any(|w| w.starts_with("upbeat")));
        // no accidental overlap between stance pools
        for w in p.positive.words() {
            assert!(!p.negative.words().contains(w), "overlap: {w}");
        }
    }

    #[test]
    fn popularity_bounded_and_peaked() {
        let p = pools();
        for r in 0..5 {
            for day in 0..20 {
                let v = p.positive.popularity(r, day);
                assert!((0.0..=1.0 + 1e-12).contains(&v));
            }
        }
    }

    #[test]
    fn sample_returns_pool_words_deterministically() {
        let p = pools();
        let mut rng1 = seeded_rng(9);
        let mut rng2 = seeded_rng(9);
        for day in 0..5 {
            let a = p.topic.sample(day, &mut rng1).to_string();
            let b = p.topic.sample(day, &mut rng2).to_string();
            assert_eq!(a, b);
            assert!(p.topic.words().contains(&a));
        }
    }

    #[test]
    fn zero_drift_means_static_popularity() {
        let cfg = GeneratorConfig {
            vocabulary_drift: 0.0,
            ..Default::default()
        };
        let mut rng = seeded_rng(3);
        let p = WordPools::build(&cfg, &mut rng);
        for day in 0..20 {
            assert_eq!(p.noise.popularity(0, day), 1.0);
        }
    }
}

//! Corpus import/export in a plain TSV interchange format, so real
//! (non-synthetic) Twitter datasets can be fed through the same pipeline
//! and synthetic corpora can be shared between tools.
//!
//! Format (tab-separated, one record per line, `#`-prefixed comments):
//!
//! ```text
//! # tweets
//! T <id> <author> <day> <sentiment> <label|-> <token token …>
//! # retweets
//! R <user> <tweet> <day>
//! # users
//! U <id> <stance|before:after:day> <label|-> <activity> <join> <leave>
//! # lexicon
//! L <word> <pos|neg>
//! ```

use std::io::{BufRead, Write};

use tgs_text::{Lexicon, Sentiment};

use crate::model::{Corpus, Retweet, Trajectory, Tweet, UserProfile};

/// Errors raised when parsing a corpus file.
#[derive(Debug)]
pub enum CorpusIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number and a description.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for CorpusIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusIoError::Io(e) => write!(f, "corpus io error: {e}"),
            CorpusIoError::Parse { line, message } => {
                write!(f, "corpus parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for CorpusIoError {}

impl From<std::io::Error> for CorpusIoError {
    fn from(e: std::io::Error) -> Self {
        CorpusIoError::Io(e)
    }
}

fn sentiment_tag(s: Sentiment) -> &'static str {
    s.as_str()
}

fn parse_sentiment(tag: &str, line: usize) -> Result<Sentiment, CorpusIoError> {
    match tag {
        "pos" => Ok(Sentiment::Positive),
        "neg" => Ok(Sentiment::Negative),
        "neu" => Ok(Sentiment::Neutral),
        other => Err(CorpusIoError::Parse {
            line,
            message: format!("unknown sentiment tag '{other}'"),
        }),
    }
}

/// Writes a corpus to any writer in the TSV interchange format.
pub fn write_corpus<W: Write>(corpus: &Corpus, mut out: W) -> std::io::Result<()> {
    writeln!(out, "# tripartite-sentiment corpus v1")?;
    writeln!(out, "# topic\t{}\tdays\t{}", corpus.topic, corpus.num_days)?;
    for t in &corpus.tweets {
        let label = t.label.map(sentiment_tag).unwrap_or("-");
        writeln!(
            out,
            "T\t{}\t{}\t{}\t{}\t{}\t{}",
            t.id,
            t.author,
            t.day,
            sentiment_tag(t.sentiment),
            label,
            t.tokens.join(" ")
        )?;
    }
    for r in &corpus.retweets {
        writeln!(out, "R\t{}\t{}\t{}", r.user, r.tweet, r.day)?;
    }
    for u in &corpus.users {
        let stance = match u.trajectory {
            Trajectory::Stable(s) => sentiment_tag(s).to_string(),
            Trajectory::Flip {
                before,
                after,
                at_day,
            } => {
                format!(
                    "{}:{}:{}",
                    sentiment_tag(before),
                    sentiment_tag(after),
                    at_day
                )
            }
        };
        let label = u.label.map(sentiment_tag).unwrap_or("-");
        writeln!(
            out,
            "U\t{}\t{}\t{}\t{}\t{}\t{}",
            u.id, stance, label, u.activity, u.join_day, u.leave_day
        )?;
    }
    for (word, class) in corpus.lexicon.iter() {
        writeln!(out, "L\t{}\t{}", word, sentiment_tag(class))?;
    }
    Ok(())
}

/// Reads a corpus from any buffered reader. Records may appear in any
/// order; tweets are re-sorted by day and re-numbered if needed.
pub fn read_corpus<R: BufRead>(reader: R) -> Result<Corpus, CorpusIoError> {
    let mut topic = "imported".to_string();
    let mut num_days = 0u32;
    let mut tweets: Vec<Tweet> = Vec::new();
    let mut retweets: Vec<Retweet> = Vec::new();
    let mut users: Vec<UserProfile> = Vec::new();
    let mut lexicon = Lexicon::new();

    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# topic\t") {
            let mut it = rest.split('\t');
            if let Some(t) = it.next() {
                topic = t.to_string();
            }
            if let (Some("days"), Some(d)) = (it.next(), it.next()) {
                num_days = d.parse().map_err(|_| CorpusIoError::Parse {
                    line: line_no,
                    message: "bad day count".into(),
                })?;
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        let parse_err = |message: String| CorpusIoError::Parse {
            line: line_no,
            message,
        };
        let num = |s: &str| -> Result<usize, CorpusIoError> {
            s.parse().map_err(|_| CorpusIoError::Parse {
                line: line_no,
                message: format!("expected a number, got '{s}'"),
            })
        };
        match fields.first() {
            Some(&"T") => {
                if fields.len() != 7 {
                    return Err(parse_err(format!(
                        "T record needs 7 fields, got {}",
                        fields.len()
                    )));
                }
                let sentiment = parse_sentiment(fields[4], line_no)?;
                let label = if fields[5] == "-" {
                    None
                } else {
                    Some(parse_sentiment(fields[5], line_no)?)
                };
                tweets.push(Tweet {
                    id: num(fields[1])?,
                    author: num(fields[2])?,
                    day: num(fields[3])? as u32,
                    sentiment,
                    label,
                    tokens: fields[6].split(' ').map(str::to_string).collect(),
                });
            }
            Some(&"R") => {
                if fields.len() != 4 {
                    return Err(parse_err(format!(
                        "R record needs 4 fields, got {}",
                        fields.len()
                    )));
                }
                retweets.push(Retweet {
                    user: num(fields[1])?,
                    tweet: num(fields[2])?,
                    day: num(fields[3])? as u32,
                });
            }
            Some(&"U") => {
                if fields.len() != 7 {
                    return Err(parse_err(format!(
                        "U record needs 7 fields, got {}",
                        fields.len()
                    )));
                }
                let trajectory = if let Some((before, rest)) = fields[2].split_once(':') {
                    let (after, day) =
                        rest.split_once(':').ok_or_else(|| CorpusIoError::Parse {
                            line: line_no,
                            message: "flip stance needs before:after:day".into(),
                        })?;
                    Trajectory::Flip {
                        before: parse_sentiment(before, line_no)?,
                        after: parse_sentiment(after, line_no)?,
                        at_day: num(day)? as u32,
                    }
                } else {
                    Trajectory::Stable(parse_sentiment(fields[2], line_no)?)
                };
                let label = if fields[3] == "-" {
                    None
                } else {
                    Some(parse_sentiment(fields[3], line_no)?)
                };
                let activity: f64 = fields[4].parse().map_err(|_| CorpusIoError::Parse {
                    line: line_no,
                    message: format!("bad activity '{}'", fields[4]),
                })?;
                users.push(UserProfile {
                    id: num(fields[1])?,
                    trajectory,
                    label,
                    activity,
                    join_day: num(fields[5])? as u32,
                    leave_day: num(fields[6])? as u32,
                });
            }
            Some(&"L") => {
                if fields.len() != 3 {
                    return Err(parse_err(format!(
                        "L record needs 3 fields, got {}",
                        fields.len()
                    )));
                }
                lexicon.insert(fields[1], parse_sentiment(fields[2], line_no)?);
            }
            Some(other) => {
                return Err(parse_err(format!("unknown record type '{other}'")));
            }
            None => {}
        }
    }

    // Normalize: sort tweets by (day, id) and re-number densely so the
    // invariants the rest of the pipeline expects always hold.
    tweets.sort_by_key(|t| (t.day, t.id));
    let mut id_map = std::collections::HashMap::with_capacity(tweets.len());
    for (new_id, t) in tweets.iter_mut().enumerate() {
        id_map.insert(t.id, new_id);
        t.id = new_id;
    }
    for r in &mut retweets {
        r.tweet = *id_map.get(&r.tweet).ok_or(CorpusIoError::Parse {
            line: 0,
            message: format!("retweet references unknown tweet {}", r.tweet),
        })?;
    }
    users.sort_by_key(|u| u.id);
    let max_day = tweets.iter().map(|t| t.day).max().unwrap_or(0);
    let num_days = num_days.max(max_day + 1);
    // Validate references.
    for t in &tweets {
        if t.author >= users.len() {
            return Err(CorpusIoError::Parse {
                line: 0,
                message: format!("tweet {} authored by unknown user {}", t.id, t.author),
            });
        }
    }
    for r in &retweets {
        if r.user >= users.len() {
            return Err(CorpusIoError::Parse {
                line: 0,
                message: format!("retweet by unknown user {}", r.user),
            });
        }
    }
    Ok(Corpus {
        topic,
        users,
        tweets,
        retweets,
        lexicon,
        num_days,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use crate::presets;

    #[test]
    fn roundtrip_preserves_corpus() {
        let corpus = generate(&presets::tiny(99));
        let mut buf = Vec::new();
        write_corpus(&corpus, &mut buf).unwrap();
        let back = read_corpus(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back.topic, corpus.topic);
        assert_eq!(back.num_days, corpus.num_days);
        assert_eq!(back.num_tweets(), corpus.num_tweets());
        assert_eq!(back.num_users(), corpus.num_users());
        assert_eq!(back.retweets.len(), corpus.retweets.len());
        assert_eq!(back.lexicon.len(), corpus.lexicon.len());
        for (a, b) in corpus.tweets.iter().zip(back.tweets.iter()) {
            assert_eq!(a.tokens, b.tokens);
            assert_eq!(a.sentiment, b.sentiment);
            assert_eq!(a.label, b.label);
            assert_eq!(a.author, b.author);
            assert_eq!(a.day, b.day);
        }
        for (a, b) in corpus.users.iter().zip(back.users.iter()) {
            assert_eq!(a.trajectory, b.trajectory);
            assert_eq!(a.label, b.label);
        }
    }

    #[test]
    fn rejects_malformed_records() {
        let cases = [
            "T\t0\t0",                     // too few fields
            "T\t0\t0\t0\tmaybe\t-\thello", // bad sentiment
            "X\t1\t2\t3",                  // unknown record
            "U\t0\tpos:neg\t-\t1.0\t0\t5", // bad flip spec
        ];
        for case in cases {
            let err = read_corpus(std::io::BufReader::new(case.as_bytes()));
            assert!(err.is_err(), "should reject: {case}");
        }
    }

    #[test]
    fn reorders_out_of_order_tweets() {
        let data = "\
# topic\tdemo\tdays\t5
U\t0\tpos\t-\t1.0\t0\t4
T\t7\t0\t3\tpos\t-\tlate words
T\t2\t0\t1\tneg\tneg\tearly words
R\t0\t7\t3
";
        // retweet by author is allowed at the io layer
        let corpus = read_corpus(std::io::BufReader::new(data.as_bytes())).unwrap();
        assert_eq!(corpus.tweets[0].day, 1);
        assert_eq!(corpus.tweets[1].day, 3);
        // the retweet's reference follows the renumbering
        assert_eq!(corpus.retweets[0].tweet, 1);
        assert_eq!(corpus.num_days, 5);
    }

    #[test]
    fn rejects_dangling_references() {
        let data = "U\t0\tpos\t-\t1.0\t0\t4\nT\t0\t5\t0\tpos\t-\thello world\n";
        assert!(read_corpus(std::io::BufReader::new(data.as_bytes())).is_err());
    }
}

//! Corpus statistics backing Tables 2–3 and Figs. 4, 11(a), 12(a).

use std::collections::HashMap;

use tgs_text::Sentiment;

use crate::model::Corpus;

/// Counts mirroring the paper's Table 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusStats {
    /// Labeled positive tweets.
    pub labeled_pos_tweets: usize,
    /// Labeled negative tweets.
    pub labeled_neg_tweets: usize,
    /// Unlabeled tweets.
    pub unlabeled_tweets: usize,
    /// Labeled positive users.
    pub labeled_pos_users: usize,
    /// Labeled negative users.
    pub labeled_neg_users: usize,
    /// Labeled neutral users.
    pub labeled_neu_users: usize,
    /// Unlabeled users.
    pub unlabeled_users: usize,
    /// Total tweets.
    pub total_tweets: usize,
    /// Total users.
    pub total_users: usize,
    /// Total re-tweet events.
    pub total_retweets: usize,
}

/// Computes [`CorpusStats`].
pub fn corpus_stats(corpus: &Corpus) -> CorpusStats {
    let mut s = CorpusStats {
        labeled_pos_tweets: 0,
        labeled_neg_tweets: 0,
        unlabeled_tweets: 0,
        labeled_pos_users: 0,
        labeled_neg_users: 0,
        labeled_neu_users: 0,
        unlabeled_users: 0,
        total_tweets: corpus.num_tweets(),
        total_users: corpus.num_users(),
        total_retweets: corpus.retweets.len(),
    };
    for t in &corpus.tweets {
        match t.label {
            Some(Sentiment::Positive) => s.labeled_pos_tweets += 1,
            Some(Sentiment::Negative) => s.labeled_neg_tweets += 1,
            _ => s.unlabeled_tweets += 1,
        }
    }
    for u in &corpus.users {
        match u.label {
            Some(Sentiment::Positive) => s.labeled_pos_users += 1,
            Some(Sentiment::Negative) => s.labeled_neg_users += 1,
            Some(Sentiment::Neutral) => s.labeled_neu_users += 1,
            None => s.unlabeled_users += 1,
        }
    }
    s
}

/// Top-`k` tokens by raw frequency among tweets of a ground-truth class
/// (Table 2). Ties break lexicographically for determinism.
pub fn top_words(corpus: &Corpus, class: Sentiment, k: usize) -> Vec<(String, usize)> {
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for t in &corpus.tweets {
        if t.sentiment == class {
            for tok in &t.tokens {
                *counts.entry(tok.as_str()).or_insert(0) += 1;
            }
        }
    }
    let mut entries: Vec<(String, usize)> = counts
        .into_iter()
        .map(|(w, c)| (w.to_string(), c))
        .collect();
    entries.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    entries.truncate(k);
    entries
}

/// Token frequencies within a day range `[lo, hi)` (Fig. 4's per-period
/// feature distributions). Returned in descending frequency order.
pub fn period_feature_frequencies(corpus: &Corpus, lo: u32, hi: u32) -> Vec<(String, usize)> {
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for t in &corpus.tweets {
        if (lo..hi).contains(&t.day) {
            for tok in &t.tokens {
                *counts.entry(tok.as_str()).or_insert(0) += 1;
            }
        }
    }
    let mut entries: Vec<(String, usize)> = counts
        .into_iter()
        .map(|(w, c)| (w.to_string(), c))
        .collect();
    entries.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    entries
}

/// Tweets per day, `n(t)` (the right axes of Figs. 11a / 12a).
pub fn daily_tweet_counts(corpus: &Corpus) -> Vec<usize> {
    let mut counts = vec![0usize; corpus.num_days as usize];
    for t in &corpus.tweets {
        counts[t.day as usize] += 1;
    }
    counts
}

/// Fraction of users whose stance flips during the period.
pub fn flip_fraction(corpus: &Corpus) -> f64 {
    if corpus.users.is_empty() {
        return 0.0;
    }
    let flips = corpus.users.iter().filter(|u| u.trajectory.flips()).count();
    flips as f64 / corpus.num_users() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GeneratorConfig;
    use crate::generator::generate;

    fn corpus() -> Corpus {
        generate(&GeneratorConfig {
            num_users: 30,
            total_tweets: 300,
            num_days: 15,
            ..Default::default()
        })
    }

    #[test]
    fn stats_add_up() {
        let c = corpus();
        let s = corpus_stats(&c);
        assert_eq!(
            s.labeled_pos_tweets + s.labeled_neg_tweets + s.unlabeled_tweets,
            s.total_tweets
        );
        assert_eq!(
            s.labeled_pos_users + s.labeled_neg_users + s.labeled_neu_users + s.unlabeled_users,
            s.total_users
        );
        assert!(s.labeled_pos_tweets > 0);
    }

    #[test]
    fn top_words_reflect_stance_pools() {
        let c = corpus();
        let pos = top_words(&c, Sentiment::Positive, 8);
        assert_eq!(pos.len(), 8);
        // Counts must be descending.
        for w in pos.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // The positive class's frequent words should rarely be negative
        // stance words.
        let neg_heavy = pos
            .iter()
            .filter(|(w, _)| w.starts_with("gloomy") || w == "corn" || w == "#noprop37")
            .count();
        assert!(
            neg_heavy <= 2,
            "negative stance words leaked into positive top-8"
        );
    }

    #[test]
    fn daily_counts_sum_to_total() {
        let c = corpus();
        let counts = daily_tweet_counts(&c);
        assert_eq!(counts.len(), 15);
        assert_eq!(counts.iter().sum::<usize>(), c.num_tweets());
    }

    #[test]
    fn period_frequencies_differ_between_periods() {
        let c = corpus();
        let early = period_feature_frequencies(&c, 0, 5);
        let late = period_feature_frequencies(&c, 10, 15);
        assert!(!early.is_empty() && !late.is_empty());
        // Vocabulary drift ⇒ the top token sets differ at least somewhat.
        let early_top: std::collections::HashSet<&str> =
            early.iter().take(20).map(|(w, _)| w.as_str()).collect();
        let late_top: std::collections::HashSet<&str> =
            late.iter().take(20).map(|(w, _)| w.as_str()).collect();
        assert!(early_top != late_top || early.len() != late.len());
    }

    #[test]
    fn flip_fraction_in_expected_range() {
        let c = corpus();
        let f = flip_fraction(&c);
        assert!((0.0..0.3).contains(&f), "flip fraction {f}");
    }
}

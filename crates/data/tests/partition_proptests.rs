//! Property tests for the user-range partitioner and the shard-local
//! matrix assembly: over random corpora and shard counts `S ∈ 1..=8`,
//! every user maps to exactly one shard, tweet rows follow their user,
//! and concatenating the shard assemblies is a permutation of the
//! unsharded assembly.
//!
//! The permutation property is checked under count weighting — a row's
//! values then depend only on its own document/user, so it must be
//! byte-identical wherever it lands. (TF-IDF weights are fitted per
//! document set and are shard-dependent by construction; the shapes and
//! sparsity-pattern properties still hold there.)

use proptest::prelude::*;
use tgs_data::{
    build_offline_sharded, generate, route_docs, route_docs_ghost, GeneratorConfig, PartitionMap,
    RepartitionOp, RepartitionPlan, UserRangePartitioner,
};
use tgs_text::{PipelineConfig, Weighting};

/// Derives an arbitrary-but-valid repartition plan from a map and a
/// stream of raw op choices, applying each op as it is derived so later
/// ops see the updated topology. Returns the plan and the final map.
fn derive_plan(
    map: &PartitionMap,
    raw_ops: &[(u8, usize, usize)],
) -> (RepartitionPlan, PartitionMap) {
    let mut plan = RepartitionPlan::default();
    let mut cur = map.clone();
    for &(kind, a, b) in raw_ops {
        let shards = cur.shards();
        let universe = cur.universe();
        let op = match kind % 3 {
            0 => {
                // Split some shard strictly inside its range, if wide
                // enough.
                let shard = a % shards;
                let (lo, _) = cur.range(shard);
                let hi = cur.starts().get(shard + 1).copied().unwrap_or(universe);
                if hi <= lo + 1 {
                    continue;
                }
                let at = lo + 1 + b % (hi - lo - 1);
                RepartitionOp::Split { shard, at }
            }
            1 => {
                if shards < 2 {
                    continue;
                }
                RepartitionOp::Merge {
                    left: a % (shards - 1),
                }
            }
            _ => {
                if shards < 2 {
                    continue;
                }
                let boundary = 1 + a % (shards - 1);
                let lo = cur.starts()[boundary - 1];
                let hi = cur.starts().get(boundary + 1).copied().unwrap_or(universe);
                if hi <= lo + 1 {
                    continue;
                }
                RepartitionOp::MoveBoundary {
                    boundary,
                    to: lo + 1 + b % (hi - lo - 1),
                }
            }
        };
        cur = RepartitionPlan::single(op)
            .apply(&cur)
            .expect("derived op is valid by construction");
        plan.ops.push(op);
    }
    (plan, cur)
}

fn pipeline() -> PipelineConfig {
    let mut cfg = PipelineConfig::paper_defaults();
    cfg.vocab.min_count = 1;
    cfg.weighting = Weighting::Counts;
    cfg
}

fn corpus_config(users: usize, tweets: usize, days: u32, seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        num_users: users,
        total_tweets: tweets,
        num_days: days,
        seed,
        ..GeneratorConfig::default()
    }
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(24))]

    #[test]
    fn every_user_maps_to_exactly_one_shard(
        universe in 1usize..200,
        shards in 1usize..=8,
        probe in 0usize..500,
    ) {
        let p = UserRangePartitioner::new(universe, shards);
        // Total function, stable, and within bounds.
        let s = p.shard_of(probe);
        prop_assert!(s < shards);
        prop_assert_eq!(s, p.shard_of(probe), "routing must be stable");
        // Ranges tile the universe: each user is inside exactly one.
        let mut owners = 0;
        for shard in 0..shards {
            let (lo, hi) = p.range(shard);
            if (lo..hi).contains(&probe.min(universe.saturating_sub(1))) {
                owners += 1;
            }
        }
        prop_assert_eq!(owners, 1);
    }

    #[test]
    fn tweets_follow_their_user_and_routing_partitions_docs(
        (users, tweets, days) in (4usize..30, 20usize..120, 1u32..6),
        shards in 1usize..=8,
        seed in 0u64..1_000,
    ) {
        let corpus = generate(&corpus_config(users, tweets, days, seed));
        let p = UserRangePartitioner::new(corpus.num_users(), shards).to_map();
        let authors: Vec<usize> = corpus.tweets.iter().map(|t| t.author).collect();
        let events: Vec<(usize, usize)> =
            corpus.retweets.iter().map(|r| (r.user, r.tweet)).collect();
        let routing = route_docs(&p, &authors, &events);
        // Every document lands in exactly one shard — the shard of its
        // author — and the per-shard lists partition the document set.
        let mut seen = vec![0usize; authors.len()];
        for (shard, docs) in routing.shard_docs.iter().enumerate() {
            for &doc in docs {
                seen[doc] += 1;
                prop_assert_eq!(p.shard_of(authors[doc]), shard);
            }
        }
        prop_assert!(seen.iter().all(|&n| n == 1));
        // Kept re-tweets stay within their shard; drops are exactly the
        // cross-shard ones.
        let kept: usize = routing.shard_retweets.iter().map(Vec::len).sum();
        let crossing = events
            .iter()
            .filter(|&&(u, doc)| p.shard_of(u) != p.shard_of(authors[doc]))
            .count();
        prop_assert_eq!(routing.dropped_retweets, crossing);
        prop_assert_eq!(kept + crossing, events.len());
    }

    #[test]
    fn any_plan_keeps_every_user_in_exactly_one_shard(
        universe in 2usize..200,
        shards in 1usize..=6,
        raw_ops in proptest::collection::vec((0u8..3, 0usize..64, 0usize..256), 0..6),
        probe in 0usize..500,
    ) {
        let map = PartitionMap::even(universe, shards);
        let (plan, expected) = derive_plan(&map, &raw_ops);
        let applied = plan.apply(&map).expect("derived plan must apply");
        prop_assert_eq!(&applied, &expected, "op-at-a-time equals whole-plan");
        // Every user — inside or beyond the universe — has exactly one
        // owner, and the owner's range contains them.
        let s = applied.shard_of(probe);
        prop_assert!(s < applied.shards());
        let mut owners = 0;
        for shard in 0..applied.shards() {
            let (lo, hi) = applied.range(shard);
            if (lo..hi).contains(&probe.min(universe - 1)) {
                owners += 1;
            }
        }
        prop_assert_eq!(owners, 1);
        // The diff lists a range for every user whose owner changed and
        // nothing else.
        let diff = map.diff(&applied);
        for user in 0..universe + 10 {
            let moved = map.shard_of(user) != applied.shard_of(user);
            let listed = diff
                .iter()
                .any(|m| user >= m.lo && (m.hi == usize::MAX || user < m.hi));
            prop_assert_eq!(moved, listed, "user {}: moved={} listed={}", user, moved, listed);
            if let Some(m) = diff
                .iter()
                .find(|m| user >= m.lo && (m.hi == usize::MAX || user < m.hi))
            {
                prop_assert_eq!(m.from, map.shard_of(user));
                prop_assert_eq!(m.to, applied.shard_of(user));
            }
        }
    }

    #[test]
    fn ghost_routing_preserves_the_retweet_edge_multiset(
        (users, tweets, days) in (4usize..30, 20usize..120, 1u32..6),
        shards in 1usize..=8,
        seed in 0u64..1_000,
    ) {
        let corpus = generate(&corpus_config(users, tweets, days, seed));
        let map = PartitionMap::even(corpus.num_users(), shards);
        let authors: Vec<usize> = corpus.tweets.iter().map(|t| t.author).collect();
        let events: Vec<(usize, usize)> =
            corpus.retweets.iter().map(|r| (r.user, r.tweet)).collect();
        let routing = route_docs_ghost(&map, &authors, &events);
        prop_assert_eq!(routing.dropped_retweets, 0, "ghost mode never drops");
        // Re-assemble the global (user, doc) edge multiset from the
        // per-shard slices: it must equal the input exactly.
        let mut reassembled: Vec<(usize, usize)> = Vec::new();
        for (shard, kept) in routing.shard_retweets.iter().enumerate() {
            for &(user, local_doc) in kept {
                reassembled.push((user, routing.shard_docs[shard][local_doc]));
            }
        }
        let mut expected = events.clone();
        reassembled.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(reassembled, expected);
        // Ghost bookkeeping: ghosts are exactly the cross-shard users of
        // kept edges, and the ghost-edge count is the cross-shard count.
        let crossing = events
            .iter()
            .filter(|&&(u, doc)| map.shard_of(u) != map.shard_of(authors[doc]))
            .count();
        prop_assert_eq!(routing.ghost_edges, crossing);
        for (shard, ghosts) in routing.shard_ghosts.iter().enumerate() {
            for &g in ghosts {
                prop_assert!(map.shard_of(g) != shard, "a ghost is always remote");
            }
        }
    }

    #[test]
    fn shard_concatenation_is_a_permutation_of_the_unsharded_assembly(
        (users, tweets, days) in (4usize..24, 20usize..100, 1u32..5),
        shards in 1usize..=8,
        seed in 0u64..1_000,
    ) {
        // Drop re-tweets so interaction matrices are comparable too: a
        // cross-shard re-tweet edge is (by documented design) dropped
        // during sharding, which would make Xr differ, not permute.
        let mut corpus = generate(&corpus_config(users, tweets, days, seed));
        corpus.retweets.clear();
        let cfg = pipeline();
        let sharded = build_offline_sharded(&corpus, 3, shards, &cfg);
        let unsharded = build_offline_sharded(&corpus, 3, 1, &cfg);
        prop_assert_eq!(sharded.dropped_retweets, 0);
        let global = &unsharded.shards[0];
        let tweet_row: std::collections::HashMap<usize, usize> = global
            .tweet_ids
            .iter()
            .enumerate()
            .map(|(row, &t)| (t, row))
            .collect();
        let user_row: std::collections::HashMap<usize, usize> = global
            .user_ids
            .iter()
            .enumerate()
            .map(|(row, &u)| (u, row))
            .collect();

        let mut tweets_seen = 0usize;
        let mut users_seen = 0usize;
        for slice in &sharded.shards {
            // Tweet rows: identical values wherever the row landed.
            for (local, &t) in slice.tweet_ids.iter().enumerate() {
                let global_row = tweet_row[&t];
                prop_assert_eq!(
                    slice.matrices.xp.iter_row(local).collect::<Vec<_>>(),
                    global.matrices.xp.iter_row(global_row).collect::<Vec<_>>(),
                    "tweet {} row must be a permutation-preserved copy",
                    t,
                );
            }
            // User rows: the user's whole document set travelled with
            // them, so the aggregated feature row is identical too.
            for (local, &u) in slice.user_ids.iter().enumerate() {
                let global_row = user_row[&u];
                prop_assert_eq!(
                    slice.matrices.xu.iter_row(local).collect::<Vec<_>>(),
                    global.matrices.xu.iter_row(global_row).collect::<Vec<_>>(),
                    "user {} row must be a permutation-preserved copy",
                    u,
                );
            }
            // Xr: posting edges connect the same (user, tweet) pairs.
            for (local_user, &u) in slice.user_ids.iter().enumerate() {
                for (local_tweet, &t) in slice.tweet_ids.iter().enumerate() {
                    prop_assert_eq!(
                        slice.matrices.xr.get(local_user, local_tweet),
                        global.matrices.xr.get(user_row[&u], tweet_row[&t]),
                        "interaction ({}, {}) must be preserved",
                        u,
                        t,
                    );
                }
            }
            tweets_seen += slice.tweet_ids.len();
            users_seen += slice.user_ids.len();
        }
        prop_assert_eq!(tweets_seen, global.tweet_ids.len());
        prop_assert_eq!(users_seen, global.user_ids.len());
    }
}

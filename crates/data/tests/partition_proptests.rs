//! Property tests for the user-range partitioner and the shard-local
//! matrix assembly: over random corpora and shard counts `S ∈ 1..=8`,
//! every user maps to exactly one shard, tweet rows follow their user,
//! and concatenating the shard assemblies is a permutation of the
//! unsharded assembly.
//!
//! The permutation property is checked under count weighting — a row's
//! values then depend only on its own document/user, so it must be
//! byte-identical wherever it lands. (TF-IDF weights are fitted per
//! document set and are shard-dependent by construction; the shapes and
//! sparsity-pattern properties still hold there.)

use proptest::prelude::*;
use tgs_data::{
    build_offline_sharded, generate, route_docs, GeneratorConfig, UserRangePartitioner,
};
use tgs_text::{PipelineConfig, Weighting};

fn pipeline() -> PipelineConfig {
    let mut cfg = PipelineConfig::paper_defaults();
    cfg.vocab.min_count = 1;
    cfg.weighting = Weighting::Counts;
    cfg
}

fn corpus_config(users: usize, tweets: usize, days: u32, seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        num_users: users,
        total_tweets: tweets,
        num_days: days,
        seed,
        ..GeneratorConfig::default()
    }
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(24))]

    #[test]
    fn every_user_maps_to_exactly_one_shard(
        universe in 1usize..200,
        shards in 1usize..=8,
        probe in 0usize..500,
    ) {
        let p = UserRangePartitioner::new(universe, shards);
        // Total function, stable, and within bounds.
        let s = p.shard_of(probe);
        prop_assert!(s < shards);
        prop_assert_eq!(s, p.shard_of(probe), "routing must be stable");
        // Ranges tile the universe: each user is inside exactly one.
        let mut owners = 0;
        for shard in 0..shards {
            let (lo, hi) = p.range(shard);
            if (lo..hi).contains(&probe.min(universe.saturating_sub(1))) {
                owners += 1;
            }
        }
        prop_assert_eq!(owners, 1);
    }

    #[test]
    fn tweets_follow_their_user_and_routing_partitions_docs(
        (users, tweets, days) in (4usize..30, 20usize..120, 1u32..6),
        shards in 1usize..=8,
        seed in 0u64..1_000,
    ) {
        let corpus = generate(&corpus_config(users, tweets, days, seed));
        let p = UserRangePartitioner::new(corpus.num_users(), shards);
        let authors: Vec<usize> = corpus.tweets.iter().map(|t| t.author).collect();
        let events: Vec<(usize, usize)> =
            corpus.retweets.iter().map(|r| (r.user, r.tweet)).collect();
        let routing = route_docs(&p, &authors, &events);
        // Every document lands in exactly one shard — the shard of its
        // author — and the per-shard lists partition the document set.
        let mut seen = vec![0usize; authors.len()];
        for (shard, docs) in routing.shard_docs.iter().enumerate() {
            for &doc in docs {
                seen[doc] += 1;
                prop_assert_eq!(p.shard_of(authors[doc]), shard);
            }
        }
        prop_assert!(seen.iter().all(|&n| n == 1));
        // Kept re-tweets stay within their shard; drops are exactly the
        // cross-shard ones.
        let kept: usize = routing.shard_retweets.iter().map(Vec::len).sum();
        let crossing = events
            .iter()
            .filter(|&&(u, doc)| p.shard_of(u) != p.shard_of(authors[doc]))
            .count();
        prop_assert_eq!(routing.dropped_retweets, crossing);
        prop_assert_eq!(kept + crossing, events.len());
    }

    #[test]
    fn shard_concatenation_is_a_permutation_of_the_unsharded_assembly(
        (users, tweets, days) in (4usize..24, 20usize..100, 1u32..5),
        shards in 1usize..=8,
        seed in 0u64..1_000,
    ) {
        // Drop re-tweets so interaction matrices are comparable too: a
        // cross-shard re-tweet edge is (by documented design) dropped
        // during sharding, which would make Xr differ, not permute.
        let mut corpus = generate(&corpus_config(users, tweets, days, seed));
        corpus.retweets.clear();
        let cfg = pipeline();
        let sharded = build_offline_sharded(&corpus, 3, shards, &cfg);
        let unsharded = build_offline_sharded(&corpus, 3, 1, &cfg);
        prop_assert_eq!(sharded.dropped_retweets, 0);
        let global = &unsharded.shards[0];
        let tweet_row: std::collections::HashMap<usize, usize> = global
            .tweet_ids
            .iter()
            .enumerate()
            .map(|(row, &t)| (t, row))
            .collect();
        let user_row: std::collections::HashMap<usize, usize> = global
            .user_ids
            .iter()
            .enumerate()
            .map(|(row, &u)| (u, row))
            .collect();

        let mut tweets_seen = 0usize;
        let mut users_seen = 0usize;
        for slice in &sharded.shards {
            // Tweet rows: identical values wherever the row landed.
            for (local, &t) in slice.tweet_ids.iter().enumerate() {
                let global_row = tweet_row[&t];
                prop_assert_eq!(
                    slice.matrices.xp.iter_row(local).collect::<Vec<_>>(),
                    global.matrices.xp.iter_row(global_row).collect::<Vec<_>>(),
                    "tweet {} row must be a permutation-preserved copy",
                    t,
                );
            }
            // User rows: the user's whole document set travelled with
            // them, so the aggregated feature row is identical too.
            for (local, &u) in slice.user_ids.iter().enumerate() {
                let global_row = user_row[&u];
                prop_assert_eq!(
                    slice.matrices.xu.iter_row(local).collect::<Vec<_>>(),
                    global.matrices.xu.iter_row(global_row).collect::<Vec<_>>(),
                    "user {} row must be a permutation-preserved copy",
                    u,
                );
            }
            // Xr: posting edges connect the same (user, tweet) pairs.
            for (local_user, &u) in slice.user_ids.iter().enumerate() {
                for (local_tweet, &t) in slice.tweet_ids.iter().enumerate() {
                    prop_assert_eq!(
                        slice.matrices.xr.get(local_user, local_tweet),
                        global.matrices.xr.get(user_row[&u], tweet_row[&t]),
                        "interaction ({}, {}) must be preserved",
                        u,
                        t,
                    );
                }
            }
            tweets_seen += slice.tweet_ids.len();
            users_seen += slice.user_ids.len();
        }
        prop_assert_eq!(tweets_seen, global.tweet_ids.len());
        prop_assert_eq!(users_seen, global.user_ids.len());
    }
}

//! One module per paper table/figure; each returns [`crate::report::Table`]s.

pub mod comparison;
pub mod figs_offline;
pub mod figs_online;
pub mod tables23;

pub use comparison::method_comparison;
pub use figs_offline::{fig4_feature_evolution, fig8_convergence, param_sweep};
pub use figs_online::{fig10_gamma, fig9_online_alpha_tau, fig_online_timeline};
pub use tables23::{table2_top_words, table3_stats};

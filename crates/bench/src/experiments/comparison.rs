//! Tables 4 and 5: tweet-level and user-level comparison of
//! tri-clustering against every baseline.

use std::collections::HashMap;

use tgs_baselines::{
    knn_feature_graph, lexicon_vote_rows, majority_baseline, propagate_labels, solve_bacg,
    solve_essa, solve_onmtf, subsample_labels, userreg, BacgConfig, EssaConfig, LabelPropConfig,
    LinearSvm, NaiveBayes, SvmConfig, UserRegConfig,
};
use tgs_core::{solve_offline, OfflineConfig, OnlineConfig};
use tgs_data::SnapshotBuilder;
use tgs_eval::{clustering_accuracy, nmi};

use crate::common::{
    as_input, corpus, instance, labeled_users, pipeline, polar_tweets, select, Scale, Topic,
};
use crate::report::{pct, Table};
use crate::stream::run_online_stream;

/// `(accuracy, nmi)` on the evaluation subset.
type Score = (f64, f64);

/// Per-method scores for one topic.
#[derive(Debug, Clone, Default)]
struct TopicScores {
    tweet: HashMap<&'static str, Score>,
    user: HashMap<&'static str, Score>,
}

/// Deterministic k-fold cross-validated predictions: labeled items are
/// predicted by a model that did not see their fold; unlabeled items by
/// the full model.
fn cv_predict(
    labels: &[Option<usize>],
    folds: usize,
    mut train_predict: impl FnMut(&[Option<usize>]) -> Vec<usize>,
) -> Vec<usize> {
    let labeled: Vec<usize> = labels
        .iter()
        .enumerate()
        .filter_map(|(i, l)| l.map(|_| i))
        .collect();
    let mut pred = train_predict(labels);
    for f in 0..folds {
        let mut masked = labels.to_vec();
        for (j, &i) in labeled.iter().enumerate() {
            if j % folds == f {
                masked[i] = None;
            }
        }
        let fold_pred = train_predict(&masked);
        for (j, &i) in labeled.iter().enumerate() {
            if j % folds == f {
                pred[i] = fold_pred[i];
            }
        }
    }
    pred
}

fn score(pred: &[usize], truth: &[usize]) -> Score {
    (clustering_accuracy(pred, truth), nmi(pred, truth))
}

fn topic_scores(topic: Topic, scale: Scale) -> TopicScores {
    let c = corpus(topic, scale);
    let inst = instance(topic, scale);
    let input = as_input(&inst);
    let mut out = TopicScores::default();

    // Evaluation subsets mirror the paper: polar tweets (Table 3 labels
    // only pos/neg tweets) and *labeled* users.
    let polar = polar_tweets(&inst.tweet_truth);
    let t_truth = select(&polar, &inst.tweet_truth);
    let u_eval = labeled_users(&inst.user_labels);
    let u_truth = select(&u_eval, &inst.user_truth);
    let eval_tweets = |pred: &[usize]| score(&select(&polar, pred), &t_truth);
    let eval_users = |pred: &[usize]| score(&select(&u_eval, pred), &u_truth);

    // ---- supervised: SVM ----
    let svm_pred = cv_predict(&inst.tweet_labels, 3, |labels| {
        LinearSvm::train(&inst.xp, labels, 3, &SvmConfig::default()).predict_all(&inst.xp)
    });
    out.tweet.insert("SVM", eval_tweets(&svm_pred));

    // user-level supervised: classify Xu rows from user labels
    let svm_user = cv_predict(&inst.user_labels, 3, |labels| {
        LinearSvm::train(&inst.xu, labels, 3, &SvmConfig::default()).predict_all(&inst.xu)
    });
    out.user.insert("SVM", eval_users(&svm_user));

    // ---- supervised: NB ----
    let nb_pred = cv_predict(&inst.tweet_labels, 3, |labels| {
        NaiveBayes::train(&inst.encoded, labels, inst.vocab.len(), 3, 1.0)
            .predict_all(&inst.encoded)
    });
    out.tweet.insert("NB", eval_tweets(&nb_pred));

    // user documents: concatenation of the user's tweets
    let mut user_docs: Vec<Vec<usize>> = vec![Vec::new(); c.num_users()];
    for (doc, tw) in inst.encoded.iter().zip(c.tweets.iter()) {
        user_docs[tw.author].extend_from_slice(doc);
    }
    let nb_user = cv_predict(&inst.user_labels, 3, |labels| {
        NaiveBayes::train(&user_docs, labels, inst.vocab.len(), 3, 1.0).predict_all(&user_docs)
    });
    out.user.insert("NB", eval_users(&nb_user));

    // ---- semi-supervised: LP-5 / LP-10 ----
    let tweet_graph = knn_feature_graph(&inst.xp, 10, 0.05);
    for (name, fraction) in [("LP-5", 0.05), ("LP-10", 0.10)] {
        let seeds = subsample_labels(&inst.tweet_labels, fraction);
        let pred = propagate_labels(&tweet_graph, &seeds, 3, &LabelPropConfig::default());
        out.tweet.insert(name, eval_tweets(&pred));
        let user_seeds = subsample_labels(&inst.user_labels, fraction);
        let upred = propagate_labels(
            inst.graph.adjacency(),
            &user_seeds,
            3,
            &LabelPropConfig::default(),
        );
        out.user.insert(name, eval_users(&upred));
    }

    // ---- semi-supervised: UserReg-10 ----
    let doc_user: Vec<usize> = c.tweets.iter().map(|t| t.author).collect();
    let ur_labels = subsample_labels(&inst.tweet_labels, 0.10);
    let ur = userreg(
        &inst.encoded,
        &ur_labels,
        &doc_user,
        inst.vocab.len(),
        &inst.graph,
        &UserRegConfig::default(),
    );
    out.tweet
        .insert("UserReg-10", eval_tweets(&ur.tweet_labels));
    out.user.insert("UserReg-10", eval_users(&ur.user_labels));

    // ---- unsupervised: ESSA (tweet-level) ----
    let emotion_graph = tgs_baselines::emotional_signal_graph(&inst.xp, &inst.sf0, 8);
    let essa = solve_essa(
        &inst.xp,
        &inst.sf0,
        Some(&emotion_graph),
        &EssaConfig {
            k: 3,
            max_iters: 60,
            ..Default::default()
        },
    );
    out.tweet.insert("ESSA", eval_tweets(&essa.tweet_labels()));

    // ---- unsupervised: BACG (user-level) ----
    let bacg = solve_bacg(
        &inst.xu,
        &inst.graph,
        &BacgConfig {
            k: 3,
            max_iters: 60,
            ..Default::default()
        },
    );
    out.user.insert("BACG", eval_users(&bacg.user_labels()));

    // ---- extras beyond the paper's rows ----
    let onmtf = solve_onmtf(&inst.xp, 3, 60, 42);
    out.tweet
        .insert("(+) ONMTF", eval_tweets(&onmtf.tweet_labels()));
    out.tweet.insert(
        "(+) Lexicon vote",
        eval_tweets(&lexicon_vote_rows(&inst.xp, &inst.sf0, 2)),
    );
    out.tweet.insert(
        "(+) Majority",
        eval_tweets(&majority_baseline(&inst.tweet_labels, 3, inst.xp.rows())),
    );
    let km = tgs_baselines::kmeans(
        &inst.xu,
        &tgs_baselines::KMeansConfig {
            k: 3,
            ..Default::default()
        },
    );
    out.user.insert("(+) k-means", eval_users(&km.labels));

    // ---- tri-clustering (offline, paper's balanced alpha/beta) ----
    let tri = solve_offline(
        &input,
        &OfflineConfig {
            k: 3,
            alpha: 0.05,
            beta: 0.8,
            max_iters: 100,
            ..Default::default()
        },
    );
    out.tweet
        .insert("Tri-clustering", eval_tweets(&tri.tweet_labels()));
    out.user
        .insert("Tri-clustering", eval_users(&tri.user_labels()));

    // ---- online tri-clustering (daily stream, w = 2) ----
    let builder = SnapshotBuilder::new(&c, 3, &pipeline());
    // 40 iterations per snapshot, matching Figs. 9–10: the early stop
    // acts as implicit temporal smoothing (more per-snapshot iterations
    // drift user estimates away from the decayed prior).
    let online_cfg = OnlineConfig {
        k: 3,
        max_iters: 40,
        ..Default::default()
    };
    let stream = run_online_stream(&c, &builder, &online_cfg, 1);
    out.tweet.insert(
        "Online tri-clustering",
        (
            stream.tweet_acc,
            nmi(&select(&polar, &stream.tweet_pred), &t_truth),
        ),
    );
    // The online system's *overall* user-stance estimate: majority vote
    // over every snapshot the user appeared in — the temporal counterpart
    // of the offline solver's single label computed from all data. (The
    // instantaneous end-of-stream estimate `stream.user_acc` is what
    // Figs. 9-11 track per timestamp.)
    out.user.insert(
        "Online tri-clustering",
        (
            stream.user_majority_acc,
            nmi(&select(&u_eval, &stream.user_majority_pred), &u_truth),
        ),
    );
    out
}

const TWEET_METHODS: &[&str] = &[
    "SVM",
    "NB",
    "LP-5",
    "LP-10",
    "UserReg-10",
    "ESSA",
    "Tri-clustering",
    "Online tri-clustering",
    "(+) ONMTF",
    "(+) Lexicon vote",
    "(+) Majority",
];

const USER_METHODS: &[&str] = &[
    "SVM",
    "NB",
    "LP-5",
    "LP-10",
    "UserReg-10",
    "BACG",
    "Tri-clustering",
    "Online tri-clustering",
    "(+) k-means",
];

/// Runs every method on both propositions, producing Table 4
/// (tweet-level) and Table 5 (user-level).
pub fn method_comparison(scale: Scale) -> (Table, Table) {
    let s30 = topic_scores(Topic::Prop30, scale);
    let s37 = topic_scores(Topic::Prop37, scale);
    let headers = ["method", "Acc 30", "Acc 37", "NMI 30", "NMI 37"];
    let mut t4 = Table::new(
        "Table 4: tweet-level sentiment analysis comparison",
        &headers,
    )
    .with_note(format!(
        "paper: SVM 89.35/93.17, NB 85.75/89.22, LP-5 77.20/87.49, LP-10 86.60/88.20, \
             UserReg-10 86.76/90.08, ESSA 81.69/85.87, Tri 81.87/92.15, Online 91.88/92.24; \
             rows marked (+) are extra baselines; scale = {}",
        scale.name()
    ));
    for &m in TWEET_METHODS {
        let a = s30.tweet.get(m);
        let b = s37.tweet.get(m);
        t4.push_row(vec![
            m.to_string(),
            a.map_or("-".into(), |s| pct(s.0)),
            b.map_or("-".into(), |s| pct(s.0)),
            a.map_or("-".into(), |s| pct(s.1)),
            b.map_or("-".into(), |s| pct(s.1)),
        ]);
    }
    let mut t5 = Table::new(
        "Table 5: user-level sentiment analysis comparison",
        &headers,
    )
    .with_note(format!(
        "paper: SVM 89.81/87.84, NB 88.69/83.8, LP-5 31.77/82.05, LP-10 77.45/84.25, \
             UserReg-10 82.10/84.28, BACG 75.37/70.51, Tri 86.88/86.17, Online 89.22/88.48; \
             scale = {}",
        scale.name()
    ));
    for &m in USER_METHODS {
        let a = s30.user.get(m);
        let b = s37.user.get(m);
        let fmt = |s: Option<&Score>, acc: bool| -> String {
            match s {
                None => "-".into(),
                Some(&(a, n)) => {
                    let v = if acc { a } else { n };
                    if v.is_nan() {
                        "-".into()
                    } else {
                        pct(v)
                    }
                }
            }
        };
        t5.push_row(vec![
            m.to_string(),
            fmt(a, true),
            fmt(b, true),
            fmt(a, false),
            fmt(b, false),
        ]);
    }
    (t4, t5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cv_predict_masks_each_fold_once() {
        let labels = vec![Some(0), Some(1), Some(0), Some(1), None];
        let mut calls = Vec::new();
        let pred = cv_predict(&labels, 2, |masked| {
            calls.push(masked.iter().filter(|l| l.is_some()).count());
            vec![9; masked.len()]
        });
        // 1 full call + 2 fold calls
        assert_eq!(calls, vec![4, 2, 2]);
        assert_eq!(pred, vec![9; 5]);
    }
}

//! Fig. 4 (feature evolution), Figs. 6–7 (α/β parameter sweeps) and
//! Fig. 8 (convergence curves).

use tgs_core::{solve_offline, OfflineConfig};
use tgs_data::period_feature_frequencies;
use tgs_eval::{clustering_accuracy, nmi};

use crate::common::{as_input, corpus, instance, polar_tweets, select, Scale, Topic};
use crate::report::{pct, Table};

/// Fig. 4: the frequency distribution of features in two periods
/// (Aug 1–2 vs Sep 30–Oct 1 in the paper). Reports the top features of
/// each period plus overlap statistics showing the drift.
pub fn fig4_feature_evolution(scale: Scale) -> Table {
    let c = corpus(Topic::Prop37, scale);
    // at small scale the corpus is 40 days; use proportional periods
    let (a_lo, a_hi, b_lo, b_hi) = if c.num_days >= 62 {
        (0, 2, 60, 62) // Aug 1–2 vs Sep 30–Oct 1
    } else {
        (0, 2, c.num_days - 2, c.num_days)
    };
    let early = period_feature_frequencies(&c, a_lo, a_hi);
    let late = period_feature_frequencies(&c, b_lo, b_hi);
    let top = 15usize;
    let early_top: Vec<&str> = early.iter().take(top).map(|(w, _)| w.as_str()).collect();
    let late_top: Vec<&str> = late.iter().take(top).map(|(w, _)| w.as_str()).collect();
    let overlap = early_top.iter().filter(|w| late_top.contains(w)).count();
    // Distribution-level drift: cosine between the two full frequency
    // vectors, and features exclusive to one period. The paper's own
    // Table 2 notes high-frequency words stay popular — the *shape* of
    // the distribution is what changes (Fig. 4).
    let mut freqs: std::collections::HashMap<&str, (f64, f64)> = std::collections::HashMap::new();
    for (w, c0) in &early {
        freqs.entry(w.as_str()).or_default().0 = *c0 as f64;
    }
    for (w, c1) in &late {
        freqs.entry(w.as_str()).or_default().1 = *c1 as f64;
    }
    let (mut dot, mut na, mut nb, mut exclusive) = (0.0, 0.0, 0.0, 0usize);
    for &(a, b) in freqs.values() {
        dot += a * b;
        na += a * a;
        nb += b * b;
        if a == 0.0 || b == 0.0 {
            exclusive += 1;
        }
    }
    let cosine = dot / (na.sqrt() * nb.sqrt()).max(1e-12);
    let mut t = Table::new(
        "Fig. 4: evolution of features (Prop 37)",
        &[
            "rank",
            "early period word",
            "freq",
            "late period word",
            "freq",
        ],
    )
    .with_note(format!(
        "periods: days {a_lo}-{a_hi} vs {b_lo}-{b_hi}; top-{top} overlap = {overlap}/{top} \
         (high-frequency words stay popular, matching the paper's Table 2 note); \
         full-vocabulary frequency cosine = {cosine:.3}, {exclusive} of {} features \
         appear in only one period (the distribution shift of Fig. 4); scale = {}",
        freqs.len(),
        scale.name()
    ));
    for i in 0..top {
        let (ew, ec) = early.get(i).cloned().unwrap_or_default();
        let (lw, lc) = late.get(i).cloned().unwrap_or_default();
        t.push_row(vec![
            (i + 1).to_string(),
            ew,
            ec.to_string(),
            lw,
            lc.to_string(),
        ]);
    }
    t
}

/// Figs. 6 and 7: accuracy and NMI when varying α and β on Prop 30 —
/// user-level (Fig. 6) and tweet-level (Fig. 7), produced from one sweep.
pub fn param_sweep(scale: Scale) -> (Table, Table) {
    let inst = instance(Topic::Prop30, scale);
    let input = as_input(&inst);
    let grid: Vec<f64> = match scale {
        Scale::Small => vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
        Scale::Full => (0..=10).map(|i| i as f64 / 10.0).collect(),
    };
    let polar = polar_tweets(&inst.tweet_truth);
    let tweet_truth = select(&polar, &inst.tweet_truth);
    let headers = ["alpha", "beta", "accuracy %", "NMI %"];
    let mut user_table = Table::new(
        "Fig. 6: user-level quality varying alpha and beta (Prop 30)",
        &headers,
    )
    .with_note(format!(
        "paper: best accuracy at alpha=0, beta in [0.5, 0.8]; heavy beta=1 hurts. \
         Reproduction finding: our sweep is nearly flat — on raw tf-idf scales the \
         alpha/beta terms are orders of magnitude below the data terms, and the \
         lexicon-seeded init already carries the prior (see EXPERIMENTS.md); scale = {}",
        scale.name()
    ));
    let mut tweet_table = Table::new(
        "Fig. 7: tweet-level quality varying alpha and beta (Prop 30)",
        &headers,
    )
    .with_note(format!(
        "paper: best around alpha=0.1, beta in [0.8, 0.9]; much less sensitive than user-level \
         (81-82% band). Same flatness caveat as Fig. 6; scale = {}",
        scale.name()
    ));
    for &alpha in &grid {
        for &beta in &grid {
            let cfg = OfflineConfig {
                k: 3,
                alpha,
                beta,
                max_iters: 60,
                ..Default::default()
            };
            let result = solve_offline(&input, &cfg);
            let u_pred = result.user_labels();
            let t_pred_all = result.tweet_labels();
            let t_pred = select(&polar, &t_pred_all);
            user_table.push_row(vec![
                format!("{alpha:.1}"),
                format!("{beta:.1}"),
                pct(clustering_accuracy(&u_pred, &inst.user_truth)),
                pct(nmi(&u_pred, &inst.user_truth)),
            ]);
            tweet_table.push_row(vec![
                format!("{alpha:.1}"),
                format!("{beta:.1}"),
                pct(clustering_accuracy(&t_pred, &tweet_truth)),
                pct(nmi(&t_pred, &tweet_truth)),
            ]);
        }
    }
    (user_table, tweet_table)
}

/// Fig. 8: the average Frobenius losses of the tweet-feature term
/// (Eq. 2), the user-feature term (Eq. 3) and the total objective
/// (Eq. 1) over 100 iterations on Prop 30.
pub fn fig8_convergence(scale: Scale) -> Table {
    let inst = instance(Topic::Prop30, scale);
    let input = as_input(&inst);
    let cfg = OfflineConfig {
        k: 3,
        max_iters: 100,
        tol: 0.0, // run all iterations like the figure
        track_objective: true,
        ..Default::default()
    };
    let result = solve_offline(&input, &cfg);
    let mut t = Table::new(
        "Fig. 8: convergence of the offline algorithm (Prop 30)",
        &[
            "iteration",
            "||Xp-SpHpSf'||_F (Eq.2)",
            "||Xu-SuHuSf'||_F (Eq.3)",
            "total error (Eq.1)",
        ],
    )
    .with_note(format!(
        "paper: total error converges by ~10 iterations while components trade off; scale = {}",
        scale.name()
    ));
    for (i, parts) in result.history.iter().enumerate() {
        if i % 5 != 0 && i != result.history.len() - 1 {
            continue; // sample every 5th iteration like the plot ticks
        }
        t.push_row(vec![
            i.to_string(),
            format!("{:.1}", parts.tweet_feature.sqrt()),
            format!("{:.1}", parts.user_feature.sqrt()),
            format!("{:.1}", parts.total()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_reports_overlap_note() {
        let t = fig4_feature_evolution(Scale::Small);
        assert!(t.note.contains("overlap"));
        assert_eq!(t.rows.len(), 15);
    }

    #[test]
    fn fig8_total_error_non_increasing() {
        let t = fig8_convergence(Scale::Small);
        let totals: Vec<f64> = t.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        // Raw objective vs the Lagrangian the updates descend on: small
        // transient rises are expected (see tests/offline_pipeline.rs);
        // with the vendored RNG stream the Prop 30 instance peaks at ~1.3%.
        assert!(
            totals.windows(2).all(|w| w[1] <= w[0] * 1.02),
            "totals: {totals:?}"
        );
        let (first, last) = (totals[0], *totals.last().unwrap());
        assert!(last < first, "objective must trend down: {first} -> {last}");
    }
}

//! Table 2 (top words per class) and Table 3 (corpus statistics).

use tgs_data::{corpus_stats, top_words};
use tgs_text::Sentiment;

use crate::common::{corpus, Scale, Topic};
use crate::report::Table;

/// Table 2: top-8 words with the highest frequency in each pos/neg class
/// (the paper shows Prop 37).
pub fn table2_top_words(scale: Scale) -> Table {
    let c = corpus(Topic::Prop37, scale);
    let pos = top_words(&c, Sentiment::Positive, 8);
    let neg = top_words(&c, Sentiment::Negative, 8);
    let mut t = Table::new(
        "Table 2: top-8 words with highest frequency (Prop 37)",
        &["rank", "positive word", "count", "negative word", "count"],
    )
    .with_note(format!(
        "paper: pos = yeson37(23789), labelgmo(6485), …; neg = corn(1463), farmer(1223), …; scale = {}",
        scale.name()
    ));
    for i in 0..8 {
        let (pw, pc) = pos.get(i).cloned().unwrap_or_default();
        let (nw, nc) = neg.get(i).cloned().unwrap_or_default();
        t.push_row(vec![
            (i + 1).to_string(),
            pw,
            pc.to_string(),
            nw,
            nc.to_string(),
        ]);
    }
    t
}

/// Table 3: statistics of tweets and users for both propositions.
pub fn table3_stats(scale: Scale) -> Table {
    let mut t = Table::new(
        "Table 3: statistics of tweets and users",
        &[
            "Prop",
            "tweets pos",
            "tweets neg",
            "users pos",
            "users neg",
            "users neu",
            "users unlabeled",
        ],
    )
    .with_note(format!(
        "paper: Prop 30 = 8777/5014 tweets, 146/100/98 + 493 users; \
         Prop 37 = 34789/2587 tweets, 294/61/8 + 1564 users; scale = {}",
        scale.name()
    ));
    for topic in [Topic::Prop30, Topic::Prop37] {
        let c = corpus(topic, scale);
        let s = corpus_stats(&c);
        t.push_row(vec![
            topic.name().to_string(),
            s.labeled_pos_tweets.to_string(),
            s.labeled_neg_tweets.to_string(),
            s.labeled_pos_users.to_string(),
            s.labeled_neg_users.to_string(),
            s.labeled_neu_users.to_string(),
            s.unlabeled_users.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_eight_ranks() {
        let t = table2_top_words(Scale::Small);
        assert_eq!(t.rows.len(), 8);
        // counts descending in both columns
        let counts: Vec<usize> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(counts.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn table3_has_both_props() {
        let t = table3_stats(Scale::Small);
        assert_eq!(t.rows.len(), 2);
        let pos30: usize = t.rows[0][1].parse().unwrap();
        let neg30: usize = t.rows[0][2].parse().unwrap();
        assert!(pos30 > neg30, "Prop 30 leans positive like the paper");
    }
}

//! Fig. 9 (online α/τ sweep), Fig. 10 (γ sweep) and Figs. 11–12
//! (online vs mini-batch vs full-batch over the timeline).

use tgs_core::{OfflineConfig, OnlineConfig};
use tgs_data::SnapshotBuilder;

use crate::common::{corpus, day_label, pipeline, Scale, Topic};
use crate::report::{pct, secs, Table};
use crate::stream::{run_fullbatch_stream, run_minibatch_stream, run_online_stream};

fn builder_for(topic: Topic, scale: Scale) -> (std::sync::Arc<tgs_data::Corpus>, SnapshotBuilder) {
    let c = corpus(topic, scale);
    let b = SnapshotBuilder::new(&c, 3, &pipeline());
    (c, b)
}

/// Fig. 9: user-level and tweet-level accuracy when varying α and τ
/// (Prop 30, w = 2, β = 0.8).
pub fn fig9_online_alpha_tau(scale: Scale) -> Table {
    let (c, builder) = builder_for(Topic::Prop30, scale);
    let grid: Vec<f64> = match scale {
        Scale::Small => vec![0.0, 0.3, 0.6, 0.9],
        Scale::Full => vec![0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0],
    };
    let mut t = Table::new(
        "Fig. 9: online accuracy varying alpha and tau (Prop 30)",
        &["alpha", "tau", "user accuracy %", "tweet accuracy %"],
    )
    .with_note(format!(
        "paper: best user-level at alpha = tau = 0.9; tweet-level much less sensitive; \
         w = 2, beta = 0.8, daily snapshots; scale = {}",
        scale.name()
    ));
    for &alpha in &grid {
        for &tau in &grid {
            if tau == 0.0 {
                continue; // tau must be in (0, 1]
            }
            let cfg = OnlineConfig {
                alpha,
                tau,
                max_iters: 40,
                ..Default::default()
            };
            let eval = run_online_stream(&c, &builder, &cfg, 1);
            t.push_row(vec![
                format!("{alpha:.1}"),
                format!("{tau:.1}"),
                pct(eval.user_acc),
                pct(eval.tweet_acc),
            ]);
        }
    }
    t
}

/// Fig. 10: accuracy when varying γ (Prop 30, everything else at the
/// paper's best online values).
pub fn fig10_gamma(scale: Scale) -> Table {
    let (c, builder) = builder_for(Topic::Prop30, scale);
    let grid: Vec<f64> = match scale {
        Scale::Small => vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
        Scale::Full => (0..=10).map(|i| i as f64 / 10.0).collect(),
    };
    let mut t = Table::new(
        "Fig. 10: clustering accuracy varying gamma (Prop 30)",
        &["gamma", "user accuracy %", "tweet accuracy %"],
    )
    .with_note(format!(
        "paper: best user-level at gamma = 0.2; gamma has no effect on tweet-level; \
         alpha = tau = 0.9, beta = 0.8; scale = {}",
        scale.name()
    ));
    for &gamma in &grid {
        let cfg = OnlineConfig {
            gamma,
            max_iters: 40,
            ..Default::default()
        };
        let eval = run_online_stream(&c, &builder, &cfg, 1);
        t.push_row(vec![
            format!("{gamma:.1}"),
            pct(eval.user_acc),
            pct(eval.tweet_acc),
        ]);
    }
    t
}

/// Figs. 11 / 12: per-timestamp running time, tweet-level accuracy and
/// user-level accuracy for online vs mini-batch vs full-batch.
pub fn fig_online_timeline(topic: Topic, scale: Scale) -> Table {
    let (c, builder) = builder_for(topic, scale);
    let online_cfg = OnlineConfig {
        max_iters: 60,
        ..Default::default()
    };
    let offline_cfg = OfflineConfig {
        max_iters: 60,
        ..Default::default()
    };
    // Daily at full scale (like the paper); 2-day windows at small scale
    // to keep snapshots non-trivial.
    let window = match scale {
        Scale::Small => 2,
        Scale::Full => 1,
    };
    let online = run_online_stream(&c, &builder, &online_cfg, window);
    let mini = run_minibatch_stream(&c, &builder, &offline_cfg, window);
    let full = run_fullbatch_stream(&c, &builder, &offline_cfg, window);
    let fig = if topic == Topic::Prop30 {
        "Fig. 11"
    } else {
        "Fig. 12"
    };
    let mut t = Table::new(
        format!(
            "{fig}: online performance over the timeline ({})",
            topic.name()
        ),
        &[
            "day",
            "n(t)",
            "time online s",
            "time mini s",
            "time full s",
            "tweet acc online %",
            "tweet acc mini %",
            "tweet acc full %",
            "user acc online %",
            "user acc mini %",
            "user acc full %",
        ],
    )
    .with_note(format!(
        "paper: online ≪ full-batch runtime and tracks n(t); mini-batch worst accuracy; \
         online ≈ full-batch accuracy. totals: online {}s (avg acc {}/{}), mini {}s ({}/{}), \
         full {}s ({}/{}); scale = {}",
        secs(online.total_time),
        pct(online.tweet_acc),
        pct(online.user_acc),
        secs(mini.total_time),
        pct(mini.tweet_acc),
        pct(mini.user_acc),
        secs(full.total_time),
        pct(full.tweet_acc),
        pct(full.user_acc),
        scale.name()
    ));
    assert_eq!(online.steps.len(), mini.steps.len());
    assert_eq!(online.steps.len(), full.steps.len());
    for ((o, m), f) in online
        .steps
        .iter()
        .zip(mini.steps.iter())
        .zip(full.steps.iter())
    {
        t.push_row(vec![
            day_label(o.lo),
            o.n_t.to_string(),
            secs(o.elapsed),
            secs(m.elapsed),
            secs(f.elapsed),
            pct(o.tweet_acc),
            pct(m.tweet_acc),
            pct(f.tweet_acc),
            pct(o.user_acc),
            pct(m.user_acc),
            pct(f.user_acc),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_covers_grid() {
        // smoke test at small scale with a coarse stream
        let t = fig10_gamma(Scale::Small);
        assert_eq!(t.rows.len(), 6);
        assert_eq!(t.rows[0][0], "0.0");
    }
}

//! Streaming evaluation drivers: run online / mini-batch / full-batch
//! over a corpus's daily snapshots and record per-timestamp runtime and
//! accuracy (the machinery behind Figs. 11–12 and the "online" rows of
//! Tables 4–5).

use std::time::{Duration, Instant};

use tgs_baselines::{FullBatch, MiniBatch};
use tgs_core::{OfflineConfig, OnlineConfig, OnlineSolver, SnapshotData, TriInput};
use tgs_data::{day_windows, Corpus, SnapshotBuilder, SnapshotInstance};
use tgs_eval::clustering_accuracy;

use crate::common::{labeled_users, polar_tweets, select};

/// Per-timestamp record.
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// Day range `[lo, hi)`.
    pub lo: u32,
    /// End of the range.
    pub hi: u32,
    /// Tweets in the snapshot (`n(t)`).
    pub n_t: usize,
    /// Users in the snapshot (`m(t)`).
    pub m_t: usize,
    /// Wall time of the solve at this timestamp.
    pub elapsed: Duration,
    /// Tweet-level clustering accuracy on the snapshot's polar tweets.
    pub tweet_acc: f64,
    /// User-level clustering accuracy on the snapshot's users.
    pub user_acc: f64,
}

/// Full stream evaluation result.
#[derive(Debug, Clone)]
pub struct StreamEval {
    /// One record per non-empty snapshot.
    pub steps: Vec<StepRecord>,
    /// Global per-tweet hard labels, assembled across snapshots (cluster
    /// columns stay class-aligned thanks to the lexicon-seeded warm
    /// starts, so pooling ids across snapshots is meaningful).
    pub tweet_pred: Vec<usize>,
    /// Global per-user hard labels: each user's most recent snapshot
    /// label (0 for users never observed).
    pub user_pred: Vec<usize>,
    /// Global per-user labels by majority vote over every snapshot the
    /// user appeared in — the stream's "overall stance" estimate, the
    /// fair comparison against a single offline label.
    pub user_majority_pred: Vec<usize>,
    /// Accuracy of `user_majority_pred` on the labeled users.
    pub user_majority_acc: f64,
    /// Snapshot-size–weighted average tweet accuracy.
    pub tweet_acc: f64,
    /// Global user accuracy: every user's most recent hard label vs the
    /// overall (majority-stance) ground truth.
    pub user_acc: f64,
    /// Total solve time across the stream.
    pub total_time: Duration,
}

fn snapshot_input<'a>(snap: &'a SnapshotInstance, builder: &'a SnapshotBuilder) -> TriInput<'a> {
    TriInput {
        xp: &snap.xp,
        xu: &snap.xu,
        xr: &snap.xr,
        graph: &snap.graph,
        sf0: builder.sf0(),
    }
}

fn eval_snapshot(
    snap: &SnapshotInstance,
    corpus: &Corpus,
    tweet_labels: &[usize],
    user_labels: &[usize],
) -> (f64, f64) {
    let polar = polar_tweets(&snap.tweet_truth);
    let tweet_acc = if polar.is_empty() {
        1.0
    } else {
        clustering_accuracy(
            &select(&polar, tweet_labels),
            &select(&polar, &snap.tweet_truth),
        )
    };
    // User-level accuracy on the snapshot's *labeled* users (the paper
    // evaluates against Table 3's labeled user set).
    let labeled: Vec<usize> = (0..snap.user_ids.len())
        .filter(|&row| corpus.users[snap.user_ids[row]].label.is_some())
        .collect();
    let user_acc = if labeled.is_empty() {
        1.0
    } else {
        clustering_accuracy(
            &select(&labeled, user_labels),
            &select(&labeled, &snap.user_truth),
        )
    };
    (tweet_acc, user_acc)
}

fn finish(
    steps: Vec<StepRecord>,
    user_last: Vec<Option<usize>>,
    user_votes: Vec<[u32; 3]>,
    tweet_pred: Vec<usize>,
    corpus: &Corpus,
) -> StreamEval {
    let total_weight: usize = steps.iter().map(|s| s.n_t).sum();
    let tweet_acc = if total_weight == 0 {
        0.0
    } else {
        steps
            .iter()
            .map(|s| s.tweet_acc * s.n_t as f64)
            .sum::<f64>()
            / total_weight as f64
    };
    let user_truth = corpus.user_truth();
    let user_pred: Vec<usize> = user_last.iter().map(|l| l.unwrap_or(0)).collect();
    let eval_set = labeled_users(&corpus.user_labels());
    let user_acc = clustering_accuracy(
        &select(&eval_set, &user_pred),
        &select(&eval_set, &user_truth),
    );
    let user_majority_pred: Vec<usize> = user_votes
        .iter()
        .map(|v| (0..3).max_by_key(|&c| v[c]).unwrap_or(0))
        .collect();
    let user_majority_acc = clustering_accuracy(
        &select(&eval_set, &user_majority_pred),
        &select(&eval_set, &user_truth),
    );
    let total_time = steps.iter().map(|s| s.elapsed).sum();
    StreamEval {
        steps,
        tweet_pred,
        user_pred,
        user_majority_pred,
        user_majority_acc,
        tweet_acc,
        user_acc,
        total_time,
    }
}

/// Runs the online tri-clustering solver over daily (or `window_days`)
/// snapshots.
pub fn run_online_stream(
    corpus: &Corpus,
    builder: &SnapshotBuilder,
    config: &OnlineConfig,
    window_days: u32,
) -> StreamEval {
    let mut solver = OnlineSolver::new(config.clone());
    let mut steps = Vec::new();
    let mut user_last: Vec<Option<usize>> = vec![None; corpus.num_users()];
    let mut user_votes: Vec<[u32; 3]> = vec![[0; 3]; corpus.num_users()];
    let mut tweet_pred = vec![0usize; corpus.num_tweets()];
    for (lo, hi) in day_windows(corpus.num_days, window_days) {
        let snap = builder.snapshot(corpus, lo, hi);
        if snap.tweet_ids.is_empty() {
            continue;
        }
        let input = snapshot_input(&snap, builder);
        let start = Instant::now();
        let result = solver.step(&SnapshotData {
            input,
            user_ids: &snap.user_ids,
        });
        let elapsed = start.elapsed();
        let tweet_labels = result.tweet_labels();
        let user_labels = result.user_labels();
        let (tweet_acc, user_acc) = eval_snapshot(&snap, corpus, &tweet_labels, &user_labels);
        for (row, &id) in snap.tweet_ids.iter().enumerate() {
            tweet_pred[id] = tweet_labels[row];
        }
        for (row, &u) in snap.user_ids.iter().enumerate() {
            user_last[u] = Some(user_labels[row]);
            user_votes[u][user_labels[row].min(2)] += 1;
        }
        steps.push(StepRecord {
            lo,
            hi,
            n_t: snap.tweet_ids.len(),
            m_t: snap.user_ids.len(),
            elapsed,
            tweet_acc,
            user_acc,
        });
    }
    finish(steps, user_last, user_votes, tweet_pred, corpus)
}

/// Runs the mini-batch strawman (offline solver on each snapshot
/// independently).
pub fn run_minibatch_stream(
    corpus: &Corpus,
    builder: &SnapshotBuilder,
    config: &OfflineConfig,
    window_days: u32,
) -> StreamEval {
    let mut driver = MiniBatch::new(config.clone());
    let mut steps = Vec::new();
    let mut user_last: Vec<Option<usize>> = vec![None; corpus.num_users()];
    let mut user_votes: Vec<[u32; 3]> = vec![[0; 3]; corpus.num_users()];
    let mut tweet_pred = vec![0usize; corpus.num_tweets()];
    for (lo, hi) in day_windows(corpus.num_days, window_days) {
        let snap = builder.snapshot(corpus, lo, hi);
        if snap.tweet_ids.is_empty() {
            continue;
        }
        let input = snapshot_input(&snap, builder);
        let timed = driver.step(&input);
        let tweet_labels = timed.result.tweet_labels();
        let user_labels = timed.result.user_labels();
        let (tweet_acc, user_acc) = eval_snapshot(&snap, corpus, &tweet_labels, &user_labels);
        for (row, &id) in snap.tweet_ids.iter().enumerate() {
            tweet_pred[id] = tweet_labels[row];
        }
        for (row, &u) in snap.user_ids.iter().enumerate() {
            user_last[u] = Some(user_labels[row]);
            user_votes[u][user_labels[row].min(2)] += 1;
        }
        steps.push(StepRecord {
            lo,
            hi,
            n_t: snap.tweet_ids.len(),
            m_t: snap.user_ids.len(),
            elapsed: timed.elapsed,
            tweet_acc,
            user_acc,
        });
    }
    finish(steps, user_last, user_votes, tweet_pred, corpus)
}

/// Runs the full-batch strawman: at each timestamp, re-solve on *all*
/// data so far, then evaluate on the current snapshot only.
pub fn run_fullbatch_stream(
    corpus: &Corpus,
    builder: &SnapshotBuilder,
    config: &OfflineConfig,
    window_days: u32,
) -> StreamEval {
    let mut driver = FullBatch::new(config.clone());
    let mut steps = Vec::new();
    let mut user_last: Vec<Option<usize>> = vec![None; corpus.num_users()];
    let mut user_votes: Vec<[u32; 3]> = vec![[0; 3]; corpus.num_users()];
    let mut tweet_pred = vec![0usize; corpus.num_tweets()];
    for (lo, hi) in day_windows(corpus.num_days, window_days) {
        let snap = builder.snapshot(corpus, lo, hi);
        if snap.tweet_ids.is_empty() {
            continue;
        }
        // Cumulative instance over days [0, hi).
        let cumulative = builder.snapshot(corpus, 0, hi);
        let input = snapshot_input(&cumulative, builder);
        let timed = driver.step(&input);
        let all_tweet_labels = timed.result.tweet_labels();
        let all_user_labels = timed.result.user_labels();
        // Slice out the current snapshot's tweets/users.
        let tweet_pos: std::collections::HashMap<usize, usize> = cumulative
            .tweet_ids
            .iter()
            .enumerate()
            .map(|(row, &id)| (id, row))
            .collect();
        let user_pos: std::collections::HashMap<usize, usize> = cumulative
            .user_ids
            .iter()
            .enumerate()
            .map(|(row, &id)| (id, row))
            .collect();
        let tweet_labels: Vec<usize> = snap
            .tweet_ids
            .iter()
            .map(|id| all_tweet_labels[tweet_pos[id]])
            .collect();
        let user_labels: Vec<usize> = snap
            .user_ids
            .iter()
            .map(|id| all_user_labels[user_pos[id]])
            .collect();
        let (tweet_acc, user_acc) = eval_snapshot(&snap, corpus, &tweet_labels, &user_labels);
        for (row, &id) in snap.tweet_ids.iter().enumerate() {
            tweet_pred[id] = tweet_labels[row];
        }
        for (row, &u) in snap.user_ids.iter().enumerate() {
            user_last[u] = Some(user_labels[row]);
            user_votes[u][user_labels[row].min(2)] += 1;
        }
        steps.push(StepRecord {
            lo,
            hi,
            n_t: snap.tweet_ids.len(),
            m_t: snap.user_ids.len(),
            elapsed: timed.elapsed,
            tweet_acc,
            user_acc,
        });
    }
    finish(steps, user_last, user_votes, tweet_pred, corpus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{corpus, pipeline, Scale, Topic};

    #[test]
    fn online_stream_produces_records() {
        let c = corpus(Topic::Prop30, Scale::Small);
        let builder = SnapshotBuilder::new(&c, 3, &pipeline());
        let cfg = OnlineConfig {
            max_iters: 20,
            ..Default::default()
        };
        let eval = run_online_stream(&c, &builder, &cfg, 8);
        assert!(!eval.steps.is_empty());
        assert!(eval.tweet_acc > 0.4, "tweet acc {}", eval.tweet_acc);
        assert!(eval.total_time.as_nanos() > 0);
        let covered: usize = eval.steps.iter().map(|s| s.n_t).sum();
        assert_eq!(covered, c.num_tweets());
    }

    #[test]
    fn minibatch_stream_runs() {
        let c = corpus(Topic::Prop30, Scale::Small);
        let builder = SnapshotBuilder::new(&c, 3, &pipeline());
        let cfg = OfflineConfig {
            max_iters: 15,
            ..Default::default()
        };
        let eval = run_minibatch_stream(&c, &builder, &cfg, 10);
        assert_eq!(
            eval.steps.len(),
            day_windows(c.num_days, 10).len(),
            "every window non-empty at this scale"
        );
    }

    #[test]
    fn fullbatch_slower_than_minibatch() {
        let c = corpus(Topic::Prop30, Scale::Small);
        let builder = SnapshotBuilder::new(&c, 3, &pipeline());
        let cfg = OfflineConfig {
            max_iters: 10,
            ..Default::default()
        };
        let mini = run_minibatch_stream(&c, &builder, &cfg, 10);
        let full = run_fullbatch_stream(&c, &builder, &cfg, 10);
        assert!(
            full.total_time > mini.total_time,
            "full-batch {:?} should exceed mini-batch {:?}",
            full.total_time,
            mini.total_time
        );
    }
}

//! # tgs-bench
//!
//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (§5) against the synthetic corpora, plus Criterion
//! micro-benchmarks of the kernels and solvers.
//!
//! Run everything: `cargo run -p tgs-bench --release --bin run_all`
//! (set `TGS_SCALE=full` for paper-scale corpora). Individual
//! experiments have their own binaries (`table4_tweet_comparison`,
//! `fig8_convergence`, …); outputs land in `target/experiments/`.

pub mod common;
pub mod experiments;
pub mod report;
pub mod seed_baseline;
pub mod stream;

pub use common::{Scale, Topic};
pub use report::{emit, Table};

//! Ablation study: what each piece of the framework contributes.
//!
//! Not a paper table — this backs the design decisions recorded in
//! DESIGN.md:
//!   1. each coupling term of Eq. 1 (drop Xu / Xr / lexicon / graph);
//!   2. lexicon-seeded vs random initialization;
//!   3. normalized vs paper-literal (unnormalized) temporal windows;
//!   4. majority-vote vs Hungarian-optimal cluster→class mapping.
//!
//! `cargo run -p tgs-bench --release --bin ablations`

use tgs_baselines::subsample_labels;
use tgs_bench::common::{
    as_input, corpus, instance, labeled_users, pipeline, polar_tweets, select, Scale, Topic,
};
use tgs_bench::report::{emit, pct, Table};
use tgs_bench::stream::run_online_stream;
use tgs_core::{
    solve_guided, solve_offline, Guidance, GuidedConfig, InitStrategy, OfflineConfig, OnlineConfig,
    TriInput,
};
use tgs_data::SnapshotBuilder;
use tgs_eval::{clustering_accuracy, hungarian_accuracy};
use tgs_graph::UserGraph;
use tgs_linalg::CsrMatrix;

fn main() {
    let scale = Scale::from_env();
    let inst = instance(Topic::Prop30, scale);
    let polar = polar_tweets(&inst.tweet_truth);
    let t_truth = select(&polar, &inst.tweet_truth);
    let u_eval = labeled_users(&inst.user_labels);
    let u_truth = select(&u_eval, &inst.user_truth);

    let mut table = Table::new(
        "Ablations: contribution of each framework component (Prop 30)",
        &[
            "variant",
            "tweet acc %",
            "user acc %",
            "tweet acc (Hungarian) %",
        ],
    )
    .with_note(format!(
        "offline k=3, alpha=0.05, beta=0.8 unless stated; scale = {}",
        scale.name()
    ));

    let mut run = |name: &str, input: &TriInput<'_>, cfg: &OfflineConfig| {
        let result = solve_offline(input, cfg);
        let t_pred = select(&polar, &result.tweet_labels());
        let u_pred = select(&u_eval, &result.user_labels());
        table.push_row(vec![
            name.to_string(),
            pct(clustering_accuracy(&t_pred, &t_truth)),
            pct(clustering_accuracy(&u_pred, &u_truth)),
            pct(hungarian_accuracy(&t_pred, &t_truth)),
        ]);
    };

    let full_input = as_input(&inst);
    let base = OfflineConfig::default();
    run("full framework", &full_input, &base);

    // 1. coupling ablations: empty matrices switch terms off.
    let (n, m, l) = (inst.xp.rows(), inst.xu.rows(), inst.xp.cols());
    let empty_xu = CsrMatrix::zeros(m, l);
    let no_xu = TriInput {
        xp: &inst.xp,
        xu: &empty_xu,
        xr: &inst.xr,
        graph: &inst.graph,
        sf0: &inst.sf0,
    };
    run("- user-feature term (Xu)", &no_xu, &base);

    let empty_xr = CsrMatrix::zeros(m, n);
    let no_xr = TriInput {
        xp: &inst.xp,
        xu: &inst.xu,
        xr: &empty_xr,
        graph: &inst.graph,
        sf0: &inst.sf0,
    };
    run("- user-tweet term (Xr)", &no_xr, &base);

    let empty_graph = UserGraph::empty(m);
    let no_graph = TriInput {
        xp: &inst.xp,
        xu: &inst.xu,
        xr: &inst.xr,
        graph: &empty_graph,
        sf0: &inst.sf0,
    };
    run("- social graph (beta term)", &no_graph, &base);

    run(
        "- lexicon (alpha = 0)",
        &full_input,
        &OfflineConfig {
            alpha: 0.0,
            ..base.clone()
        },
    );
    // alpha = 0 still inherits the lexicon through the seeded init; this
    // row removes it entirely.
    run(
        "- lexicon entirely (alpha = 0, random init)",
        &full_input,
        &OfflineConfig {
            alpha: 0.0,
            init: InitStrategy::Random,
            ..base.clone()
        },
    );

    // 2. initialization ablation.
    run(
        "random init (paper-literal)",
        &full_input,
        &OfflineConfig {
            init: InitStrategy::Random,
            ..base.clone()
        },
    );

    // Extension from the paper's conclusion: guided (semi-supervised)
    // regularization with 10% tweet labels + sparsity prox.
    {
        let tweet_seeds = subsample_labels(&inst.tweet_labels, 0.10);
        let user_seeds = subsample_labels(&inst.user_labels, 0.10);
        let guidance = Guidance {
            tweet_labels: &tweet_seeds,
            user_labels: &user_seeds,
        };
        let cfg = GuidedConfig {
            delta: 0.8,
            sparsity: 0.0,
            base: OfflineConfig::default(),
        };
        let result = solve_guided(&full_input, &guidance, &cfg);
        let t_pred = select(&polar, &result.tweet_labels());
        let u_pred = select(&u_eval, &result.user_labels());
        table.push_row(vec![
            "(+) guided regularization, 10% labels".to_string(),
            pct(clustering_accuracy(&t_pred, &t_truth)),
            pct(clustering_accuracy(&u_pred, &u_truth)),
            pct(hungarian_accuracy(&t_pred, &t_truth)),
        ]);
    }

    emit(&table, "ablations_offline");

    // 3. temporal-window ablation (online).
    let c = corpus(Topic::Prop30, scale);
    let builder = SnapshotBuilder::new(&c, 3, &pipeline());
    let mut online_table = Table::new(
        "Ablations: online temporal-window variants (Prop 30, daily stream)",
        &[
            "variant",
            "tweet acc %",
            "user acc %",
            "user acc (majority vote) %",
        ],
    )
    .with_note(format!(
        "w = 2, alpha = tau = 0.9, beta = 0.8, gamma = 0.2; scale = {}",
        scale.name()
    ));
    for (name, cfg) in [
        (
            "normalized windows (default)",
            OnlineConfig {
                max_iters: 40,
                ..Default::default()
            },
        ),
        (
            "unnormalized windows (paper-literal)",
            OnlineConfig {
                normalize_window: false,
                max_iters: 40,
                ..Default::default()
            },
        ),
        (
            "gamma = 0 (no user smoothing)",
            OnlineConfig {
                gamma: 0.0,
                max_iters: 40,
                ..Default::default()
            },
        ),
        (
            "alpha = 0 (no Sf smoothing)",
            OnlineConfig {
                alpha: 0.0,
                max_iters: 40,
                ..Default::default()
            },
        ),
    ] {
        let eval = run_online_stream(&c, &builder, &cfg, 1);
        online_table.push_row(vec![
            name.to_string(),
            pct(eval.tweet_acc),
            pct(eval.user_acc),
            pct(eval.user_majority_acc),
        ]);
    }
    emit(&online_table, "ablations_online");
}

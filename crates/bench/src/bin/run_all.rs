//! Runs every experiment (all tables and figures) and writes a combined
//! `results.md` next to the per-experiment TSVs.
//!
//! `TGS_SCALE=full cargo run -p tgs-bench --release --bin run_all` for
//! paper-scale corpora; default is the fast small scale.

use std::fmt::Write as _;
use std::time::Instant;

use tgs_bench::common::{Scale, Topic};
use tgs_bench::report::output_dir;
use tgs_bench::{emit, experiments, Table};

fn main() {
    let scale = Scale::from_env();
    println!("== running all experiments at scale: {} ==\n", scale.name());
    let start = Instant::now();
    let mut all: Vec<(String, Table)> = Vec::new();

    let mut run = |name: &str, make: &mut dyn FnMut() -> Table| {
        let t0 = Instant::now();
        let table = make();
        emit(&table, name);
        println!("[{} finished in {:.1?}]\n", name, t0.elapsed());
        all.push((name.to_string(), table));
    };

    run("table2_top_words", &mut || {
        experiments::table2_top_words(scale)
    });
    run("table3_stats", &mut || experiments::table3_stats(scale));
    run("fig4_feature_evolution", &mut || {
        experiments::fig4_feature_evolution(scale)
    });
    let mut sweep: Option<(Table, Table)> = None;
    run("fig6_param_sweep_user", &mut || {
        let (fig6, fig7) = experiments::param_sweep(scale);
        sweep = Some((fig6.clone(), fig7));
        fig6
    });
    let fig7 = sweep.take().expect("sweep ran").1;
    run("fig7_param_sweep_tweet", &mut || fig7.clone());
    run("fig8_convergence", &mut || {
        experiments::fig8_convergence(scale)
    });
    let mut cmp: Option<(Table, Table)> = None;
    run("table4_tweet_comparison", &mut || {
        let (t4, t5) = experiments::method_comparison(scale);
        cmp = Some((t4.clone(), t5));
        t4
    });
    let t5 = cmp.take().expect("comparison ran").1;
    run("table5_user_comparison", &mut || t5.clone());
    run("fig9_online_alpha_tau", &mut || {
        experiments::fig9_online_alpha_tau(scale)
    });
    run("fig10_gamma", &mut || experiments::fig10_gamma(scale));
    run("fig11_online_prop30", &mut || {
        experiments::fig_online_timeline(Topic::Prop30, scale)
    });
    run("fig12_online_prop37", &mut || {
        experiments::fig_online_timeline(Topic::Prop37, scale)
    });

    // Combined markdown report.
    let mut md = String::new();
    let _ = writeln!(md, "# Experiment results (scale = {})\n", scale.name());
    for (_, table) in &all {
        let _ = writeln!(md, "{}", table.to_markdown());
    }
    let path = output_dir().join("results.md");
    if let Err(e) = std::fs::create_dir_all(output_dir()).and_then(|_| std::fs::write(&path, md)) {
        eprintln!("[warn: could not write results.md: {e}]");
    } else {
        println!("== combined report: {} ==", path.display());
    }
    println!("== all experiments done in {:.1?} ==", start.elapsed());
}

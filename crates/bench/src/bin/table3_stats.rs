//! Regenerates Table 3 (statistics of tweets and users).
use tgs_bench::{common::Scale, emit, experiments};

fn main() {
    let scale = Scale::from_env();
    emit(&experiments::table3_stats(scale), "table3_stats");
}

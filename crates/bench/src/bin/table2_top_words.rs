//! Regenerates Table 2 (top-8 words per sentiment class).
use tgs_bench::{common::Scale, emit, experiments};

fn main() {
    let scale = Scale::from_env();
    emit(&experiments::table2_top_words(scale), "table2_top_words");
}

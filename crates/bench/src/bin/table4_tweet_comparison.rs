//! Regenerates Table 4 (tweet-level method comparison).
use tgs_bench::{common::Scale, emit, experiments};

fn main() {
    let scale = Scale::from_env();
    let (t4, _t5) = experiments::method_comparison(scale);
    emit(&t4, "table4_tweet_comparison");
}

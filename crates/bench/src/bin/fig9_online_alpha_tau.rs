//! Regenerates Fig. 9 (online accuracy vs alpha/tau).
use tgs_bench::{common::Scale, emit, experiments};

fn main() {
    let scale = Scale::from_env();
    emit(
        &experiments::fig9_online_alpha_tau(scale),
        "fig9_online_alpha_tau",
    );
}

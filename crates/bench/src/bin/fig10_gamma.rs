//! Regenerates Fig. 10 (accuracy vs gamma).
use tgs_bench::{common::Scale, emit, experiments};

fn main() {
    let scale = Scale::from_env();
    emit(&experiments::fig10_gamma(scale), "fig10_gamma");
}

//! Regenerates Fig. 4 (the evolution of features).
use tgs_bench::{common::Scale, emit, experiments};

fn main() {
    let scale = Scale::from_env();
    emit(
        &experiments::fig4_feature_evolution(scale),
        "fig4_feature_evolution",
    );
}

//! Regenerates Fig. 11 (online performance, Prop 30 timeline).
use tgs_bench::{common::Scale, common::Topic, emit, experiments};

fn main() {
    let scale = Scale::from_env();
    emit(
        &experiments::fig_online_timeline(Topic::Prop30, scale),
        "fig11_online_prop30",
    );
}

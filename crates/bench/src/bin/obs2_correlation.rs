//! Observation 2 verification: "considering the entire population, the
//! majority of users rarely change their mind within a short time".
//! Smith et al. (cited in §4) report a Pearson correlation of 0.851
//! between user sentiments before and after the election; this experiment
//! measures the same statistic on the synthetic corpus and on the online
//! solver's *inferred* sentiments.
//!
//! `cargo run -p tgs-bench --release --bin obs2_correlation`

use tgs_bench::common::{corpus, pipeline, Scale, Topic};
use tgs_bench::report::{emit, Table};
use tgs_core::{OnlineConfig, OnlineSolver, SnapshotData, TriInput};
use tgs_data::{day_windows, SnapshotBuilder};
use tgs_eval::pearson;

fn main() {
    let scale = Scale::from_env();
    let mut table = Table::new(
        "Observation 2: pre- vs post-election user sentiment correlation",
        &[
            "topic",
            "ground-truth Pearson r",
            "inferred Pearson r",
            "flip fraction %",
        ],
    )
    .with_note(format!(
        "paper (via Smith et al.): r = 0.851 between user sentiments before and after \
         the election; scale = {}",
        scale.name()
    ));
    for topic in [Topic::Prop30, Topic::Prop37] {
        let c = corpus(topic, scale);
        let split = c.num_days * 3 / 4; // the election sits in the last quarter
                                        // Ground truth: signed stance score per user in each period
                                        // (+1 pos, −1 neg, 0 neu).
        let score = |class: usize| match class {
            0 => 1.0,
            1 => -1.0,
            _ => 0.0,
        };
        let before: Vec<f64> = c
            .user_truth_at(split / 2)
            .iter()
            .map(|&s| score(s))
            .collect();
        let after: Vec<f64> = c
            .user_truth_at(c.num_days - 1)
            .iter()
            .map(|&s| score(s))
            .collect();
        let truth_r = pearson(&before, &after);

        // Inferred: run the online solver, record each user's inferred
        // stance in the two halves (last estimate in each period).
        let builder = SnapshotBuilder::new(&c, 3, &pipeline());
        let mut solver = OnlineSolver::new(OnlineConfig {
            max_iters: 40,
            ..Default::default()
        });
        let mut first_half: Vec<Option<usize>> = vec![None; c.num_users()];
        let mut second_half: Vec<Option<usize>> = vec![None; c.num_users()];
        for (lo, hi) in day_windows(c.num_days, 2) {
            let snap = builder.snapshot(&c, lo, hi);
            if snap.tweet_ids.is_empty() {
                continue;
            }
            let input = TriInput {
                xp: &snap.xp,
                xu: &snap.xu,
                xr: &snap.xr,
                graph: &snap.graph,
                sf0: builder.sf0(),
            };
            let result = solver.step(&SnapshotData {
                input,
                user_ids: &snap.user_ids,
            });
            let labels = result.user_labels();
            let bucket = if hi <= split {
                &mut first_half
            } else {
                &mut second_half
            };
            for (row, &u) in snap.user_ids.iter().enumerate() {
                bucket[u] = Some(labels[row]);
            }
        }
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for u in 0..c.num_users() {
            if let (Some(a), Some(b)) = (first_half[u], second_half[u]) {
                xs.push(score(a));
                ys.push(score(b));
            }
        }
        let inferred_r = pearson(&xs, &ys);
        let flips = tgs_data::flip_fraction(&c) * 100.0;
        table.push_row(vec![
            topic.name().to_string(),
            format!("{truth_r:.3}"),
            format!("{inferred_r:.3}"),
            format!("{flips:.1}"),
        ]);
    }
    emit(&table, "obs2_correlation");
}

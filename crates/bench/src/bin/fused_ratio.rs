//! Interleaved fused-sweep vs frozen-seed-baseline rounds on the
//! `offline_iteration_k10` instance. Shared/noisy hosts can throttle
//! between separate bench invocations; interleaving the two
//! implementations in one process makes the *ratio* robust to that, so
//! this is the number to quote when absolute medians look unstable
//! (see PERF.md "PR 4").
use rand::RngExt;
use std::time::Instant;
use tgs_core::{TriFactors, TriInput, UpdateWorkspace};
use tgs_graph::UserGraph;
use tgs_linalg::{seeded_rng, DenseMatrix};

fn main() {
    let (n, m, l, k) = (40_000usize, 5_000usize, 10_000usize, 10usize);
    // Same shared-rng stream as `benches/solvers.rs`'s preset instance.
    let mut rng = seeded_rng(23);
    let xp = tgs_bench::common::random_csr_with(n, l, 10, 0.2..2.0, &mut rng);
    let xu = tgs_bench::common::random_csr_with(m, l, 20, 0.2..2.0, &mut rng);
    let xr = tgs_bench::common::random_csr_with(m, n, n / m, 0.2..2.0, &mut rng);
    let edges: Vec<(usize, usize, f64)> = (0..m * 4)
        .map(|_| (rng.random_range(0..m), rng.random_range(0..m), 1.0))
        .filter(|&(a, b, _)| a != b)
        .collect();
    let graph = UserGraph::from_edges(m, &edges);
    let sf0 = DenseMatrix::filled(l, k, 0.1);
    let input = TriInput {
        xp: &xp,
        xu: &xu,
        xr: &xr,
        graph: &graph,
        sf0: &sf0,
    };

    let mut f_seed = TriFactors::random(n, m, l, k, 99);
    let mut f_fused = TriFactors::random(n, m, l, k, 99);
    let mut ws = UpdateWorkspace::new();
    ws.bind(&input);
    ws.sweep_offline(&input, &mut f_fused, 0.1, 0.5, &sf0);
    std::hint::black_box(ws.objective_offline(&input, &f_fused, 0.1, 0.5).total());
    std::hint::black_box(tgs_bench::seed_baseline::iteration(
        &input,
        &mut f_seed,
        0.1,
        0.5,
    ));

    let rounds = 6;
    let mut best_seed = f64::MAX;
    let mut best_fused = f64::MAX;
    for _ in 0..rounds {
        let t = Instant::now();
        for _ in 0..2 {
            std::hint::black_box(tgs_bench::seed_baseline::iteration(
                &input,
                &mut f_seed,
                0.1,
                0.5,
            ));
        }
        let seed_ms = t.elapsed().as_secs_f64() * 1e3 / 2.0;
        let t = Instant::now();
        for _ in 0..2 {
            ws.sweep_offline(&input, &mut f_fused, 0.1, 0.5, &sf0);
            std::hint::black_box(ws.objective_offline(&input, &f_fused, 0.1, 0.5).total());
        }
        let fused_ms = t.elapsed().as_secs_f64() * 1e3 / 2.0;
        println!(
            "round: seed {seed_ms:8.2} ms | fused {fused_ms:8.2} ms | ratio {:.3}",
            fused_ms / seed_ms
        );
        best_seed = best_seed.min(seed_ms);
        best_fused = best_fused.min(fused_ms);
    }
    println!(
        "best:  seed {best_seed:8.2} ms | fused {best_fused:8.2} ms | ratio {:.3}",
        best_fused / best_seed
    );
    println!("PR1 committed ratio (32.36 / 52.42) = 0.617; target fused <= seed * 0.536 (1.15x vs PR1 33.8ms at PR1 seed speed)");
}

//! Regenerates Fig. 12 (online performance, Prop 37 timeline).
use tgs_bench::{common::Scale, common::Topic, emit, experiments};

fn main() {
    let scale = Scale::from_env();
    emit(
        &experiments::fig_online_timeline(Topic::Prop37, scale),
        "fig12_online_prop37",
    );
}

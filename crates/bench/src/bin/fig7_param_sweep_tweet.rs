//! Regenerates Fig. 7 (tweet-level quality vs alpha/beta).
use tgs_bench::{common::Scale, emit, experiments};

fn main() {
    let scale = Scale::from_env();
    let (_user, tweet) = experiments::param_sweep(scale);
    emit(&tweet, "fig7_param_sweep_tweet");
}

//! Regenerates Fig. 6 (user-level quality vs alpha/beta).
use tgs_bench::{common::Scale, emit, experiments};

fn main() {
    let scale = Scale::from_env();
    let (user, _tweet) = experiments::param_sweep(scale);
    emit(&user, "fig6_param_sweep_user");
}

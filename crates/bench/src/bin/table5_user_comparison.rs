//! Regenerates Table 5 (user-level method comparison).
use tgs_bench::{common::Scale, emit, experiments};

fn main() {
    let scale = Scale::from_env();
    let (_t4, t5) = experiments::method_comparison(scale);
    emit(&t5, "table5_user_comparison");
}

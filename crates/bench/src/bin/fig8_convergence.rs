//! Regenerates Fig. 8 (convergence of the offline algorithm).
use tgs_bench::{common::Scale, emit, experiments};

fn main() {
    let scale = Scale::from_env();
    emit(&experiments::fig8_convergence(scale), "fig8_convergence");
}

//! Shared experiment infrastructure: scales, corpus/instance caches,
//! calendar axis, evaluation subsets.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use tgs_core::TriInput;
use tgs_data::{build_offline, generate, presets, Corpus, GeneratorConfig, ProblemInstance};
use tgs_text::PipelineConfig;

/// Experiment scale: `Small` runs in seconds (scaled-down presets),
/// `Full` mirrors the paper's dataset sizes (Table 3). Selected via the
/// `TGS_SCALE` env var (`small` | `full`), default `small`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// ≈10% sized corpora, coarser sweeps.
    Small,
    /// Paper-scale corpora, fine sweeps.
    Full,
}

impl Scale {
    /// Reads the scale from the environment.
    pub fn from_env() -> Scale {
        match std::env::var("TGS_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Small,
        }
    }

    /// Short name for notes.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Full => "full",
        }
    }
}

/// The two paper datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topic {
    /// Proposition 30 (education taxes).
    Prop30,
    /// Proposition 37 (GMO labeling).
    Prop37,
}

impl Topic {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Topic::Prop30 => "Prop 30",
            Topic::Prop37 => "Prop 37",
        }
    }

    /// Generator preset for a scale.
    pub fn config(self, scale: Scale, seed: u64) -> GeneratorConfig {
        match (self, scale) {
            (Topic::Prop30, Scale::Full) => presets::prop30(seed),
            (Topic::Prop30, Scale::Small) => presets::prop30_small(seed),
            (Topic::Prop37, Scale::Full) => presets::prop37(seed),
            (Topic::Prop37, Scale::Small) => presets::prop37_small(seed),
        }
    }
}

/// The corpus seed shared by all experiments (so every table/figure sees
/// the same data, like the paper's fixed crawl).
pub const CORPUS_SEED: u64 = 2012;

/// Text pipeline used everywhere.
pub fn pipeline() -> PipelineConfig {
    let mut cfg = PipelineConfig::paper_defaults();
    cfg.vocab.min_count = 2;
    cfg
}

/// A random sparse matrix with `per_row` entries per row, values drawn
/// uniformly from `values` — the synthetic-matrix builder shared by the
/// kernel benches, the solver-iteration benches and `fused_ratio`. The
/// RNG stream is consumed as `(column, value)` per entry, so instances
/// built with a shared `rng` across several matrices (the preset
/// solver-iteration instance) keep their historical data exactly.
pub fn random_csr_with(
    rows: usize,
    cols: usize,
    per_row: usize,
    values: std::ops::Range<f64>,
    rng: &mut rand::rngs::StdRng,
) -> tgs_linalg::CsrMatrix {
    use rand::RngExt;
    let mut trip = Vec::with_capacity(rows * per_row);
    for r in 0..rows {
        for _ in 0..per_row {
            trip.push((
                r,
                rng.random_range(0..cols),
                rng.random_range(values.clone()),
            ));
        }
    }
    tgs_linalg::CsrMatrix::from_triplets(rows, cols, &trip).unwrap()
}

/// [`random_csr_with`] with its own seeded RNG (independent matrices).
pub fn random_csr(
    rows: usize,
    cols: usize,
    per_row: usize,
    values: std::ops::Range<f64>,
    seed: u64,
) -> tgs_linalg::CsrMatrix {
    let mut rng = tgs_linalg::seeded_rng(seed);
    random_csr_with(rows, cols, per_row, values, &mut rng)
}

type CorpusCache = Mutex<HashMap<(Topic, Scale), Arc<Corpus>>>;
type InstanceCache = Mutex<HashMap<(Topic, Scale), Arc<ProblemInstance>>>;

static CORPORA: std::sync::OnceLock<CorpusCache> = std::sync::OnceLock::new();
static INSTANCES: std::sync::OnceLock<InstanceCache> = std::sync::OnceLock::new();

/// The shared corpus for a topic+scale (generated once per process).
pub fn corpus(topic: Topic, scale: Scale) -> Arc<Corpus> {
    let mut cache = CORPORA.get_or_init(|| Mutex::new(HashMap::new())).lock();
    cache
        .entry((topic, scale))
        .or_insert_with(|| Arc::new(generate(&topic.config(scale, CORPUS_SEED))))
        .clone()
}

/// The shared offline problem instance (k = 3) for a topic+scale.
pub fn instance(topic: Topic, scale: Scale) -> Arc<ProblemInstance> {
    let mut cache = INSTANCES.get_or_init(|| Mutex::new(HashMap::new())).lock();
    cache
        .entry((topic, scale))
        .or_insert_with(|| {
            let c = corpus(topic, scale);
            Arc::new(build_offline(&c, 3, &pipeline()))
        })
        .clone()
}

/// Borrow an instance as a solver input.
pub fn as_input(inst: &ProblemInstance) -> TriInput<'_> {
    TriInput {
        xp: &inst.xp,
        xu: &inst.xu,
        xr: &inst.xr,
        graph: &inst.graph,
        sf0: &inst.sf0,
    }
}

/// Indices of tweets whose ground truth is polar (pos/neg) — the paper's
/// tweet-level evaluation set (Table 3 lists only pos/neg tweets).
pub fn polar_tweets(truth: &[usize]) -> Vec<usize> {
    truth
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c != tgs_text::Sentiment::Neutral.index())
        .map(|(i, _)| i)
        .collect()
}

/// Restricts parallel prediction/truth vectors to the given indices.
pub fn select(indices: &[usize], values: &[usize]) -> Vec<usize> {
    indices.iter().map(|&i| values[i]).collect()
}

/// Indices of users carrying a visible label — the paper's user-level
/// evaluation set (Table 3's labeled users).
pub fn labeled_users(labels: &[Option<usize>]) -> Vec<usize> {
    labels
        .iter()
        .enumerate()
        .filter_map(|(i, l)| l.map(|_| i))
        .collect()
}

/// Calendar label for a day offset from Aug 1 (matching the figures'
/// x-axes: Aug 1 / Sep 1 / Oct 1 / Election / Dec 1).
pub fn day_label(day: u32) -> String {
    const MONTHS: &[(&str, u32)] = &[
        ("Aug", 31),
        ("Sep", 30),
        ("Oct", 31),
        ("Nov", 30),
        ("Dec", 31),
    ];
    if day == presets::DAY_ELECTION {
        return "Election".to_string();
    }
    let mut d = day;
    for &(name, len) in MONTHS {
        if d < len {
            return format!("{name} {}", d + 1);
        }
        d -= len;
    }
    format!("day {day}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_cache_returns_same_instance() {
        let a = corpus(Topic::Prop30, Scale::Small);
        let b = corpus(Topic::Prop30, Scale::Small);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn instance_shapes_are_consistent() {
        let inst = instance(Topic::Prop30, Scale::Small);
        assert_eq!(inst.xp.rows(), inst.tweet_truth.len());
        assert_eq!(inst.xu.rows(), inst.user_truth.len());
        let input = as_input(&inst);
        input.validate(3);
    }

    #[test]
    fn polar_subset_excludes_neutral() {
        let truth = vec![0, 2, 1, 2, 0];
        assert_eq!(polar_tweets(&truth), vec![0, 2, 4]);
        assert_eq!(select(&[0, 2, 4], &truth), vec![0, 1, 0]);
    }

    #[test]
    fn day_labels_match_calendar() {
        assert_eq!(day_label(0), "Aug 1");
        assert_eq!(day_label(31), "Sep 1");
        assert_eq!(day_label(61), "Oct 1");
        assert_eq!(day_label(presets::DAY_ELECTION), "Election");
        assert_eq!(day_label(122), "Dec 1");
    }

    #[test]
    fn scale_from_env_defaults_small() {
        // NOTE: don't set the env var here (tests run in parallel);
        // just check the default path.
        if std::env::var("TGS_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Small);
        }
    }
}

//! Frozen snapshot of the seed (pre-workspace) solver iteration, kept as
//! the perf baseline for `benches/solvers.rs`.
//!
//! This module reproduces, verbatim in structure, the implementation the
//! repository shipped with before the fused `UpdateWorkspace` engine:
//! serial dense kernels, allocating `add`/`sub`/`matmul` chains in every
//! update rule, scatter-order transposed SpMM, and a from-scratch
//! objective evaluation per iteration. It exists so the benchmark
//! baseline stays **frozen**: future kernel improvements in `tgs-linalg`
//! automatically speed up the live solver but must never silently speed
//! up the baseline, or the recorded perf trajectory would understate
//! every PR. Do not "fix" or optimize anything here.

use tgs_core::{TriFactors, TriInput};
use tgs_linalg::{laplacian_quad, mult_update, split_pos_neg, CsrMatrix, DenseMatrix};

/// Seed dense `a · b` (serial i-k-j loop, fresh allocation).
fn matmul(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.cols(), b.rows(), "seed matmul shape mismatch");
    let mut out = DenseMatrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        let a_row = a.row(i);
        for (k, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = b.row(k);
            let out_row = out.row_mut(i);
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Seed Gram `aᵀ · a` (serial upper triangle + mirror).
#[allow(clippy::needless_range_loop)] // triangular indexing, kept as the seed wrote it
fn gram(a: &DenseMatrix) -> DenseMatrix {
    let k = a.cols();
    let mut out = DenseMatrix::zeros(k, k);
    for i in 0..a.rows() {
        let row = a.row(i);
        for p in 0..k {
            let rp = row[p];
            if rp == 0.0 {
                continue;
            }
            for q in p..k {
                let v = out.get(p, q) + rp * row[q];
                out.set(p, q, v);
            }
        }
    }
    for p in 0..k {
        for q in (p + 1)..k {
            let v = out.get(p, q);
            out.set(q, p, v);
        }
    }
    out
}

/// Seed `aᵀ · b` (serial, no transpose materialization).
fn transpose_matmul(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.rows(), b.rows(), "seed transpose_matmul shape mismatch");
    let mut out = DenseMatrix::zeros(a.cols(), b.cols());
    for i in 0..a.rows() {
        let a_row = a.row(i);
        let b_row = b.row(i);
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let out_row = out.row_mut(p);
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Seed `a · bᵀ` (serial dot per output element).
fn matmul_transpose(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.cols(), b.cols(), "seed matmul_transpose shape mismatch");
    let mut out = DenseMatrix::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        let a_row = a.row(i);
        for j in 0..b.rows() {
            out.set(i, j, tgs_linalg::dot(a_row, b.row(j)));
        }
    }
    out
}

/// Seed sparse × dense (row-major accumulate; the seed wired its row
/// parallelism into this kernel, reproduced here through the same
/// dispatch so multi-core baselines stay faithful).
fn mul_dense(x: &CsrMatrix, d: &DenseMatrix) -> DenseMatrix {
    let k = d.cols();
    let mut out = DenseMatrix::zeros(x.rows(), k);
    tgs_linalg::parallel::for_each_row_chunk(
        x.rows(),
        x.nnz() * k,
        out.as_mut_slice(),
        k,
        |r0, chunk| {
            for (local, out_row) in chunk.chunks_exact_mut(k.max(1)).enumerate() {
                for (c, v) in x.iter_row(r0 + local) {
                    for (o, &dv) in out_row.iter_mut().zip(d.row(c).iter()) {
                        *o += v * dv;
                    }
                }
            }
        },
    );
    out
}

/// Seed transposed sparse × dense: serial scatter over stored entries.
fn transpose_mul_dense(x: &CsrMatrix, d: &DenseMatrix) -> DenseMatrix {
    let k = d.cols();
    let mut out = DenseMatrix::zeros(x.cols(), k);
    for r in 0..x.rows() {
        let d_row = d.row(r);
        for (c, v) in x.iter_row(r) {
            let out_row = out.row_mut(c);
            for (o, &dv) in out_row.iter_mut().zip(d_row.iter()) {
                *o += v * dv;
            }
        }
    }
    out
}

/// Seed `row_scale`: clones, then scales in place.
fn row_scale(m: &DenseMatrix, scale: &[f64]) -> DenseMatrix {
    let mut out = m.clone();
    for (i, &s) in scale.iter().enumerate() {
        for v in out.row_mut(i) {
            *v *= s;
        }
    }
    out
}

/// Seed Eq. (9): `Sp` update.
pub fn update_sp(input: &TriInput<'_>, f: &mut TriFactors) {
    let a = matmul_transpose(&mul_dense(input.xp, &f.sf), &f.hp);
    let c = transpose_mul_dense(input.xr, &f.su);
    let hp_sfsf_hp = matmul_transpose(&matmul(&f.hp, &gram(&f.sf)), &f.hp);
    let su_gram = gram(&f.su);
    let delta = transpose_matmul(&f.sp, &a)
        .add(&transpose_matmul(&f.sp, &c))
        .sub(&hp_sfsf_hp)
        .sub(&su_gram);
    let (dp, dm) = split_pos_neg(&delta);
    let num = a.add(&c).add(&matmul(&f.sp, &dm));
    let den = matmul(&f.sp, &hp_sfsf_hp.add(&su_gram).add(&dp));
    mult_update(&mut f.sp, &num, &den);
}

/// Seed Eq. (12): `Hp` update.
pub fn update_hp(input: &TriInput<'_>, f: &mut TriFactors) {
    let xp_sf = mul_dense(input.xp, &f.sf);
    let num = transpose_matmul(&f.sp, &xp_sf);
    let den = matmul(&matmul(&gram(&f.sp), &f.hp), &gram(&f.sf));
    mult_update(&mut f.hp, &num, &den);
}

/// Seed Eq. (13): `Hu` update.
pub fn update_hu(input: &TriInput<'_>, f: &mut TriFactors) {
    let xu_sf = mul_dense(input.xu, &f.sf);
    let num = transpose_matmul(&f.su, &xu_sf);
    let den = matmul(&matmul(&gram(&f.su), &f.hu), &gram(&f.sf));
    mult_update(&mut f.hu, &num, &den);
}

/// Seed Eq. (11): offline `Su` update.
pub fn update_su_offline(input: &TriInput<'_>, f: &mut TriFactors, beta: f64) {
    let b = matmul_transpose(&mul_dense(input.xu, &f.sf), &f.hu);
    let d = mul_dense(input.xr, &f.sp);
    let gu_su = mul_dense(input.graph.adjacency(), &f.su);
    let du_su = row_scale(&f.su, input.graph.degrees());
    let lu_su = du_su.sub(&gu_su);
    let hu_sfsf_hu = matmul_transpose(&matmul(&f.hu, &gram(&f.sf)), &f.hu);
    let sp_gram = gram(&f.sp);
    let delta = transpose_matmul(&f.su, &b)
        .add(&transpose_matmul(&f.su, &d))
        .sub(&hu_sfsf_hu)
        .sub(&sp_gram)
        .sub(&transpose_matmul(&f.su, &lu_su).scale(beta));
    let (dp, dm) = split_pos_neg(&delta);
    let mut num = b.add(&d).add(&matmul(&f.su, &dm));
    num.axpy(beta, &gu_su);
    let mut den = matmul(&f.su, &hu_sfsf_hu.add(&sp_gram).add(&dp));
    den.axpy(beta, &du_su);
    mult_update(&mut f.su, &num, &den);
}

/// Seed Eq. (7): `Sf` update.
pub fn update_sf(input: &TriInput<'_>, f: &mut TriFactors, alpha: f64, sf_target: &DenseMatrix) {
    let xu_su_hu = matmul(&transpose_mul_dense(input.xu, &f.su), &f.hu);
    let xp_sp_hp = matmul(&transpose_mul_dense(input.xp, &f.sp), &f.hp);
    let hu_susu_hu = matmul(&matmul(&f.hu.transpose(), &gram(&f.su)), &f.hu);
    let hp_spsp_hp = matmul(&matmul(&f.hp.transpose(), &gram(&f.sp)), &f.hp);
    let delta = transpose_matmul(&f.sf, &xu_su_hu)
        .add(&transpose_matmul(&f.sf, &xp_sp_hp))
        .sub(&hu_susu_hu)
        .sub(&hp_spsp_hp)
        .sub(&transpose_matmul(&f.sf, &f.sf.sub(sf_target)).scale(alpha));
    let (dp, dm) = split_pos_neg(&delta);
    let mut num = xu_su_hu.add(&xp_sp_hp).add(&matmul(&f.sf, &dm));
    num.axpy(alpha, sf_target);
    let mut den = matmul(&f.sf, &hu_susu_hu.add(&hp_spsp_hp).add(&dp));
    den.axpy(alpha, &f.sf);
    mult_update(&mut f.sf, &num, &den);
}

/// Seed objective evaluation (Eq. 1): from scratch, per call.
pub fn offline_objective(input: &TriInput<'_>, f: &TriFactors, alpha: f64, beta: f64) -> f64 {
    let approx_bi = |x: &CsrMatrix, a: &DenseMatrix, b: &DenseMatrix| -> f64 {
        let x_sq = x.frobenius_sq();
        let cross = x.inner_with_factored(a, b);
        let fit = gram(a).frobenius_inner(&gram(b));
        (x_sq - 2.0 * cross + fit).max(0.0)
    };
    let tweet = approx_bi(input.xp, &matmul(&f.sp, &f.hp), &f.sf);
    let user = approx_bi(input.xu, &matmul(&f.su, &f.hu), &f.sf);
    let retweet = approx_bi(input.xr, &f.su, &f.sp);
    let lexicon = alpha * f.sf.sub(input.sf0).frobenius_sq();
    let graph = beta * laplacian_quad(input.graph.adjacency(), input.graph.degrees(), &f.su);
    tweet + user + retweet + lexicon + graph
}

/// One full seed solver iteration: the five rules in Algorithm 1 order
/// plus the from-scratch objective evaluation.
pub fn iteration(input: &TriInput<'_>, f: &mut TriFactors, alpha: f64, beta: f64) -> f64 {
    update_sp(input, f);
    update_hp(input, f);
    update_su_offline(input, f, beta);
    update_hu(input, f);
    update_sf(input, f, alpha, input.sf0);
    offline_objective(input, f, alpha, beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;
    use tgs_graph::UserGraph;
    use tgs_linalg::{seeded_rng, CsrMatrix};

    /// The frozen baseline must agree with the live reference rules — it
    /// is the same algorithm; only kernel scheduling/allocation differ.
    #[test]
    fn baseline_matches_live_rules() {
        let mut rng = seeded_rng(3);
        let (n, m, l, k) = (15, 6, 12, 3);
        let rand_csr = |rows: usize, cols: usize, nnz: usize, rng: &mut rand::rngs::StdRng| {
            let trip: Vec<(usize, usize, f64)> = (0..nnz)
                .map(|_| {
                    (
                        rng.random_range(0..rows),
                        rng.random_range(0..cols),
                        rng.random_range(0.2..2.0),
                    )
                })
                .collect();
            CsrMatrix::from_triplets(rows, cols, &trip).unwrap()
        };
        let xp = rand_csr(n, l, 70, &mut rng);
        let xu = rand_csr(m, l, 40, &mut rng);
        let xr = rand_csr(m, n, 25, &mut rng);
        let graph = UserGraph::from_edges(m, &[(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)]);
        let sf0 = DenseMatrix::filled(l, k, 1.0 / k as f64);
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let mut frozen = TriFactors::random(n, m, l, k, 9);
        let mut live = frozen.clone();
        for _ in 0..3 {
            let obj_frozen = iteration(&input, &mut frozen, 0.1, 0.4);
            tgs_core::updates::update_sp(&input, &mut live);
            tgs_core::updates::update_hp(&input, &mut live);
            tgs_core::updates::update_su_offline(&input, &mut live, 0.4);
            tgs_core::updates::update_hu(&input, &mut live);
            tgs_core::updates::update_sf(&input, &mut live, 0.1, &sf0);
            let obj_live = tgs_core::offline_objective(&input, &live, 0.1, 0.4).total();
            assert!(frozen.sp.max_abs_diff(&live.sp) < 1e-9, "Sp diverged");
            assert!(frozen.su.max_abs_diff(&live.su) < 1e-9, "Su diverged");
            assert!(frozen.sf.max_abs_diff(&live.sf) < 1e-9, "Sf diverged");
            assert!(
                (obj_frozen - obj_live).abs() <= 1e-9 * (1.0 + obj_live.abs()),
                "objective diverged: {obj_frozen} vs {obj_live}"
            );
        }
    }
}

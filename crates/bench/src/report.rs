//! Table rendering and persistence for experiment outputs.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// A rendered experiment result: one table with a title and provenance
/// note, printable as markdown and persistable as TSV.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table title (e.g. `"Table 4: tweet-level comparison"`).
    pub title: String,
    /// A note on workload/parameters (rendered under the title).
    pub note: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            note: String::new(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Sets the provenance note.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = note.into();
        self
    }

    /// Appends a row (must match the header width).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Renders as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        if !self.note.is_empty() {
            let _ = writeln!(out, "_{}_", self.note);
        }
        let _ = writeln!(out);
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let fmt_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths.iter())
                .map(|(c, &w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        let _ = writeln!(out, "| {} |", sep.join(" | "));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }

    /// Renders as TSV (headers first).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join("\t"));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join("\t"));
        }
        out
    }

    /// Writes the TSV under the experiments output directory and returns
    /// the path.
    pub fn write_tsv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = output_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.tsv"));
        fs::write(&path, self.to_tsv())?;
        Ok(path)
    }
}

/// Where experiment outputs land (`target/experiments` unless overridden
/// via `TGS_OUTPUT_DIR`).
pub fn output_dir() -> PathBuf {
    std::env::var_os("TGS_OUTPUT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new("target").join("experiments"))
}

/// Prints a table to stdout and persists its TSV; convenience used by
/// every experiment binary.
pub fn emit(table: &Table, name: &str) {
    println!("{}", table.to_markdown());
    match table.write_tsv(name) {
        Ok(path) => println!("[written: {}]\n", path.display()),
        Err(e) => eprintln!("[warn: could not write {name}.tsv: {e}]"),
    }
}

/// Formats a float with 2 decimal places (accuracy/NMI percentages).
pub fn pct(v: f64) -> String {
    format!("{:.2}", v * 100.0)
}

/// Formats a duration in seconds with millisecond resolution.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_renders_alignment() {
        let mut t = Table::new("Demo", &["method", "acc"]);
        t.push_row(vec!["tri".into(), "81.87".into()]);
        t.push_row(vec!["svm-long-name".into(), "89.35".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| svm-long-name | 89.35 |"));
        assert!(md.contains("| tri           | 81.87 |"));
    }

    #[test]
    fn tsv_roundtrip_structure() {
        let mut t = Table::new("T", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_tsv(), "a\tb\n1\t2\n");
    }

    #[test]
    #[should_panic(expected = "row width must match headers")]
    fn row_width_checked() {
        let mut t = Table::new("T", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn pct_and_secs_format() {
        assert_eq!(pct(0.8187), "81.87");
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500");
    }
}

//! Criterion micro-benchmarks of the linear-algebra kernels that
//! dominate a tri-clustering iteration: sparse×dense products, Gram
//! matrices, the multiplicative update, and factored objective
//! evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tgs_linalg::{
    approx_error_tri, mult_update, mult_update_from_parts, random_factor, set_simd_tier_override,
    split_pos_neg, CscView, CsrMatrix, DenseMatrix, SimdTier,
};

/// A random sparse matrix with ~`nnz_per_row` entries per row (shared
/// builder; this bench's historical value range is `0.1..2.0`).
fn random_csr(rows: usize, cols: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
    tgs_bench::common::random_csr(rows, cols, nnz_per_row, 0.1..2.0, seed)
}

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm");
    for &n in &[1_000usize, 10_000, 40_000] {
        let x = random_csr(n, 3_000, 10, 7);
        let d = random_factor(3_000, 3, 8);
        group.bench_with_input(BenchmarkId::new("mul_dense", n), &n, |b, _| {
            b.iter(|| black_box(x.mul_dense(&d)))
        });
        let mut out = DenseMatrix::default();
        group.bench_with_input(BenchmarkId::new("mul_dense_into", n), &n, |b, _| {
            b.iter(|| {
                x.mul_dense_into(&d, &mut out);
                black_box(out.get(0, 0))
            })
        });
        let dt = random_factor(n, 3, 9);
        group.bench_with_input(BenchmarkId::new("transpose_mul_dense", n), &n, |b, _| {
            b.iter(|| black_box(x.transpose_mul_dense(&dt)))
        });
        // Fresh transpose each product vs the cached CscView forward pass.
        group.bench_with_input(BenchmarkId::new("transpose_fresh_spmm", n), &n, |b, _| {
            b.iter(|| black_box(x.transpose().mul_dense(&dt)))
        });
        let csc = CscView::of(&x);
        let mut out_t = DenseMatrix::default();
        group.bench_with_input(BenchmarkId::new("transpose_cached_spmm", n), &n, |b, _| {
            b.iter(|| {
                csc.transpose_mul_dense_into(&dt, &mut out_t);
                black_box(out_t.get(0, 0))
            })
        });
    }
    group.finish();
}

fn bench_gram(c: &mut Criterion) {
    let mut group = c.benchmark_group("gram");
    for &n in &[10_000usize, 100_000] {
        let m = random_factor(n, 3, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(m.gram()))
        });
    }
    group.finish();
}

fn bench_mult_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("mult_update");
    for &n in &[10_000usize, 100_000] {
        let num = random_factor(n, 3, 1);
        let den = random_factor(n, 3, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || random_factor(n, 3, 3),
                |mut s| {
                    mult_update(&mut s, &num, &den);
                    black_box(s)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_objective(c: &mut Criterion) {
    let mut group = c.benchmark_group("factored_objective");
    for &n in &[10_000usize, 40_000] {
        let x = random_csr(n, 3_000, 10, 11);
        let s = random_factor(n, 3, 1);
        let h = random_factor(3, 3, 2);
        let f = random_factor(3_000, 3, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(approx_error_tri(&x, &s, &h, &f)))
        });
    }
    group.finish();
}

/// The fused multiplicative update vs the seed's allocating
/// `add`/`matmul`/`axpy` chain — the per-rule hot path of every sweep.
fn bench_fused_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_update");
    for &(n, k) in &[(10_000usize, 3usize), (10_000, 10), (100_000, 3)] {
        let id = format!("{n}x{k}");
        let num_base = random_factor(n, k, 1);
        let extra = random_factor(n, k, 2);
        let delta = {
            let a = random_factor(k, k, 3);
            let b = random_factor(k, k, 4);
            a.sub(&b) // signed k×k multiplier
        };
        let (dp, dm) = split_pos_neg(&delta);
        let base_k = random_factor(k, k, 5);
        let den_k = base_k.add(&dp);
        let deg: Vec<f64> = (0..n).map(|i| (i % 7) as f64 * 0.3).collect();
        let beta = 0.4;
        let s0 = random_factor(n, k, 6);

        let mut s = s0.clone();
        group.bench_with_input(BenchmarkId::new("term_by_term", &id), &n, |b, _| {
            b.iter(|| {
                // the seed chain: 4 full-size temporaries per update
                let mut num = num_base.add(&s.matmul(&dm));
                num.axpy(beta, &extra);
                let mut den = s.matmul(&den_k);
                let mut du_s = s.clone();
                for (i, &dv) in deg.iter().enumerate() {
                    for v in du_s.row_mut(i) {
                        *v *= dv;
                    }
                }
                den.axpy(beta, &du_s);
                mult_update(&mut s, &num, &den);
                black_box(s.get(0, 0))
            })
        });
        let mut s = s0.clone();
        group.bench_with_input(BenchmarkId::new("fused", &id), &n, |b, _| {
            b.iter(|| {
                mult_update_from_parts(
                    &mut s,
                    &num_base,
                    None,
                    &dm,
                    &den_k,
                    &[(beta, &extra)],
                    Some((beta, &deg)),
                    0.0,
                    None,
                );
                black_box(s.get(0, 0))
            })
        });
    }
    group.finish();
}

/// The SIMD-dispatch A/B series: every hot kernel measured with the
/// tier forced to `scalar` and with the detected tier (`dispatched` —
/// check the `simd` field in `tgs stream --stats`, or
/// `tgs_linalg::simd_tier_name()`, for what that resolves to on the
/// bench host). Results are bit-identical across tiers by construction
/// (asserted by `tests/simd_parity.rs`); this series records the speed
/// delta per kernel so perf reports can attribute wins to dispatch vs
/// fusion.
fn bench_simd_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("simd_kernels");
    let (n, k) = (40_000usize, 10usize);
    let s0 = random_factor(n, k, 3);
    let num_base = random_factor(n, k, 1);
    let extra = random_factor(n, k, 2);
    let delta = random_factor(k, k, 4).sub(&random_factor(k, k, 5));
    let (dp, dm) = split_pos_neg(&delta);
    let den_k = random_factor(k, k, 6).add(&dp);
    let deg: Vec<f64> = (0..n).map(|i| (i % 7) as f64 * 0.3).collect();
    let x = random_csr(n, 3_000, 10, 7);
    let d3k = random_factor(3_000, k, 8);
    let pair_x = random_factor(n, k, 9);
    let pair_y = random_factor(n, k, 10);

    for (mode, tier) in [
        ("scalar", Some(SimdTier::Scalar)),
        ("dispatched", None::<SimdTier>),
    ] {
        set_simd_tier_override(tier);
        let mut s = s0.clone();
        let mut gram = DenseMatrix::default();
        group.bench_with_input(
            BenchmarkId::new(mode, "fused_update_gram_40000x10"),
            &n,
            |b, _| {
                b.iter(|| {
                    mult_update_from_parts(
                        &mut s,
                        &num_base,
                        None,
                        &dm,
                        &den_k,
                        &[(0.4, &extra)],
                        Some((0.4, &deg)),
                        0.0,
                        Some(&mut gram),
                    );
                    black_box(s.get(0, 0))
                })
            },
        );
        let mut g = DenseMatrix::default();
        group.bench_with_input(BenchmarkId::new(mode, "gram_40000x10"), &n, |b, _| {
            b.iter(|| {
                s0.gram_into(&mut g);
                black_box(g.get(0, 0))
            })
        });
        let mut out = DenseMatrix::default();
        group.bench_with_input(BenchmarkId::new(mode, "spmm_40000x10"), &n, |b, _| {
            b.iter(|| {
                x.mul_dense_into(&d3k, &mut out);
                black_box(out.get(0, 0))
            })
        });
        let (mut ox, mut oy) = (DenseMatrix::default(), DenseMatrix::default());
        group.bench_with_input(
            BenchmarkId::new(mode, "transpose_matmul_pair_40000x10"),
            &n,
            |b, _| {
                b.iter(|| {
                    s0.transpose_matmul_pair_into(&pair_x, &pair_y, &mut ox, &mut oy);
                    black_box(ox.get(0, 0))
                })
            },
        );
        let mut mt = DenseMatrix::default();
        group.bench_with_input(
            BenchmarkId::new(mode, "matmul_transpose_40000x10"),
            &n,
            |b, _| {
                b.iter(|| {
                    s0.matmul_transpose_into(&dm, &mut mt);
                    black_box(mt.get(0, 0))
                })
            },
        );
    }
    set_simd_tier_override(None);
    group.finish();
}

fn bench_dense_small(c: &mut Criterion) {
    let k = 3usize;
    let a: DenseMatrix = random_factor(k, k, 4);
    let b2: DenseMatrix = random_factor(k, k, 5);
    c.bench_function("kxk_matmul", |b| b.iter(|| black_box(a.matmul(&b2))));
}

/// The spawn-overhead A/B behind the PR 6 worker pool: the same
/// row-chunked dispatch (2 chunks, near-trivial per-row body) issued
/// through the persistent pool vs through a fresh `std::thread::scope`
/// spawn per call — the pre-pool implementation. The per-row work is
/// kept tiny so the series prices *dispatch* (queue hand-off + futex
/// wake vs pthread create/join), which is what every below-threshold
/// kernel call used to pay.
fn bench_pool_overhead(c: &mut Criterion) {
    use tgs_linalg::parallel::for_each_row_chunk;
    use tgs_linalg::{set_parallel_work_threshold, set_pool_threads_override};

    let mut group = c.benchmark_group("pool_overhead");
    let prev_t = set_pool_threads_override(Some(2));
    let prev_w = set_parallel_work_threshold(1);
    for &rows in &[1_000usize, 10_000, 100_000] {
        let width = 3usize;
        let mut buf = vec![0.0f64; rows * width];
        let body = |first_row: usize, chunk: &mut [f64]| {
            for (local, out_row) in chunk.chunks_exact_mut(width).enumerate() {
                let r = (first_row + local) as f64;
                for v in out_row.iter_mut() {
                    *v = r * 0.5 + 1.0;
                }
            }
        };
        group.bench_with_input(BenchmarkId::new("pooled", rows), &rows, |b, _| {
            b.iter(|| {
                for_each_row_chunk(rows, usize::MAX, &mut buf, width, body);
                black_box(buf[0])
            })
        });
        group.bench_with_input(BenchmarkId::new("scoped_spawn", rows), &rows, |b, _| {
            b.iter(|| {
                // the pre-pool dispatch: fresh OS threads per call, same
                // 2-chunk boundaries
                let rows_per_chunk = rows.div_ceil(2);
                std::thread::scope(|s| {
                    for (ci, chunk) in buf.chunks_mut(rows_per_chunk * width).enumerate() {
                        s.spawn(move || body(ci * rows_per_chunk, chunk));
                    }
                });
                black_box(buf[0])
            })
        });
    }
    set_parallel_work_threshold(prev_w);
    set_pool_threads_override(prev_t);
    group.finish();
}

/// Multi-core scaling of the two row-parallel kernel shapes — the
/// chunked map (`mult_update`, disjoint row writes) and the blocked
/// reduction (`gram`, block-ordered partial fold) — at pool budgets
/// 1/2/4. On a multi-core host these are the kernel scaling curves; on
/// a single-vCPU host every budget shares one core, so the spread
/// prices pure pool-dispatch overhead instead (see PERF.md).
fn bench_thread_scaling(c: &mut Criterion) {
    use tgs_linalg::{set_parallel_work_threshold, set_pool_threads_override};

    let n = 100_000usize;
    let mut group = c.benchmark_group("thread_scaling");
    let prev_w = set_parallel_work_threshold(1);
    for &threads in &[1usize, 2, 4] {
        let prev_t = set_pool_threads_override(Some(threads));
        let m = random_factor(n, 3, 3);
        group.bench_with_input(BenchmarkId::new("gram_100k", threads), &threads, |b, _| {
            b.iter(|| black_box(m.gram()))
        });
        let num = random_factor(n, 3, 1);
        let den = random_factor(n, 3, 2);
        let mut s = random_factor(n, 3, 4);
        group.bench_with_input(
            BenchmarkId::new("mult_update_100k", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    mult_update(&mut s, &num, &den);
                    black_box(s.get(0, 0))
                })
            },
        );
        set_pool_threads_override(prev_t);
    }
    set_parallel_work_threshold(prev_w);
    group.finish();
}

/// The `TGS_PREFETCH` sweep: CSR-gather SpMM with the software-prefetch
/// lookahead forced to 0 (hints off) / 2 / 4 / 8 (default). Distance
/// never changes the computed bits (asserted in `pool_parity.rs`), so
/// the series records latency-hiding quality only.
fn bench_prefetch_sweep(c: &mut Criterion) {
    use tgs_linalg::set_prefetch_lookahead;

    let n = 40_000usize;
    let x = random_csr(n, 3_000, 10, 7);
    let d = random_factor(3_000, 3, 8);
    let mut out = DenseMatrix::default();
    let mut group = c.benchmark_group("spmm_prefetch");
    let prev = set_prefetch_lookahead(Some(8));
    for &distance in &[0usize, 2, 4, 8] {
        set_prefetch_lookahead(Some(distance));
        group.bench_with_input(
            BenchmarkId::new("mul_dense_into_40k", distance),
            &distance,
            |b, _| {
                b.iter(|| {
                    x.mul_dense_into(&d, &mut out);
                    black_box(out.get(0, 0))
                })
            },
        );
    }
    set_prefetch_lookahead(Some(prev));
    group.finish();
}

criterion_group!(
    benches,
    bench_spmm,
    bench_gram,
    bench_mult_update,
    bench_fused_update,
    bench_simd_kernels,
    bench_objective,
    bench_dense_small,
    bench_pool_overhead,
    bench_thread_scaling,
    bench_prefetch_sweep
);
criterion_main!(benches);

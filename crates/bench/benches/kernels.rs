//! Criterion micro-benchmarks of the linear-algebra kernels that
//! dominate a tri-clustering iteration: sparse×dense products, Gram
//! matrices, the multiplicative update, and factored objective
//! evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::RngExt;
use std::hint::black_box;
use tgs_linalg::{
    approx_error_tri, mult_update, random_factor, seeded_rng, CsrMatrix, DenseMatrix,
};

/// A random sparse matrix with ~`nnz_per_row` entries per row.
fn random_csr(rows: usize, cols: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
    let mut rng = seeded_rng(seed);
    let mut trip = Vec::with_capacity(rows * nnz_per_row);
    for r in 0..rows {
        for _ in 0..nnz_per_row {
            trip.push((r, rng.random_range(0..cols), rng.random_range(0.1..2.0)));
        }
    }
    CsrMatrix::from_triplets(rows, cols, &trip).unwrap()
}

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm");
    for &n in &[1_000usize, 10_000, 40_000] {
        let x = random_csr(n, 3_000, 10, 7);
        let d = random_factor(3_000, 3, 8);
        group.bench_with_input(BenchmarkId::new("mul_dense", n), &n, |b, _| {
            b.iter(|| black_box(x.mul_dense(&d)))
        });
        let dt = random_factor(n, 3, 9);
        group.bench_with_input(BenchmarkId::new("transpose_mul_dense", n), &n, |b, _| {
            b.iter(|| black_box(x.transpose_mul_dense(&dt)))
        });
    }
    group.finish();
}

fn bench_gram(c: &mut Criterion) {
    let mut group = c.benchmark_group("gram");
    for &n in &[10_000usize, 100_000] {
        let m = random_factor(n, 3, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(m.gram()))
        });
    }
    group.finish();
}

fn bench_mult_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("mult_update");
    for &n in &[10_000usize, 100_000] {
        let num = random_factor(n, 3, 1);
        let den = random_factor(n, 3, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || random_factor(n, 3, 3),
                |mut s| {
                    mult_update(&mut s, &num, &den);
                    black_box(s)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_objective(c: &mut Criterion) {
    let mut group = c.benchmark_group("factored_objective");
    for &n in &[10_000usize, 40_000] {
        let x = random_csr(n, 3_000, 10, 11);
        let s = random_factor(n, 3, 1);
        let h = random_factor(3, 3, 2);
        let f = random_factor(3_000, 3, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(approx_error_tri(&x, &s, &h, &f)))
        });
    }
    group.finish();
}

fn bench_dense_small(c: &mut Criterion) {
    let k = 3usize;
    let a: DenseMatrix = random_factor(k, k, 4);
    let b2: DenseMatrix = random_factor(k, k, 5);
    c.bench_function("kxk_matmul", |b| b.iter(|| black_box(a.matmul(&b2))));
}

criterion_group!(
    benches,
    bench_spmm,
    bench_gram,
    bench_mult_update,
    bench_objective,
    bench_dense_small
);
criterion_main!(benches);

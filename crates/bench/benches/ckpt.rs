//! Checkpoint encoding benchmarks: full snapshots vs delta checkpoints
//! across activity rates — the quantitative case for the O(changes)
//! delta path. A full checkpoint re-encodes the entire session
//! (vocabulary, every user's history, all retained factors) no matter
//! how little changed; `delta_since` encodes only the users touched
//! since the base mark. The series pins down both the byte and the
//! latency ratio as the fraction of users touched per step shrinks.
//!
//! Measured sizes are embedded in the benchmark ids (`..._<N>B`) so the
//! `BENCH_ckpt.json` artifact carries bytes alongside nanoseconds.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;
use tgs_data::{day_windows, generate, Corpus, GeneratorConfig};
use tgs_engine::{EngineBuilder, EngineSnapshot, ShardedEngine};

/// Users in the benchmark corpus; `BENCH_FAST=1` shrinks it 10× so the
/// smoke leg stays quick. The committed artifact uses the full size.
fn corpus_users() -> usize {
    let fast = std::env::var("BENCH_FAST").is_ok_and(|v| v == "1");
    if fast {
        4_000
    } else {
        40_000
    }
}

fn bench_corpus(users: usize) -> Corpus {
    generate(&GeneratorConfig {
        topic: format!("ckpt-{users}"),
        num_users: users,
        total_tweets: users * 3,
        num_days: 6,
        ..Default::default()
    })
}

/// Drives one engine "step": a snapshot touching exactly `touched`
/// users (rotating through the user space so no single user's history
/// balloons across setup repetitions), ingested and flushed.
struct StepDriver {
    users: usize,
    next_user: usize,
    next_ts: u64,
}

impl StepDriver {
    fn new(corpus: &Corpus) -> Self {
        Self {
            users: corpus.num_users(),
            next_user: 0,
            next_ts: corpus.num_days as u64,
        }
    }

    fn step(&mut self, engine: &ShardedEngine, touched: usize) {
        let mut snap = EngineSnapshot::new(self.next_ts);
        self.next_ts += 1;
        for _ in 0..touched {
            snap.push_text(
                self.next_user % self.users,
                "steady benchmark chatter good solid results today",
            );
            self.next_user += 1;
        }
        engine.ingest(snap).expect("ingest");
        engine.flush().expect("flush");
    }
}

/// One measured point: warm an engine, record the deterministic delta
/// and full sizes for a step touching `pct`% of users, then time full
/// encodes (freely repeatable) and delta encodes (each iteration
/// re-arms a fresh base mark and replays one step in untimed setup, so
/// the timed region is exactly the delta encoding of an r%-step).
fn bench_rate(c: &mut Criterion, corpus: &Corpus, shards: usize, pct: usize, with_apply: bool) {
    let users = corpus.num_users();
    let touched = (users * pct / 100).max(1);
    let engine = EngineBuilder::new()
        .k(3)
        .max_iters(4)
        .fit_sharded(corpus, shards)
        .expect("fit");
    // Stream the whole corpus through the live engine so every user
    // carries retained history — the state a long-running deployment
    // checkpoints. Without this, fitting alone leaves per-user state
    // near-empty and full snapshots unrealistically cheap.
    for (lo, hi) in day_windows(corpus.num_days, 2) {
        engine
            .ingest(EngineSnapshot::from_corpus_window(corpus, lo, hi))
            .expect("ingest window");
    }
    engine.flush().expect("flush");
    let mut driver = StepDriver::new(corpus);
    // Prime the vocabulary so measured deltas don't pay the one-off
    // cost of the synthetic step's first-seen tokens.
    driver.step(&engine, touched);

    let (tips, base) = engine.checkpoint_base().expect("base");
    driver.step(&engine, touched);
    let delta = engine
        .delta_since(&tips)
        .expect("delta encode")
        .expect("fresh tips must be servable");
    let full = engine.checkpoint().expect("full");
    let (delta_bytes, full_bytes) = (delta.len(), full.len());

    let mut group = c.benchmark_group(format!("ckpt_encode_n{users}_s{shards}"));
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new(format!("full_{full_bytes}B"), pct),
        &(),
        |b, _| b.iter(|| black_box(engine.checkpoint().expect("full"))),
    );
    group.bench_with_input(
        BenchmarkId::new(format!("delta_{delta_bytes}B"), pct),
        &(),
        |b, _| {
            b.iter_batched(
                || {
                    let (tips, _) = engine.checkpoint_base().expect("base");
                    driver.step(&engine, touched);
                    tips
                },
                |tips| {
                    black_box(
                        engine
                            .delta_since(&tips)
                            .expect("delta encode")
                            .expect("fresh tips must be servable"),
                    )
                },
                BatchSize::PerIteration,
            )
        },
    );
    if with_apply {
        group.bench_with_input(BenchmarkId::new("apply_delta", pct), &(), |b, _| {
            b.iter(|| black_box(ShardedEngine::apply_delta(&base, &delta).expect("apply")))
        });
    }
    group.finish();
    engine.shutdown().expect("shutdown");
}

fn bench_ckpt_encode(c: &mut Criterion) {
    let corpus = bench_corpus(corpus_users());
    // Single-shard series: the acceptance point is 5% (delta must be
    // ≥5× smaller and faster than full there); 1% and 20% bracket it
    // and 100% bounds the worst case (every user touched).
    for &pct in &[1usize, 5, 20, 100] {
        bench_rate(c, &corpus, 1, pct, pct == 5);
    }
    // Multi-section assembly through the 4-shard router path.
    bench_rate(c, &corpus, 4, 5, false);
}

criterion_group!(benches, bench_ckpt_encode);
criterion_main!(benches);

//! Criterion benchmarks of the solvers: offline iteration scaling with
//! corpus size, and the per-day cost of online vs mini-batch vs
//! full-batch — the quantitative backbone of the complexity analysis in
//! §3.2/§4.2 and Figs. 11(a)/12(a).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::RngExt;
use std::hint::black_box;
use tgs_bench::common::pipeline;
use tgs_core::{
    solve_offline, solve_offline_sharded, updates, OfflineConfig, OnlineConfig, OnlineSolver,
    SnapshotData, TriFactors, TriInput, UpdateWorkspace,
};
use tgs_data::{build_offline, build_offline_sharded, generate, GeneratorConfig, SnapshotBuilder};
use tgs_graph::UserGraph;
use tgs_linalg::{seeded_rng, CsrMatrix, DenseMatrix};

fn corpus_of_size(total_tweets: usize) -> GeneratorConfig {
    GeneratorConfig {
        topic: format!("bench-{total_tweets}"),
        num_users: (total_tweets / 15).max(20),
        total_tweets,
        num_days: 20,
        ..Default::default()
    }
}

fn bench_offline_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline_solve");
    group.sample_size(10);
    for &n in &[500usize, 2_000, 8_000] {
        let corpus = generate(&corpus_of_size(n));
        let inst = build_offline(&corpus, 3, &pipeline());
        let input = TriInput {
            xp: &inst.xp,
            xu: &inst.xu,
            xr: &inst.xr,
            graph: &inst.graph,
            sf0: &inst.sf0,
        };
        let cfg = OfflineConfig {
            k: 3,
            max_iters: 10,
            tol: 0.0,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("10_iters", n), &n, |b, _| {
            b.iter(|| black_box(solve_offline(&input, &cfg)))
        });
    }
    group.finish();
}

/// The sharded-solve series: the same offline problem split into
/// `S ∈ {1, 2, 4}` user-range shards and solved through
/// [`solve_offline_sharded`] (parallel shard-local sweeps, one global
/// `Sf` merge per iteration). `S = 1` measures the sharding layer's
/// overhead against `offline_solve` (it is bit-identical in results);
/// `S > 1` is the multi-core scaling series — on a single-vCPU host the
/// scoped shard threads serialize, so the points there measure routing +
/// merge overhead, not speedup (see PERF.md).
fn bench_sharded_offline(c: &mut Criterion) {
    let corpus = generate(&corpus_of_size(8_000));
    let cfg = OfflineConfig {
        k: 3,
        max_iters: 10,
        tol: 0.0,
        ..Default::default()
    };
    let mut group = c.benchmark_group("sharded_offline_solve");
    group.sample_size(10);
    for &shards in &[1usize, 2, 4] {
        let problem = build_offline_sharded(&corpus, 3, shards, &pipeline());
        let inputs: Vec<TriInput> = problem
            .shards
            .iter()
            .map(|s| TriInput {
                xp: &s.matrices.xp,
                xu: &s.matrices.xu,
                xr: &s.matrices.xr,
                graph: &s.matrices.graph,
                sf0: &problem.sf0,
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("10_iters", shards), &shards, |b, _| {
            b.iter(|| black_box(solve_offline_sharded(&inputs, &cfg)))
        });
    }
    // The Zipf-skew point: real social-media load concentrates on a few
    // super-active users (the generator's user-activity exponent), so an
    // even user-range split gives one shard most of the tweets — the
    // worst case for shard-parallel sweeps (the hottest shard gates the
    // iteration) and the motivation for `ShardedEngine::maybe_rebalance`.
    let skewed = generate(&GeneratorConfig {
        user_activity_exponent: 1.3,
        ..corpus_of_size(8_000)
    });
    let problem = build_offline_sharded(&skewed, 3, 4, &pipeline());
    let inputs: Vec<TriInput> = problem
        .shards
        .iter()
        .map(|s| TriInput {
            xp: &s.matrices.xp,
            xu: &s.matrices.xu,
            xr: &s.matrices.xr,
            graph: &s.matrices.graph,
            sf0: &problem.sf0,
        })
        .collect();
    group.bench_with_input(BenchmarkId::new("zipf_skew", 4), &4, |b, _| {
        b.iter(|| black_box(solve_offline_sharded(&inputs, &cfg)))
    });

    // PR 6 scaling series: the same solves with the worker-pool budget
    // pinned to 1/2/4 threads (`TGS_THREADS`). Results are bit-identical
    // at every budget (the pool preserves chunk boundaries and the
    // block-ordered reduction fold), so the series records wall-clock
    // only. On a multi-core host this is the multi-core scaling curve;
    // on a single-vCPU host all budgets share one core and the spread is
    // pool-dispatch overhead (see PERF.md).
    let problem = build_offline_sharded(&corpus, 3, 4, &pipeline());
    let even_inputs: Vec<TriInput> = problem
        .shards
        .iter()
        .map(|s| TriInput {
            xp: &s.matrices.xp,
            xu: &s.matrices.xu,
            xr: &s.matrices.xr,
            graph: &s.matrices.graph,
            sf0: &problem.sf0,
        })
        .collect();
    for &threads in &[1usize, 2, 4] {
        let prev = tgs_linalg::set_pool_threads_override(Some(threads));
        group.bench_with_input(
            BenchmarkId::new("10_iters_4shards_threads", threads),
            &threads,
            |b, _| b.iter(|| black_box(solve_offline_sharded(&even_inputs, &cfg))),
        );
        group.bench_with_input(
            BenchmarkId::new("zipf_skew_4shards_threads", threads),
            &threads,
            |b, _| b.iter(|| black_box(solve_offline_sharded(&inputs, &cfg))),
        );
        tgs_linalg::set_pool_threads_override(prev);
    }
    group.finish();
}

/// Live-rebalance cost: a boundary move and its inverse (a full round
/// trip, so every iteration starts from identical fleet state) against
/// a warmed streaming fleet, scaled by how many users each direction
/// migrates. The round trip prices two quiesces plus two export/import
/// passes over the moved range — the marginal cost a `--max-skew`
/// trigger pays mid-stream.
fn bench_sharded_rebalance(c: &mut Criterion) {
    use tgs_data::{RepartitionOp, RepartitionPlan};
    use tgs_engine::{EngineBuilder, EngineSnapshot};

    let corpus = generate(&GeneratorConfig {
        topic: "bench-rebalance".into(),
        num_users: 2_000,
        total_tweets: 6_000,
        num_days: 6,
        ..Default::default()
    });
    let mut group = c.benchmark_group("sharded_rebalance");
    group.sample_size(10);
    for &moved in &[25usize, 100, 400] {
        let engine = EngineBuilder::new()
            .k(3)
            .max_iters(6)
            .fit_sharded(&corpus, 4)
            .expect("valid build");
        for (lo, hi) in tgs_data::day_windows(corpus.num_days, 1) {
            engine
                .ingest(EngineSnapshot::from_corpus_window(&corpus, lo, hi))
                .unwrap();
        }
        engine.flush().unwrap();
        let b1 = engine.map().starts()[1];
        let forward = RepartitionPlan::single(RepartitionOp::MoveBoundary {
            boundary: 1,
            to: b1 + moved,
        });
        let inverse = RepartitionPlan::single(RepartitionOp::MoveBoundary {
            boundary: 1,
            to: b1,
        });
        group.bench_with_input(
            BenchmarkId::new("move_roundtrip_users", moved),
            &moved,
            |b, _| {
                b.iter(|| {
                    engine.rebalance(&forward).unwrap();
                    black_box(engine.rebalance(&inverse).unwrap());
                })
            },
        );
    }
    group.finish();
}

fn bench_online_vs_batch(c: &mut Criterion) {
    let corpus = generate(&corpus_of_size(4_000));
    let builder = SnapshotBuilder::new(&corpus, 3, &pipeline());
    // Warm the online solver on the first half of the stream, then
    // benchmark one incremental day against the batch equivalents.
    let windows = tgs_data::day_windows(corpus.num_days, 1);
    let warm = windows.len() / 2;
    let snap = builder.snapshot(&corpus, windows[warm].0, windows[warm].1);
    let cumulative = builder.snapshot(&corpus, 0, windows[warm].1);

    let mut group = c.benchmark_group("per_day_step");
    group.sample_size(10);
    group.bench_function("online", |b| {
        b.iter_batched(
            || {
                let mut solver = OnlineSolver::new(OnlineConfig {
                    max_iters: 20,
                    ..Default::default()
                });
                for w in windows.iter().take(warm) {
                    let s = builder.snapshot(&corpus, w.0, w.1);
                    if s.tweet_ids.is_empty() {
                        continue;
                    }
                    let input = TriInput {
                        xp: &s.xp,
                        xu: &s.xu,
                        xr: &s.xr,
                        graph: &s.graph,
                        sf0: builder.sf0(),
                    };
                    solver.step(&SnapshotData {
                        input,
                        user_ids: &s.user_ids,
                    });
                }
                solver
            },
            |mut solver| {
                let input = TriInput {
                    xp: &snap.xp,
                    xu: &snap.xu,
                    xr: &snap.xr,
                    graph: &snap.graph,
                    sf0: builder.sf0(),
                };
                black_box(solver.step(&SnapshotData {
                    input,
                    user_ids: &snap.user_ids,
                }))
            },
            criterion::BatchSize::PerIteration,
        )
    });
    let off = OfflineConfig {
        max_iters: 20,
        ..Default::default()
    };
    group.bench_function("mini_batch", |b| {
        let input = TriInput {
            xp: &snap.xp,
            xu: &snap.xu,
            xr: &snap.xr,
            graph: &snap.graph,
            sf0: builder.sf0(),
        };
        b.iter(|| black_box(solve_offline(&input, &off)))
    });
    group.bench_function("full_batch", |b| {
        let input = TriInput {
            xp: &cumulative.xp,
            xu: &cumulative.xu,
            xr: &cumulative.xr,
            graph: &cumulative.graph,
            sf0: builder.sf0(),
        };
        b.iter(|| black_box(solve_offline(&input, &off)))
    });
    group.finish();
}

/// The amortized-bind series: what `UpdateWorkspace::bind` costs per
/// online step when the workspace is thrown away every snapshot
/// (`cold` — the pre-PR-4 behavior: three fresh `O(nnz)` transposes +
/// allocations per day) versus kept across snapshots (`amortized` —
/// content fingerprints skip unchanged matrices entirely and changed
/// ones rebuild into existing buffers). The two days alternate a fresh
/// `Xp` (new tweets) over a stable user base (`Xu`/`Xr`/graph shared),
/// the shape the paper's daily cadence produces when the active user
/// set is sticky.
fn bench_online_step_rebind(c: &mut Criterion) {
    let (n, m, l) = (20_000usize, 2_500usize, 10_000usize);
    let mut rng = seeded_rng(31);
    let xp_day_a = tgs_bench::common::random_csr_with(n, l, 10, 0.2..2.0, &mut rng);
    let xp_day_b = tgs_bench::common::random_csr_with(n, l, 10, 0.2..2.0, &mut rng);
    let xu = tgs_bench::common::random_csr_with(m, l, 20, 0.2..2.0, &mut rng);
    let xr = tgs_bench::common::random_csr_with(m, n, n / m, 0.2..2.0, &mut rng);
    let edges: Vec<(usize, usize, f64)> = (0..m * 4)
        .map(|_| (rng.random_range(0..m), rng.random_range(0..m), 1.0))
        .filter(|&(a, b, _)| a != b)
        .collect();
    let graph = UserGraph::from_edges(m, &edges);
    let sf0 = DenseMatrix::filled(l, 3, 1.0 / 3.0);
    let days = [
        TriInput {
            xp: &xp_day_a,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        },
        TriInput {
            xp: &xp_day_b,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        },
    ];

    let mut group = c.benchmark_group("online_step_rebind");
    let mut day = 0usize;
    group.bench_function("cold", |b| {
        b.iter(|| {
            // Fresh workspace per snapshot: every bind pays three full
            // transposes plus their allocations.
            let mut ws = UpdateWorkspace::new();
            ws.bind(&days[day % 2]);
            day += 1;
            black_box(&ws);
        })
    });
    let mut ws = UpdateWorkspace::new();
    ws.bind(&days[0]);
    ws.bind(&days[1]); // both days' shapes warm
    let mut day = 0usize;
    group.bench_function("amortized", |b| {
        b.iter(|| {
            // Persistent workspace: Xu/Xr/graph fingerprints match every
            // day, so only the day's Xp is re-transposed — into the
            // existing buffers.
            ws.bind(&days[day % 2]);
            day += 1;
            black_box(&ws);
        })
    });
    group.finish();
}

/// Preset synthetic instance for the iteration benchmark.
fn synthetic_sweep_instance(
    n: usize,
    m: usize,
    l: usize,
) -> (CsrMatrix, CsrMatrix, CsrMatrix, UserGraph, DenseMatrix) {
    // sized like one day of the paper's Prop 30 stream (Table 3);
    // the shared-rng stream through `random_csr_with` reproduces the
    // series' historical instance exactly
    let mut rng = seeded_rng(23);
    let xp = tgs_bench::common::random_csr_with(n, l, 10, 0.2..2.0, &mut rng);
    let xu = tgs_bench::common::random_csr_with(m, l, 20, 0.2..2.0, &mut rng);
    let xr = tgs_bench::common::random_csr_with(m, n, n / m.max(1), 0.2..2.0, &mut rng);
    let edges: Vec<(usize, usize, f64)> = (0..m * 4)
        .map(|_| (rng.random_range(0..m), rng.random_range(0..m), 1.0))
        .filter(|&(a, b, _)| a != b)
        .collect();
    let graph = UserGraph::from_edges(m, &edges);
    let sf0 = DenseMatrix::filled(l, 10, 0.1);

    (xp, xu, xr, graph, sf0)
}

/// The PR's headline comparison: one full offline solver iteration —
/// the five update rules plus the per-iteration objective evaluation the
/// solver loop performs — through the seed's allocating per-rule
/// implementation vs the fused [`UpdateWorkspace`] engine. The fused
/// sweep produces bit-identical factors (property-tested in tgs-core)
/// and an objective agreeing to ~1e-12 relative, so this isolates pure
/// overhead: redundant shared products, from-scratch objective
/// evaluation, scatter-order SpMM and allocation traffic.
///
/// Preset synthetic size: one paper-scale corpus (Table 3 order of
/// magnitude) at the scaling rank `k = 10`.
fn bench_offline_iteration_fused_vs_reference(c: &mut Criterion) {
    let (n, m, l, k) = (40_000usize, 5_000usize, 10_000usize, 10usize);
    let (xp, xu, xr, graph, sf0) = synthetic_sweep_instance(n, m, l);
    let input = TriInput {
        xp: &xp,
        xu: &xu,
        xr: &xr,
        graph: &graph,
        sf0: &sf0,
    };
    let (alpha, beta) = (0.1, 0.5);

    let mut group = c.benchmark_group("offline_iteration_k10");
    group.sample_size(10);
    // The frozen pre-PR implementation (see `tgs_bench::seed_baseline`):
    // this series must never change meaning across PRs.
    let mut f_seed = TriFactors::random(n, m, l, k, 99);
    group.bench_function("seed_baseline", |b| {
        b.iter(|| {
            black_box(tgs_bench::seed_baseline::iteration(
                &input,
                &mut f_seed,
                alpha,
                beta,
            ))
        })
    });
    let mut f_ref = TriFactors::random(n, m, l, k, 99);
    group.bench_function("reference_rules", |b| {
        b.iter(|| {
            updates::update_sp(&input, &mut f_ref);
            updates::update_hp(&input, &mut f_ref);
            updates::update_su_offline(&input, &mut f_ref, beta);
            updates::update_hu(&input, &mut f_ref);
            updates::update_sf(&input, &mut f_ref, alpha, &sf0);
            black_box(tgs_core::offline_objective(&input, &f_ref, alpha, beta).total())
        })
    });
    let mut f_fused = TriFactors::random(n, m, l, k, 99);
    let mut ws = UpdateWorkspace::new();
    ws.bind(&input);
    group.bench_function("fused_workspace", |b| {
        b.iter(|| {
            ws.sweep_offline(&input, &mut f_fused, alpha, beta, &sf0);
            black_box(ws.objective_offline(&input, &f_fused, alpha, beta).total())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_offline_iteration_fused_vs_reference,
    bench_offline_scaling,
    bench_sharded_offline,
    bench_sharded_rebalance,
    bench_online_vs_batch,
    bench_online_step_rebind
);
criterion_main!(benches);

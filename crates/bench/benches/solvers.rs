//! Criterion benchmarks of the solvers: offline iteration scaling with
//! corpus size, and the per-day cost of online vs mini-batch vs
//! full-batch — the quantitative backbone of the complexity analysis in
//! §3.2/§4.2 and Figs. 11(a)/12(a).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tgs_bench::common::pipeline;
use tgs_core::{
    solve_offline, OfflineConfig, OnlineConfig, OnlineSolver, SnapshotData, TriInput,
};
use tgs_data::{build_offline, generate, GeneratorConfig, SnapshotBuilder};

fn corpus_of_size(total_tweets: usize) -> GeneratorConfig {
    GeneratorConfig {
        topic: format!("bench-{total_tweets}"),
        num_users: (total_tweets / 15).max(20),
        total_tweets,
        num_days: 20,
        ..Default::default()
    }
}

fn bench_offline_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline_solve");
    group.sample_size(10);
    for &n in &[500usize, 2_000, 8_000] {
        let corpus = generate(&corpus_of_size(n));
        let inst = build_offline(&corpus, 3, &pipeline());
        let input = TriInput {
            xp: &inst.xp,
            xu: &inst.xu,
            xr: &inst.xr,
            graph: &inst.graph,
            sf0: &inst.sf0,
        };
        let cfg = OfflineConfig { k: 3, max_iters: 10, tol: 0.0, ..Default::default() };
        group.bench_with_input(BenchmarkId::new("10_iters", n), &n, |b, _| {
            b.iter(|| black_box(solve_offline(&input, &cfg)))
        });
    }
    group.finish();
}

fn bench_online_vs_batch(c: &mut Criterion) {
    let corpus = generate(&corpus_of_size(4_000));
    let builder = SnapshotBuilder::new(&corpus, 3, &pipeline());
    // Warm the online solver on the first half of the stream, then
    // benchmark one incremental day against the batch equivalents.
    let windows = tgs_data::day_windows(corpus.num_days, 1);
    let warm = windows.len() / 2;
    let snap = builder.snapshot(&corpus, windows[warm].0, windows[warm].1);
    let cumulative = builder.snapshot(&corpus, 0, windows[warm].1);

    let mut group = c.benchmark_group("per_day_step");
    group.sample_size(10);
    group.bench_function("online", |b| {
        b.iter_batched(
            || {
                let mut solver =
                    OnlineSolver::new(OnlineConfig { max_iters: 20, ..Default::default() });
                for w in windows.iter().take(warm) {
                    let s = builder.snapshot(&corpus, w.0, w.1);
                    if s.tweet_ids.is_empty() {
                        continue;
                    }
                    let input = TriInput {
                        xp: &s.xp,
                        xu: &s.xu,
                        xr: &s.xr,
                        graph: &s.graph,
                        sf0: builder.sf0(),
                    };
                    solver.step(&SnapshotData { input, user_ids: &s.user_ids });
                }
                solver
            },
            |mut solver| {
                let input = TriInput {
                    xp: &snap.xp,
                    xu: &snap.xu,
                    xr: &snap.xr,
                    graph: &snap.graph,
                    sf0: builder.sf0(),
                };
                black_box(solver.step(&SnapshotData { input, user_ids: &snap.user_ids }))
            },
            criterion::BatchSize::PerIteration,
        )
    });
    let off = OfflineConfig { max_iters: 20, ..Default::default() };
    group.bench_function("mini_batch", |b| {
        let input = TriInput {
            xp: &snap.xp,
            xu: &snap.xu,
            xr: &snap.xr,
            graph: &snap.graph,
            sf0: builder.sf0(),
        };
        b.iter(|| black_box(solve_offline(&input, &off)))
    });
    group.bench_function("full_batch", |b| {
        let input = TriInput {
            xp: &cumulative.xp,
            xu: &cumulative.xu,
            xr: &cumulative.xr,
            graph: &cumulative.graph,
            sf0: builder.sf0(),
        };
        b.iter(|| black_box(solve_offline(&input, &off)))
    });
    group.finish();
}

criterion_group!(benches, bench_offline_scaling, bench_online_vs_batch);
criterion_main!(benches);

//! Property-based tests for the baseline methods.

use proptest::prelude::*;
use tgs_baselines::{
    propagate_labels, subsample_labels, LabelPropConfig, LinearSvm, NaiveBayes, SvmConfig,
};
use tgs_linalg::CsrMatrix;

/// Strategy: labeled docs over a small feature space with class-
/// correlated features (class c prefers features 2c, 2c+1).
fn labeled_docs(k: usize) -> impl Strategy<Value = (Vec<Vec<usize>>, Vec<Option<usize>>)> {
    proptest::collection::vec((0..k, proptest::collection::vec(0usize..4, 1..6)), 4..24).prop_map(
        move |items| {
            let mut docs = Vec::new();
            let mut labels = Vec::new();
            for (c, noise) in items {
                let mut doc = vec![2 * c, 2 * c + 1, 2 * c];
                doc.extend(noise.iter().map(|&x| 2 * k + x));
                docs.push(doc);
                labels.push(Some(c));
            }
            docs.iter()
                .for_each(|d| debug_assert!(d.iter().all(|&f| f < 2 * k + 4)));
            (docs, labels)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn nb_perfectly_separable_training_data((docs, labels) in labeled_docs(2)) {
        let nb = NaiveBayes::train(&docs, &labels, 8, 2, 1.0);
        let pred = nb.predict_all(&docs);
        let truth: Vec<usize> = labels.iter().map(|l| l.unwrap()).collect();
        let acc = tgs_eval::classification_accuracy(&pred, &truth);
        prop_assert!(acc > 0.9, "NB training accuracy {acc}");
    }

    #[test]
    fn svm_predictions_always_in_range((docs, labels) in labeled_docs(3)) {
        let mut trip = Vec::new();
        for (i, d) in docs.iter().enumerate() {
            for &f in d {
                trip.push((i, f, 1.0));
            }
        }
        let x = CsrMatrix::from_triplets(docs.len(), 10, &trip).unwrap();
        let svm = LinearSvm::train(&x, &labels, 3, &SvmConfig { epochs: 4, ..Default::default() });
        for p in svm.predict_all(&x) {
            prop_assert!(p < 3);
        }
    }

    #[test]
    fn subsample_is_monotone_in_fraction(
        labels in proptest::collection::vec(proptest::option::of(0usize..3), 1..60),
        f1 in 0.0..1.0f64,
        f2 in 0.0..1.0f64,
    ) {
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        let a = subsample_labels(&labels, lo).iter().flatten().count();
        let b = subsample_labels(&labels, hi).iter().flatten().count();
        prop_assert!(a <= b, "larger fraction keeps at least as many: {a} vs {b}");
        let total = labels.iter().flatten().count();
        prop_assert!(b <= total);
    }

    #[test]
    fn label_propagation_labels_in_range_and_seeds_kept(
        edges in proptest::collection::vec((0usize..8, 0usize..8), 0..16),
        seed_node in 0usize..8,
    ) {
        let mut trip = Vec::new();
        for (a, b) in edges {
            if a != b {
                trip.push((a, b, 1.0));
                trip.push((b, a, 1.0));
            }
        }
        let adj = CsrMatrix::from_triplets(8, 8, &trip).unwrap();
        let mut seeds = vec![None; 8];
        seeds[seed_node] = Some(1usize);
        let labels = propagate_labels(&adj, &seeds, 3, &LabelPropConfig::default());
        prop_assert_eq!(labels.len(), 8);
        prop_assert!(labels.iter().all(|&l| l < 3));
        prop_assert_eq!(labels[seed_node], 1, "clamped seed keeps its label");
    }
}

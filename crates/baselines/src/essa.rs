//! ESSA-style unsupervised sentiment analysis with emotional signals
//! (Hu et al., WWW 2013) and plain orthogonal NMF tri-factorization
//! (ONMTF, Ding et al., KDD 2006).
//!
//! ESSA factorizes the tweet–feature matrix with (a) a lexicon prior on
//! the feature factor ("emotional signal consistency") and (b) a
//! tweet–tweet graph built from shared emotional signals ("emotional
//! signal correlation"). ONMTF is the same machinery with both signals
//! switched off. Neither sees users or the social graph — that gap is
//! exactly what the tri-clustering framework adds.

use tgs_linalg::{
    approx_error_tri, laplacian_quad, mult_update, random_factor_with, seeded_rng, CsrMatrix,
    DenseMatrix,
};

/// Hyper-parameters of the ESSA/ONMTF solver.
#[derive(Debug, Clone)]
pub struct EssaConfig {
    /// Number of classes.
    pub k: usize,
    /// Lexicon-prior weight (`0` disables — ONMTF mode).
    pub alpha: f64,
    /// Tweet–tweet emotional-graph weight (`0` disables).
    pub lambda: f64,
    /// Maximum iterations.
    pub max_iters: usize,
    /// Relative objective tolerance.
    pub tol: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EssaConfig {
    fn default() -> Self {
        Self {
            k: 3,
            alpha: 0.5,
            lambda: 0.1,
            max_iters: 100,
            tol: 1e-5,
            seed: 42,
        }
    }
}

/// Result of an ESSA/ONMTF solve.
#[derive(Debug, Clone)]
pub struct EssaResult {
    /// Tweet–cluster matrix (`n × k`).
    pub sp: DenseMatrix,
    /// Feature–cluster matrix (`l × k`).
    pub sf: DenseMatrix,
    /// Association matrix (`k × k`).
    pub h: DenseMatrix,
    /// Iterations run.
    pub iterations: usize,
    /// Final objective value.
    pub objective: f64,
}

impl EssaResult {
    /// Hard tweet labels.
    pub fn tweet_labels(&self) -> Vec<usize> {
        self.sp.argmax_rows()
    }
}

/// Solves `min ‖Xp − Sp·H·Sfᵀ‖² + α‖Sf − Sf0‖² + λ·tr(SpᵀL_eSp)` with
/// multiplicative updates. `emotion_graph` must be symmetric when given.
pub fn solve_essa(
    xp: &CsrMatrix,
    sf0: &DenseMatrix,
    emotion_graph: Option<&CsrMatrix>,
    config: &EssaConfig,
) -> EssaResult {
    let (n, l) = xp.shape();
    let k = config.k;
    assert_eq!(sf0.shape(), (l, k), "Sf0 must be l × k");
    if let Some(g) = emotion_graph {
        assert_eq!(g.shape(), (n, n), "emotion graph must be n × n");
    }
    let degrees: Vec<f64> = emotion_graph.map(|g| g.row_sums()).unwrap_or_default();
    let mut rng = seeded_rng(config.seed);
    let mut sp = random_factor_with(n, k, &mut rng);
    let mut h = DenseMatrix::identity(k).add(&random_factor_with(k, k, &mut rng).scale(0.1));
    // Seed Sf at the prior (ESSA's emotional-signal initialization); for
    // ONMTF (alpha = 0) the prior is uniform so this is a neutral start.
    let mut sf = sf0.add(&random_factor_with(l, k, &mut rng).scale(0.01));

    let objective = |sp: &DenseMatrix, h: &DenseMatrix, sf: &DenseMatrix| -> f64 {
        let mut obj = approx_error_tri(xp, sp, h, sf);
        obj += config.alpha * sf.sub(sf0).frobenius_sq();
        if let Some(g) = emotion_graph {
            obj += config.lambda * laplacian_quad(g, &degrees, sp);
        }
        obj
    };

    let mut prev = objective(&sp, &h, &sf);
    let mut iterations = 0;
    for it in 0..config.max_iters {
        // Sp update (graph-regularized NMF form)
        {
            let xp_sf_ht = xp.mul_dense(&sf).matmul_transpose(&h);
            let den_k = h.matmul(&sf.gram()).matmul_transpose(&h);
            let mut num = xp_sf_ht;
            let mut den = sp.matmul(&den_k);
            if let Some(g) = emotion_graph {
                num.axpy(config.lambda, &g.mul_dense(&sp));
                let mut du_sp = sp.clone();
                for (i, &d) in degrees.iter().enumerate() {
                    for v in du_sp.row_mut(i) {
                        *v *= d;
                    }
                }
                den.axpy(config.lambda, &du_sp);
            }
            mult_update(&mut sp, &num, &den);
        }
        // H update
        {
            let num = sp.transpose_matmul(&xp.mul_dense(&sf));
            let den = sp.gram().matmul(&h).matmul(&sf.gram());
            mult_update(&mut h, &num, &den);
        }
        // Sf update
        {
            let mut num = xp.transpose_mul_dense(&sp).matmul(&h);
            num.axpy(config.alpha, sf0);
            let den_k = h.transpose().matmul(&sp.gram()).matmul(&h);
            let mut den = sf.matmul(&den_k);
            den.axpy(config.alpha, &sf);
            mult_update(&mut sf, &num, &den);
        }
        iterations = it + 1;
        let cur = objective(&sp, &h, &sf);
        if (prev - cur).abs() / prev.abs().max(1.0) < config.tol {
            prev = cur;
            break;
        }
        prev = cur;
    }
    EssaResult {
        sp,
        sf,
        h,
        iterations,
        objective: prev,
    }
}

/// Plain ONMTF document clustering: no lexicon, no emotion graph.
pub fn solve_onmtf(xp: &CsrMatrix, k: usize, max_iters: usize, seed: u64) -> EssaResult {
    let uniform = DenseMatrix::filled(xp.cols(), k, 1.0 / k as f64);
    let config = EssaConfig {
        k,
        alpha: 0.0,
        lambda: 0.0,
        max_iters,
        tol: 1e-5,
        seed,
    };
    solve_essa(xp, &uniform, None, &config)
}

/// Builds ESSA's tweet–tweet "emotional signal" graph: tweets are linked
/// when they share emotionally charged features (features whose prior row
/// in `Sf0` deviates from uniform). Cosine similarity over those features
/// only, k-nearest-neighbour sparsified.
pub fn emotional_signal_graph(xp: &CsrMatrix, sf0: &DenseMatrix, neighbors: usize) -> CsrMatrix {
    let (n, l) = xp.shape();
    let k = sf0.cols();
    let uniform = 1.0 / k as f64;
    // Emotional features: prior mass meaningfully above uniform.
    let emotional: Vec<bool> = (0..l)
        .map(|f| sf0.row(f).iter().any(|&v| v > uniform + 0.1))
        .collect();
    // Restrict Xp to emotional columns.
    let mut trip = Vec::new();
    for (i, j, v) in xp.iter() {
        if emotional[j] {
            trip.push((i, j, v));
        }
    }
    let filtered = CsrMatrix::from_triplets(n, l, &trip).expect("filtered triplets in bounds");
    crate::labelprop::knn_feature_graph(&filtered, neighbors, 0.2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    /// Planted two-cluster corpus: cluster c uses features with parity c.
    fn planted(n: usize, l: usize, seed: u64) -> (CsrMatrix, DenseMatrix, Vec<usize>) {
        let mut rng = seeded_rng(seed);
        let mut trip = Vec::new();
        let mut truth = Vec::new();
        for i in 0..n {
            let c = i % 2;
            truth.push(c);
            for _ in 0..5 {
                let f = 2 * rng.random_range(0..l / 2) + c;
                trip.push((i, f, 1.0));
            }
        }
        let xp = CsrMatrix::from_triplets(n, l, &trip).unwrap();
        // lexicon knows a quarter of the features
        let sf0 = DenseMatrix::from_fn(l, 2, |f, j| {
            if f < l / 4 {
                if f % 2 == j {
                    0.9
                } else {
                    0.1
                }
            } else {
                0.5
            }
        });
        (xp, sf0, truth)
    }

    #[test]
    fn essa_recovers_planted_clusters() {
        let (xp, sf0, truth) = planted(40, 16, 1);
        let cfg = EssaConfig {
            k: 2,
            ..Default::default()
        };
        let result = solve_essa(&xp, &sf0, None, &cfg);
        let acc = tgs_eval::clustering_accuracy(&result.tweet_labels(), &truth);
        assert!(acc > 0.85, "accuracy {acc}");
        assert!(result.sp.is_nonnegative());
    }

    #[test]
    fn onmtf_without_signals_still_clusters() {
        let (xp, _, truth) = planted(40, 16, 2);
        let result = solve_onmtf(&xp, 2, 150, 7);
        let acc = tgs_eval::clustering_accuracy(&result.tweet_labels(), &truth);
        assert!(acc > 0.75, "accuracy {acc}");
    }

    #[test]
    fn emotion_graph_links_same_signal_tweets() {
        // Seed chosen so the planted corpus has emotional-feature overlap
        // under the vendored RNG stream (seed 3 plants an empty graph).
        let (xp, sf0, truth) = planted(20, 16, 4);
        let g = emotional_signal_graph(&xp, &sf0, 3);
        assert_eq!(g.shape(), (20, 20));
        // Most edges should connect same-class tweets.
        let mut same = 0usize;
        let mut total = 0usize;
        for (i, j, _) in g.iter() {
            total += 1;
            if truth[i] == truth[j] {
                same += 1;
            }
        }
        assert!(total > 0);
        assert!(same as f64 / total as f64 > 0.8, "same-class edge fraction");
    }

    #[test]
    fn graph_regularization_does_not_break_monotonicity() {
        let (xp, sf0, _) = planted(30, 16, 4);
        let g = emotional_signal_graph(&xp, &sf0, 3);
        let cfg = EssaConfig {
            k: 2,
            lambda: 0.3,
            max_iters: 50,
            ..Default::default()
        };
        let result = solve_essa(&xp, &sf0, Some(&g), &cfg);
        assert!(result.objective.is_finite());
        assert!(result.sp.is_nonnegative() && result.sf.is_nonnegative());
    }

    #[test]
    fn deterministic_given_seed() {
        let (xp, sf0, _) = planted(20, 16, 5);
        let cfg = EssaConfig {
            k: 2,
            ..Default::default()
        };
        let a = solve_essa(&xp, &sf0, None, &cfg);
        let b = solve_essa(&xp, &sf0, None, &cfg);
        assert_eq!(a.tweet_labels(), b.tweet_labels());
    }
}

//! UserReg-style semi-supervised baseline (Deng et al., SDM 2013):
//! tweet sentiments from a base classifier, user sentiments by
//! aggregating the user's tweets, regularized for user–user consistency
//! over the re-tweet graph — the paper's "UserReg-10".

use tgs_graph::UserGraph;
use tgs_linalg::DenseMatrix;

use crate::nb::NaiveBayes;

/// Hyper-parameters of the UserReg pipeline.
#[derive(Debug, Clone)]
pub struct UserRegConfig {
    /// Number of classes.
    pub k: usize,
    /// Weight of the author's aggregated sentiment when re-scoring a
    /// tweet (0 = pure text classifier, 1 = pure author prior).
    pub blend: f64,
    /// Graph-smoothing interpolation weight per sweep.
    pub smoothing: f64,
    /// Number of graph-smoothing sweeps over the user graph.
    pub graph_iters: usize,
    /// Laplace smoothing of the base Naive Bayes classifier.
    pub nb_smoothing: f64,
}

impl Default for UserRegConfig {
    fn default() -> Self {
        Self {
            k: 3,
            blend: 0.4,
            smoothing: 0.3,
            graph_iters: 5,
            nb_smoothing: 1.0,
        }
    }
}

/// Output of the UserReg pipeline.
#[derive(Debug, Clone)]
pub struct UserRegResult {
    /// Final tweet labels.
    pub tweet_labels: Vec<usize>,
    /// Final user labels.
    pub user_labels: Vec<usize>,
    /// Smoothed per-user class distributions.
    pub user_distributions: DenseMatrix,
}

/// Runs the pipeline.
///
/// * `docs` — encoded tweets; `tweet_labels[i]` — visible labels (already
///   subsampled to the experiment's fraction);
/// * `doc_user[i]` — author of tweet `i`;
/// * `graph` — user–user re-tweet graph.
pub fn userreg(
    docs: &[Vec<usize>],
    tweet_labels: &[Option<usize>],
    doc_user: &[usize],
    num_features: usize,
    graph: &UserGraph,
    config: &UserRegConfig,
) -> UserRegResult {
    assert_eq!(docs.len(), tweet_labels.len(), "one label slot per tweet");
    assert_eq!(docs.len(), doc_user.len(), "one author per tweet");
    let k = config.k;
    let m = graph.num_nodes();

    // 1. Base tweet classifier on the labeled fraction.
    let nb = NaiveBayes::train(docs, tweet_labels, num_features, k, config.nb_smoothing);
    let tweet_dist: Vec<Vec<f64>> = docs.iter().map(|d| softmax(&nb.scores(d))).collect();

    // 2. Users aggregate their tweets' distributions (the assumption the
    //    paper criticizes — kept faithfully for this baseline).
    let mut user_dist = DenseMatrix::filled(m, k, 1.0 / k as f64);
    let mut user_count = vec![0usize; m];
    for (dist, &u) in tweet_dist.iter().zip(doc_user.iter()) {
        assert!(u < m, "author id {u} out of range");
        if user_count[u] == 0 {
            user_dist.row_mut(u).fill(0.0);
        }
        for (acc, &v) in user_dist.row_mut(u).iter_mut().zip(dist.iter()) {
            *acc += v;
        }
        user_count[u] += 1;
    }
    user_dist.normalize_rows_l1();

    // 3. User–user consistency: smooth over the re-tweet graph.
    for _ in 0..config.graph_iters {
        let mut next = user_dist.clone();
        for u in 0..m {
            let deg = graph.degree(u);
            if deg <= 0.0 {
                continue;
            }
            let mut agg = vec![0.0; k];
            for (v, w) in graph.neighbors(u) {
                for (a, &x) in agg.iter_mut().zip(user_dist.row(v).iter()) {
                    *a += w * x;
                }
            }
            let row = next.row_mut(u);
            for (j, r) in row.iter_mut().enumerate() {
                *r = (1.0 - config.smoothing) * *r + config.smoothing * agg[j] / deg;
            }
        }
        user_dist = next;
        user_dist.normalize_rows_l1();
    }

    // 4. Re-score tweets with the author prior blended in.
    let tweet_labels_out: Vec<usize> = tweet_dist
        .iter()
        .zip(doc_user.iter())
        .map(|(dist, &u)| {
            let prior = user_dist.row(u);
            argmax_blend(dist, prior, config.blend)
        })
        .collect();
    let user_labels = user_dist.argmax_rows();
    UserRegResult {
        tweet_labels: tweet_labels_out,
        user_labels,
        user_distributions: user_dist,
    }
}

fn softmax(log_scores: &[f64]) -> Vec<f64> {
    let max = log_scores.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
    let exps: Vec<f64> = log_scores.iter().map(|&v| (v - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

fn argmax_blend(a: &[f64], b: &[f64], blend: f64) -> usize {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (1.0 - blend) * x + blend * y)
        .enumerate()
        .max_by(|p, q| p.1.partial_cmp(&q.1).expect("finite scores"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    type Setup = (Vec<Vec<usize>>, Vec<Option<usize>>, Vec<usize>, UserGraph);

    /// Two users, clearly separated vocabularies; one noisy tweet per
    /// user that the author prior should correct.
    fn setup() -> Setup {
        // features 0,1 = class 0 words; 2,3 = class 1 words
        let docs = vec![
            vec![0, 1, 0],    // user 0
            vec![0, 0, 1],    // user 0
            vec![2, 0, 1, 0], // user 0, mildly ambiguous
            vec![2, 3, 3],    // user 1
            vec![3, 2, 2],    // user 1
            vec![0, 3, 2, 3], // user 1, mildly ambiguous
        ];
        let labels = vec![Some(0), Some(0), None, Some(1), Some(1), None];
        let doc_user = vec![0, 0, 0, 1, 1, 1];
        let graph = UserGraph::empty(2);
        (docs, labels, doc_user, graph)
    }

    #[test]
    fn users_aggregate_to_their_class() {
        let (docs, labels, doc_user, graph) = setup();
        let cfg = UserRegConfig {
            k: 2,
            ..Default::default()
        };
        let out = userreg(&docs, &labels, &doc_user, 4, &graph, &cfg);
        assert_eq!(out.user_labels, vec![0, 1]);
    }

    #[test]
    fn author_prior_corrects_ambiguous_tweets() {
        let (docs, labels, doc_user, graph) = setup();
        let cfg = UserRegConfig {
            k: 2,
            blend: 0.6,
            ..Default::default()
        };
        let out = userreg(&docs, &labels, &doc_user, 4, &graph, &cfg);
        assert_eq!(
            out.tweet_labels[2], 0,
            "user 0's ambiguous tweet pulled to class 0"
        );
        assert_eq!(
            out.tweet_labels[5], 1,
            "user 1's ambiguous tweet pulled to class 1"
        );
    }

    #[test]
    fn graph_smoothing_aligns_connected_users() {
        // user 2 has no tweets at all but is tied to user 0
        let docs = vec![vec![0, 1], vec![0], vec![2, 3], vec![3]];
        let labels = vec![Some(0), Some(0), Some(1), Some(1)];
        let doc_user = vec![0, 0, 1, 1];
        let graph = UserGraph::from_edges(3, &[(0, 2, 2.0)]);
        let cfg = UserRegConfig {
            k: 2,
            ..Default::default()
        };
        let out = userreg(&docs, &labels, &doc_user, 4, &graph, &cfg);
        assert_eq!(
            out.user_labels[2], 0,
            "tweetless user adopts neighbor sentiment"
        );
    }

    #[test]
    fn distributions_are_normalized() {
        let (docs, labels, doc_user, graph) = setup();
        let cfg = UserRegConfig {
            k: 2,
            ..Default::default()
        };
        let out = userreg(&docs, &labels, &doc_user, 4, &graph, &cfg);
        for i in 0..2 {
            let s: f64 = out.user_distributions.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }
}

//! The two naive online strategies the paper compares against
//! (§4, §5.2):
//!
//! * **mini-batch** — run the offline solver on each snapshot
//!   independently (fast, forgets everything);
//! * **full-batch** — rerun the offline solver on all data accumulated so
//!   far at every timestamp (accurate, increasingly expensive).

use std::time::{Duration, Instant};

use tgs_core::{solve_offline, OfflineConfig, OfflineResult, TriInput};

/// One timed offline solve.
#[derive(Debug, Clone)]
pub struct TimedResult {
    /// The solver output.
    pub result: OfflineResult,
    /// Wall-clock time of the solve.
    pub elapsed: Duration,
}

/// Mini-batch driver: each snapshot is clustered from scratch.
#[derive(Debug, Clone)]
pub struct MiniBatch {
    config: OfflineConfig,
    step: u64,
}

impl MiniBatch {
    /// Creates the driver.
    pub fn new(config: OfflineConfig) -> Self {
        config.validate();
        Self { config, step: 0 }
    }

    /// Solves one snapshot independently (seed rotates per step so runs
    /// are deterministic but not identical).
    pub fn step(&mut self, input: &TriInput<'_>) -> TimedResult {
        let mut cfg = self.config.clone();
        cfg.seed = self
            .config
            .seed
            .wrapping_add(self.step.wrapping_mul(0x9E37_79B9));
        self.step += 1;
        let start = Instant::now();
        let result = solve_offline(input, &cfg);
        TimedResult {
            result,
            elapsed: start.elapsed(),
        }
    }

    /// Snapshots processed.
    pub fn steps(&self) -> u64 {
        self.step
    }
}

/// Full-batch driver: the caller passes the *cumulative* input (all data
/// up to the current timestamp); each call re-clusters everything.
#[derive(Debug, Clone)]
pub struct FullBatch {
    config: OfflineConfig,
    step: u64,
}

impl FullBatch {
    /// Creates the driver.
    pub fn new(config: OfflineConfig) -> Self {
        config.validate();
        Self { config, step: 0 }
    }

    /// Re-solves on the cumulative input.
    pub fn step(&mut self, cumulative_input: &TriInput<'_>) -> TimedResult {
        let mut cfg = self.config.clone();
        cfg.seed = self
            .config
            .seed
            .wrapping_add(self.step.wrapping_mul(0x9E37_79B9));
        self.step += 1;
        let start = Instant::now();
        let result = solve_offline(cumulative_input, &cfg);
        TimedResult {
            result,
            elapsed: start.elapsed(),
        }
    }

    /// Snapshots processed.
    pub fn steps(&self) -> u64 {
        self.step
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgs_graph::UserGraph;
    use tgs_linalg::{CsrMatrix, DenseMatrix};

    fn snapshot() -> (CsrMatrix, CsrMatrix, CsrMatrix, UserGraph, DenseMatrix) {
        let xp =
            CsrMatrix::from_triplets(4, 4, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0), (3, 3, 1.0)])
                .unwrap();
        let xu = CsrMatrix::from_triplets(2, 4, &[(0, 0, 1.0), (1, 2, 1.0)]).unwrap();
        let xr =
            CsrMatrix::from_triplets(2, 4, &[(0, 0, 1.0), (0, 1, 1.0), (1, 2, 1.0), (1, 3, 1.0)])
                .unwrap();
        let graph = UserGraph::empty(2);
        let sf0 = DenseMatrix::filled(4, 2, 0.5);
        (xp, xu, xr, graph, sf0)
    }

    #[test]
    fn minibatch_rotates_seeds_deterministically() {
        let (xp, xu, xr, graph, sf0) = snapshot();
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let cfg = OfflineConfig {
            k: 2,
            max_iters: 10,
            ..Default::default()
        };
        let mut a = MiniBatch::new(cfg.clone());
        let mut b = MiniBatch::new(cfg);
        let r1a = a.step(&input);
        let r2a = a.step(&input);
        let r1b = b.step(&input);
        assert_eq!(
            r1a.result.objective, r1b.result.objective,
            "same step, same seed"
        );
        assert_ne!(
            r1a.result.factors.sp.as_slice(),
            r2a.result.factors.sp.as_slice(),
            "different steps use different seeds"
        );
        assert_eq!(a.steps(), 2);
    }

    #[test]
    fn fullbatch_counts_steps_and_times() {
        let (xp, xu, xr, graph, sf0) = snapshot();
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let cfg = OfflineConfig {
            k: 2,
            max_iters: 5,
            ..Default::default()
        };
        let mut fb = FullBatch::new(cfg);
        let r = fb.step(&input);
        assert!(r.elapsed.as_nanos() > 0);
        assert_eq!(fb.steps(), 1);
    }
}

//! Graph-based semi-supervised label propagation — the paper's "LP-5" /
//! "LP-10" baselines (Goldberg & Zhu; Speriosu et al.; Tan et al.).

use tgs_linalg::{CsrMatrix, DenseMatrix};

/// Configuration of the propagation loop.
#[derive(Debug, Clone)]
pub struct LabelPropConfig {
    /// Maximum propagation sweeps.
    pub max_iters: usize,
    /// Convergence tolerance on the max label-distribution change.
    pub tol: f64,
    /// Clamp labeled nodes back to their seed distribution each sweep
    /// (standard LP; `false` gives label spreading behaviour).
    pub clamp_seeds: bool,
}

impl Default for LabelPropConfig {
    fn default() -> Self {
        Self {
            max_iters: 100,
            tol: 1e-6,
            clamp_seeds: true,
        }
    }
}

/// Propagates seed labels over a similarity graph.
///
/// `adjacency` is any non-negative similarity matrix (need not be
/// normalized — rows are normalized internally); `seeds[i]` is the known
/// class of node `i`. Returns the per-node label distributions.
pub fn propagate(
    adjacency: &CsrMatrix,
    seeds: &[Option<usize>],
    k: usize,
    config: &LabelPropConfig,
) -> DenseMatrix {
    assert_eq!(
        adjacency.rows(),
        adjacency.cols(),
        "adjacency must be square"
    );
    assert_eq!(adjacency.rows(), seeds.len(), "one seed slot per node");
    let n = seeds.len();
    // Row-normalized transition matrix.
    let row_sums = adjacency.row_sums();
    // Initial distributions: seeds one-hot, everything else uniform.
    let uniform = 1.0 / k as f64;
    let mut f = DenseMatrix::from_fn(n, k, |i, j| match seeds[i] {
        Some(c) => {
            if c == j {
                1.0
            } else {
                0.0
            }
        }
        None => uniform,
    });
    let seed_matrix = f.clone();
    for _ in 0..config.max_iters {
        // F ← P·F, computed row-wise from the unnormalized adjacency.
        let mut next = DenseMatrix::zeros(n, k);
        for (i, &row_sum) in row_sums.iter().enumerate() {
            if row_sum > 0.0 {
                let out = next.row_mut(i);
                for (j, w) in adjacency.iter_row(i) {
                    let fj = f.row(j);
                    for (o, &v) in out.iter_mut().zip(fj.iter()) {
                        *o += w * v;
                    }
                }
                for o in out.iter_mut() {
                    *o /= row_sum;
                }
            } else {
                // isolated node keeps its current distribution
                next.row_mut(i).copy_from_slice(f.row(i));
            }
        }
        if config.clamp_seeds {
            for (i, s) in seeds.iter().enumerate() {
                if s.is_some() {
                    next.copy_row_from(i, &seed_matrix, i);
                }
            }
        }
        let delta = next.max_abs_diff(&f);
        f = next;
        if delta < config.tol {
            break;
        }
    }
    f
}

/// Propagates and extracts hard labels; nodes that never received any
/// signal (isolated, unlabeled) fall back to the majority seed class.
pub fn propagate_labels(
    adjacency: &CsrMatrix,
    seeds: &[Option<usize>],
    k: usize,
    config: &LabelPropConfig,
) -> Vec<usize> {
    let f = propagate(adjacency, seeds, k, config);
    let majority = majority_seed(seeds, k);
    let uniform = 1.0 / k as f64;
    f.rows_iter()
        .map(|row| {
            let (best, bv) =
                row.iter()
                    .enumerate()
                    .fold((0usize, f64::NEG_INFINITY), |(bi, bv), (i, &v)| {
                        if v > bv {
                            (i, v)
                        } else {
                            (bi, bv)
                        }
                    });
            // undecided (still uniform) → majority class
            if (bv - uniform).abs() < 1e-9 {
                majority
            } else {
                best
            }
        })
        .collect()
}

fn majority_seed(seeds: &[Option<usize>], k: usize) -> usize {
    let mut counts = vec![0usize; k];
    for s in seeds.iter().flatten() {
        counts[*s] += 1;
    }
    counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, &c)| c)
        .map(|(c, _)| c)
        .unwrap_or(0)
}

/// Keeps only a deterministic fraction of the known labels (the "-5" /
/// "-10" in LP-5 / LP-10). Every ⌈1/fraction⌉-th labeled item is kept, so
/// the retained set is evenly spread and reproducible.
pub fn subsample_labels(labels: &[Option<usize>], fraction: f64) -> Vec<Option<usize>> {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be in [0, 1]"
    );
    if fraction >= 1.0 {
        return labels.to_vec();
    }
    let total = labels.iter().flatten().count();
    let keep = ((total as f64) * fraction).round() as usize;
    if keep == 0 {
        return vec![None; labels.len()];
    }
    let stride = (total as f64 / keep as f64).max(1.0);
    let mut out = vec![None; labels.len()];
    let mut labeled_idx = 0usize;
    let mut next_keep = 0.0f64;
    for (i, l) in labels.iter().enumerate() {
        if l.is_some() {
            if labeled_idx as f64 >= next_keep {
                out[i] = *l;
                next_keep += stride;
            }
            labeled_idx += 1;
        }
    }
    out
}

/// Builds a k-nearest-neighbour cosine-similarity graph over the rows of
/// a sparse feature matrix (used for tweet-level LP over "lexical
/// links"). Features appearing in more than `max_df_fraction` of the rows
/// are skipped — they connect everything to everything and drown the
/// signal (and the runtime).
pub fn knn_feature_graph(x: &CsrMatrix, neighbors: usize, max_df_fraction: f64) -> CsrMatrix {
    let n = x.rows();
    if n == 0 {
        return CsrMatrix::zeros(0, 0);
    }
    // Row norms for cosine normalization.
    let norms: Vec<f64> = (0..n)
        .map(|i| x.iter_row(i).map(|(_, v)| v * v).sum::<f64>().sqrt())
        .collect();
    // Inverted index, skipping ultra-common features.
    let max_df = ((n as f64) * max_df_fraction).max(1.0) as usize;
    let mut postings: Vec<Vec<(u32, f64)>> = vec![Vec::new(); x.cols()];
    for (i, j, v) in x.iter() {
        postings[j].push((i as u32, v));
    }
    let mut triplets = Vec::new();
    let mut scores: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    for i in 0..n {
        scores.clear();
        for (j, v) in x.iter_row(i) {
            let plist = &postings[j];
            if plist.len() > max_df {
                continue;
            }
            for &(other, ov) in plist {
                if other as usize != i {
                    *scores.entry(other).or_insert(0.0) += v * ov;
                }
            }
        }
        let mut pairs: Vec<(u32, f64)> = scores
            .iter()
            .map(|(&other, &dot)| {
                let denom = norms[i] * norms[other as usize];
                (other, if denom > 0.0 { dot / denom } else { 0.0 })
            })
            .filter(|&(_, s)| s > 0.0)
            .collect();
        pairs.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).expect("finite sims"));
        pairs.truncate(neighbors);
        for (other, s) in pairs {
            triplets.push((i, other as usize, s));
            triplets.push((other as usize, i, s)); // symmetrize
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets).expect("knn triplets in bounds")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles joined by one weak edge; node 0 labeled 0, node 5
    /// labeled 1.
    fn two_cliques() -> CsrMatrix {
        let edges = [
            (0, 1, 1.0),
            (1, 2, 1.0),
            (0, 2, 1.0),
            (3, 4, 1.0),
            (4, 5, 1.0),
            (3, 5, 1.0),
            (2, 3, 0.05),
        ];
        let mut trip = Vec::new();
        for &(a, b, w) in &edges {
            trip.push((a, b, w));
            trip.push((b, a, w));
        }
        CsrMatrix::from_triplets(6, 6, &trip).unwrap()
    }

    #[test]
    fn propagates_to_cluster_members() {
        let adj = two_cliques();
        let seeds = vec![Some(0), None, None, None, None, Some(1)];
        let labels = propagate_labels(&adj, &seeds, 2, &LabelPropConfig::default());
        assert_eq!(labels, vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn isolated_unlabeled_nodes_get_majority() {
        let adj = CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let seeds = vec![Some(1), None, None];
        let labels = propagate_labels(&adj, &seeds, 2, &LabelPropConfig::default());
        assert_eq!(labels[2], 1, "isolated node falls back to majority seed");
    }

    #[test]
    fn clamping_keeps_seed_labels() {
        let adj = two_cliques();
        let seeds = vec![Some(0), None, None, None, None, Some(1)];
        let f = propagate(&adj, &seeds, 2, &LabelPropConfig::default());
        assert!((f.get(0, 0) - 1.0).abs() < 1e-12);
        assert!((f.get(5, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn subsample_keeps_requested_fraction() {
        let labels: Vec<Option<usize>> = (0..100).map(|i| Some(i % 2)).collect();
        let sub = subsample_labels(&labels, 0.1);
        let kept = sub.iter().flatten().count();
        assert!((8..=12).contains(&kept), "kept {kept}");
        // deterministic
        assert_eq!(sub, subsample_labels(&labels, 0.1));
    }

    #[test]
    fn subsample_edge_cases() {
        let labels = vec![Some(0), None, Some(1)];
        assert_eq!(subsample_labels(&labels, 1.0), labels);
        assert_eq!(subsample_labels(&labels, 0.0), vec![None, None, None]);
    }

    #[test]
    fn knn_graph_connects_similar_rows() {
        // rows 0,1 share feature 0; row 2 uses feature 1 alone
        let x = CsrMatrix::from_triplets(3, 2, &[(0, 0, 1.0), (1, 0, 1.0), (2, 1, 1.0)]).unwrap();
        let g = knn_feature_graph(&x, 2, 1.0);
        assert!(g.get(0, 1) > 0.9);
        assert_eq!(g.get(0, 2), 0.0);
        assert!(g.is_symmetric(1e-9));
    }

    #[test]
    fn knn_graph_skips_common_features() {
        // feature 0 present in all rows → skipped with max_df 0.5
        let x = CsrMatrix::from_triplets(
            4,
            2,
            &[
                (0, 0, 1.0),
                (1, 0, 1.0),
                (2, 0, 1.0),
                (3, 0, 1.0),
                (0, 1, 1.0),
                (1, 1, 1.0),
            ],
        )
        .unwrap();
        let g = knn_feature_graph(&x, 3, 0.5);
        // only the feature-1 pair connects
        assert!(g.get(0, 1) > 0.0);
        assert_eq!(g.get(2, 3), 0.0);
    }
}

//! # tgs-baselines
//!
//! Every comparison method of the paper's evaluation (§5), implemented
//! from scratch:
//!
//! | Paper name | Here | Kind |
//! |---|---|---|
//! | SVM (Smith et al.) | [`LinearSvm`] (Pegasos) | supervised |
//! | NB (Go et al.) | [`NaiveBayes`] | supervised |
//! | LP-5 / LP-10 | [`propagate_labels`] + [`subsample_labels`] | semi-supervised |
//! | UserReg-10 (Deng et al.) | [`userreg()`] | semi-supervised |
//! | ESSA (Hu et al.) | [`solve_essa`] | unsupervised |
//! | ONMTF (Ding et al.) | [`solve_onmtf`] | unsupervised |
//! | BACG (Xu et al.) | [`solve_bacg`] | unsupervised |
//! | mini-batch / full-batch | [`MiniBatch`] / [`FullBatch`] | online strawmen |
//!
//! Plus k-means, majority-class and lexicon-vote reference baselines.

pub mod bacg;
pub mod batch;
pub mod essa;
pub mod kmeans;
pub mod labelprop;
pub mod nb;
pub mod svm;
pub mod trivial;
pub mod userreg;

pub use bacg::{solve_bacg, BacgConfig, BacgResult};
pub use batch::{FullBatch, MiniBatch, TimedResult};
pub use essa::{emotional_signal_graph, solve_essa, solve_onmtf, EssaConfig, EssaResult};
pub use kmeans::{kmeans, KMeansConfig, KMeansResult};
pub use labelprop::{
    knn_feature_graph, propagate, propagate_labels, subsample_labels, LabelPropConfig,
};
pub use nb::NaiveBayes;
pub use svm::{LinearSvm, SvmConfig};
pub use trivial::{lexicon_vote_rows, majority_baseline, majority_class};
pub use userreg::{userreg, UserRegConfig, UserRegResult};

//! BACG-style attributed-graph user clustering (Xu et al., SIGMOD 2012):
//! clusters users from both structure (the user–user graph) and content
//! (the user–feature matrix). The original is a Bayesian model; this
//! stand-in optimizes the equivalent non-negative objective
//! `‖Xu − Su·W‖² + β·tr(SuᵀLuSu)` — content factorization with graph
//! smoothing — which preserves the comparison the paper makes (user
//! clustering from structure + content, but with no tweet layer and no
//! lexicon).

use tgs_graph::UserGraph;
use tgs_linalg::{
    approx_error_bi, laplacian_quad, mult_update, random_factor_with, seeded_rng, CsrMatrix,
    DenseMatrix,
};

/// Hyper-parameters of the BACG stand-in.
#[derive(Debug, Clone)]
pub struct BacgConfig {
    /// Number of clusters.
    pub k: usize,
    /// Graph-smoothing weight.
    pub beta: f64,
    /// Maximum iterations.
    pub max_iters: usize,
    /// Relative objective tolerance.
    pub tol: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BacgConfig {
    fn default() -> Self {
        Self {
            k: 3,
            beta: 0.5,
            max_iters: 100,
            tol: 1e-5,
            seed: 42,
        }
    }
}

/// Result of a BACG solve.
#[derive(Debug, Clone)]
pub struct BacgResult {
    /// User–cluster matrix (`m × k`).
    pub su: DenseMatrix,
    /// Cluster–feature matrix (`k × l`).
    pub w: DenseMatrix,
    /// Iterations run.
    pub iterations: usize,
    /// Final objective.
    pub objective: f64,
}

impl BacgResult {
    /// Hard user labels.
    pub fn user_labels(&self) -> Vec<usize> {
        self.su.argmax_rows()
    }
}

/// Runs the solver on user content `xu` (`m × l`) and the user graph.
pub fn solve_bacg(xu: &CsrMatrix, graph: &UserGraph, config: &BacgConfig) -> BacgResult {
    let (m, l) = xu.shape();
    assert_eq!(graph.num_nodes(), m, "graph must cover all users");
    let k = config.k;
    let mut rng = seeded_rng(config.seed);
    let mut su = random_factor_with(m, k, &mut rng);
    let mut w = random_factor_with(k, l, &mut rng);
    let degrees = graph.degrees();

    let objective = |su: &DenseMatrix, w: &DenseMatrix| -> f64 {
        // ‖Xu − Su·W‖² = ‖Xu − Su·(Wᵀ)ᵀ‖²
        approx_error_bi(xu, su, &w.transpose())
            + config.beta * laplacian_quad(graph.adjacency(), degrees, su)
    };

    let mut prev = objective(&su, &w);
    let mut iterations = 0;
    for it in 0..config.max_iters {
        // Su ← Su ∘ sqrt((Xu·Wᵀ + β·Gu·Su) / (Su·W·Wᵀ + β·Du·Su))
        {
            let num_base = xu.mul_dense(&w.transpose());
            let mut num = num_base;
            num.axpy(config.beta, &graph.adjacency().mul_dense(&su));
            let wwt = w.matmul_transpose(&w);
            let mut den = su.matmul(&wwt);
            let mut du_su = su.clone();
            for (i, &d) in degrees.iter().enumerate() {
                for v in du_su.row_mut(i) {
                    *v *= d;
                }
            }
            den.axpy(config.beta, &du_su);
            mult_update(&mut su, &num, &den);
        }
        // W ← W ∘ (Suᵀ·Xu) / (SuᵀSu·W)
        {
            let num = xu.transpose_mul_dense(&su).transpose();
            let den = su.gram().matmul(&w);
            mult_update(&mut w, &num, &den);
        }
        iterations = it + 1;
        let cur = objective(&su, &w);
        if (prev - cur).abs() / prev.abs().max(1.0) < config.tol {
            prev = cur;
            break;
        }
        prev = cur;
    }
    BacgResult {
        su,
        w,
        iterations,
        objective: prev,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    /// Planted users: class = parity; content features by parity; graph
    /// homophilous.
    fn planted(m: usize, l: usize, seed: u64) -> (CsrMatrix, UserGraph, Vec<usize>) {
        let mut rng = seeded_rng(seed);
        let mut trip = Vec::new();
        let mut edges = Vec::new();
        let mut truth = Vec::new();
        for u in 0..m {
            let c = u % 2;
            truth.push(c);
            for _ in 0..6 {
                let f = 2 * rng.random_range(0..l / 2) + c;
                trip.push((u, f, 1.0));
            }
            let peer = 2 * rng.random_range(0..m / 2) + c;
            if peer != u {
                edges.push((u, peer, 1.0));
            }
        }
        let xu = CsrMatrix::from_triplets(m, l, &trip).unwrap();
        let graph = UserGraph::from_edges(m, &edges);
        (xu, graph, truth)
    }

    #[test]
    fn recovers_planted_user_clusters() {
        let (xu, graph, truth) = planted(20, 12, 1);
        let cfg = BacgConfig {
            k: 2,
            ..Default::default()
        };
        let result = solve_bacg(&xu, &graph, &cfg);
        let acc = tgs_eval::clustering_accuracy(&result.user_labels(), &truth);
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn graph_only_signal_still_helps() {
        // content is pure noise; only the graph separates the classes
        let mut rng = seeded_rng(9);
        let m = 20;
        let mut trip = Vec::new();
        for u in 0..m {
            for _ in 0..4 {
                trip.push((u, rng.random_range(0..10), 1.0));
            }
        }
        let xu = CsrMatrix::from_triplets(m, 10, &trip).unwrap();
        let mut edges = Vec::new();
        for u in 0..m {
            for v in (u + 1)..m {
                if u % 2 == v % 2 {
                    edges.push((u, v, 1.0));
                }
            }
        }
        let graph = UserGraph::from_edges(m, &edges);
        let truth: Vec<usize> = (0..m).map(|u| u % 2).collect();
        let strong = BacgConfig {
            k: 2,
            beta: 1.0,
            ..Default::default()
        };
        let weak = BacgConfig {
            k: 2,
            beta: 0.0,
            ..Default::default()
        };
        let acc_strong =
            tgs_eval::clustering_accuracy(&solve_bacg(&xu, &graph, &strong).user_labels(), &truth);
        let acc_weak =
            tgs_eval::clustering_accuracy(&solve_bacg(&xu, &graph, &weak).user_labels(), &truth);
        assert!(
            acc_strong >= acc_weak,
            "graph smoothing should not hurt on graph-separable data: {acc_strong} vs {acc_weak}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (xu, graph, _) = planted(16, 10, 2);
        let cfg = BacgConfig {
            k: 2,
            ..Default::default()
        };
        let a = solve_bacg(&xu, &graph, &cfg);
        let b = solve_bacg(&xu, &graph, &cfg);
        assert_eq!(a.user_labels(), b.user_labels());
    }

    #[test]
    fn factors_stay_nonnegative() {
        let (xu, graph, _) = planted(16, 10, 3);
        let cfg = BacgConfig {
            k: 2,
            beta: 0.9,
            ..Default::default()
        };
        let result = solve_bacg(&xu, &graph, &cfg);
        assert!(result.su.is_nonnegative());
        assert!(result.w.is_nonnegative());
    }
}

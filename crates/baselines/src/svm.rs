//! Linear one-vs-rest SVM trained with Pegasos SGD — the paper's
//! supervised "SVM" baseline (Smith et al. use an off-the-shelf SVM on
//! tf-idf features; this is a from-scratch equivalent).

use rand::RngExt;
use tgs_linalg::{seeded_rng, CsrMatrix};

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct SvmConfig {
    /// Regularization strength λ of the Pegasos objective.
    pub lambda: f64,
    /// Number of SGD epochs over the labeled set.
    pub epochs: usize,
    /// RNG seed for sampling order.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self {
            lambda: 1e-4,
            epochs: 12,
            seed: 42,
        }
    }
}

/// A trained linear one-vs-rest SVM.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    /// Row-major `k × l` weight matrix.
    weights: Vec<f64>,
    /// Per-class bias.
    bias: Vec<f64>,
    num_features: usize,
    k: usize,
}

impl LinearSvm {
    /// Trains on sparse feature rows; documents with `None` labels are
    /// ignored.
    pub fn train(x: &CsrMatrix, labels: &[Option<usize>], k: usize, config: &SvmConfig) -> Self {
        assert_eq!(x.rows(), labels.len(), "one label slot per row");
        assert!(k >= 2, "need at least two classes");
        let labeled: Vec<(usize, usize)> = labels
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.map(|c| (i, c)))
            .collect();
        assert!(!labeled.is_empty(), "at least one labeled row required");
        for &(_, c) in &labeled {
            assert!(c < k, "label {c} out of range");
        }
        let l = x.cols();
        let mut weights = vec![0.0f64; k * l];
        let mut bias = vec![0.0f64; k];
        let mut rng = seeded_rng(config.seed);
        let mut t = 0usize;
        for _ in 0..config.epochs {
            for _ in 0..labeled.len() {
                t += 1;
                let (row, label) = labeled[rng.random_range(0..labeled.len())];
                let eta = 1.0 / (config.lambda * t as f64);
                let shrink = 1.0 - eta * config.lambda;
                for c in 0..k {
                    let y = if c == label { 1.0 } else { -1.0 };
                    let w = &mut weights[c * l..(c + 1) * l];
                    let mut margin = bias[c];
                    for (f, v) in x.iter_row(row) {
                        margin += w[f] * v;
                    }
                    margin *= y;
                    // Pegasos: shrink, then sub-gradient step on the
                    // support vectors only.
                    for wv in w.iter_mut() {
                        *wv *= shrink;
                    }
                    bias[c] *= shrink;
                    if margin < 1.0 {
                        for (f, v) in x.iter_row(row) {
                            w[f] += eta * y * v;
                        }
                        bias[c] += eta * y;
                    }
                }
            }
        }
        Self {
            weights,
            bias,
            num_features: l,
            k,
        }
    }

    /// Number of classes.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Per-class decision values for row `row` of `x`.
    pub fn decision(&self, x: &CsrMatrix, row: usize) -> Vec<f64> {
        let mut s = self.bias.clone();
        for (f, v) in x.iter_row(row) {
            if f < self.num_features {
                for (c, sc) in s.iter_mut().enumerate() {
                    *sc += self.weights[c * self.num_features + f] * v;
                }
            }
        }
        s
    }

    /// Predicted class of row `row`.
    pub fn predict_row(&self, x: &CsrMatrix, row: usize) -> usize {
        self.decision(x, row)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite decisions"))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }

    /// Predicts every row of `x`.
    pub fn predict_all(&self, x: &CsrMatrix) -> Vec<usize> {
        (0..x.rows()).map(|r| self.predict_row(x, r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable data: class c has weight on feature c.
    fn toy(n_per_class: usize, k: usize) -> (CsrMatrix, Vec<Option<usize>>) {
        let mut trip = Vec::new();
        let mut labels = Vec::new();
        for c in 0..k {
            for i in 0..n_per_class {
                let row = c * n_per_class + i;
                trip.push((row, c, 1.0 + (i % 3) as f64 * 0.1));
                trip.push((row, k + (i % 2), 0.3)); // shared noise feature
                labels.push(Some(c));
            }
        }
        (
            CsrMatrix::from_triplets(k * n_per_class, k + 2, &trip).unwrap(),
            labels,
        )
    }

    #[test]
    fn separable_training_data_classified() {
        let (x, labels) = toy(20, 3);
        let svm = LinearSvm::train(&x, &labels, 3, &SvmConfig::default());
        let pred = svm.predict_all(&x);
        let truth: Vec<usize> = labels.iter().map(|l| l.unwrap()).collect();
        let acc = tgs_eval::classification_accuracy(&pred, &truth);
        assert!(acc > 0.95, "training accuracy {acc}");
    }

    #[test]
    fn generalizes_to_unseen_rows() {
        let (x, mut labels) = toy(30, 2);
        // hide the last 10 labels of each class
        let truth: Vec<usize> = labels.iter().map(|l| l.unwrap()).collect();
        for c in 0..2 {
            for i in 20..30 {
                labels[c * 30 + i] = None;
            }
        }
        let svm = LinearSvm::train(&x, &labels, 2, &SvmConfig::default());
        let pred = svm.predict_all(&x);
        let acc = tgs_eval::classification_accuracy(&pred, &truth);
        assert!(acc > 0.9, "accuracy with held-out rows {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, labels) = toy(10, 2);
        let a = LinearSvm::train(&x, &labels, 2, &SvmConfig::default());
        let b = LinearSvm::train(&x, &labels, 2, &SvmConfig::default());
        assert_eq!(a.predict_all(&x), b.predict_all(&x));
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    #[should_panic(expected = "at least one labeled row required")]
    fn requires_labels() {
        let x = CsrMatrix::from_triplets(1, 2, &[(0, 0, 1.0)]).unwrap();
        LinearSvm::train(&x, &[None], 2, &SvmConfig::default());
    }
}

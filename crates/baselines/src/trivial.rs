//! Trivial reference baselines: majority class and lexicon voting.

use tgs_linalg::{CsrMatrix, DenseMatrix};

/// The majority class among the visible labels (ties → lower class id).
pub fn majority_class(labels: &[Option<usize>], k: usize) -> usize {
    let mut counts = vec![0usize; k];
    for l in labels.iter().flatten() {
        if *l < k {
            counts[*l] += 1;
        }
    }
    counts
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(c, _)| c)
        .unwrap_or(0)
}

/// Predicts the majority class for every item.
pub fn majority_baseline(labels: &[Option<usize>], k: usize, n: usize) -> Vec<usize> {
    vec![majority_class(labels, k); n]
}

/// Lexicon-prior voting: scores each row of `x` by `x · Sf0` and takes
/// the argmax; rows with no lexicon evidence fall back to `fallback`.
/// This is the MPQA-style "lexicon-based approach" the ESSA paper
/// compares against.
pub fn lexicon_vote_rows(x: &CsrMatrix, sf0: &DenseMatrix, fallback: usize) -> Vec<usize> {
    assert_eq!(x.cols(), sf0.rows(), "Sf0 must cover the feature space");
    let k = sf0.cols();
    let uniform = 1.0 / k as f64;
    (0..x.rows())
        .map(|i| {
            let mut scores = vec![0.0f64; k];
            let mut evidence = false;
            for (f, v) in x.iter_row(i) {
                let row = sf0.row(f);
                // uniform prior rows carry no signal
                if row.iter().any(|&p| (p - uniform).abs() > 1e-9) {
                    evidence = true;
                    for (s, &p) in scores.iter_mut().zip(row.iter()) {
                        *s += v * (p - uniform);
                    }
                }
            }
            if !evidence {
                return fallback;
            }
            scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
                .map(|(c, _)| c)
                .unwrap_or(fallback)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_counts_only_known_labels() {
        let labels = vec![Some(1), Some(1), Some(0), None, None];
        assert_eq!(majority_class(&labels, 3), 1);
        assert_eq!(majority_baseline(&labels, 3, 4), vec![1, 1, 1, 1]);
    }

    #[test]
    fn majority_empty_defaults_to_zero() {
        assert_eq!(majority_class(&[None, None], 3), 0);
    }

    #[test]
    fn lexicon_vote_scores_by_prior() {
        // feature 0 → class 0, feature 1 → class 1, feature 2 uniform
        let sf0 = DenseMatrix::from_vec(3, 2, vec![0.9, 0.1, 0.1, 0.9, 0.5, 0.5]).unwrap();
        let x = CsrMatrix::from_triplets(3, 3, &[(0, 0, 2.0), (1, 1, 1.0), (2, 2, 5.0)]).unwrap();
        let labels = lexicon_vote_rows(&x, &sf0, 1);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[1], 1);
        assert_eq!(labels[2], 1, "no evidence → fallback");
    }
}

//! Spherical k-means over sparse rows — a generic clustering baseline
//! and the workhorse inside ablations.

use rand::RngExt;
use tgs_linalg::{seeded_rng, CsrMatrix};

/// Configuration for [`kmeans`].
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// RNG seed for centroid initialization.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 3,
            max_iters: 50,
            seed: 42,
        }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster id per row.
    pub labels: Vec<usize>,
    /// Dense centroids, row-major `k × l`, L2-normalized.
    pub centroids: Vec<f64>,
    /// Iterations run.
    pub iterations: usize,
}

/// Spherical k-means (cosine similarity) on the rows of `x`. Empty rows
/// are assigned cluster 0. Deterministic in `config.seed`.
pub fn kmeans(x: &CsrMatrix, config: &KMeansConfig) -> KMeansResult {
    let (n, l) = x.shape();
    let k = config.k.max(1);
    assert!(n > 0, "need at least one row");
    let mut rng = seeded_rng(config.seed);
    // Init: k distinct random non-empty rows as centroids.
    let nonempty: Vec<usize> = (0..n).filter(|&i| x.iter_row(i).next().is_some()).collect();
    let mut centroids = vec![0.0f64; k * l];
    for c in 0..k {
        let row = if nonempty.is_empty() {
            0
        } else {
            nonempty[rng.random_range(0..nonempty.len())]
        };
        for (f, v) in x.iter_row(row) {
            centroids[c * l + f] = v;
        }
        normalize(&mut centroids[c * l..(c + 1) * l]);
    }
    let mut labels = vec![0usize; n];
    let mut iterations = 0;
    for it in 0..config.max_iters {
        // Assign.
        let mut changed = false;
        for (i, label) in labels.iter_mut().enumerate() {
            let mut best = 0usize;
            let mut best_sim = f64::NEG_INFINITY;
            for c in 0..k {
                let cent = &centroids[c * l..(c + 1) * l];
                let sim: f64 = x.iter_row(i).map(|(f, v)| v * cent[f]).sum();
                if sim > best_sim {
                    best_sim = sim;
                    best = c;
                }
            }
            if *label != best {
                *label = best;
                changed = true;
            }
        }
        // Update.
        centroids.iter_mut().for_each(|v| *v = 0.0);
        for (i, &label) in labels.iter().enumerate() {
            for (f, v) in x.iter_row(i) {
                centroids[label * l + f] += v;
            }
        }
        for c in 0..k {
            normalize(&mut centroids[c * l..(c + 1) * l]);
        }
        iterations = it + 1;
        if !changed {
            break;
        }
    }
    KMeansResult {
        labels,
        centroids,
        iterations,
    }
}

fn normalize(v: &mut [f64]) {
    let norm: f64 = v.iter().map(|&x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planted() -> (CsrMatrix, Vec<usize>) {
        let mut trip = Vec::new();
        let mut truth = Vec::new();
        for i in 0..30 {
            let c = i % 2;
            truth.push(c);
            trip.push((i, c * 3, 1.0));
            trip.push((i, c * 3 + 1, 0.5 + (i % 3) as f64 * 0.1));
        }
        (CsrMatrix::from_triplets(30, 6, &trip).unwrap(), truth)
    }

    #[test]
    fn separates_planted_clusters() {
        let (x, truth) = planted();
        let result = kmeans(
            &x,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
        );
        let acc = tgs_eval::clustering_accuracy(&result.labels, &truth);
        assert!(acc > 0.95, "accuracy {acc}");
        assert!(result.iterations >= 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, _) = planted();
        let a = kmeans(
            &x,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
        );
        let b = kmeans(
            &x,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
        );
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn handles_empty_rows() {
        let x = CsrMatrix::from_triplets(3, 2, &[(0, 0, 1.0), (2, 1, 1.0)]).unwrap();
        let result = kmeans(
            &x,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
        );
        assert_eq!(result.labels.len(), 3);
    }

    #[test]
    fn centroids_normalized() {
        let (x, _) = planted();
        let result = kmeans(
            &x,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
        );
        for c in 0..2 {
            let norm: f64 = result.centroids[c * 6..(c + 1) * 6]
                .iter()
                .map(|v| v * v)
                .sum::<f64>()
                .sqrt();
            assert!((norm - 1.0).abs() < 1e-9 || norm == 0.0);
        }
    }
}

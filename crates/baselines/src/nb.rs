//! Multinomial Naive Bayes with Laplace smoothing — the paper's
//! supervised "NB" baseline (Go et al., distant supervision).

/// A trained multinomial Naive Bayes classifier over `l` count features
/// and `k` classes.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    /// `log P(class)`.
    log_prior: Vec<f64>,
    /// `log P(feature | class)`, row-major `k × l`.
    log_likelihood: Vec<f64>,
    num_features: usize,
    k: usize,
}

impl NaiveBayes {
    /// Trains on encoded documents (feature-id multisets). Documents with
    /// `None` labels are ignored. `smoothing` is the Laplace α (1.0 is
    /// standard).
    pub fn train(
        docs: &[Vec<usize>],
        labels: &[Option<usize>],
        num_features: usize,
        k: usize,
        smoothing: f64,
    ) -> Self {
        assert_eq!(docs.len(), labels.len(), "one label slot per document");
        assert!(k >= 2, "need at least two classes");
        assert!(smoothing > 0.0, "smoothing must be positive");
        let mut class_counts = vec![0usize; k];
        let mut feature_counts = vec![0.0f64; k * num_features];
        let mut class_totals = vec![0.0f64; k];
        for (doc, label) in docs.iter().zip(labels.iter()) {
            let Some(c) = *label else { continue };
            assert!(c < k, "label {c} out of range");
            class_counts[c] += 1;
            for &f in doc {
                assert!(f < num_features, "feature {f} out of range");
                feature_counts[c * num_features + f] += 1.0;
                class_totals[c] += 1.0;
            }
        }
        let total_labeled: usize = class_counts.iter().sum();
        assert!(total_labeled > 0, "at least one labeled document required");
        let log_prior = class_counts
            .iter()
            .map(|&c| ((c as f64 + smoothing) / (total_labeled as f64 + smoothing * k as f64)).ln())
            .collect();
        let mut log_likelihood = vec![0.0; k * num_features];
        for c in 0..k {
            let denom = class_totals[c] + smoothing * num_features as f64;
            for f in 0..num_features {
                log_likelihood[c * num_features + f] =
                    ((feature_counts[c * num_features + f] + smoothing) / denom).ln();
            }
        }
        Self {
            log_prior,
            log_likelihood,
            num_features,
            k,
        }
    }

    /// Number of classes.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Log-posterior (up to a constant) of each class for a document.
    pub fn scores(&self, doc: &[usize]) -> Vec<f64> {
        let mut s = self.log_prior.clone();
        for &f in doc {
            if f < self.num_features {
                for (c, sc) in s.iter_mut().enumerate() {
                    *sc += self.log_likelihood[c * self.num_features + f];
                }
            }
        }
        s
    }

    /// Most likely class.
    pub fn predict(&self, doc: &[usize]) -> usize {
        let s = self.scores(doc);
        s.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }

    /// Predicts every document.
    pub fn predict_all(&self, docs: &[Vec<usize>]) -> Vec<usize> {
        docs.iter().map(|d| self.predict(d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two clearly separated classes: class 0 uses features {0,1},
    /// class 1 uses {2,3}.
    fn toy() -> (Vec<Vec<usize>>, Vec<Option<usize>>) {
        let docs = vec![
            vec![0, 1, 0],
            vec![1, 1],
            vec![2, 3],
            vec![3, 3, 2],
            vec![0, 2], // ambiguous, unlabeled
        ];
        let labels = vec![Some(0), Some(0), Some(1), Some(1), None];
        (docs, labels)
    }

    #[test]
    fn learns_separable_classes() {
        let (docs, labels) = toy();
        let nb = NaiveBayes::train(&docs, &labels, 4, 2, 1.0);
        assert_eq!(nb.predict(&[0, 1]), 0);
        assert_eq!(nb.predict(&[2, 3, 3]), 1);
    }

    #[test]
    fn unlabeled_docs_ignored_in_training() {
        let (docs, labels) = toy();
        let a = NaiveBayes::train(&docs, &labels, 4, 2, 1.0);
        let b = NaiveBayes::train(&docs[..4], &labels[..4], 4, 2, 1.0);
        for d in &docs {
            assert_eq!(a.predict(d), b.predict(d));
        }
    }

    #[test]
    fn empty_doc_falls_back_to_prior() {
        let docs = vec![vec![0], vec![0], vec![1]];
        let labels = vec![Some(0), Some(0), Some(1)];
        let nb = NaiveBayes::train(&docs, &labels, 2, 2, 1.0);
        // class 0 has the larger prior
        assert_eq!(nb.predict(&[]), 0);
    }

    #[test]
    fn oov_features_ignored_at_predict_time() {
        let (docs, labels) = toy();
        let nb = NaiveBayes::train(&docs, &labels, 4, 2, 1.0);
        assert_eq!(nb.predict(&[0, 1, 99]), 0);
    }

    #[test]
    #[should_panic(expected = "at least one labeled document required")]
    fn requires_labels() {
        NaiveBayes::train(&[vec![0]], &[None], 1, 2, 1.0);
    }
}

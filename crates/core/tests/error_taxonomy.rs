//! Property tests over the error taxonomy: every mismatched-dimension
//! `TriInput` returns the matching [`TgsError`] variant from
//! `try_validate` — and never panics — and out-of-domain configurations
//! come back as `InvalidConfig` from every `try_` entry point.

use proptest::prelude::*;
use tgs_core::{
    try_solve_offline, OfflineConfig, OnlineConfig, OnlineSolver, SnapshotData, TgsErrorKind,
    TriInput,
};
use tgs_graph::UserGraph;
use tgs_linalg::{CsrMatrix, DenseMatrix};

/// Every single-dimension corruption of an otherwise consistent input,
/// paired with the error variant it must produce.
#[derive(Debug, Clone, Copy)]
enum Corruption {
    XuCols,
    XrRows,
    XrCols,
    GraphNodes,
    Sf0Rows,
    Sf0Cols,
}

impl Corruption {
    const ALL: [Corruption; 6] = [
        Corruption::XuCols,
        Corruption::XrRows,
        Corruption::XrCols,
        Corruption::GraphNodes,
        Corruption::Sf0Rows,
        Corruption::Sf0Cols,
    ];

    fn expected_kind(self) -> TgsErrorKind {
        match self {
            Corruption::XuCols => TgsErrorKind::FeatureDimMismatch,
            Corruption::XrRows | Corruption::XrCols => TgsErrorKind::InteractionShapeMismatch,
            Corruption::GraphNodes => TgsErrorKind::GraphSizeMismatch,
            Corruption::Sf0Rows | Corruption::Sf0Cols => TgsErrorKind::PriorShapeMismatch,
        }
    }
}

/// Consistent-by-construction shapes, then one dimension perturbed.
struct Parts {
    xp: CsrMatrix,
    xu: CsrMatrix,
    xr: CsrMatrix,
    graph: UserGraph,
    sf0: DenseMatrix,
}

fn build_parts(
    n: usize,
    m: usize,
    l: usize,
    k: usize,
    corruption: Option<Corruption>,
    delta: usize,
) -> Parts {
    let bump = |base: usize, hit: bool| if hit { base + delta } else { base };
    let c = corruption;
    Parts {
        xp: CsrMatrix::from_triplets(n, l, &[]).unwrap(),
        xu: CsrMatrix::from_triplets(m, bump(l, matches!(c, Some(Corruption::XuCols))), &[])
            .unwrap(),
        xr: CsrMatrix::from_triplets(
            bump(m, matches!(c, Some(Corruption::XrRows))),
            bump(n, matches!(c, Some(Corruption::XrCols))),
            &[],
        )
        .unwrap(),
        graph: UserGraph::empty(bump(m, matches!(c, Some(Corruption::GraphNodes)))),
        sf0: DenseMatrix::zeros(
            bump(l, matches!(c, Some(Corruption::Sf0Rows))),
            bump(k, matches!(c, Some(Corruption::Sf0Cols))),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_shape_corruption_maps_to_its_variant(
        n in 1usize..6,
        m in 1usize..6,
        l in 1usize..6,
        k in 2usize..5,
        delta in 1usize..4,
        which in 0usize..Corruption::ALL.len(),
    ) {
        let corruption = Corruption::ALL[which];
        let parts = build_parts(n, m, l, k, Some(corruption), delta);
        let input = TriInput {
            xp: &parts.xp,
            xu: &parts.xu,
            xr: &parts.xr,
            graph: &parts.graph,
            sf0: &parts.sf0,
        };
        let err = input.try_validate(k).expect_err("corrupted input must fail");
        prop_assert_eq!(err.kind(), corruption.expected_kind(), "{:?}: {}", corruption, err);

        // The same violation surfaces (not panics) through the solver
        // entry points.
        let err = try_solve_offline(&input, &OfflineConfig { k, ..Default::default() })
            .expect_err("offline solve must reject the corrupted input");
        prop_assert_eq!(err.kind(), corruption.expected_kind());
        let user_ids: Vec<usize> = (0..input.m()).collect();
        let mut solver = OnlineSolver::try_new(OnlineConfig { k, ..Default::default() }).unwrap();
        let err = solver
            .try_step(&SnapshotData { input, user_ids: &user_ids })
            .expect_err("online step must reject the corrupted input");
        prop_assert_eq!(err.kind(), corruption.expected_kind());
    }

    #[test]
    fn consistent_shapes_validate(
        n in 1usize..6,
        m in 1usize..6,
        l in 1usize..6,
        k in 2usize..5,
    ) {
        let parts = build_parts(n, m, l, k, None, 0);
        let input = TriInput {
            xp: &parts.xp,
            xu: &parts.xu,
            xr: &parts.xr,
            graph: &parts.graph,
            sf0: &parts.sf0,
        };
        prop_assert!(input.try_validate(k).is_ok());
    }

    #[test]
    fn out_of_domain_configs_are_invalid_config(
        alpha in prop_oneof![Just(-0.5f64), Just(1.5f64), 0.0..1.0f64],
        gamma in prop_oneof![Just(-1.0f64), Just(2.0f64), 0.0..1.0f64],
        tau in prop_oneof![Just(0.0f64), Just(1.5f64), 0.1..1.0f64],
        k in 0usize..5,
    ) {
        let offline = OfflineConfig { k, alpha, ..Default::default() };
        let offline_ok = k >= 2 && (0.0..=1.0).contains(&alpha);
        match offline.try_validate() {
            Ok(()) => prop_assert!(offline_ok),
            Err(e) => {
                prop_assert!(!offline_ok);
                prop_assert_eq!(e.kind(), TgsErrorKind::InvalidConfig);
            }
        }
        let online = OnlineConfig { k, alpha, gamma, tau, ..Default::default() };
        let online_ok = offline_ok
            && (0.0..=1.0).contains(&gamma)
            && tau > 0.0
            && tau <= 1.0;
        match online.try_validate() {
            Ok(()) => prop_assert!(online_ok),
            Err(e) => {
                prop_assert!(!online_ok);
                prop_assert_eq!(e.kind(), TgsErrorKind::InvalidConfig);
                // and the typed constructor agrees
                prop_assert!(OnlineSolver::try_new(online.clone()).is_err());
            }
        }
    }
}

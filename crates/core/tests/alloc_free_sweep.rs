//! Proof that the fused sweep hot loop is allocation-free after warm-up.
//!
//! A counting global allocator wraps the system allocator; after one
//! warm-up sweep sizes every workspace buffer, further offline and online
//! sweeps must perform **zero** heap allocations. Parallel dispatch is
//! pinned off for the measurement (scoped-thread spawning allocates for
//! bookkeeping by design), so this measures the sequential hot path —
//! the same code the parallel chunks execute per row.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use rand::RngExt;
use tgs_core::{OnlineConfig, OnlineSolver, SnapshotData, TriFactors, TriInput, UpdateWorkspace};
use tgs_graph::UserGraph;
use tgs_linalg::{seeded_rng, set_parallel_work_threshold, CsrMatrix, DenseMatrix};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Counting is scoped to the measuring thread: the libtest harness
    /// keeps helper threads alive that allocate sporadically (timers,
    /// output plumbing), which must not pollute the measurement. The
    /// const initializer keeps TLS access allocation-free, so reading
    /// it inside the allocator cannot recurse.
    static TRACKING: Cell<bool> = const { Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.with(|t| t.get()) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.with(|t| t.get()) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Runs `body` with this thread's allocations counted.
fn tracked<R>(body: impl FnOnce() -> R) -> R {
    TRACKING.with(|t| t.set(true));
    let result = body();
    TRACKING.with(|t| t.set(false));
    result
}

/// A fixed-seed synthetic instance, large enough that any per-sweep
/// allocation in a rule would be exercised.
fn instance() -> (CsrMatrix, CsrMatrix, CsrMatrix, UserGraph, DenseMatrix) {
    let mut rng = seeded_rng(7);
    let (n, m, l) = (80, 30, 40);
    let rand_csr = |rows: usize, cols: usize, nnz: usize, rng: &mut rand::rngs::StdRng| {
        let trip: Vec<(usize, usize, f64)> = (0..nnz)
            .map(|_| {
                (
                    rng.random_range(0..rows),
                    rng.random_range(0..cols),
                    rng.random_range(0.2..2.0),
                )
            })
            .collect();
        CsrMatrix::from_triplets(rows, cols, &trip).unwrap()
    };
    let xp = rand_csr(n, l, 400, &mut rng);
    let xu = rand_csr(m, l, 250, &mut rng);
    let xr = rand_csr(m, n, 160, &mut rng);
    let edges: Vec<(usize, usize, f64)> = (0..60)
        .map(|_| (rng.random_range(0..m), rng.random_range(0..m), 1.0))
        .filter(|&(a, b, _)| a != b)
        .collect();
    let graph = UserGraph::from_edges(m, &edges);
    let sf0 = DenseMatrix::filled(l, 3, 1.0 / 3.0);
    (xp, xu, xr, graph, sf0)
}

/// One test covering both sweep flavours: the allocation counter is
/// process-global, so two `#[test]`s would race on libtest's parallel
/// harness (each would count the other's setup allocations).
#[test]
fn sweeps_are_allocation_free_after_warmup() {
    let prev = set_parallel_work_threshold(usize::MAX);
    let (xp, xu, xr, graph, sf0) = instance();
    let input = TriInput {
        xp: &xp,
        xu: &xu,
        xr: &xr,
        graph: &graph,
        sf0: &sf0,
    };
    let mut f = TriFactors::random(80, 30, 40, 3, 11);
    let mut ws = UpdateWorkspace::new();
    ws.bind(&input);
    // Warm-up: sizes every buffer the offline rules touch.
    ws.sweep_offline(&input, &mut f, 0.1, 0.5, &sf0);
    let before = allocations();
    tracked(|| {
        for _ in 0..5 {
            ws.sweep_offline(&input, &mut f, 0.1, 0.5, &sf0);
        }
    });
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "offline sweep allocated {} times after warm-up",
        after - before
    );
    assert!(f.all_nonnegative(), "sweeps must stay valid");

    // --- online sweep, same contract ---
    let mut f = TriFactors::random(80, 30, 40, 3, 13);
    let mut ws = UpdateWorkspace::new();
    ws.bind(&input);
    let new_rows: Vec<usize> = (0..10).collect();
    let evolving_rows: Vec<usize> = (10..30).collect();
    let su_target = DenseMatrix::filled(20, 3, 1.0 / 3.0);
    let sf_target = sf0.clone();
    let sweep = |f: &mut TriFactors, ws: &mut UpdateWorkspace| {
        ws.sweep_online(
            &input,
            f,
            0.2,
            0.4,
            0.3,
            &sf_target,
            &new_rows,
            &evolving_rows,
            &su_target,
        );
    };
    sweep(&mut f, &mut ws);
    let before = allocations();
    tracked(|| {
        for _ in 0..5 {
            sweep(&mut f, &mut ws);
        }
    });
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "online sweep allocated {} times after warm-up",
        after - before
    );
    assert!(f.all_nonnegative(), "sweeps must stay valid");

    // --- one full online step after warm-up: per-iteration hot loop is
    // allocation-free end to end ---
    //
    // A step has fixed per-step costs (factor init, history commit,
    // result assembly) that legitimately allocate, so "zero allocations
    // per step" is not the invariant. The invariant is that *iterations*
    // inside the step — sweep + fused objective evaluation — allocate
    // nothing once the workspace is warm: a warmed step running 12
    // iterations must allocate exactly as much as one running 4. With
    // `tol = 0` the solver never converges early, so the iteration
    // counts are pinned.
    let users: Vec<usize> = (0..30).collect();
    let step_allocs = |max_iters: usize| -> u64 {
        let mut solver = OnlineSolver::new(OnlineConfig {
            k: 3,
            max_iters,
            tol: 0.0,
            ..Default::default()
        });
        let data = SnapshotData {
            input,
            user_ids: &users,
        };
        solver.step(&data); // cold step: everything is new users
        solver.step(&data); // warm step: evolving-user block paths sized
        let before = allocations();
        tracked(|| {
            solver.step(&data);
        });
        allocations() - before
    };
    let short = step_allocs(4);
    let long = step_allocs(12);
    set_parallel_work_threshold(prev);
    assert_eq!(
        short, long,
        "online iterations allocated: a 12-iteration step cost {long} \
         allocations vs {short} for 4 iterations — the extra 8 sweeps \
         must be allocation-free"
    );

    // --- pooled dispatch, same contract on the caller side ---
    //
    // The persistent worker pool replaced per-call scoped spawns exactly
    // so parallel dispatch stops allocating: jobs live on the caller's
    // stack and the queue/scratch buffers are reused. With the work
    // threshold forced to 1 (every kernel takes its parallel path) and a
    // multi-thread budget, warmed sweeps must still allocate nothing on
    // the measuring thread. (Worker threads are excluded by the
    // thread-local counter, but they run the same allocation-free kernel
    // bodies.)
    let prev_threads = tgs_linalg::set_pool_threads_override(Some(2));
    let prev_threshold = set_parallel_work_threshold(1);
    let (xp, xu, xr, graph, sf0) = instance();
    let input = TriInput {
        xp: &xp,
        xu: &xu,
        xr: &xr,
        graph: &graph,
        sf0: &sf0,
    };
    let mut f = TriFactors::random(80, 30, 40, 3, 17);
    let mut ws = UpdateWorkspace::new();
    ws.bind(&input);
    // Warm-up sizes the workspace buffers AND spawns the pool workers /
    // sizes the pool's reusable queue and scratch storage.
    ws.sweep_offline(&input, &mut f, 0.1, 0.5, &sf0);
    let before = allocations();
    tracked(|| {
        for _ in 0..5 {
            ws.sweep_offline(&input, &mut f, 0.1, 0.5, &sf0);
        }
    });
    let after = allocations();
    set_parallel_work_threshold(prev_threshold);
    tgs_linalg::set_pool_threads_override(prev_threads);
    assert_eq!(
        after - before,
        0,
        "pooled offline sweep allocated {} times after warm-up — pool \
         dispatch must be allocation-free in steady state",
        after - before
    );
    assert!(f.all_nonnegative(), "pooled sweeps must stay valid");
}

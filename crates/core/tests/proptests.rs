//! Property-based tests on the core solver machinery: invariants over
//! arbitrary windows, stores and factor states.

use proptest::prelude::*;
use tgs_core::{decode_matrix, encode_matrix, FactorWindow, SentimentHistory, SnapshotStore};
use tgs_linalg::DenseMatrix;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = DenseMatrix> {
    proptest::collection::vec(0.0..5.0f64, rows * cols)
        .prop_map(move |data| DenseMatrix::from_vec(rows, cols, data).unwrap())
}

proptest! {
    #[test]
    fn matrix_serialization_roundtrips(m in matrix(4, 3)) {
        let decoded = decode_matrix(encode_matrix(&m)).expect("roundtrip");
        prop_assert_eq!(decoded, m);
    }

    #[test]
    fn store_never_exceeds_budget_with_multiple_entries(
        matrices in proptest::collection::vec(matrix(2, 2), 1..10),
        budget in 64usize..512,
    ) {
        let mut store = SnapshotStore::new(budget);
        for (t, m) in matrices.iter().enumerate() {
            store.put(t as u64, m);
        }
        // budget holds unless a single entry alone exceeds it
        prop_assert!(store.used_bytes() <= budget.max(16 + 8 * 4));
        prop_assert!(!store.is_empty(), "newest entry always retained");
        // retained timestamps are a contiguous suffix
        let ts = store.timestamps();
        for w in ts.windows(2) {
            prop_assert_eq!(w[1], w[0] + 1);
        }
    }

    #[test]
    fn factor_window_aggregate_bounded_by_max_entry(
        values in proptest::collection::vec(0.0..10.0f64, 1..6),
        tau in 0.1..1.0f64,
    ) {
        // normalized aggregation is a convex combination → bounded by the
        // min/max of the inputs
        let mut w = FactorWindow::new(values.len() + 1, tau, true);
        for &v in &values {
            w.push(DenseMatrix::filled(1, 1, v));
        }
        let agg = w.aggregate().unwrap().get(0, 0);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(agg >= lo - 1e-9 && agg <= hi + 1e-9, "{lo} <= {agg} <= {hi}");
    }

    #[test]
    fn history_partition_is_exhaustive_and_disjoint(
        first in proptest::collection::btree_set(0usize..20, 1..8),
        second in proptest::collection::btree_set(0usize..20, 1..8),
    ) {
        let first: Vec<usize> = first.into_iter().collect();
        let second: Vec<usize> = second.into_iter().collect();
        let mut h = SentimentHistory::new(3, 2, 0.9, true);
        h.record(&first, &DenseMatrix::filled(first.len(), 3, 1.0 / 3.0));
        let part = h.partition(&second);
        // every current row appears in exactly one bucket
        let mut seen = vec![false; second.len()];
        for &r in part.new_rows.iter().chain(part.evolving_rows.iter()) {
            prop_assert!(!seen[r], "row {r} in two buckets");
            seen[r] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "every row bucketed");
        // evolving users were seen before; new users were not
        for &r in &part.evolving_rows {
            prop_assert!(first.contains(&second[r]));
        }
        for &r in &part.new_rows {
            prop_assert!(!first.contains(&second[r]));
        }
        // disappeared = first \ second
        for &u in &part.disappeared {
            prop_assert!(first.contains(&u) && !second.contains(&u));
        }
    }

    #[test]
    fn history_aggregate_rows_are_distributions_when_normalized(
        users in proptest::collection::btree_set(0usize..10, 1..6),
    ) {
        let users: Vec<usize> = users.into_iter().collect();
        let mut h = SentimentHistory::new(3, 3, 0.7, true);
        // record L1-normalized rows (as the online solver does)
        let mut rows = DenseMatrix::from_fn(users.len(), 3, |i, j| ((i + j) % 3) as f64 + 0.1);
        rows.normalize_rows_l1();
        h.record(&users, &rows);
        for &u in &users {
            let agg = h.aggregate_row(u).expect("recorded");
            let sum: f64 = agg.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "aggregate must stay a distribution");
        }
    }
}

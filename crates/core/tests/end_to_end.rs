//! End-to-end: synthetic corpus → matrices → offline/online solve →
//! accuracy. These tests pin the qualitative behaviour the paper reports.

use tgs_core::{solve_offline, OfflineConfig, OnlineConfig, OnlineSolver, SnapshotData, TriInput};
use tgs_data::{build_offline, day_windows, generate, presets, SnapshotBuilder};
use tgs_eval::{clustering_accuracy, nmi};
use tgs_text::PipelineConfig;

fn pipeline() -> PipelineConfig {
    let mut cfg = PipelineConfig::paper_defaults();
    cfg.vocab.min_count = 2;
    cfg
}

#[test]
fn offline_recovers_sentiment_on_tiny_corpus() {
    let corpus = generate(&presets::tiny(11));
    let inst = build_offline(&corpus, 3, &pipeline());
    let input = TriInput {
        xp: &inst.xp,
        xu: &inst.xu,
        xr: &inst.xr,
        graph: &inst.graph,
        sf0: &inst.sf0,
    };
    let cfg = OfflineConfig {
        k: 3,
        max_iters: 120,
        ..Default::default()
    };
    let result = solve_offline(&input, &cfg);
    let t_acc = clustering_accuracy(&result.tweet_labels(), &inst.tweet_truth);
    let u_acc = clustering_accuracy(&result.user_labels(), &inst.user_truth);
    let t_nmi = nmi(&result.tweet_labels(), &inst.tweet_truth);
    // Chance on a 3-class problem with ~45/30/25 priors is ~0.45.
    assert!(t_acc > 0.6, "tweet accuracy {t_acc}, nmi {t_nmi}");
    assert!(u_acc > 0.6, "user accuracy {u_acc}");
}

#[test]
fn offline_on_prop30_small_reaches_paper_ballpark() {
    let corpus = generate(&presets::prop30_small(17));
    let inst = build_offline(&corpus, 3, &pipeline());
    let input = TriInput {
        xp: &inst.xp,
        xu: &inst.xu,
        xr: &inst.xr,
        graph: &inst.graph,
        sf0: &inst.sf0,
    };
    let cfg = OfflineConfig {
        k: 3,
        max_iters: 100,
        ..Default::default()
    };
    let result = solve_offline(&input, &cfg);
    let t_acc = clustering_accuracy(&result.tweet_labels(), &inst.tweet_truth);
    let u_acc = clustering_accuracy(&result.user_labels(), &inst.user_truth);
    // Paper reports ~82% tweet / ~87% user accuracy on Prop 30.
    assert!(t_acc > 0.7, "tweet accuracy {t_acc}");
    assert!(u_acc > 0.7, "user accuracy {u_acc}");
}

#[test]
fn online_stream_tracks_offline_quality() {
    let corpus = generate(&presets::tiny(23));
    let builder = SnapshotBuilder::new(&corpus, 3, &pipeline());
    let mut solver = OnlineSolver::new(OnlineConfig {
        k: 3,
        max_iters: 60,
        ..Default::default()
    });
    let mut weighted_acc = 0.0;
    let mut total = 0usize;
    for (lo, hi) in day_windows(corpus.num_days, 3) {
        let snap = builder.snapshot(&corpus, lo, hi);
        if snap.tweet_ids.is_empty() {
            continue;
        }
        let input = TriInput {
            xp: &snap.xp,
            xu: &snap.xu,
            xr: &snap.xr,
            graph: &snap.graph,
            sf0: builder.sf0(),
        };
        let result = solver.step(&SnapshotData {
            input,
            user_ids: &snap.user_ids,
        });
        let acc = clustering_accuracy(&result.tweet_labels(), &snap.tweet_truth);
        weighted_acc += acc * snap.tweet_ids.len() as f64;
        total += snap.tweet_ids.len();
    }
    let avg = weighted_acc / total as f64;
    assert!(avg > 0.6, "online stream avg tweet accuracy {avg}");
    assert!(solver.steps() > 1);
}

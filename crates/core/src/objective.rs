//! Objective evaluation: Eq. (1) offline and Eq. (19) online, decomposed
//! into named components (Fig. 8 plots three of them).

use tgs_linalg::{approx_error_bi, approx_error_tri, laplacian_quad, DenseMatrix};

use crate::factors::TriFactors;
use crate::input::TriInput;

/// The objective decomposed into its components. `total()` is what the
/// multiplicative updates are proven to not increase.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ObjectiveParts {
    /// `‖Xp − Sp·Hp·Sfᵀ‖²` (Eq. 2) — Fig. 8(a).
    pub tweet_feature: f64,
    /// `‖Xu − Su·Hu·Sfᵀ‖²` (Eq. 3) — Fig. 8(b).
    pub user_feature: f64,
    /// `‖Xr − Su·Spᵀ‖²` (Eq. 4).
    pub user_tweet: f64,
    /// `α·‖Sf − Sf*‖²` (Eq. 5 offline with `Sf* = Sf0`; temporal target
    /// `Sfw(t)` online).
    pub lexicon: f64,
    /// `β·tr(SuᵀLuSu)` (Eq. 6).
    pub graph: f64,
    /// `γ·‖Su(d,e)(t) − Suw(t)‖²` (online only; zero offline).
    pub temporal_user: f64,
}

impl ObjectiveParts {
    /// Sum of all components (the value of Eq. 1 / Eq. 19).
    pub fn total(&self) -> f64 {
        self.tweet_feature
            + self.user_feature
            + self.user_tweet
            + self.lexicon
            + self.graph
            + self.temporal_user
    }
}

/// Evaluates the offline objective (Eq. 1).
pub fn offline_objective(
    input: &TriInput<'_>,
    factors: &TriFactors,
    alpha: f64,
    beta: f64,
) -> ObjectiveParts {
    objective_with_targets(input, factors, alpha, input.sf0, beta, 0.0, None, &[])
}

/// Evaluates the online objective (Eq. 19).
///
/// * `sf_target` — `Sfw(t)` (falls back to `Sf0` on the first snapshot);
/// * `su_target` — `Suw(t)` rows for the evolving users listed in
///   `evolving_rows` (row `i` of `su_target` pairs with local user row
///   `evolving_rows[i]`).
#[allow(clippy::too_many_arguments)]
pub fn online_objective(
    input: &TriInput<'_>,
    factors: &TriFactors,
    alpha: f64,
    sf_target: &DenseMatrix,
    beta: f64,
    gamma: f64,
    su_target: Option<&DenseMatrix>,
    evolving_rows: &[usize],
) -> ObjectiveParts {
    objective_with_targets(
        input,
        factors,
        alpha,
        sf_target,
        beta,
        gamma,
        su_target,
        evolving_rows,
    )
}

#[allow(clippy::too_many_arguments)]
fn objective_with_targets(
    input: &TriInput<'_>,
    factors: &TriFactors,
    alpha: f64,
    sf_target: &DenseMatrix,
    beta: f64,
    gamma: f64,
    su_target: Option<&DenseMatrix>,
    evolving_rows: &[usize],
) -> ObjectiveParts {
    let tweet_feature = approx_error_tri(input.xp, &factors.sp, &factors.hp, &factors.sf);
    let user_feature = approx_error_tri(input.xu, &factors.su, &factors.hu, &factors.sf);
    let user_tweet = approx_error_bi(input.xr, &factors.su, &factors.sp);
    let lexicon = alpha * factors.sf.sub(sf_target).frobenius_sq();
    let graph = beta * laplacian_quad(input.graph.adjacency(), input.graph.degrees(), &factors.su);
    let temporal_user = match su_target {
        Some(target) if gamma > 0.0 => {
            assert_eq!(
                target.rows(),
                evolving_rows.len(),
                "one target row per evolving user required"
            );
            let mut sq = 0.0;
            for (t_row, &u_row) in evolving_rows.iter().enumerate() {
                let current = factors.su.row(u_row);
                let target_row = target.row(t_row);
                for (c, t) in current.iter().zip(target_row.iter()) {
                    let d = c - t;
                    sq += d * d;
                }
            }
            gamma * sq
        }
        _ => 0.0,
    };
    ObjectiveParts {
        tweet_feature,
        user_feature,
        user_tweet,
        lexicon,
        graph,
        temporal_user,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgs_graph::UserGraph;
    use tgs_linalg::CsrMatrix;

    fn setup() -> (CsrMatrix, CsrMatrix, CsrMatrix, UserGraph, DenseMatrix) {
        let xp = CsrMatrix::from_triplets(3, 4, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]).unwrap();
        let xu = CsrMatrix::from_triplets(2, 4, &[(0, 0, 2.0), (1, 3, 1.0)]).unwrap();
        let xr = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (1, 2, 1.0)]).unwrap();
        let graph = UserGraph::from_edges(2, &[(0, 1, 1.0)]);
        let sf0 = DenseMatrix::filled(4, 2, 0.5);
        (xp, xu, xr, graph, sf0)
    }

    #[test]
    fn total_is_sum_of_parts() {
        let (xp, xu, xr, graph, sf0) = setup();
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let factors = TriFactors::random(3, 2, 4, 2, 5);
        let parts = offline_objective(&input, &factors, 0.3, 0.7);
        let manual = parts.tweet_feature
            + parts.user_feature
            + parts.user_tweet
            + parts.lexicon
            + parts.graph;
        assert!((parts.total() - manual).abs() < 1e-12);
        assert!(parts.total() > 0.0);
    }

    #[test]
    fn zero_weights_zero_regularizers() {
        let (xp, xu, xr, graph, sf0) = setup();
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let factors = TriFactors::random(3, 2, 4, 2, 5);
        let parts = offline_objective(&input, &factors, 0.0, 0.0);
        assert_eq!(parts.lexicon, 0.0);
        assert_eq!(parts.graph, 0.0);
        assert_eq!(parts.temporal_user, 0.0);
    }

    #[test]
    fn perfect_factorization_has_small_residual() {
        // Xr = Su·Spᵀ exactly
        let su = DenseMatrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let sp = DenseMatrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0]).unwrap();
        let xr_dense = su.matmul_transpose(&sp);
        let mut triplets = Vec::new();
        for i in 0..2 {
            for j in 0..3 {
                if xr_dense.get(i, j) != 0.0 {
                    triplets.push((i, j, xr_dense.get(i, j)));
                }
            }
        }
        let xr = CsrMatrix::from_triplets(2, 3, &triplets).unwrap();
        let err = tgs_linalg::approx_error_bi(&xr, &su, &sp);
        assert!(err < 1e-12);
    }

    #[test]
    fn online_temporal_term_counts_only_evolving_rows() {
        let (xp, xu, xr, graph, sf0) = setup();
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let mut factors = TriFactors::random(3, 2, 4, 2, 5);
        factors.su = DenseMatrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        // target for user row 1 only
        let target = DenseMatrix::from_vec(1, 2, vec![0.0, 0.0]).unwrap();
        let parts = online_objective(&input, &factors, 0.0, &sf0, 0.0, 0.5, Some(&target), &[1]);
        // ||(0,1) - (0,0)||² = 1, scaled by γ=0.5
        assert!((parts.temporal_user - 0.5).abs() < 1e-12);
    }
}

//! Temporal windows: the `Sfw(t)` / `Suw(t)` aggregations of §4.
//!
//! `Mw(t) = Σ_{i=1}^{w−1} τ^i · M(t−i)` — an exponentially decayed
//! aggregation of the previous `w − 1` snapshots, optionally normalized
//! by `Σ τ^i` to keep the target on a single-snapshot scale.

use std::collections::{HashMap, VecDeque};

use tgs_linalg::DenseMatrix;

/// A user's checkpointed history: `(step, Su row)` observations, newest
/// first (the in-memory order of [`SentimentHistory`]).
pub type UserHistoryRows = Vec<(u64, Vec<f64>)>;

/// The whole per-user history in checkpointable form: `(user, entries)`
/// pairs sorted by user id.
pub type HistoryRows = Vec<(usize, UserHistoryRows)>;

/// Ring buffer of the last `w − 1` feature-cluster matrices `Sf(t−i)`.
#[derive(Debug, Clone)]
pub struct FactorWindow {
    window: usize,
    tau: f64,
    normalize: bool,
    /// Front = most recent (`i = 1`).
    buf: VecDeque<DenseMatrix>,
}

impl FactorWindow {
    /// Creates an empty window holding up to `window − 1` snapshots.
    pub fn new(window: usize, tau: f64, normalize: bool) -> Self {
        assert!(window >= 1, "window must be >= 1");
        assert!(tau > 0.0 && tau <= 1.0, "tau must be in (0, 1]");
        Self {
            window,
            tau,
            normalize,
            buf: VecDeque::new(),
        }
    }

    /// Number of stored snapshots.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no history is available yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Pushes the newest snapshot, evicting anything beyond `w − 1`.
    pub fn push(&mut self, sf: DenseMatrix) {
        self.buf.push_front(sf);
        while self.buf.len() > self.window.saturating_sub(1) {
            self.buf.pop_back();
        }
    }

    /// The retained snapshots, most recent (`i = 1`) first. Exposed for
    /// checkpointing; pair with [`FactorWindow::restore`].
    pub fn snapshots(&self) -> impl Iterator<Item = &DenseMatrix> {
        self.buf.iter()
    }

    /// Rebuilds a window from checkpointed snapshots (most recent first,
    /// as produced by [`FactorWindow::snapshots`]). Snapshots beyond the
    /// window's capacity are dropped.
    pub fn restore(window: usize, tau: f64, normalize: bool, snapshots: Vec<DenseMatrix>) -> Self {
        let mut w = Self::new(window, tau, normalize);
        w.buf = snapshots
            .into_iter()
            .take(window.saturating_sub(1))
            .collect();
        w
    }

    /// `Sfw(t) = Σ_{i=1}^{w−1} τ^i·Sf(t−i)`, or `None` before any history
    /// exists (first snapshot).
    pub fn aggregate(&self) -> Option<DenseMatrix> {
        let first = self.buf.front()?;
        let mut acc = DenseMatrix::zeros(first.rows(), first.cols());
        let mut weight_sum = 0.0;
        let mut w = self.tau;
        for sf in &self.buf {
            acc.axpy(w, sf);
            weight_sum += w;
            w *= self.tau;
        }
        if self.normalize && weight_sum > 0.0 {
            acc.scale_in_place(1.0 / weight_sum);
        }
        Some(acc)
    }
}

/// Per-user sentiment history over global user ids: the machinery behind
/// `Suw(t)` and the new/evolving/disappeared partition of §4.
#[derive(Debug, Clone)]
pub struct SentimentHistory {
    k: usize,
    window: usize,
    tau: f64,
    normalize: bool,
    /// Global step counter (one per processed snapshot).
    t: u64,
    /// Per user: recent `(step, row)` observations, front = newest.
    rows: HashMap<usize, VecDeque<(u64, Vec<f64>)>>,
}

/// The three user categories of the online framework, as *local row
/// indices* into the current snapshot (plus global ids of users that
/// vanished).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UserPartition {
    /// Local rows of users never seen within the window.
    pub new_rows: Vec<usize>,
    /// Local rows of users with in-window history.
    pub evolving_rows: Vec<usize>,
    /// Global ids of users with history but absent from this snapshot.
    pub disappeared: Vec<usize>,
}

impl SentimentHistory {
    /// Creates an empty history for `k` classes with window `w`.
    pub fn new(k: usize, window: usize, tau: f64, normalize: bool) -> Self {
        assert!(window >= 1, "window must be >= 1");
        Self {
            k,
            window,
            tau,
            normalize,
            t: 0,
            rows: HashMap::new(),
        }
    }

    /// Steps processed so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Number of users with any in-window history.
    pub fn known_users(&self) -> usize {
        self.rows.len()
    }

    /// True when `user` has ever been observed (the most recent
    /// observation is retained indefinitely; older ones only within the
    /// window).
    pub fn knows(&self, user: usize) -> bool {
        self.rows.contains_key(&user)
    }

    /// Splits the snapshot's users (global ids, in row order) into
    /// new/evolving, and lists known users that disappeared.
    pub fn partition(&self, current_users: &[usize]) -> UserPartition {
        let mut part = UserPartition::default();
        let current: std::collections::HashSet<usize> = current_users.iter().copied().collect();
        for (row, &u) in current_users.iter().enumerate() {
            if self.knows(u) {
                part.evolving_rows.push(row);
            } else {
                part.new_rows.push(row);
            }
        }
        for &u in self.rows.keys() {
            if !current.contains(&u) {
                part.disappeared.push(u);
            }
        }
        part.disappeared.sort_unstable();
        part
    }

    /// `Suw(t)` row for one user: decayed aggregation of their in-window
    /// rows. `None` for unknown users.
    pub fn aggregate_row(&self, user: usize) -> Option<Vec<f64>> {
        let hist = self.rows.get(&user)?;
        let mut acc = vec![0.0; self.k];
        let mut weight_sum = 0.0;
        for &(step, ref row) in hist {
            // Aggregation targets the *next* snapshot (t + 1), so an entry
            // recorded at `step` is `i = (t + 1) − step` snapshots ago
            // (i = 1 for the most recent one, matching Σ τ^i·Su(t−i)).
            let i = (self.t + 1 - step) as i32;
            let w = self.tau.powi(i);
            for (a, &v) in acc.iter_mut().zip(row.iter()) {
                *a += w * v;
            }
            weight_sum += w;
        }
        if self.normalize && weight_sum > 0.0 {
            for a in &mut acc {
                *a /= weight_sum;
            }
        }
        Some(acc)
    }

    /// The `Suw(t)` matrix for the given local rows (paired with
    /// `current_users`). Rows without history fall back to uniform.
    pub fn aggregate_matrix(&self, current_users: &[usize], rows: &[usize]) -> DenseMatrix {
        let uniform = vec![1.0 / self.k as f64; self.k];
        let mut out = DenseMatrix::zeros(rows.len(), self.k);
        for (i, &row) in rows.iter().enumerate() {
            let user = current_users[row];
            let agg = self.aggregate_row(user).unwrap_or_else(|| uniform.clone());
            out.row_mut(i).copy_from_slice(&agg);
        }
        out
    }

    /// Exports the per-user history for checkpointing: `(user, entries)`
    /// pairs sorted by user id, each entry a `(step, row)` observation
    /// with the newest first (the in-memory order). Pair with
    /// [`SentimentHistory::restore`].
    pub fn export_rows(&self) -> HistoryRows {
        let mut out: HistoryRows = self
            .rows
            .iter()
            .map(|(&u, hist)| (u, hist.iter().cloned().collect()))
            .collect();
        out.sort_unstable_by_key(|(u, _)| *u);
        out
    }

    /// Rebuilds a history from checkpointed state: the global step
    /// counter `t` and the per-user `(step, row)` observations as
    /// produced by [`SentimentHistory::export_rows`]. Rows whose length
    /// disagrees with `k`, or whose step lies in the future of `t`, are
    /// rejected (an out-of-range step would underflow the decay exponent
    /// in [`SentimentHistory::aggregate_row`]).
    pub fn restore(
        k: usize,
        window: usize,
        tau: f64,
        normalize: bool,
        t: u64,
        rows: HistoryRows,
    ) -> Result<Self, crate::error::TgsError> {
        let mut h = Self::new(k, window, tau, normalize);
        h.t = t;
        for (user, entries) in rows {
            for (step, row) in &entries {
                if row.len() != k {
                    return Err(crate::error::TgsError::CorruptCheckpoint {
                        detail: format!(
                            "history row for user {user} at step {step} has {} classes, \
                             expected {k}",
                            row.len()
                        ),
                    });
                }
                if *step > t {
                    return Err(crate::error::TgsError::CorruptCheckpoint {
                        detail: format!(
                            "history row for user {user} is at step {step}, beyond the \
                             restored step counter {t}"
                        ),
                    });
                }
            }
            h.rows.insert(user, entries.into_iter().collect());
        }
        Ok(h)
    }

    /// Records the solved `Su(t)` rows (paired with `current_users`) and
    /// advances the step counter, pruning anything older than `w − 1`
    /// snapshots.
    pub fn record(&mut self, current_users: &[usize], su: &DenseMatrix) {
        assert_eq!(current_users.len(), su.rows(), "one row per user required");
        assert_eq!(su.cols(), self.k, "class count mismatch");
        self.t += 1;
        let t = self.t;
        for (row, &u) in current_users.iter().enumerate() {
            let hist = self.rows.entry(u).or_default();
            hist.push_front((t, su.row(row).to_vec()));
        }
        // Prune out-of-window entries, but always keep each user's most
        // recent observation: the paper's framework carries *disappeared*
        // users forward (Fig. 5 / the Su(d,e) block of Eq. 19) — a user
        // who goes quiet keeps a decaying estimate instead of being
        // forgotten.
        let horizon = t.saturating_sub(self.window.saturating_sub(1) as u64);
        self.rows.retain(|_, hist| {
            while hist.len() > 1 {
                match hist.back() {
                    Some(&(step, _)) if step <= horizon => {
                        hist.pop_back();
                    }
                    _ => break,
                }
            }
            !hist.is_empty()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_window_empty_then_filled() {
        let mut w = FactorWindow::new(3, 0.5, false);
        assert!(w.aggregate().is_none());
        w.push(DenseMatrix::filled(2, 2, 1.0));
        let agg = w.aggregate().unwrap();
        // single snapshot: τ¹ · 1.0 = 0.5
        assert!((agg.get(0, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn factor_window_decays_older_snapshots() {
        let mut w = FactorWindow::new(3, 0.5, false);
        w.push(DenseMatrix::filled(1, 1, 8.0)); // will be i=2
        w.push(DenseMatrix::filled(1, 1, 4.0)); // i=1
                                                // τ·4 + τ²·8 = 2 + 2 = 4
        let agg = w.aggregate().unwrap();
        assert!((agg.get(0, 0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn factor_window_normalized_is_convex_combination() {
        let mut w = FactorWindow::new(3, 0.9, true);
        w.push(DenseMatrix::filled(1, 1, 2.0));
        w.push(DenseMatrix::filled(1, 1, 4.0));
        let agg = w.aggregate().unwrap().get(0, 0);
        assert!(agg > 2.0 && agg < 4.0);
    }

    #[test]
    fn factor_window_evicts_beyond_w_minus_1() {
        let mut w = FactorWindow::new(2, 1.0, false);
        w.push(DenseMatrix::filled(1, 1, 1.0));
        w.push(DenseMatrix::filled(1, 1, 2.0));
        assert_eq!(w.len(), 1);
        assert!((w.aggregate().unwrap().get(0, 0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn window_one_keeps_no_history() {
        let mut w = FactorWindow::new(1, 0.9, true);
        w.push(DenseMatrix::filled(1, 1, 1.0));
        assert!(w.is_empty());
        assert!(w.aggregate().is_none());
    }

    #[test]
    fn history_partition_new_evolving_disappeared() {
        let mut h = SentimentHistory::new(2, 3, 0.9, true);
        let su = DenseMatrix::from_vec(2, 2, vec![0.9, 0.1, 0.2, 0.8]).unwrap();
        h.record(&[10, 20], &su);
        let part = h.partition(&[20, 30]);
        assert_eq!(part.evolving_rows, vec![0]); // user 20 at row 0
        assert_eq!(part.new_rows, vec![1]); // user 30 at row 1
        assert_eq!(part.disappeared, vec![10]);
    }

    #[test]
    fn history_aggregate_row_decays() {
        let mut h = SentimentHistory::new(2, 4, 0.5, false);
        h.record(&[1], &DenseMatrix::from_vec(1, 2, vec![1.0, 0.0]).unwrap());
        h.record(&[1], &DenseMatrix::from_vec(1, 2, vec![0.0, 1.0]).unwrap());
        // t=2: row(t-1)=[0,1] weight 0.5; row(t-2)=[1,0] weight 0.25
        let agg = h.aggregate_row(1).unwrap();
        assert!((agg[0] - 0.25).abs() < 1e-12);
        assert!((agg[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn history_keeps_last_observation_of_absent_users() {
        let mut h = SentimentHistory::new(2, 2, 0.5, false);
        h.record(&[7], &DenseMatrix::from_vec(1, 2, vec![1.0, 0.0]).unwrap());
        assert!(h.knows(7));
        // user 7 absent, but the last observation is carried forward
        h.record(&[8], &DenseMatrix::from_vec(1, 2, vec![0.5, 0.5]).unwrap());
        assert!(h.knows(7), "disappeared users are carried forward");
        // ... with a decayed weight: observation is 2 steps old now
        let agg = h.aggregate_row(7).unwrap();
        assert!((agg[0] - 0.25).abs() < 1e-12, "got {agg:?}");
        assert!(h.knows(8));
    }

    #[test]
    fn history_prunes_older_duplicates_within_user() {
        let mut h = SentimentHistory::new(2, 2, 0.5, false);
        for _ in 0..4 {
            h.record(&[3], &DenseMatrix::from_vec(1, 2, vec![1.0, 0.0]).unwrap());
        }
        // window = 2 keeps w−1 = 1 in-window rows; older ones pruned
        let agg = h.aggregate_row(3).unwrap();
        assert!(
            (agg[0] - 0.5).abs() < 1e-12,
            "only the newest row remains: {agg:?}"
        );
    }

    #[test]
    fn aggregate_matrix_falls_back_to_uniform() {
        let h = SentimentHistory::new(2, 3, 0.9, true);
        let m = h.aggregate_matrix(&[5], &[0]);
        assert_eq!(m.row(0), &[0.5, 0.5]);
    }
}

//! Temporal windows: the `Sfw(t)` / `Suw(t)` aggregations of §4.
//!
//! `Mw(t) = Σ_{i=1}^{w−1} τ^i · M(t−i)` — an exponentially decayed
//! aggregation of the previous `w − 1` snapshots, optionally normalized
//! by `Σ τ^i` to keep the target on a single-snapshot scale.

use std::collections::{HashMap, VecDeque};

use tgs_linalg::DenseMatrix;

/// A user's checkpointed history: `(step, Su row)` observations, newest
/// first (the in-memory order of [`SentimentHistory`]). Steps are signed:
/// a row imported from another shard (live rebalance) keeps its *age*,
/// and an old observation landing on a young solver can predate step 0.
pub type UserHistoryRows = Vec<(i64, Vec<f64>)>;

/// The whole per-user history in checkpointable form: `(user, entries)`
/// pairs sorted by user id.
pub type HistoryRows = Vec<(usize, UserHistoryRows)>;

/// Per-user history in *age-relative* form for migration between
/// solvers: `(user, entries)` pairs sorted by user id, each entry an
/// `(age, Su row)` observation with `age` = how many steps ago the
/// owning solver recorded it (newest — smallest age — first). Ages are
/// solver-independent, so a row re-anchors correctly on a destination
/// whose step counter differs from the source's.
pub type AgedHistoryRows = Vec<(usize, Vec<(u64, Vec<f64>)>)>;

/// Lower bound on representable history steps and upper bound on
/// migration ages: ±2⁶² steps. No real stream approaches this (it would
/// take 4.6×10¹⁸ snapshots), but bounding the domain keeps the signed
/// step arithmetic (`t + 1 − step`, `t − step`) overflow-free against
/// crafted checkpoints whose u64 step fields wrap negative.
const STEP_FLOOR: i64 = -(1 << 62);

/// Ring buffer of the last `w − 1` feature-cluster matrices `Sf(t−i)`.
#[derive(Debug, Clone)]
pub struct FactorWindow {
    window: usize,
    tau: f64,
    normalize: bool,
    /// Front = most recent (`i = 1`).
    buf: VecDeque<DenseMatrix>,
}

impl FactorWindow {
    /// Creates an empty window holding up to `window − 1` snapshots.
    pub fn new(window: usize, tau: f64, normalize: bool) -> Self {
        assert!(window >= 1, "window must be >= 1");
        assert!(tau > 0.0 && tau <= 1.0, "tau must be in (0, 1]");
        Self {
            window,
            tau,
            normalize,
            buf: VecDeque::new(),
        }
    }

    /// Number of stored snapshots.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no history is available yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Pushes the newest snapshot, evicting anything beyond `w − 1`.
    pub fn push(&mut self, sf: DenseMatrix) {
        self.buf.push_front(sf);
        while self.buf.len() > self.window.saturating_sub(1) {
            self.buf.pop_back();
        }
    }

    /// The retained snapshots, most recent (`i = 1`) first. Exposed for
    /// checkpointing; pair with [`FactorWindow::restore`].
    pub fn snapshots(&self) -> impl Iterator<Item = &DenseMatrix> {
        self.buf.iter()
    }

    /// Rebuilds a window from checkpointed snapshots (most recent first,
    /// as produced by [`FactorWindow::snapshots`]). Snapshots beyond the
    /// window's capacity are dropped.
    pub fn restore(window: usize, tau: f64, normalize: bool, snapshots: Vec<DenseMatrix>) -> Self {
        let mut w = Self::new(window, tau, normalize);
        w.buf = snapshots
            .into_iter()
            .take(window.saturating_sub(1))
            .collect();
        w
    }

    /// `Sfw(t) = Σ_{i=1}^{w−1} τ^i·Sf(t−i)`, or `None` before any history
    /// exists (first snapshot).
    pub fn aggregate(&self) -> Option<DenseMatrix> {
        let first = self.buf.front()?;
        let mut acc = DenseMatrix::zeros(first.rows(), first.cols());
        let mut weight_sum = 0.0;
        let mut w = self.tau;
        for sf in &self.buf {
            acc.axpy(w, sf);
            weight_sum += w;
            w *= self.tau;
        }
        if self.normalize && weight_sum > 0.0 {
            acc.scale_in_place(1.0 / weight_sum);
        }
        Some(acc)
    }
}

/// Per-user sentiment history over global user ids: the machinery behind
/// `Suw(t)` and the new/evolving/disappeared partition of §4.
#[derive(Debug, Clone)]
pub struct SentimentHistory {
    k: usize,
    window: usize,
    tau: f64,
    normalize: bool,
    /// Global step counter (one per processed snapshot).
    t: i64,
    /// Per user: recent `(step, row)` observations, front = newest.
    /// Steps are signed — see [`UserHistoryRows`].
    rows: HashMap<usize, VecDeque<(i64, Vec<f64>)>>,
}

/// The three user categories of the online framework, as *local row
/// indices* into the current snapshot (plus global ids of users that
/// vanished).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UserPartition {
    /// Local rows of users never seen within the window.
    pub new_rows: Vec<usize>,
    /// Local rows of users with in-window history.
    pub evolving_rows: Vec<usize>,
    /// Global ids of users with history but absent from this snapshot.
    pub disappeared: Vec<usize>,
    /// Local rows that are ghosts: remote users materialized for a
    /// cross-shard re-tweet edge. Their factors are prescribed by the
    /// owning shard and they are excluded from this shard's history.
    /// Always empty outside the ghost-user protocol.
    pub ghost_rows: Vec<usize>,
}

impl SentimentHistory {
    /// Creates an empty history for `k` classes with window `w`.
    pub fn new(k: usize, window: usize, tau: f64, normalize: bool) -> Self {
        assert!(window >= 1, "window must be >= 1");
        Self {
            k,
            window,
            tau,
            normalize,
            t: 0,
            rows: HashMap::new(),
        }
    }

    /// Steps processed so far.
    pub fn steps(&self) -> i64 {
        self.t
    }

    /// Number of users with any in-window history.
    pub fn known_users(&self) -> usize {
        self.rows.len()
    }

    /// True when `user` has ever been observed (the most recent
    /// observation is retained indefinitely; older ones only within the
    /// window).
    pub fn knows(&self, user: usize) -> bool {
        self.rows.contains_key(&user)
    }

    /// Splits the snapshot's users (global ids, in row order) into
    /// new/evolving, and lists known users that disappeared.
    pub fn partition(&self, current_users: &[usize]) -> UserPartition {
        let mut part = UserPartition::default();
        let current: std::collections::HashSet<usize> = current_users.iter().copied().collect();
        for (row, &u) in current_users.iter().enumerate() {
            if self.knows(u) {
                part.evolving_rows.push(row);
            } else {
                part.new_rows.push(row);
            }
        }
        for &u in self.rows.keys() {
            if !current.contains(&u) {
                part.disappeared.push(u);
            }
        }
        part.disappeared.sort_unstable();
        part
    }

    /// `Suw(t)` row for one user: decayed aggregation of their in-window
    /// rows. `None` for unknown users.
    pub fn aggregate_row(&self, user: usize) -> Option<Vec<f64>> {
        let hist = self.rows.get(&user)?;
        let mut acc = vec![0.0; self.k];
        let mut weight_sum = 0.0;
        for &(step, ref row) in hist {
            // Aggregation targets the *next* snapshot (t + 1), so an entry
            // recorded at `step` is `i = (t + 1) − step` snapshots ago
            // (i = 1 for the most recent one, matching Σ τ^i·Su(t−i)).
            // Migrated rows can be arbitrarily old; saturate rather than
            // wrap (τ^big underflows to 0, the right limit).
            let i = i32::try_from(self.t + 1 - step).unwrap_or(i32::MAX);
            let w = self.tau.powi(i);
            for (a, &v) in acc.iter_mut().zip(row.iter()) {
                *a += w * v;
            }
            weight_sum += w;
        }
        if self.normalize && weight_sum > 0.0 {
            for a in &mut acc {
                *a /= weight_sum;
            }
        }
        Some(acc)
    }

    /// The `Suw(t)` matrix for the given local rows (paired with
    /// `current_users`). Rows without history fall back to uniform.
    pub fn aggregate_matrix(&self, current_users: &[usize], rows: &[usize]) -> DenseMatrix {
        let uniform = vec![1.0 / self.k as f64; self.k];
        let mut out = DenseMatrix::zeros(rows.len(), self.k);
        for (i, &row) in rows.iter().enumerate() {
            let user = current_users[row];
            let agg = self.aggregate_row(user).unwrap_or_else(|| uniform.clone());
            out.row_mut(i).copy_from_slice(&agg);
        }
        out
    }

    /// Exports the per-user history for checkpointing: `(user, entries)`
    /// pairs sorted by user id, each entry a `(step, row)` observation
    /// with the newest first (the in-memory order). Pair with
    /// [`SentimentHistory::restore`].
    pub fn export_rows(&self) -> HistoryRows {
        let mut out: HistoryRows = self
            .rows
            .iter()
            .map(|(&u, hist)| (u, hist.iter().cloned().collect()))
            .collect();
        out.sort_unstable_by_key(|(u, _)| *u);
        out
    }

    /// Exports the history of just the given users (same shape and
    /// newest-first entry order as [`SentimentHistory::export_rows`],
    /// sorted by user id, users without history skipped) — the
    /// O(changes) read used by delta checkpoints, which only ship rows
    /// for users touched since the base snapshot.
    pub fn export_rows_for(&self, users: &[usize]) -> HistoryRows {
        let mut out: HistoryRows = users
            .iter()
            .filter_map(|&u| {
                self.rows
                    .get(&u)
                    .map(|hist| (u, hist.iter().cloned().collect()))
            })
            .collect();
        out.sort_unstable_by_key(|(u, _)| *u);
        out.dedup_by_key(|(u, _)| *u);
        out
    }

    /// Rebuilds a history from checkpointed state: the global step
    /// counter `t` and the per-user `(step, row)` observations as
    /// produced by [`SentimentHistory::export_rows`]. Rows whose length
    /// disagrees with `k`, or whose step lies in the future of `t`, are
    /// rejected (an out-of-range step would underflow the decay exponent
    /// in [`SentimentHistory::aggregate_row`]).
    pub fn restore(
        k: usize,
        window: usize,
        tau: f64,
        normalize: bool,
        t: i64,
        rows: HistoryRows,
    ) -> Result<Self, crate::error::TgsError> {
        // The counter itself must respect the representable band too: a
        // crafted checkpoint whose u64 counter wrapped negative (or sits
        // at i64::MAX) would overflow `t += 1` / the horizon arithmetic
        // on the first post-restore snapshot even with zero rows.
        if !(STEP_FLOOR..=-STEP_FLOOR).contains(&t) {
            return Err(crate::error::TgsError::CorruptCheckpoint {
                detail: format!("history step counter {t} is outside the representable band"),
            });
        }
        let mut h = Self::new(k, window, tau, normalize);
        h.t = t;
        for (user, entries) in rows {
            for (step, row) in &entries {
                if row.len() != k {
                    return Err(crate::error::TgsError::CorruptCheckpoint {
                        detail: format!(
                            "history row for user {user} at step {step} has {} classes, \
                             expected {k}",
                            row.len()
                        ),
                    });
                }
                if *step > t {
                    return Err(crate::error::TgsError::CorruptCheckpoint {
                        detail: format!(
                            "history row for user {user} is at step {step}, beyond the \
                             restored step counter {t}"
                        ),
                    });
                }
                // Steps are signed (migration ages), but a legitimate one
                // can never approach i64::MIN — that shape only arises
                // from a crafted checkpoint whose huge u64 wrapped
                // negative, and it would overflow the `t + 1 - step` /
                // `t - step` arithmetic downstream.
                if *step < STEP_FLOOR {
                    return Err(crate::error::TgsError::CorruptCheckpoint {
                        detail: format!(
                            "history row for user {user} is at step {step}, below the \
                             representable age floor"
                        ),
                    });
                }
            }
            h.rows.insert(user, entries.into_iter().collect());
        }
        Ok(h)
    }

    /// Records the solved `Su(t)` rows (paired with `current_users`) and
    /// advances the step counter, pruning anything older than `w − 1`
    /// snapshots.
    pub fn record(&mut self, current_users: &[usize], su: &DenseMatrix) {
        self.record_masked(current_users, su, &[]);
    }

    /// Like [`SentimentHistory::record`], but skipping the given sorted
    /// local rows — the ghost-row protocol: a ghost row's user is owned
    /// (and recorded) by another shard, so committing it here would fork
    /// the user's history. The step counter still advances and pruning
    /// still runs; with an empty mask this is exactly `record`.
    pub fn record_masked(&mut self, current_users: &[usize], su: &DenseMatrix, skip: &[usize]) {
        assert_eq!(current_users.len(), su.rows(), "one row per user required");
        assert_eq!(su.cols(), self.k, "class count mismatch");
        self.t += 1;
        let t = self.t;
        for (row, &u) in current_users.iter().enumerate() {
            if skip.binary_search(&row).is_ok() {
                continue;
            }
            let hist = self.rows.entry(u).or_default();
            hist.push_front((t, su.row(row).to_vec()));
        }
        // Prune out-of-window entries, but always keep each user's most
        // recent observation: the paper's framework carries *disappeared*
        // users forward (Fig. 5 / the Su(d,e) block of Eq. 19) — a user
        // who goes quiet keeps a decaying estimate instead of being
        // forgotten.
        let horizon = t - self.window.saturating_sub(1) as i64;
        self.rows.retain(|_, hist| {
            while hist.len() > 1 {
                match hist.back() {
                    Some(&(step, _)) if step <= horizon => {
                        hist.pop_back();
                    }
                    _ => break,
                }
            }
            !hist.is_empty()
        });
    }

    /// Removes and returns the history of every user with id in
    /// `lo..hi`, in *age-relative* form (sorted by user id) for
    /// migration into another solver via
    /// [`SentimentHistory::import_aged`]. Ages are measured against this
    /// solver's step counter, so the export is placement-independent:
    /// exporting and re-importing (with no steps in between) restores
    /// the exact original state.
    pub fn take_users(&mut self, lo: usize, hi: usize) -> AgedHistoryRows {
        let t = self.t;
        let mut out: AgedHistoryRows = Vec::new();
        let moving: Vec<usize> = self
            .rows
            .keys()
            .copied()
            .filter(|&u| u >= lo && u < hi)
            .collect();
        for user in moving {
            let hist = self.rows.remove(&user).expect("key just listed");
            let aged = hist
                .into_iter()
                .map(|(step, row)| ((t - step) as u64, row))
                .collect();
            out.push((user, aged));
        }
        out.sort_unstable_by_key(|(u, _)| *u);
        out
    }

    /// Imports age-relative user histories produced by
    /// [`SentimentHistory::take_users`] on another solver, re-anchoring
    /// each row at `step = t − age` against *this* solver's counter.
    /// Rejects rows of the wrong width, non-ascending ages (the
    /// newest-first invariant), unrepresentable ages, and users this
    /// solver already tracks (shards are user-disjoint — a collision
    /// means two shards both claim ownership). Validation runs before
    /// any insertion, and a rejection hands the rows back untouched so
    /// a failed migration can restore them to their source.
    #[allow(clippy::result_large_err)]
    pub fn import_aged(
        &mut self,
        rows: AgedHistoryRows,
    ) -> Result<(), (crate::error::TgsError, AgedHistoryRows)> {
        let mut problem = None;
        let mut prev_user = None;
        'validate: for (user, entries) in &rows {
            if self.rows.contains_key(user) {
                problem = Some(crate::error::TgsError::invalid_argument(format!(
                    "user {user} already has history here; refusing to merge \
                     two shards' ownership of one user"
                )));
                break 'validate;
            }
            // The payload contract is strictly-ascending user ids; a
            // duplicate within it is the same two-owners collision and
            // would silently overwrite on insert.
            if prev_user.is_some_and(|p| *user <= p) {
                problem = Some(crate::error::TgsError::invalid_argument(format!(
                    "migrated users are not strictly ascending at user {user}"
                )));
                break 'validate;
            }
            prev_user = Some(*user);
            let mut prev_age = None;
            for (age, row) in entries {
                if row.len() != self.k {
                    problem = Some(crate::error::TgsError::invalid_argument(format!(
                        "migrated row for user {user} has {} classes, expected {}",
                        row.len(),
                        self.k
                    )));
                    break 'validate;
                }
                if prev_age.is_some_and(|p| *age < p) {
                    problem = Some(crate::error::TgsError::invalid_argument(format!(
                        "migrated rows for user {user} are not newest-first"
                    )));
                    break 'validate;
                }
                if *age > STEP_FLOOR.unsigned_abs() {
                    problem = Some(crate::error::TgsError::invalid_argument(format!(
                        "migrated row for user {user} claims an unrepresentable age {age}"
                    )));
                    break 'validate;
                }
                prev_age = Some(*age);
            }
        }
        if let Some(e) = problem {
            return Err((e, rows));
        }
        let t = self.t;
        for (user, entries) in rows {
            let hist: VecDeque<(i64, Vec<f64>)> = entries
                .into_iter()
                .map(|(age, row)| (t - age as i64, row))
                .collect();
            if !hist.is_empty() {
                self.rows.insert(user, hist);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_window_empty_then_filled() {
        let mut w = FactorWindow::new(3, 0.5, false);
        assert!(w.aggregate().is_none());
        w.push(DenseMatrix::filled(2, 2, 1.0));
        let agg = w.aggregate().unwrap();
        // single snapshot: τ¹ · 1.0 = 0.5
        assert!((agg.get(0, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn factor_window_decays_older_snapshots() {
        let mut w = FactorWindow::new(3, 0.5, false);
        w.push(DenseMatrix::filled(1, 1, 8.0)); // will be i=2
        w.push(DenseMatrix::filled(1, 1, 4.0)); // i=1
                                                // τ·4 + τ²·8 = 2 + 2 = 4
        let agg = w.aggregate().unwrap();
        assert!((agg.get(0, 0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn factor_window_normalized_is_convex_combination() {
        let mut w = FactorWindow::new(3, 0.9, true);
        w.push(DenseMatrix::filled(1, 1, 2.0));
        w.push(DenseMatrix::filled(1, 1, 4.0));
        let agg = w.aggregate().unwrap().get(0, 0);
        assert!(agg > 2.0 && agg < 4.0);
    }

    #[test]
    fn factor_window_evicts_beyond_w_minus_1() {
        let mut w = FactorWindow::new(2, 1.0, false);
        w.push(DenseMatrix::filled(1, 1, 1.0));
        w.push(DenseMatrix::filled(1, 1, 2.0));
        assert_eq!(w.len(), 1);
        assert!((w.aggregate().unwrap().get(0, 0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn window_one_keeps_no_history() {
        let mut w = FactorWindow::new(1, 0.9, true);
        w.push(DenseMatrix::filled(1, 1, 1.0));
        assert!(w.is_empty());
        assert!(w.aggregate().is_none());
    }

    #[test]
    fn history_partition_new_evolving_disappeared() {
        let mut h = SentimentHistory::new(2, 3, 0.9, true);
        let su = DenseMatrix::from_vec(2, 2, vec![0.9, 0.1, 0.2, 0.8]).unwrap();
        h.record(&[10, 20], &su);
        let part = h.partition(&[20, 30]);
        assert_eq!(part.evolving_rows, vec![0]); // user 20 at row 0
        assert_eq!(part.new_rows, vec![1]); // user 30 at row 1
        assert_eq!(part.disappeared, vec![10]);
    }

    #[test]
    fn history_aggregate_row_decays() {
        let mut h = SentimentHistory::new(2, 4, 0.5, false);
        h.record(&[1], &DenseMatrix::from_vec(1, 2, vec![1.0, 0.0]).unwrap());
        h.record(&[1], &DenseMatrix::from_vec(1, 2, vec![0.0, 1.0]).unwrap());
        // t=2: row(t-1)=[0,1] weight 0.5; row(t-2)=[1,0] weight 0.25
        let agg = h.aggregate_row(1).unwrap();
        assert!((agg[0] - 0.25).abs() < 1e-12);
        assert!((agg[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn history_keeps_last_observation_of_absent_users() {
        let mut h = SentimentHistory::new(2, 2, 0.5, false);
        h.record(&[7], &DenseMatrix::from_vec(1, 2, vec![1.0, 0.0]).unwrap());
        assert!(h.knows(7));
        // user 7 absent, but the last observation is carried forward
        h.record(&[8], &DenseMatrix::from_vec(1, 2, vec![0.5, 0.5]).unwrap());
        assert!(h.knows(7), "disappeared users are carried forward");
        // ... with a decayed weight: observation is 2 steps old now
        let agg = h.aggregate_row(7).unwrap();
        assert!((agg[0] - 0.25).abs() < 1e-12, "got {agg:?}");
        assert!(h.knows(8));
    }

    #[test]
    fn history_prunes_older_duplicates_within_user() {
        let mut h = SentimentHistory::new(2, 2, 0.5, false);
        for _ in 0..4 {
            h.record(&[3], &DenseMatrix::from_vec(1, 2, vec![1.0, 0.0]).unwrap());
        }
        // window = 2 keeps w−1 = 1 in-window rows; older ones pruned
        let agg = h.aggregate_row(3).unwrap();
        assert!(
            (agg[0] - 0.5).abs() < 1e-12,
            "only the newest row remains: {agg:?}"
        );
    }

    #[test]
    fn take_and_import_round_trips_exactly() {
        let mut h = SentimentHistory::new(2, 4, 0.5, false);
        h.record(
            &[1, 9],
            &DenseMatrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap(),
        );
        h.record(
            &[9],
            &DenseMatrix::from_vec(1, 2, vec![0.25, 0.75]).unwrap(),
        );
        let before_1 = h.aggregate_row(1).unwrap();
        let before_9 = h.aggregate_row(9).unwrap();
        let moved = h.take_users(5, usize::MAX);
        assert_eq!(moved.len(), 1, "only user 9 is in range");
        assert!(h.aggregate_row(9).is_none(), "taken users are removed");
        h.import_aged(moved).unwrap();
        assert_eq!(h.aggregate_row(1).unwrap(), before_1);
        assert_eq!(h.aggregate_row(9).unwrap(), before_9);
    }

    #[test]
    fn import_preserves_age_across_different_step_counters() {
        // Record user 3 on a solver that has seen 2 steps, migrate to a
        // cold solver: the observation must stay "1 step old" there.
        let mut src = SentimentHistory::new(2, 4, 0.5, false);
        src.record(&[], &DenseMatrix::zeros(0, 2));
        src.record(&[3], &DenseMatrix::from_vec(1, 2, vec![1.0, 0.0]).unwrap());
        let expect = src.aggregate_row(3).unwrap();
        let mut dst = SentimentHistory::new(2, 4, 0.5, false);
        dst.import_aged(src.take_users(0, usize::MAX)).unwrap();
        assert_eq!(dst.aggregate_row(3).unwrap(), expect);
        // A second import of the same user is a typed ownership clash.
        let mut src2 = SentimentHistory::new(2, 4, 0.5, false);
        src2.record(&[3], &DenseMatrix::from_vec(1, 2, vec![0.5, 0.5]).unwrap());
        assert!(dst.import_aged(src2.take_users(0, usize::MAX)).is_err());
    }

    #[test]
    fn record_masked_skips_ghost_rows_but_advances_time() {
        let mut h = SentimentHistory::new(2, 3, 0.5, false);
        let su = DenseMatrix::from_vec(2, 2, vec![0.9, 0.1, 0.2, 0.8]).unwrap();
        h.record_masked(&[10, 20], &su, &[1]);
        assert!(h.knows(10));
        assert!(!h.knows(20), "masked row must not be recorded");
        assert_eq!(h.steps(), 1);
    }

    #[test]
    fn aggregate_matrix_falls_back_to_uniform() {
        let h = SentimentHistory::new(2, 3, 0.9, true);
        let m = h.aggregate_matrix(&[5], &[0]);
        assert_eq!(m.row(0), &[0.5, 0.5]);
    }
}

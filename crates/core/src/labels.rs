//! Turning soft cluster memberships into sentiment labels.

use tgs_linalg::DenseMatrix;

/// Hard labels: argmax of each membership row.
pub fn hard_labels(memberships: &DenseMatrix) -> Vec<usize> {
    memberships.argmax_rows()
}

/// Maps cluster ids to ground-truth classes by majority vote over the
/// positions where `truth` is known, then relabels `pred` accordingly.
/// Clusters never seen among labeled items keep their own id (which is
/// what the paper's clustering-accuracy metric effectively does too).
pub fn align_clusters_to_classes(pred: &[usize], truth: &[Option<usize>]) -> Vec<usize> {
    assert_eq!(pred.len(), truth.len(), "prediction/truth length mismatch");
    let num_clusters = pred.iter().copied().max().map_or(0, |m| m + 1);
    let num_classes = truth
        .iter()
        .flatten()
        .copied()
        .max()
        .map_or(0, |m| m + 1)
        .max(num_clusters);
    let mut votes = vec![vec![0usize; num_classes]; num_clusters];
    for (&p, t) in pred.iter().zip(truth.iter()) {
        if let Some(t) = t {
            votes[p][*t] += 1;
        }
    }
    let mapping: Vec<usize> = votes
        .iter()
        .enumerate()
        .map(|(cluster, row)| {
            let best = row.iter().enumerate().max_by_key(|&(_, &c)| c);
            match best {
                Some((class, &count)) if count > 0 => class,
                _ => cluster,
            }
        })
        .collect();
    pred.iter().map(|&p| mapping[p]).collect()
}

/// Row-normalizes memberships into per-item class distributions
/// (probability view of `Sp`/`Su`).
pub fn membership_distribution(memberships: &DenseMatrix) -> DenseMatrix {
    let mut out = memberships.clone();
    out.normalize_rows_l1();
    out
}

/// Confidence of each hard label: the normalized mass of the winning
/// cluster (1/k = fully uncertain, 1.0 = fully confident).
pub fn label_confidence(memberships: &DenseMatrix) -> Vec<f64> {
    let dist = membership_distribution(memberships);
    dist.rows_iter()
        .map(|row| row.iter().fold(0.0_f64, |m, &v| m.max(v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hard_labels_argmax() {
        let m = DenseMatrix::from_vec(2, 3, vec![0.1, 0.7, 0.2, 0.5, 0.2, 0.3]).unwrap();
        assert_eq!(hard_labels(&m), vec![1, 0]);
    }

    #[test]
    fn align_maps_majority() {
        // cluster 0 is mostly class 1; cluster 1 mostly class 0
        let pred = vec![0, 0, 0, 1, 1];
        let truth = vec![Some(1), Some(1), Some(0), Some(0), None];
        let aligned = align_clusters_to_classes(&pred, &truth);
        assert_eq!(aligned, vec![1, 1, 1, 0, 0]);
    }

    #[test]
    fn align_keeps_unvoted_clusters() {
        let pred = vec![0, 1];
        let truth = vec![Some(1), None];
        let aligned = align_clusters_to_classes(&pred, &truth);
        assert_eq!(aligned, vec![1, 1]); // cluster 1 unvoted keeps id 1
    }

    #[test]
    fn distribution_rows_sum_to_one() {
        let m = DenseMatrix::from_vec(2, 2, vec![2.0, 2.0, 3.0, 1.0]).unwrap();
        let d = membership_distribution(&m);
        for i in 0..2 {
            let s: f64 = d.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn confidence_reflects_peakedness() {
        let m = DenseMatrix::from_vec(2, 2, vec![0.9, 0.1, 0.5, 0.5]).unwrap();
        let c = label_confidence(&m);
        assert!(c[0] > c[1]);
        assert!((c[1] - 0.5).abs() < 1e-12);
    }
}

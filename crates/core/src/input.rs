//! The data matrices a solve consumes.

use tgs_graph::UserGraph;
use tgs_linalg::{CsrMatrix, DenseMatrix};

/// Borrowed view of one tri-clustering problem (offline: the whole
/// corpus; online: one snapshot).
#[derive(Debug, Clone, Copy)]
pub struct TriInput<'a> {
    /// Tweet–feature matrix `Xp` (`n × l`).
    pub xp: &'a CsrMatrix,
    /// User–feature matrix `Xu` (`m × l`).
    pub xu: &'a CsrMatrix,
    /// User–tweet matrix `Xr` (`m × n`).
    pub xr: &'a CsrMatrix,
    /// User–user re-tweet graph (`Gu`, `Du`).
    pub graph: &'a UserGraph,
    /// Feature–sentiment prior `Sf0` (`l × k`).
    pub sf0: &'a DenseMatrix,
}

impl<'a> TriInput<'a> {
    /// Number of tweets `n`.
    pub fn n(&self) -> usize {
        self.xp.rows()
    }

    /// Number of users `m`.
    pub fn m(&self) -> usize {
        self.xu.rows()
    }

    /// Number of features `l`.
    pub fn l(&self) -> usize {
        self.xp.cols()
    }

    /// Checks cross-matrix shape consistency; panics with a descriptive
    /// message on the first violation.
    pub fn validate(&self, k: usize) {
        let (n, m, l) = (self.n(), self.m(), self.l());
        assert_eq!(self.xu.cols(), l, "Xu must share Xp's feature space");
        assert_eq!(self.xr.shape(), (m, n), "Xr must be m × n");
        assert_eq!(self.graph.num_nodes(), m, "Gu must cover all m users");
        assert_eq!(self.sf0.shape(), (l, k), "Sf0 must be l × k");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_parts() -> (CsrMatrix, CsrMatrix, CsrMatrix, UserGraph, DenseMatrix) {
        let xp = CsrMatrix::from_triplets(3, 4, &[(0, 0, 1.0)]).unwrap();
        let xu = CsrMatrix::from_triplets(2, 4, &[(0, 1, 1.0)]).unwrap();
        let xr = CsrMatrix::from_triplets(2, 3, &[(1, 2, 1.0)]).unwrap();
        let graph = UserGraph::from_edges(2, &[(0, 1, 1.0)]);
        let sf0 = DenseMatrix::filled(4, 3, 1.0 / 3.0);
        (xp, xu, xr, graph, sf0)
    }

    #[test]
    fn dimensions_reported() {
        let (xp, xu, xr, graph, sf0) = tiny_parts();
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        assert_eq!(input.n(), 3);
        assert_eq!(input.m(), 2);
        assert_eq!(input.l(), 4);
        input.validate(3);
    }

    #[test]
    #[should_panic(expected = "Sf0 must be l × k")]
    fn validate_rejects_wrong_k() {
        let (xp, xu, xr, graph, sf0) = tiny_parts();
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        input.validate(2);
    }
}

//! The data matrices a solve consumes.

use tgs_graph::UserGraph;
use tgs_linalg::{CsrMatrix, DenseMatrix};

use crate::error::TgsError;

/// Borrowed view of one tri-clustering problem (offline: the whole
/// corpus; online: one snapshot).
#[derive(Debug, Clone, Copy)]
pub struct TriInput<'a> {
    /// Tweet–feature matrix `Xp` (`n × l`).
    pub xp: &'a CsrMatrix,
    /// User–feature matrix `Xu` (`m × l`).
    pub xu: &'a CsrMatrix,
    /// User–tweet matrix `Xr` (`m × n`).
    pub xr: &'a CsrMatrix,
    /// User–user re-tweet graph (`Gu`, `Du`).
    pub graph: &'a UserGraph,
    /// Feature–sentiment prior `Sf0` (`l × k`).
    pub sf0: &'a DenseMatrix,
}

impl<'a> TriInput<'a> {
    /// Number of tweets `n`.
    pub fn n(&self) -> usize {
        self.xp.rows()
    }

    /// Number of users `m`.
    pub fn m(&self) -> usize {
        self.xu.rows()
    }

    /// Number of features `l`.
    pub fn l(&self) -> usize {
        self.xp.cols()
    }

    /// Checks cross-matrix shape consistency, reporting the first
    /// violation as the matching [`TgsError`] shape variant.
    pub fn try_validate(&self, k: usize) -> Result<(), TgsError> {
        let (n, m, l) = (self.n(), self.m(), self.l());
        if self.xu.cols() != l {
            return Err(TgsError::FeatureDimMismatch {
                xp_cols: l,
                xu_cols: self.xu.cols(),
            });
        }
        if self.xr.shape() != (m, n) {
            return Err(TgsError::InteractionShapeMismatch {
                expected: (m, n),
                got: self.xr.shape(),
            });
        }
        if self.graph.num_nodes() != m {
            return Err(TgsError::GraphSizeMismatch {
                users: m,
                nodes: self.graph.num_nodes(),
            });
        }
        if self.sf0.shape() != (l, k) {
            return Err(TgsError::PriorShapeMismatch {
                expected: (l, k),
                got: self.sf0.shape(),
            });
        }
        Ok(())
    }

    /// Panicking wrapper around [`TriInput::try_validate`], kept for the
    /// bench binaries and quick scripts.
    pub fn validate(&self, k: usize) {
        if let Err(e) = self.try_validate(k) {
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_parts() -> (CsrMatrix, CsrMatrix, CsrMatrix, UserGraph, DenseMatrix) {
        let xp = CsrMatrix::from_triplets(3, 4, &[(0, 0, 1.0)]).unwrap();
        let xu = CsrMatrix::from_triplets(2, 4, &[(0, 1, 1.0)]).unwrap();
        let xr = CsrMatrix::from_triplets(2, 3, &[(1, 2, 1.0)]).unwrap();
        let graph = UserGraph::from_edges(2, &[(0, 1, 1.0)]);
        let sf0 = DenseMatrix::filled(4, 3, 1.0 / 3.0);
        (xp, xu, xr, graph, sf0)
    }

    #[test]
    fn dimensions_reported() {
        let (xp, xu, xr, graph, sf0) = tiny_parts();
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        assert_eq!(input.n(), 3);
        assert_eq!(input.m(), 2);
        assert_eq!(input.l(), 4);
        input.validate(3);
    }

    #[test]
    fn try_validate_reports_variant_without_panicking() {
        use crate::error::TgsErrorKind;
        let (xp, xu, xr, graph, sf0) = tiny_parts();
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        assert!(input.try_validate(3).is_ok());
        let err = input.try_validate(2).unwrap_err();
        assert_eq!(err.kind(), TgsErrorKind::PriorShapeMismatch);
    }

    #[test]
    #[should_panic(expected = "Sf0 must be l × k")]
    fn validate_rejects_wrong_k() {
        let (xp, xu, xr, graph, sf0) = tiny_parts();
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        input.validate(2);
    }
}

//! Shard-parallel solves sharing the global word–sentiment factor.
//!
//! The user/tweet axes of the tripartite problem dominate its size, so
//! they shard cleanly by user range (see `tgs_data::UserRangePartitioner`)
//! while the word axis — and therefore the `l × k` factor `Sf` — stays
//! global. Both entry points here follow the same scheme:
//!
//! * every shard solves its local `Sp`/`Su`/`Hp`/`Hu` factors
//!   independently (in parallel, on scoped threads);
//! * the word–sentiment factor is **broadcast** to all shards before a
//!   round and **merged** after it by a deterministic weighted average
//!   (weights = shard tweet counts, accumulated in fixed shard order);
//! * with a single shard the merge degenerates to a plain clone, which is
//!   the mechanism behind the tested guarantee that `shards = 1` is
//!   **bit-identical** to the unsharded [`crate::try_solve_offline`] /
//!   [`OnlineSolver::try_step`] paths.
//!
//! [`try_solve_offline_sharded`] couples shards once per *iteration*;
//! [`ShardedOnlineSolver`] couples them once per *snapshot* (the shared
//! `Sfw(t)` window of Algorithm 2), matching the engine-level router
//! where each shard advances its own user history.

use tgs_linalg::DenseMatrix;

use crate::config::{OfflineConfig, OnlineConfig};
use crate::error::TgsError;
use crate::factors::TriFactors;
use crate::input::TriInput;
use crate::objective::{offline_objective, ObjectiveParts};
use crate::offline::OfflineResult;
use crate::online::{GhostFactor, OnlineSolver, OnlineStepResult, SnapshotData};
use crate::window::FactorWindow;
use crate::workspace::UpdateWorkspace;

/// A ghost row's coupling link for the offline sharded solver: shard
/// `shard`'s local user row `row` is a ghost of shard `owner_shard`'s
/// local user row `owner_row` (the same global user). Each coupling
/// round broadcasts the owner's `Su` row into the ghost row, alongside
/// the global `Sf` merge — so a cross-shard re-tweet edge regularizes
/// against the remote user's *current* factor, not a stale copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GhostRowLink {
    /// The shard holding the ghost row.
    pub shard: usize,
    /// Local user row of the ghost on `shard`.
    pub row: usize,
    /// The shard owning the user.
    pub owner_shard: usize,
    /// The user's local row on the owning shard.
    pub owner_row: usize,
}

/// Deterministic per-shard RNG seed. Shard 0 keeps the configured seed so
/// a single-shard solve draws the exact random stream of the unsharded
/// path.
fn shard_seed(seed: u64, shard: usize) -> u64 {
    seed.wrapping_add((shard as u64).wrapping_mul(0x9E37_79B9_97F4_A7C5))
}

/// Weighted average of per-shard `Sf` factors, accumulated in shard
/// order. A single part is returned as a bit-exact clone (no `×w / w`
/// rounding), so one-shard solves stay bit-identical to the unsharded
/// path. This is the **one** merge policy of the sharded stack — the
/// engine-level query fan-in reuses it so `top_words` can never drift
/// from the solvers' semantics.
pub fn merge_sf(parts: &[(f64, &DenseMatrix)]) -> Option<DenseMatrix> {
    match parts {
        [] => None,
        [(_, sf)] => Some((*sf).clone()),
        _ => {
            let mut acc = DenseMatrix::zeros(parts[0].1.rows(), parts[0].1.cols());
            let mut total = 0.0;
            for &(w, sf) in parts {
                acc.axpy(w, sf);
                total += w;
            }
            if total > 0.0 {
                acc.scale_in_place(1.0 / total);
            }
            Some(acc)
        }
    }
}

/// Validates that every shard input is internally consistent and that
/// all shards share the global word axis (and prior shape).
fn validate_shard_inputs(inputs: &[TriInput<'_>], k: usize) -> Result<(), TgsError> {
    let Some(first) = inputs.first() else {
        return Err(TgsError::invalid_argument(
            "sharded solve needs at least one shard input",
        ));
    };
    let l = first.l();
    for (shard, input) in inputs.iter().enumerate() {
        input.try_validate(k)?;
        if input.l() != l {
            return Err(TgsError::invalid_argument(format!(
                "shard {shard} has {} features but shard 0 has {l}; \
                 the word axis must stay global across shards",
                input.l()
            )));
        }
    }
    Ok(())
}

/// Result of [`try_solve_offline_sharded`].
#[derive(Debug, Clone)]
pub struct ShardedOfflineResult {
    /// Per-shard results, in shard order. Each shard's `factors.sf` holds
    /// the final *merged* global factor; `sp`/`su`/`hp`/`hu` are
    /// shard-local (rows follow the shard's tweet/user order).
    pub shards: Vec<OfflineResult>,
    /// The merged global word–sentiment factor (`l × k`).
    pub sf: DenseMatrix,
    /// Coupled iterations run (shared across shards).
    pub iterations: usize,
    /// Whether the summed objective met the tolerance.
    pub converged: bool,
    /// Final summed objective across shards.
    pub objective: f64,
}

/// Per-shard mutable solve state for the offline loop.
struct ShardState {
    factors: TriFactors,
    workspace: UpdateWorkspace,
    /// Merge weight (shard tweet count); zero rows ⇒ inactive.
    weight: f64,
    active: bool,
    history: Vec<ObjectiveParts>,
    cur: ObjectiveParts,
}

/// Algorithm 1 over user-range shards: shard-local `Sp`/`Su`/`Hp`/`Hu`
/// sweeps run in parallel each iteration, then the shards' `Sf` updates
/// are merged into one global factor (weighted by shard tweet counts)
/// and broadcast back before the next iteration. Convergence is decided
/// on the objective summed across shards.
///
/// Guarantee: with `inputs.len() == 1` the result — factors, iteration
/// count, objective trace — is bit-identical to
/// [`crate::try_solve_offline`] on the same input (tested in this module
/// and in the shard-parity integration tests).
pub fn try_solve_offline_sharded(
    inputs: &[TriInput<'_>],
    config: &OfflineConfig,
) -> Result<ShardedOfflineResult, TgsError> {
    try_solve_offline_sharded_with_ghosts(inputs, config, &[])
}

/// [`try_solve_offline_sharded`] under the ghost-user protocol: each
/// [`GhostRowLink`] couples a cross-shard re-tweet edge's ghost row to
/// its owning shard. Every coupling round (after the `Sf` merge) the
/// owner's current `Su` row is broadcast into the ghost row, so the
/// local graph regularizer sees the remote user's live factor. With an
/// empty link list this is exactly [`try_solve_offline_sharded`] — the
/// `shards = 1` bit-identity guarantee is untouched.
pub fn try_solve_offline_sharded_with_ghosts(
    inputs: &[TriInput<'_>],
    config: &OfflineConfig,
    ghosts: &[GhostRowLink],
) -> Result<ShardedOfflineResult, TgsError> {
    config.try_validate()?;
    validate_shard_inputs(inputs, config.k)?;
    for g in ghosts {
        let ok = g.shard < inputs.len()
            && g.owner_shard < inputs.len()
            && g.row < inputs[g.shard].m()
            && g.owner_row < inputs[g.owner_shard].m();
        if !ok {
            return Err(TgsError::invalid_argument(format!(
                "ghost link {g:?} references rows outside its shards"
            )));
        }
    }
    let (l, k) = (inputs[0].l(), config.k);

    let mut states: Vec<ShardState> = inputs
        .iter()
        .enumerate()
        .map(|(shard, input)| {
            let mut factors = TriFactors::init(
                input.n(),
                input.m(),
                l,
                k,
                input.sf0,
                config.init,
                shard_seed(config.seed, shard),
            );
            let active = input.n() > 0 && input.m() > 0;
            let mut workspace = UpdateWorkspace::new();
            let mut cur = ObjectiveParts::default();
            if active {
                workspace.bind(input);
                workspace.balance_init_scales(input, &mut factors);
                cur = offline_objective(input, &factors, config.alpha, config.beta);
            }
            ShardState {
                factors,
                workspace,
                weight: input.n() as f64,
                active,
                history: Vec::new(),
                cur,
            }
        })
        .collect();
    if states.iter().all(|s| !s.active) {
        return Err(TgsError::invalid_argument(
            "every shard is empty; nothing to solve",
        ));
    }

    // Initial ghost broadcast: ghost rows start from the owner's init
    // rather than their own random draw, and the affected shards'
    // starting objectives are re-evaluated against the prescribed rows.
    if !ghosts.is_empty() {
        broadcast_ghost_rows(&mut states, ghosts);
        let mut touched: Vec<usize> = ghosts.iter().map(|g| g.shard).collect();
        touched.sort_unstable();
        touched.dedup();
        for s in touched {
            if states[s].active {
                states[s].workspace.invalidate_factor_caches();
                states[s].cur =
                    offline_objective(&inputs[s], &states[s].factors, config.alpha, config.beta);
            }
        }
    }

    let mut prev: f64 = states.iter().map(|s| s.cur.total()).sum();
    if config.track_objective {
        for s in states.iter_mut() {
            s.history.push(s.cur);
        }
    }
    let mut converged = false;
    let mut iterations = 0;
    for it in 0..config.max_iters {
        // --- Parallel shard-local sweeps + objective evaluation ---
        // One pool task per active shard (replacing a per-iteration
        // thread spawn); each task takes its shard exactly once from a
        // claim slot. Shard sweeps are independent, so pooled execution
        // is bit-identical to the scoped-thread era.
        let (alpha, beta) = (config.alpha, config.beta);
        let tasks: Vec<_> = inputs
            .iter()
            .zip(states.iter_mut())
            .filter(|(_, state)| state.active)
            .map(|pair| std::sync::Mutex::new(Some(pair)))
            .collect();
        tgs_linalg::pool_run_tasks(tasks.len(), |i| {
            let (input, state) = tasks[i]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("each shard task claimed once");
            state
                .workspace
                .sweep_offline(input, &mut state.factors, alpha, beta, input.sf0);
            state.cur = state
                .workspace
                .objective_offline(input, &state.factors, alpha, beta);
        });
        drop(tasks);
        iterations = it + 1;
        let cur: f64 = states.iter().map(|s| s.cur.total()).sum();
        if config.track_objective {
            for s in states.iter_mut().filter(|s| s.active) {
                let parts = s.cur;
                s.history.push(parts);
            }
        }
        let hit_tol = {
            let denom = prev.abs().max(1.0);
            (prev - cur).abs() / denom < config.tol
        };
        prev = cur;

        // --- Merge + broadcast the global word–sentiment factor ---
        let parts: Vec<(f64, &DenseMatrix)> = states
            .iter()
            .filter(|s| s.active)
            .map(|s| (s.weight, &s.factors.sf))
            .collect();
        let merged = merge_sf(&parts).expect("at least one active shard");
        for s in states.iter_mut().filter(|s| s.active) {
            s.factors.sf.copy_from(&merged);
            // The merge replaced Sf behind the workspace's back; drop
            // the cached Grams or the next sweep reuses the pre-merge
            // SfᵀSf. (With one shard the merge is a bit-exact clone, so
            // the forced recompute is bit-identical and the shards=1 ==
            // unsharded guarantee holds unchanged.)
            s.workspace.invalidate_factor_caches();
        }
        // Ghost rows ride the same coupling round: each ghost picks up
        // its owner's just-swept Su row (the caches above are already
        // invalidated, so the next sweep sees the fresh rows).
        broadcast_ghost_rows(&mut states, ghosts);

        if hit_tol {
            converged = true;
            break;
        }
    }

    let sf = states
        .iter()
        .find(|s| s.active)
        .map(|s| s.factors.sf.clone())
        .expect("at least one active shard");
    let shards = states
        .into_iter()
        .map(|s| {
            let objective = s.cur.total();
            OfflineResult {
                factors: s.factors,
                history: s.history,
                iterations: if s.active { iterations } else { 0 },
                converged,
                objective,
            }
        })
        .collect();
    Ok(ShardedOfflineResult {
        shards,
        sf,
        iterations,
        converged,
        objective: prev,
    })
}

/// Copies each ghost link's owner `Su` row into the ghost row.
fn broadcast_ghost_rows(states: &mut [ShardState], ghosts: &[GhostRowLink]) {
    for g in ghosts {
        let row = states[g.owner_shard].factors.su.row(g.owner_row).to_vec();
        states[g.shard]
            .factors
            .su
            .row_mut(g.row)
            .copy_from_slice(&row);
    }
}

/// Panicking wrapper around [`try_solve_offline_sharded`], kept for the
/// bench binaries and quick scripts.
pub fn solve_offline_sharded(
    inputs: &[TriInput<'_>],
    config: &OfflineConfig,
) -> ShardedOfflineResult {
    try_solve_offline_sharded(inputs, config).unwrap_or_else(|e| panic!("{e}"))
}

/// Result of one [`ShardedOnlineSolver::try_step`].
#[derive(Debug, Clone)]
pub struct ShardedStepOutcome {
    /// Per-shard step results (`None` for shards whose slice was empty
    /// this snapshot — their solvers do not advance).
    pub shards: Vec<Option<OnlineStepResult>>,
    /// The merged global `Sf(t)` pushed into the shared window.
    pub sf: DenseMatrix,
}

/// Algorithm 2 over user-range shards: `S` per-shard [`OnlineSolver`]s
/// (each owning the user history of *its* users) coupled through one
/// shared `Sfw(t)` window. Per snapshot, the shared aggregate is
/// broadcast as every shard's warm-start/regularization target, the
/// shards solve in parallel, and their `Sf(t)` factors are merged
/// (weighted by shard tweet counts, fixed shard order) into the window.
///
/// With one shard this is bit-identical to a plain [`OnlineSolver`] fed
/// the same snapshots (tested below): the merge is a clone and the
/// shared window replays exactly the solver-owned one.
#[derive(Debug, Clone)]
pub struct ShardedOnlineSolver {
    config: OnlineConfig,
    solvers: Vec<OnlineSolver>,
    sf_window: FactorWindow,
    steps: u64,
}

impl ShardedOnlineSolver {
    /// Creates `shards` per-shard solvers plus the shared `Sf` window.
    /// Shard 0 keeps the configured seed (single-shard bit-identity);
    /// later shards derive theirs deterministically.
    pub fn try_new(config: OnlineConfig, shards: usize) -> Result<Self, TgsError> {
        if shards == 0 {
            return Err(TgsError::InvalidConfig {
                field: "shards",
                message: "need at least one shard".into(),
            });
        }
        let solvers = (0..shards)
            .map(|s| {
                OnlineSolver::try_new(OnlineConfig {
                    seed: shard_seed(config.seed, s),
                    ..config.clone()
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        // Mirrors `OnlineSolver`: the Sf window is always normalized.
        let sf_window = FactorWindow::new(config.window, config.tau, true);
        Ok(Self {
            config,
            solvers,
            sf_window,
            steps: 0,
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.solvers.len()
    }

    /// Snapshots processed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The shared solver configuration.
    pub fn config(&self) -> &OnlineConfig {
        &self.config
    }

    /// Decayed sentiment estimate for a user, routed to the shard that
    /// owns it (`shard` must come from the same partitioner that routed
    /// the snapshots).
    pub fn sentiment_of(&self, shard: usize, user: usize) -> Option<Vec<f64>> {
        self.solvers.get(shard)?.sentiment_of(user)
    }

    /// Processes one snapshot split into per-shard slices (`data[s]` is
    /// shard `s`'s slice; empty slices — zero tweets — are skipped).
    /// Shard slices must be disjoint by user; the caller routes them with
    /// the partitioner.
    pub fn try_step(&mut self, data: &[SnapshotData<'_>]) -> Result<ShardedStepOutcome, TgsError> {
        self.try_step_with_ghosts(data, &[])
    }

    /// [`ShardedOnlineSolver::try_step`] under the ghost-user protocol:
    /// `ghosts[s]` lists the global ids of remote users materialized as
    /// ghost rows on shard `s` (from ghost-mode routing). Before the
    /// parallel shard steps, each ghost's *current* factor — the decayed
    /// `Suw` aggregate of whichever shard owns the user's history, or
    /// uniform for never-seen users — is sampled and broadcast alongside
    /// the shared `Sf` window; ghost rows warm-start from it, are
    /// γ-regularized toward it, and are excluded from the receiving
    /// shard's history and merge weighting. An empty `ghosts` (or all
    /// shards empty) is exactly [`ShardedOnlineSolver::try_step`].
    pub fn try_step_with_ghosts(
        &mut self,
        data: &[SnapshotData<'_>],
        ghosts: &[Vec<usize>],
    ) -> Result<ShardedStepOutcome, TgsError> {
        if !ghosts.is_empty() && ghosts.len() != self.solvers.len() {
            return Err(TgsError::invalid_argument(format!(
                "expected {} ghost lists, got {}",
                self.solvers.len(),
                ghosts.len()
            )));
        }
        // Sample every ghost factor against the *pre-step* state, so the
        // exchange is deterministic and simultaneous across shards.
        let k = self.config.k;
        let ghost_factors: Vec<Vec<GhostFactor>> = if ghosts.is_empty() {
            vec![Vec::new(); self.solvers.len()]
        } else {
            ghosts
                .iter()
                .map(|users| {
                    users
                        .iter()
                        .map(|&user| {
                            let dist = self
                                .solvers
                                .iter()
                                .find(|s| s.knows_user(user))
                                .and_then(|owner| owner.sentiment_of(user))
                                .unwrap_or_else(|| vec![1.0 / k as f64; k]);
                            (user, dist)
                        })
                        .collect()
                })
                .collect()
        };
        self.step_impl(data, &ghost_factors)
    }

    fn step_impl(
        &mut self,
        data: &[SnapshotData<'_>],
        ghost_factors: &[Vec<GhostFactor>],
    ) -> Result<ShardedStepOutcome, TgsError> {
        if data.len() != self.solvers.len() {
            return Err(TgsError::invalid_argument(format!(
                "expected {} shard slices, got {}",
                self.solvers.len(),
                data.len()
            )));
        }
        // Validate everything up front so a malformed shard cannot leave
        // the stream half-stepped.
        for d in data.iter().filter(|d| d.input.n() > 0) {
            d.input.try_validate(self.config.k)?;
            if d.user_ids.len() != d.input.m() {
                return Err(TgsError::UserIdCountMismatch {
                    rows: d.input.m(),
                    ids: d.user_ids.len(),
                });
            }
        }
        if data.iter().all(|d| d.input.n() == 0) {
            return Err(TgsError::invalid_argument(
                "every shard slice is empty; nothing to step",
            ));
        }

        // --- Parallel shard-local steps against the shared window ---
        let window = &self.sf_window;
        let mut results: Vec<Option<Result<OnlineStepResult, TgsError>>> =
            std::iter::repeat_with(|| None).take(data.len()).collect();
        // One pool task per non-empty shard (replacing a per-step thread
        // spawn); each task takes its solver exactly once from a claim
        // slot.
        let tasks: Vec<_> = self
            .solvers
            .iter_mut()
            .zip(data.iter())
            .zip(results.iter_mut())
            .zip(ghost_factors.iter())
            .filter(|(((_, d), _), _)| d.input.n() > 0)
            .map(|(((solver, d), slot), ghosts)| {
                std::sync::Mutex::new(Some((solver, d, slot, ghosts)))
            })
            .collect();
        tgs_linalg::pool_run_tasks(tasks.len(), |i| {
            let (solver, d, slot, ghosts) = tasks[i]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("each shard step claimed once");
            *slot = Some(solver.try_step_shared_with_ghosts(d, window, ghosts));
        });
        drop(tasks);
        let mut shards = Vec::with_capacity(results.len());
        for slot in results {
            match slot {
                None => shards.push(None),
                Some(Ok(r)) => shards.push(Some(r)),
                Some(Err(e)) => return Err(e),
            }
        }

        // --- Merge + commit the global Sf(t) ---
        let parts: Vec<(f64, &DenseMatrix)> = shards
            .iter()
            .zip(data.iter())
            .filter_map(|(r, d)| r.as_ref().map(|r| (d.input.n() as f64, &r.factors.sf)))
            .collect();
        let sf = merge_sf(&parts).expect("at least one shard stepped");
        self.sf_window.push(sf.clone());
        self.steps += 1;
        Ok(ShardedStepOutcome { shards, sf })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;
    use tgs_graph::UserGraph;
    use tgs_linalg::{seeded_rng, CsrMatrix};

    /// Planted two-cluster instance over a given user set (global ids).
    fn instance(
        users: &[usize],
        n: usize,
        l: usize,
        seed: u64,
    ) -> (CsrMatrix, CsrMatrix, CsrMatrix, UserGraph, DenseMatrix) {
        let mut rng = seeded_rng(seed);
        let m = users.len();
        let mut xp = Vec::new();
        let mut xu = Vec::new();
        let mut xr = Vec::new();
        let mut edges = Vec::new();
        for i in 0..n {
            let a = rng.random_range(0..m);
            let c = users[a] % 2;
            for _ in 0..4 {
                let f = 2 * rng.random_range(0..l / 2) + c;
                xp.push((i, f, 1.0));
            }
            xr.push((a, i, 1.0));
        }
        for (row, &u) in users.iter().enumerate() {
            let c = u % 2;
            for _ in 0..6 {
                let f = 2 * rng.random_range(0..l / 2) + c;
                xu.push((row, f, 1.0));
            }
            if let Some(peer) = users.iter().position(|&v| v % 2 == c && v != u) {
                edges.push((row, peer, 1.0));
            }
        }
        let xp = CsrMatrix::from_triplets(n, l, &xp).unwrap();
        let xu = CsrMatrix::from_triplets(m, l, &xu).unwrap();
        let xr = CsrMatrix::from_triplets(m, n, &xr).unwrap();
        let graph = UserGraph::from_edges(m, &edges);
        let sf0 = DenseMatrix::from_fn(l, 2, |f, j| if f % 2 == j { 0.8 } else { 0.2 });
        (xp, xu, xr, graph, sf0)
    }

    fn offline_config() -> OfflineConfig {
        OfflineConfig {
            k: 2,
            max_iters: 40,
            tol: 1e-7,
            track_objective: true,
            ..Default::default()
        }
    }

    fn online_config() -> OnlineConfig {
        OnlineConfig {
            k: 2,
            max_iters: 30,
            tol: 1e-7,
            ..Default::default()
        }
    }

    #[test]
    fn single_shard_offline_is_bit_identical() {
        let users: Vec<usize> = (0..8).collect();
        let (xp, xu, xr, graph, sf0) = instance(&users, 40, 12, 5);
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let cfg = offline_config();
        let single = crate::try_solve_offline(&input, &cfg).unwrap();
        let sharded = try_solve_offline_sharded(&[input], &cfg).unwrap();
        assert_eq!(sharded.iterations, single.iterations);
        assert_eq!(sharded.converged, single.converged);
        assert_eq!(sharded.objective, single.objective);
        let shard = &sharded.shards[0];
        assert_eq!(shard.factors.sp, single.factors.sp);
        assert_eq!(shard.factors.su, single.factors.su);
        assert_eq!(shard.factors.hp, single.factors.hp);
        assert_eq!(shard.factors.hu, single.factors.hu);
        assert_eq!(shard.factors.sf, single.factors.sf);
        assert_eq!(sharded.sf, single.factors.sf);
        let trace: Vec<f64> = shard.history.iter().map(|p| p.total()).collect();
        let expected: Vec<f64> = single.history.iter().map(|p| p.total()).collect();
        assert_eq!(trace, expected, "objective trace must match exactly");
    }

    #[test]
    fn two_shards_solve_and_stay_deterministic() {
        let users_a: Vec<usize> = (0..6).collect();
        let users_b: Vec<usize> = (6..12).collect();
        let (xp_a, xu_a, xr_a, g_a, sf0) = instance(&users_a, 30, 12, 7);
        let (xp_b, xu_b, xr_b, g_b, _) = instance(&users_b, 26, 12, 8);
        let input_a = TriInput {
            xp: &xp_a,
            xu: &xu_a,
            xr: &xr_a,
            graph: &g_a,
            sf0: &sf0,
        };
        let input_b = TriInput {
            xp: &xp_b,
            xu: &xu_b,
            xr: &xr_b,
            graph: &g_b,
            sf0: &sf0,
        };
        let cfg = offline_config();
        let a = solve_offline_sharded(&[input_a, input_b], &cfg);
        let b = solve_offline_sharded(&[input_a, input_b], &cfg);
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.sf, b.sf);
        assert_eq!(a.shards[1].factors.su, b.shards[1].factors.su);
        // Both shards carry the merged global factor.
        assert_eq!(a.shards[0].factors.sf, a.sf);
        assert_eq!(a.shards[1].factors.sf, a.sf);
        // The planted signal survives sharding: tweets recover their
        // parity class within each shard.
        for (shard, users) in a.shards.iter().zip([&users_a, &users_b]) {
            let truth: Vec<usize> = users.iter().map(|&u| u % 2).collect();
            let acc = tgs_eval::clustering_accuracy(&shard.user_labels(), &truth);
            assert!(acc > 0.7, "user accuracy {acc}");
        }
    }

    #[test]
    fn empty_shard_is_carried_not_fatal() {
        let users: Vec<usize> = (0..6).collect();
        let (xp, xu, xr, graph, sf0) = instance(&users, 30, 12, 9);
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let empty_xp = CsrMatrix::from_triplets(0, 12, &[]).unwrap();
        let empty_xu = CsrMatrix::from_triplets(0, 12, &[]).unwrap();
        let empty_xr = CsrMatrix::from_triplets(0, 0, &[]).unwrap();
        let empty_graph = UserGraph::empty(0);
        let empty = TriInput {
            xp: &empty_xp,
            xu: &empty_xu,
            xr: &empty_xr,
            graph: &empty_graph,
            sf0: &sf0,
        };
        let result = try_solve_offline_sharded(&[input, empty], &offline_config()).unwrap();
        assert_eq!(result.shards[1].iterations, 0);
        assert!(result.shards[0].iterations > 0);
        assert!(result.objective.is_finite());
    }

    #[test]
    fn pooled_threads_preserve_parity_and_survive_contention() {
        // Regression for the worker-pool migration: forcing a
        // multi-thread pool budget must not perturb the `shards = 1`
        // bit-identity guarantee, and two solves hammering the shared
        // pool from different caller threads must neither deadlock nor
        // cross-talk. (The pool budget is process-global, but every
        // kernel is bit-identical at every budget, so flipping it here
        // cannot perturb concurrently-running tests.)
        let prev = tgs_linalg::set_pool_threads_override(Some(4));
        let users: Vec<usize> = (0..8).collect();
        let (xp, xu, xr, graph, sf0) = instance(&users, 40, 12, 5);
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let cfg = offline_config();
        let single = crate::try_solve_offline(&input, &cfg).unwrap();
        let sharded = try_solve_offline_sharded(&[input], &cfg).unwrap();
        assert_eq!(sharded.objective, single.objective);
        assert_eq!(sharded.iterations, single.iterations);
        assert_eq!(sharded.shards[0].factors.su, single.factors.su);
        assert_eq!(sharded.shards[0].factors.sf, single.factors.sf);

        // Contention: the same 2-shard solve from two caller threads at
        // once must reproduce the solo result on both.
        let users_b: Vec<usize> = (8..14).collect();
        let (xp_b, xu_b, xr_b, g_b, _) = instance(&users_b, 26, 12, 8);
        let input_b = TriInput {
            xp: &xp_b,
            xu: &xu_b,
            xr: &xr_b,
            graph: &g_b,
            sf0: &sf0,
        };
        let solo = solve_offline_sharded(&[input, input_b], &cfg);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|_| s.spawn(|| solve_offline_sharded(&[input, input_b], &cfg)))
                .collect();
            for h in handles {
                let got = h.join().expect("concurrent solve must not die");
                assert_eq!(got.objective, solo.objective, "cross-talk under contention");
                assert_eq!(got.sf, solo.sf);
                assert_eq!(got.shards[1].factors.su, solo.shards[1].factors.su);
            }
        });
        tgs_linalg::set_pool_threads_override(prev);
    }

    #[test]
    fn single_shard_online_is_bit_identical() {
        let users: Vec<usize> = (0..8).collect();
        let cfg = online_config();
        let mut plain = OnlineSolver::try_new(cfg.clone()).unwrap();
        let mut sharded = ShardedOnlineSolver::try_new(cfg, 1).unwrap();
        for t in 0..4u64 {
            let (xp, xu, xr, graph, sf0) = instance(&users, 30, 12, t + 30);
            let input = TriInput {
                xp: &xp,
                xu: &xu,
                xr: &xr,
                graph: &graph,
                sf0: &sf0,
            };
            let data = SnapshotData {
                input,
                user_ids: &users,
            };
            let a = plain.try_step(&data).unwrap();
            let b = sharded.try_step(&[data]).unwrap();
            let b0 = b.shards[0].as_ref().expect("shard stepped");
            assert_eq!(a.objective, b0.objective, "step {t}");
            assert_eq!(a.iterations, b0.iterations, "step {t}");
            assert_eq!(a.factors.su, b0.factors.su, "step {t}");
            assert_eq!(a.factors.sf, b0.factors.sf, "step {t}");
            assert_eq!(b.sf, a.factors.sf, "merged Sf is the shard's, step {t}");
        }
        assert_eq!(plain.steps(), sharded.steps());
    }

    #[test]
    fn sharded_online_couples_shards_through_sf() {
        // Two disjoint user ranges stream in parallel; the shared window
        // must make shard B's warm start depend on shard A's data.
        let users_a: Vec<usize> = (0..5).collect();
        let users_b: Vec<usize> = (5..10).collect();
        let cfg = online_config();
        let mut coupled = ShardedOnlineSolver::try_new(cfg.clone(), 2).unwrap();
        let mut solo_b = OnlineSolver::try_new(OnlineConfig {
            seed: shard_seed(cfg.seed, 1),
            ..cfg
        })
        .unwrap();
        let mut diverged = false;
        for t in 0..3u64 {
            let (xp_a, xu_a, xr_a, g_a, sf0) = instance(&users_a, 24, 12, t + 50);
            let (xp_b, xu_b, xr_b, g_b, _) = instance(&users_b, 24, 12, t + 80);
            let input_a = TriInput {
                xp: &xp_a,
                xu: &xu_a,
                xr: &xr_a,
                graph: &g_a,
                sf0: &sf0,
            };
            let input_b = TriInput {
                xp: &xp_b,
                xu: &xu_b,
                xr: &xr_b,
                graph: &g_b,
                sf0: &sf0,
            };
            let data_a = SnapshotData {
                input: input_a,
                user_ids: &users_a,
            };
            let data_b = SnapshotData {
                input: input_b,
                user_ids: &users_b,
            };
            let out = coupled.try_step(&[data_a, data_b]).unwrap();
            let solo = solo_b.try_step(&data_b).unwrap();
            let b = out.shards[1].as_ref().unwrap();
            if b.factors.sf != solo.factors.sf {
                diverged = true;
            }
        }
        assert!(
            diverged,
            "shared-window shard must differ from an isolated solver once \
             the other shard's data enters the merged Sf"
        );
    }

    #[test]
    fn offline_ghost_rows_track_their_owner() {
        let users_a: Vec<usize> = (0..6).collect();
        let users_b: Vec<usize> = (6..12).collect();
        let (xp_a, xu_a, xr_a, g_a, sf0) = instance(&users_a, 30, 12, 7);
        let (xp_b, xu_b, xr_b, g_b, _) = instance(&users_b, 26, 12, 8);
        let input_a = TriInput {
            xp: &xp_a,
            xu: &xu_a,
            xr: &xr_a,
            graph: &g_a,
            sf0: &sf0,
        };
        let input_b = TriInput {
            xp: &xp_b,
            xu: &xu_b,
            xr: &xr_b,
            graph: &g_b,
            sf0: &sf0,
        };
        // Shard 1's row 2 is a ghost of shard 0's row 3 (imagine user 3
        // re-tweeting one of shard 1's documents).
        let links = [GhostRowLink {
            shard: 1,
            row: 2,
            owner_shard: 0,
            owner_row: 3,
        }];
        let cfg = offline_config();
        let a = try_solve_offline_sharded_with_ghosts(&[input_a, input_b], &cfg, &links).unwrap();
        let b = try_solve_offline_sharded_with_ghosts(&[input_a, input_b], &cfg, &links).unwrap();
        assert_eq!(a.sf, b.sf, "ghost coupling must stay deterministic");
        // The final broadcast leaves the ghost row equal to its owner's.
        assert_eq!(
            a.shards[1].factors.su.row(2),
            a.shards[0].factors.su.row(3),
            "ghost row mirrors the owner after the last coupling round"
        );
        // And the coupling actually changes the ghost shard's solve.
        let plain = try_solve_offline_sharded(&[input_a, input_b], &cfg).unwrap();
        assert_ne!(a.shards[1].factors.su, plain.shards[1].factors.su);
        // Out-of-range links are typed errors.
        let bad = GhostRowLink {
            shard: 1,
            row: 99,
            owner_shard: 0,
            owner_row: 0,
        };
        let err =
            try_solve_offline_sharded_with_ghosts(&[input_a, input_b], &cfg, &[bad]).unwrap_err();
        assert_eq!(err.kind(), crate::error::TgsErrorKind::InvalidArgument);
    }

    #[test]
    fn online_ghosts_carry_owner_factors_and_stay_unrecorded() {
        let users_a: Vec<usize> = (0..5).collect();
        // Shard B's snapshot includes user 2 (owned by shard A) as a
        // ghost row: B holds a re-tweet edge of A's user.
        let users_b_with_ghost: Vec<usize> = vec![2, 5, 6, 7, 8];
        let cfg = online_config();
        let mut solver = ShardedOnlineSolver::try_new(cfg, 2).unwrap();
        for t in 0..3u64 {
            let (xp_a, xu_a, xr_a, g_a, sf0) = instance(&users_a, 24, 12, t + 300);
            let (xp_b, xu_b, xr_b, g_b, _) = instance(&users_b_with_ghost, 24, 12, t + 400);
            let input_a = TriInput {
                xp: &xp_a,
                xu: &xu_a,
                xr: &xr_a,
                graph: &g_a,
                sf0: &sf0,
            };
            let input_b = TriInput {
                xp: &xp_b,
                xu: &xu_b,
                xr: &xr_b,
                graph: &g_b,
                sf0: &sf0,
            };
            let data_a = SnapshotData {
                input: input_a,
                user_ids: &users_a,
            };
            let data_b = SnapshotData {
                input: input_b,
                user_ids: &users_b_with_ghost,
            };
            let out = solver
                .try_step_with_ghosts(&[data_a, data_b], &[vec![], vec![2]])
                .unwrap();
            let b = out.shards[1].as_ref().unwrap();
            assert_eq!(b.partition.ghost_rows, vec![0], "user 2 is row 0 of B");
            assert!(
                !b.partition.new_rows.contains(&0) && !b.partition.evolving_rows.contains(&0),
                "ghost rows leave the new/evolving sets"
            );
        }
        // Only shard A ever recorded user 2: the ghost shard withheld it.
        assert!(solver.solvers[0].knows_user(2));
        assert!(!solver.solvers[1].knows_user(2));
    }

    #[test]
    fn shard_slice_count_mismatch_is_typed() {
        let cfg = online_config();
        let mut solver = ShardedOnlineSolver::try_new(cfg, 2).unwrap();
        let users: Vec<usize> = (0..4).collect();
        let (xp, xu, xr, graph, sf0) = instance(&users, 10, 12, 1);
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let data = SnapshotData {
            input,
            user_ids: &users,
        };
        let err = solver.try_step(&[data]).unwrap_err();
        assert_eq!(err.kind(), crate::error::TgsErrorKind::InvalidArgument);
        assert_eq!(solver.steps(), 0);
    }
}

//! # tgs-core
//!
//! The paper's primary contribution: a unified unsupervised tri-clustering
//! framework that co-clusters the feature–tweet–user tripartite graph into
//! sentiment classes via orthogonal non-negative matrix tri-factorization
//! (Zhu, Galstyan, Cheng, Lerman — "Tripartite Graph Clustering for
//! Dynamic Sentiment Analysis on Social Media", 2014).
//!
//! * [`solve_offline`] — Algorithm 1: the static solver for Eq. (1).
//! * [`OnlineSolver`] — Algorithm 2: the streaming solver for Eq. (19)
//!   with temporal regularization, decayed windows and new/evolving/
//!   disappeared user bookkeeping.
//!
//! ## Errors
//!
//! Library-level validation never panics: [`TriInput::try_validate`],
//! [`OfflineConfig::try_validate`], [`OnlineConfig::try_validate`],
//! [`try_solve_offline`] and [`OnlineSolver::try_step`] report the
//! matching [`TgsError`] variant (one per violated invariant — see
//! [`error`] for the full taxonomy). The panicking spellings
//! (`validate`, `solve_offline`, `step`) are thin wrappers over the
//! `try_` forms, kept for benches and quick scripts.
//!
//! ```
//! use tgs_core::{solve_offline, OfflineConfig, TriInput};
//! use tgs_graph::UserGraph;
//! use tgs_linalg::{CsrMatrix, DenseMatrix};
//!
//! // Two tweets, two users, two features; class 0 ~ feature 0.
//! let xp = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]).unwrap();
//! let xu = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]).unwrap();
//! let xr = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]).unwrap();
//! let graph = UserGraph::empty(2);
//! let sf0 = DenseMatrix::from_fn(2, 2, |i, j| if i == j { 0.8 } else { 0.2 });
//! let input = TriInput { xp: &xp, xu: &xu, xr: &xr, graph: &graph, sf0: &sf0 };
//! let result = solve_offline(&input, &OfflineConfig { k: 2, ..Default::default() });
//! assert_ne!(result.tweet_labels()[0], result.tweet_labels()[1]);
//! ```

pub mod config;
pub mod error;
pub mod extensions;
pub mod factors;
pub mod input;
pub mod labels;
pub mod objective;
pub mod offline;
pub mod online;
pub mod sharded;
pub mod store;
pub mod updates;
pub mod window;
pub mod workspace;

pub use config::{OfflineConfig, OnlineConfig};
pub use error::{TgsError, TgsErrorKind};
pub use extensions::{solve_guided, Guidance, GuidedConfig};
pub use factors::{InitStrategy, TriFactors};
pub use input::TriInput;
pub use labels::{
    align_clusters_to_classes, hard_labels, label_confidence, membership_distribution,
};
pub use objective::{offline_objective, online_objective, ObjectiveParts};
pub use offline::{
    solve_offline, solve_offline_from, try_solve_offline, try_solve_offline_from, OfflineResult,
};
pub use online::{
    GhostFactor, MigratedUsers, OnlineSolver, OnlineSolverState, OnlineStepResult, SnapshotData,
};
pub use sharded::{
    solve_offline_sharded, try_solve_offline_sharded, try_solve_offline_sharded_with_ghosts,
    GhostRowLink, ShardedOfflineResult, ShardedOnlineSolver, ShardedStepOutcome,
};
pub use store::{decode_matrix, encode_matrix, SnapshotStore};
pub use window::{FactorWindow, HistoryRows, SentimentHistory, UserHistoryRows, UserPartition};
pub use workspace::UpdateWorkspace;

//! The crate-wide error taxonomy.
//!
//! Every fallible library entry point (`try_validate`, `try_solve_offline`,
//! [`crate::OnlineSolver::try_step`], the `tgs-engine` facade, the `tgs`
//! CLI) reports failures as a [`TgsError`]. The taxonomy groups into four
//! families:
//!
//! 1. **Shape violations** — the tripartite matrices disagree on a
//!    dimension ([`TgsError::FeatureDimMismatch`],
//!    [`TgsError::InteractionShapeMismatch`],
//!    [`TgsError::GraphSizeMismatch`], [`TgsError::PriorShapeMismatch`],
//!    [`TgsError::UserIdCountMismatch`]). One variant per cross-matrix
//!    constraint, so callers can react to the exact violated invariant.
//! 2. **Configuration errors** — a solver or engine parameter is out of
//!    its documented domain ([`TgsError::InvalidConfig`]).
//! 3. **Engine lifecycle errors** — the streaming facade's runtime
//!    failures ([`TgsError::EngineClosed`],
//!    [`TgsError::SnapshotUnavailable`], [`TgsError::UnknownUser`],
//!    [`TgsError::CorruptCheckpoint`]).
//! 4. **Front-end errors** — IO and argument problems surfaced by the
//!    CLI ([`TgsError::Io`], [`TgsError::InvalidArgument`]).
//! 5. **Fleet errors** — failures of the distributed shard fleet
//!    ([`TgsError::Net`] for unreachable peers and wire faults,
//!    [`TgsError::StaleTopology`] for requests routed through an
//!    outdated partition map after a rebalance).
//!
//! The legacy panicking entry points (`validate`, `solve_offline`,
//! `OnlineSolver::step`) are retained as thin wrappers that format the
//! same [`TgsError`] into their panic message, so bench binaries and
//! quick scripts keep their ergonomics while library callers get typed
//! errors.

/// Discriminant-only mirror of [`TgsError`], for matching on the error
/// family without destructuring payloads (handy in tests and retry
/// policies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum TgsErrorKind {
    /// See [`TgsError::FeatureDimMismatch`].
    FeatureDimMismatch,
    /// See [`TgsError::InteractionShapeMismatch`].
    InteractionShapeMismatch,
    /// See [`TgsError::GraphSizeMismatch`].
    GraphSizeMismatch,
    /// See [`TgsError::PriorShapeMismatch`].
    PriorShapeMismatch,
    /// See [`TgsError::UserIdCountMismatch`].
    UserIdCountMismatch,
    /// See [`TgsError::InvalidConfig`].
    InvalidConfig,
    /// See [`TgsError::EngineClosed`].
    EngineClosed,
    /// See [`TgsError::SnapshotUnavailable`].
    SnapshotUnavailable,
    /// See [`TgsError::UnknownUser`].
    UnknownUser,
    /// See [`TgsError::CorruptCheckpoint`].
    CorruptCheckpoint,
    /// See [`TgsError::Io`].
    Io,
    /// See [`TgsError::InvalidArgument`].
    InvalidArgument,
    /// See [`TgsError::Net`].
    Net,
    /// See [`TgsError::StaleTopology`].
    StaleTopology,
}

/// A typed failure from any layer of the tripartite-sentiment stack.
#[derive(Debug)]
#[non_exhaustive]
pub enum TgsError {
    /// `Xu` does not share `Xp`'s feature space (`Xu.cols != Xp.cols`).
    FeatureDimMismatch {
        /// Feature count of `Xp` (`l`).
        xp_cols: usize,
        /// Feature count of `Xu`.
        xu_cols: usize,
    },
    /// `Xr` is not `m × n` (users × tweets).
    InteractionShapeMismatch {
        /// The required `(m, n)` shape.
        expected: (usize, usize),
        /// The shape actually provided.
        got: (usize, usize),
    },
    /// The user graph `Gu` does not cover all `m` users.
    GraphSizeMismatch {
        /// Number of users `m` (rows of `Xu`).
        users: usize,
        /// Node count of the provided graph.
        nodes: usize,
    },
    /// The lexicon prior `Sf0` is not `l × k`.
    PriorShapeMismatch {
        /// The required `(l, k)` shape.
        expected: (usize, usize),
        /// The shape actually provided.
        got: (usize, usize),
    },
    /// `SnapshotData::user_ids` does not provide one global id per local
    /// user row.
    UserIdCountMismatch {
        /// Local user rows in the snapshot (`Xu.rows`).
        rows: usize,
        /// Global ids provided.
        ids: usize,
    },
    /// A configuration field is outside its documented domain.
    InvalidConfig {
        /// The offending field, e.g. `"alpha"`.
        field: &'static str,
        /// Human-readable constraint, e.g. `"alpha must be in [0, 1]"`.
        message: String,
    },
    /// The engine's ingest worker has shut down (or panicked); no further
    /// snapshots can be submitted.
    EngineClosed,
    /// No snapshot is recorded under the requested timestamp (never
    /// ingested, or evicted from the bounded store).
    SnapshotUnavailable {
        /// The requested timestamp.
        timestamp: u64,
    },
    /// The queried user has never been observed at or before the
    /// requested time.
    UnknownUser {
        /// The requested global user id.
        user: usize,
    },
    /// A checkpoint byte stream failed structural validation.
    CorruptCheckpoint {
        /// What went wrong while decoding.
        detail: String,
    },
    /// An IO operation failed.
    Io {
        /// What was being attempted, e.g. `"open corpus.tsv"`.
        context: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A user-supplied argument (CLI flag, query parameter, malformed
    /// corpus file) could not be used.
    InvalidArgument {
        /// Human-readable description of the problem.
        message: String,
    },
    /// A network operation against a fleet peer failed (connect, send,
    /// receive, or protocol violation). The peer may be down or
    /// unreachable; the call may be retried once it recovers.
    Net {
        /// The peer address (or role) the operation targeted.
        peer: String,
        /// What went wrong.
        detail: String,
    },
    /// The caller routed through an outdated topology: the request was
    /// stamped with generation `have`, but the shard has already adopted
    /// `current`. Refresh the partition map and retry — handles re-key
    /// lazily on this error instead of misrouting.
    StaleTopology {
        /// The generation the caller routed with.
        have: u64,
        /// The generation the shard is at.
        current: u64,
    },
}

impl TgsError {
    /// The payload-free discriminant of this error.
    pub fn kind(&self) -> TgsErrorKind {
        match self {
            TgsError::FeatureDimMismatch { .. } => TgsErrorKind::FeatureDimMismatch,
            TgsError::InteractionShapeMismatch { .. } => TgsErrorKind::InteractionShapeMismatch,
            TgsError::GraphSizeMismatch { .. } => TgsErrorKind::GraphSizeMismatch,
            TgsError::PriorShapeMismatch { .. } => TgsErrorKind::PriorShapeMismatch,
            TgsError::UserIdCountMismatch { .. } => TgsErrorKind::UserIdCountMismatch,
            TgsError::InvalidConfig { .. } => TgsErrorKind::InvalidConfig,
            TgsError::EngineClosed => TgsErrorKind::EngineClosed,
            TgsError::SnapshotUnavailable { .. } => TgsErrorKind::SnapshotUnavailable,
            TgsError::UnknownUser { .. } => TgsErrorKind::UnknownUser,
            TgsError::CorruptCheckpoint { .. } => TgsErrorKind::CorruptCheckpoint,
            TgsError::Io { .. } => TgsErrorKind::Io,
            TgsError::InvalidArgument { .. } => TgsErrorKind::InvalidArgument,
            TgsError::Net { .. } => TgsErrorKind::Net,
            TgsError::StaleTopology { .. } => TgsErrorKind::StaleTopology,
        }
    }

    /// Convenience constructor for [`TgsError::InvalidArgument`].
    pub fn invalid_argument(message: impl Into<String>) -> Self {
        TgsError::InvalidArgument {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`TgsError::Io`].
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        TgsError::Io {
            context: context.into(),
            source,
        }
    }

    /// Convenience constructor for [`TgsError::CorruptCheckpoint`].
    pub fn corrupt(detail: impl Into<String>) -> Self {
        TgsError::CorruptCheckpoint {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`TgsError::Net`].
    pub fn net(peer: impl Into<String>, detail: impl Into<String>) -> Self {
        TgsError::Net {
            peer: peer.into(),
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for TgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // The shape messages keep the historical assert wording so
            // panic-based call sites (and their tests) stay stable.
            TgsError::FeatureDimMismatch { xp_cols, xu_cols } => write!(
                f,
                "Xu must share Xp's feature space (Xp has {xp_cols} features, Xu has {xu_cols})"
            ),
            TgsError::InteractionShapeMismatch { expected, got } => write!(
                f,
                "Xr must be m × n (expected {}×{}, got {}×{})",
                expected.0, expected.1, got.0, got.1
            ),
            TgsError::GraphSizeMismatch { users, nodes } => write!(
                f,
                "Gu must cover all m users ({nodes} graph nodes for {users} users)"
            ),
            TgsError::PriorShapeMismatch { expected, got } => write!(
                f,
                "Sf0 must be l × k (expected {}×{}, got {}×{})",
                expected.0, expected.1, got.0, got.1
            ),
            TgsError::UserIdCountMismatch { rows, ids } => write!(
                f,
                "one global id per local user row required ({ids} ids for {rows} rows)"
            ),
            TgsError::InvalidConfig { message, .. } => f.write_str(message),
            TgsError::EngineClosed => f.write_str("engine ingest worker has shut down"),
            TgsError::SnapshotUnavailable { timestamp } => {
                write!(f, "no snapshot recorded at timestamp {timestamp}")
            }
            TgsError::UnknownUser { user } => {
                write!(f, "user {user} has no recorded sentiment history")
            }
            TgsError::CorruptCheckpoint { detail } => {
                write!(f, "corrupt checkpoint: {detail}")
            }
            TgsError::Io { context, source } => write!(f, "{context}: {source}"),
            TgsError::InvalidArgument { message } => f.write_str(message),
            TgsError::Net { peer, detail } => {
                write!(f, "network error talking to {peer}: {detail}")
            }
            TgsError::StaleTopology { have, current } => write!(
                f,
                "stale topology: routed with generation {have} but the shard is at {current}"
            ),
        }
    }
}

impl std::error::Error for TgsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TgsError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_preserves_historic_wording() {
        let e = TgsError::PriorShapeMismatch {
            expected: (4, 3),
            got: (4, 2),
        };
        assert!(e.to_string().contains("Sf0 must be l × k"));
        let e = TgsError::FeatureDimMismatch {
            xp_cols: 4,
            xu_cols: 5,
        };
        assert!(e.to_string().contains("Xu must share Xp's feature space"));
        let e = TgsError::GraphSizeMismatch { users: 3, nodes: 2 };
        assert!(e.to_string().contains("Gu must cover all m users"));
        let e = TgsError::InteractionShapeMismatch {
            expected: (2, 3),
            got: (3, 2),
        };
        assert!(e.to_string().contains("Xr must be m × n"));
    }

    #[test]
    fn kinds_match_variants() {
        assert_eq!(TgsError::EngineClosed.kind(), TgsErrorKind::EngineClosed);
        assert_eq!(
            TgsError::invalid_argument("x").kind(),
            TgsErrorKind::InvalidArgument
        );
        assert_eq!(
            TgsError::corrupt("truncated").kind(),
            TgsErrorKind::CorruptCheckpoint
        );
        assert_eq!(
            TgsError::net("127.0.0.1:9000", "connection refused").kind(),
            TgsErrorKind::Net
        );
        assert_eq!(
            TgsError::StaleTopology {
                have: 1,
                current: 3
            }
            .kind(),
            TgsErrorKind::StaleTopology
        );
    }

    #[test]
    fn io_errors_expose_source() {
        use std::error::Error as _;
        let e = TgsError::io(
            "open corpus.tsv",
            std::io::Error::new(std::io::ErrorKind::NotFound, "nope"),
        );
        assert!(e.source().is_some());
        assert!(e.to_string().starts_with("open corpus.tsv"));
    }
}

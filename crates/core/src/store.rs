//! Bounded snapshot store: compact serialization of factor matrices.
//!
//! The paper stresses that the online algorithm runs with "limited memory
//! usage" — only the decayed window of past results is retained. This
//! store backs that claim operationally: factor snapshots are serialized
//! to compact byte buffers and evicted FIFO beyond a configurable budget,
//! so long streams cannot grow memory without bound.

use std::collections::VecDeque;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tgs_linalg::DenseMatrix;

/// Serializes a dense matrix: `rows: u64 | cols: u64 | data: f64-LE…`.
pub fn encode_matrix(m: &DenseMatrix) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + 8 * m.as_slice().len());
    buf.put_u64_le(m.rows() as u64);
    buf.put_u64_le(m.cols() as u64);
    for &v in m.as_slice() {
        buf.put_f64_le(v);
    }
    buf.freeze()
}

/// Inverse of [`encode_matrix`]. Returns `None` on malformed input.
pub fn decode_matrix(mut bytes: Bytes) -> Option<DenseMatrix> {
    if bytes.len() < 16 {
        return None;
    }
    let rows = bytes.get_u64_le() as usize;
    let cols = bytes.get_u64_le() as usize;
    let expected = rows.checked_mul(cols)?.checked_mul(8)?;
    if bytes.len() != expected {
        return None;
    }
    let mut data = Vec::with_capacity(rows * cols);
    while bytes.remaining() >= 8 {
        data.push(bytes.get_f64_le());
    }
    DenseMatrix::from_vec(rows, cols, data).ok()
}

/// A FIFO store of factor snapshots keyed by timestamp, bounded by a byte
/// budget.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    budget_bytes: usize,
    used_bytes: usize,
    entries: VecDeque<(u64, Bytes)>,
}

impl SnapshotStore {
    /// Creates a store with the given byte budget.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            budget_bytes,
            used_bytes: 0,
            entries: VecDeque::new(),
        }
    }

    /// Number of retained snapshots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently used.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Stores a matrix under `timestamp`, evicting the oldest snapshots
    /// until the budget is met. Re-putting an existing timestamp
    /// *overwrites* it in place (the old entry's bytes are released, not
    /// double-counted). A single snapshot larger than the whole budget is
    /// still stored (the budget then holds exactly one entry).
    pub fn put(&mut self, timestamp: u64, matrix: &DenseMatrix) {
        let encoded = encode_matrix(matrix);
        if let Some(slot) = self.entries.iter_mut().find(|(t, _)| *t == timestamp) {
            self.used_bytes -= slot.1.len();
            self.used_bytes += encoded.len();
            slot.1 = encoded;
        } else {
            self.used_bytes += encoded.len();
            self.entries.push_back((timestamp, encoded));
        }
        while self.used_bytes > self.budget_bytes && self.entries.len() > 1 {
            if let Some((_, old)) = self.entries.pop_front() {
                self.used_bytes -= old.len();
            }
        }
    }

    /// Retrieves and decodes the snapshot stored under `timestamp`.
    pub fn get(&self, timestamp: u64) -> Option<DenseMatrix> {
        self.entries
            .iter()
            .find(|(t, _)| *t == timestamp)
            .and_then(|(_, b)| decode_matrix(b.clone()))
    }

    /// Timestamps currently retained, in ascending timestamp order
    /// (insertion order governs eviction, not this listing).
    pub fn timestamps(&self) -> Vec<u64> {
        let mut ts: Vec<u64> = self.entries.iter().map(|(t, _)| *t).collect();
        ts.sort_unstable();
        ts
    }

    /// The most recent retained snapshot (largest timestamp), decoded.
    pub fn latest(&self) -> Option<(u64, DenseMatrix)> {
        self.entries
            .iter()
            .max_by_key(|(t, _)| *t)
            .and_then(|(t, b)| decode_matrix(b.clone()).map(|m| (*t, m)))
    }

    /// Iterates the retained `(timestamp, encoded bytes)` entries in
    /// insertion (eviction) order. `Bytes` clones are cheap reference
    /// bumps; decode on demand with [`decode_matrix`].
    pub fn iter(&self) -> impl Iterator<Item = (u64, Bytes)> + '_ {
        self.entries.iter().map(|(t, b)| (*t, b.clone()))
    }

    /// Removes the snapshot stored under `timestamp`, returning whether
    /// one was present. No eviction runs (removal only frees budget) —
    /// this is the raw half of delta-checkpoint reconciliation, where a
    /// base store is edited into an exact target store.
    pub fn remove(&mut self, timestamp: u64) -> bool {
        if let Some(pos) = self.entries.iter().position(|(t, _)| *t == timestamp) {
            if let Some((_, old)) = self.entries.remove(pos) {
                self.used_bytes -= old.len();
            }
            true
        } else {
            false
        }
    }

    /// Stores pre-encoded snapshot bytes under `timestamp` with the same
    /// overwrite/eviction semantics as [`SnapshotStore::put`] — the
    /// append half of delta-checkpoint reconciliation, replaying the
    /// bytes another store produced without a decode/encode round trip.
    pub fn push_encoded(&mut self, timestamp: u64, encoded: Bytes) {
        if let Some(slot) = self.entries.iter_mut().find(|(t, _)| *t == timestamp) {
            self.used_bytes -= slot.1.len();
            self.used_bytes += encoded.len();
            slot.1 = encoded;
        } else {
            self.used_bytes += encoded.len();
            self.entries.push_back((timestamp, encoded));
        }
        while self.used_bytes > self.budget_bytes && self.entries.len() > 1 {
            if let Some((_, old)) = self.entries.pop_front() {
                self.used_bytes -= old.len();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact() {
        let m = DenseMatrix::from_vec(2, 3, vec![1.5, -2.0, 0.0, 3.25, 1e-9, 7.0]).unwrap();
        let decoded = decode_matrix(encode_matrix(&m)).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_matrix(Bytes::from_static(b"oops")).is_none());
        // header claims more data than present
        let mut buf = BytesMut::new();
        buf.put_u64_le(10);
        buf.put_u64_le(10);
        buf.put_f64_le(1.0);
        assert!(decode_matrix(buf.freeze()).is_none());
    }

    #[test]
    fn store_put_get() {
        let mut store = SnapshotStore::new(1 << 20);
        let m = DenseMatrix::filled(4, 3, 0.25);
        store.put(7, &m);
        assert_eq!(store.get(7).unwrap(), m);
        assert!(store.get(8).is_none());
    }

    #[test]
    fn store_evicts_oldest_beyond_budget() {
        // each 1×1 matrix costs 16 + 8 = 24 bytes
        let mut store = SnapshotStore::new(60);
        store.put(1, &DenseMatrix::filled(1, 1, 1.0));
        store.put(2, &DenseMatrix::filled(1, 1, 2.0));
        store.put(3, &DenseMatrix::filled(1, 1, 3.0));
        assert_eq!(store.timestamps(), vec![2, 3]);
        assert!(store.get(1).is_none());
        assert!(store.used_bytes() <= 60);
    }

    #[test]
    fn put_overwrites_existing_timestamp() {
        let mut store = SnapshotStore::new(1 << 20);
        store.put(5, &DenseMatrix::filled(1, 1, 1.0));
        let used_once = store.used_bytes();
        store.put(5, &DenseMatrix::filled(1, 1, 9.0));
        assert_eq!(store.len(), 1, "re-put must not duplicate the entry");
        assert_eq!(store.used_bytes(), used_once, "bytes must not double-count");
        assert_eq!(store.get(5).unwrap().get(0, 0), 9.0);
    }

    #[test]
    fn timestamps_sorted_latest_and_iter() {
        let mut store = SnapshotStore::new(1 << 20);
        store.put(9, &DenseMatrix::filled(1, 1, 9.0));
        store.put(3, &DenseMatrix::filled(1, 1, 3.0));
        store.put(6, &DenseMatrix::filled(1, 1, 6.0));
        assert_eq!(store.timestamps(), vec![3, 6, 9]);
        let (t, m) = store.latest().unwrap();
        assert_eq!(t, 9);
        assert_eq!(m.get(0, 0), 9.0);
        // iter preserves insertion order and round-trips through decode
        let decoded: Vec<(u64, f64)> = store
            .iter()
            .map(|(t, b)| (t, decode_matrix(b).unwrap().get(0, 0)))
            .collect();
        assert_eq!(decoded, vec![(9, 9.0), (3, 3.0), (6, 6.0)]);
    }

    #[test]
    fn remove_and_push_encoded_reconcile_exactly() {
        let mut a = SnapshotStore::new(1 << 20);
        a.put(1, &DenseMatrix::filled(1, 1, 1.0));
        a.put(2, &DenseMatrix::filled(1, 1, 2.0));
        a.put(3, &DenseMatrix::filled(1, 1, 3.0));
        let mut b = SnapshotStore::new(1 << 20);
        b.put(2, &DenseMatrix::filled(1, 1, 2.0));
        b.put(3, &DenseMatrix::filled(1, 1, 3.0));
        b.put(4, &DenseMatrix::filled(1, 1, 4.0));
        // Edit `a` into `b`: drop 1, append 4's encoded bytes.
        assert!(a.remove(1));
        assert!(!a.remove(1), "second removal is a no-op");
        let appended: Vec<(u64, Bytes)> = b.iter().filter(|(t, _)| *t == 4).collect();
        for (t, bytes) in appended {
            a.push_encoded(t, bytes);
        }
        let av: Vec<(u64, Bytes)> = a.iter().collect();
        let bv: Vec<(u64, Bytes)> = b.iter().collect();
        assert_eq!(av, bv, "reconciled store matches entry-for-entry");
        assert_eq!(a.used_bytes(), b.used_bytes());
    }

    #[test]
    fn push_encoded_evicts_like_put() {
        // each 1×1 matrix costs 16 + 8 = 24 bytes
        let mut store = SnapshotStore::new(60);
        for t in 1..=3u64 {
            store.push_encoded(t, encode_matrix(&DenseMatrix::filled(1, 1, t as f64)));
        }
        assert_eq!(store.timestamps(), vec![2, 3]);
        assert!(store.used_bytes() <= 60);
    }

    #[test]
    fn store_keeps_oversized_single_entry() {
        let mut store = SnapshotStore::new(8);
        store.put(1, &DenseMatrix::filled(10, 10, 1.0));
        assert_eq!(store.len(), 1);
        assert!(store.get(1).is_some());
    }
}

//! Bounded snapshot store: compact serialization of factor matrices.
//!
//! The paper stresses that the online algorithm runs with "limited memory
//! usage" — only the decayed window of past results is retained. This
//! store backs that claim operationally: factor snapshots are serialized
//! to compact byte buffers and evicted FIFO beyond a configurable budget,
//! so long streams cannot grow memory without bound.

use std::collections::VecDeque;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tgs_linalg::DenseMatrix;

/// Serializes a dense matrix: `rows: u64 | cols: u64 | data: f64-LE…`.
pub fn encode_matrix(m: &DenseMatrix) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + 8 * m.as_slice().len());
    buf.put_u64_le(m.rows() as u64);
    buf.put_u64_le(m.cols() as u64);
    for &v in m.as_slice() {
        buf.put_f64_le(v);
    }
    buf.freeze()
}

/// Inverse of [`encode_matrix`]. Returns `None` on malformed input.
pub fn decode_matrix(mut bytes: Bytes) -> Option<DenseMatrix> {
    if bytes.len() < 16 {
        return None;
    }
    let rows = bytes.get_u64_le() as usize;
    let cols = bytes.get_u64_le() as usize;
    let expected = rows.checked_mul(cols)?.checked_mul(8)?;
    if bytes.len() != expected {
        return None;
    }
    let mut data = Vec::with_capacity(rows * cols);
    while bytes.remaining() >= 8 {
        data.push(bytes.get_f64_le());
    }
    DenseMatrix::from_vec(rows, cols, data).ok()
}

/// A FIFO store of factor snapshots keyed by timestamp, bounded by a byte
/// budget.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    budget_bytes: usize,
    used_bytes: usize,
    entries: VecDeque<(u64, Bytes)>,
}

impl SnapshotStore {
    /// Creates a store with the given byte budget.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            budget_bytes,
            used_bytes: 0,
            entries: VecDeque::new(),
        }
    }

    /// Number of retained snapshots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently used.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Stores a matrix under `timestamp`, evicting the oldest snapshots
    /// until the budget is met. A single snapshot larger than the whole
    /// budget is still stored (the budget then holds exactly one entry).
    pub fn put(&mut self, timestamp: u64, matrix: &DenseMatrix) {
        let encoded = encode_matrix(matrix);
        self.used_bytes += encoded.len();
        self.entries.push_back((timestamp, encoded));
        while self.used_bytes > self.budget_bytes && self.entries.len() > 1 {
            if let Some((_, old)) = self.entries.pop_front() {
                self.used_bytes -= old.len();
            }
        }
    }

    /// Retrieves and decodes the snapshot stored under `timestamp`.
    pub fn get(&self, timestamp: u64) -> Option<DenseMatrix> {
        self.entries
            .iter()
            .find(|(t, _)| *t == timestamp)
            .and_then(|(_, b)| decode_matrix(b.clone()))
    }

    /// Timestamps currently retained, oldest first.
    pub fn timestamps(&self) -> Vec<u64> {
        self.entries.iter().map(|(t, _)| *t).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact() {
        let m = DenseMatrix::from_vec(2, 3, vec![1.5, -2.0, 0.0, 3.25, 1e-9, 7.0]).unwrap();
        let decoded = decode_matrix(encode_matrix(&m)).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_matrix(Bytes::from_static(b"oops")).is_none());
        // header claims more data than present
        let mut buf = BytesMut::new();
        buf.put_u64_le(10);
        buf.put_u64_le(10);
        buf.put_f64_le(1.0);
        assert!(decode_matrix(buf.freeze()).is_none());
    }

    #[test]
    fn store_put_get() {
        let mut store = SnapshotStore::new(1 << 20);
        let m = DenseMatrix::filled(4, 3, 0.25);
        store.put(7, &m);
        assert_eq!(store.get(7).unwrap(), m);
        assert!(store.get(8).is_none());
    }

    #[test]
    fn store_evicts_oldest_beyond_budget() {
        // each 1×1 matrix costs 16 + 8 = 24 bytes
        let mut store = SnapshotStore::new(60);
        store.put(1, &DenseMatrix::filled(1, 1, 1.0));
        store.put(2, &DenseMatrix::filled(1, 1, 2.0));
        store.put(3, &DenseMatrix::filled(1, 1, 3.0));
        assert_eq!(store.timestamps(), vec![2, 3]);
        assert!(store.get(1).is_none());
        assert!(store.used_bytes() <= 60);
    }

    #[test]
    fn store_keeps_oversized_single_entry() {
        let mut store = SnapshotStore::new(8);
        store.put(1, &DenseMatrix::filled(10, 10, 1.0));
        assert_eq!(store.len(), 1);
        assert!(store.get(1).is_some());
    }
}

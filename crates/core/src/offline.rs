//! Algorithm 1: the offline tri-clustering solver.

use crate::config::OfflineConfig;
use crate::error::TgsError;
use crate::factors::TriFactors;
use crate::input::TriInput;
use crate::objective::{offline_objective, ObjectiveParts};
use crate::workspace::UpdateWorkspace;

/// Result of an offline solve.
#[derive(Debug, Clone)]
pub struct OfflineResult {
    /// The converged factor matrices.
    pub factors: TriFactors,
    /// Per-iteration objective decomposition (empty unless
    /// `track_objective`; index 0 is the initial value).
    pub history: Vec<ObjectiveParts>,
    /// Iterations actually run.
    pub iterations: usize,
    /// Whether the tolerance was met before `max_iters`.
    pub converged: bool,
    /// Final objective value.
    pub objective: f64,
}

impl OfflineResult {
    /// Hard tweet labels (argmax of `Sp`).
    pub fn tweet_labels(&self) -> Vec<usize> {
        self.factors.tweet_labels()
    }

    /// Hard user labels (argmax of `Su`).
    pub fn user_labels(&self) -> Vec<usize> {
        self.factors.user_labels()
    }
}

/// Runs Algorithm 1: iterate the multiplicative updates (Sp, Hp, Su, Hu,
/// Sf — the paper's line order) until the relative objective change drops
/// below `tol` or `max_iters` is reached. Malformed configurations and
/// inputs are reported as the matching [`TgsError`] variant.
pub fn try_solve_offline(
    input: &TriInput<'_>,
    config: &OfflineConfig,
) -> Result<OfflineResult, TgsError> {
    config.try_validate()?;
    input.try_validate(config.k)?;
    let mut factors = TriFactors::init(
        input.n(),
        input.m(),
        input.l(),
        config.k,
        input.sf0,
        config.init,
        config.seed,
    );
    let mut workspace = UpdateWorkspace::new();
    workspace.bind(input);
    workspace.balance_init_scales(input, &mut factors);
    Ok(solve_with_workspace(input, config, factors, &mut workspace))
}

/// Panicking wrapper around [`try_solve_offline`], kept for the bench
/// binaries and quick scripts.
pub fn solve_offline(input: &TriInput<'_>, config: &OfflineConfig) -> OfflineResult {
    try_solve_offline(input, config).unwrap_or_else(|e| panic!("{e}"))
}

/// Same as [`try_solve_offline`] but starting from caller-provided
/// factors (used by warm starts and the full-batch baseline).
pub fn try_solve_offline_from(
    input: &TriInput<'_>,
    config: &OfflineConfig,
    factors: TriFactors,
) -> Result<OfflineResult, TgsError> {
    config.try_validate()?;
    input.try_validate(config.k)?;
    let mut workspace = UpdateWorkspace::new();
    workspace.bind(input);
    Ok(solve_with_workspace(input, config, factors, &mut workspace))
}

/// Panicking wrapper around [`try_solve_offline_from`].
pub fn solve_offline_from(
    input: &TriInput<'_>,
    config: &OfflineConfig,
    factors: TriFactors,
) -> OfflineResult {
    try_solve_offline_from(input, config, factors).unwrap_or_else(|e| panic!("{e}"))
}

/// The shared iteration loop: sweeps run through the fused
/// [`UpdateWorkspace`] engine (bit-identical to the reference rules in
/// [`crate::updates`], without their per-rule allocations and redundant
/// shared products).
fn solve_with_workspace(
    input: &TriInput<'_>,
    config: &OfflineConfig,
    mut factors: TriFactors,
    workspace: &mut UpdateWorkspace,
) -> OfflineResult {
    let mut history = Vec::new();
    let mut prev = offline_objective(input, &factors, config.alpha, config.beta);
    if config.track_objective {
        history.push(prev);
    }
    let mut converged = false;
    let mut iterations = 0;
    for it in 0..config.max_iters {
        workspace.sweep_offline(input, &mut factors, config.alpha, config.beta, input.sf0);
        iterations = it + 1;

        // One objective evaluation per iteration: reused for both history
        // and the convergence check. Evaluated through the workspace's
        // cached sweep products (agrees with `offline_objective` to
        // ~1e-12 relative) — the from-scratch evaluation used to cost as
        // much as a third of the whole iteration.
        let cur = workspace.objective_offline(input, &factors, config.alpha, config.beta);
        if config.track_objective {
            history.push(cur);
        }
        let denom = prev.total().abs().max(1.0);
        if (prev.total() - cur.total()).abs() / denom < config.tol {
            prev = cur;
            converged = true;
            break;
        }
        prev = cur;
    }
    debug_assert!(
        factors.all_nonnegative(),
        "updates must preserve non-negativity"
    );
    OfflineResult {
        factors,
        history,
        iterations,
        converged,
        objective: prev.total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factors::InitStrategy;
    use rand::RngExt;
    use tgs_graph::UserGraph;
    use tgs_linalg::{seeded_rng, CsrMatrix, DenseMatrix};

    /// Builds a planted two-cluster instance: tweets/users/features split
    /// into two blocks with strong within-block signal.
    fn planted(seed: u64) -> (CsrMatrix, CsrMatrix, CsrMatrix, UserGraph, DenseMatrix) {
        let mut rng = seeded_rng(seed);
        let (n, m, l) = (30, 10, 16);
        let mut xp = Vec::new();
        let mut xu = Vec::new();
        let mut xr = Vec::new();
        let mut edges = Vec::new();
        // tweet i belongs to cluster i % 2; user j to cluster j % 2;
        // feature f to cluster f % 2.
        for i in 0..n {
            let c = i % 2;
            for _ in 0..5 {
                let f = 2 * rng.random_range(0..l / 2) + c;
                xp.push((i, f, 1.0 + rng.random_range(0.0..0.5)));
            }
            // author: user with same parity
            let author = 2 * rng.random_range(0..m / 2) + c;
            xr.push((author, i, 1.0));
        }
        for j in 0..m {
            let c = j % 2;
            for _ in 0..8 {
                let f = 2 * rng.random_range(0..l / 2) + c;
                xu.push((j, f, 1.0 + rng.random_range(0.0..0.5)));
            }
            // homophilous edges
            let peer = 2 * rng.random_range(0..m / 2) + c;
            if peer != j {
                edges.push((j, peer, 1.0));
            }
        }
        let xp = CsrMatrix::from_triplets(n, l, &xp).unwrap();
        let xu = CsrMatrix::from_triplets(m, l, &xu).unwrap();
        let xr = CsrMatrix::from_triplets(m, n, &xr).unwrap();
        let graph = UserGraph::from_edges(m, &edges);
        // lexicon prior: knows half the features
        let sf0 = DenseMatrix::from_fn(l, 2, |f, j| {
            if f < l / 2 {
                if f % 2 == j {
                    0.9
                } else {
                    0.1
                }
            } else {
                0.5
            }
        });
        (xp, xu, xr, graph, sf0)
    }

    fn config(k: usize) -> OfflineConfig {
        OfflineConfig {
            k,
            max_iters: 150,
            tol: 1e-7,
            track_objective: true,
            ..Default::default()
        }
    }

    #[test]
    fn objective_monotone_and_converges() {
        let (xp, xu, xr, graph, sf0) = planted(1);
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let result = solve_offline(&input, &config(2));
        assert!(result.iterations > 1);
        for w in result.history.windows(2) {
            assert!(
                w[1].total() <= w[0].total() * (1.0 + 1e-6) + 1e-9,
                "objective must be non-increasing: {} -> {}",
                w[0].total(),
                w[1].total()
            );
        }
        assert!(result.factors.all_nonnegative());
    }

    #[test]
    fn recovers_planted_clusters() {
        let (xp, xu, xr, graph, sf0) = planted(2);
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let result = solve_offline(&input, &config(2));
        let tweet_truth: Vec<usize> = (0..30).map(|i| i % 2).collect();
        let user_truth: Vec<usize> = (0..10).map(|j| j % 2).collect();
        let t_acc = tgs_eval::clustering_accuracy(&result.tweet_labels(), &tweet_truth);
        let u_acc = tgs_eval::clustering_accuracy(&result.user_labels(), &user_truth);
        assert!(t_acc > 0.9, "tweet accuracy {t_acc}");
        assert!(u_acc > 0.9, "user accuracy {u_acc}");
    }

    #[test]
    fn random_init_also_works() {
        let (xp, xu, xr, graph, sf0) = planted(3);
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let cfg = OfflineConfig {
            init: InitStrategy::Random,
            ..config(2)
        };
        let result = solve_offline(&input, &cfg);
        let tweet_truth: Vec<usize> = (0..30).map(|i| i % 2).collect();
        let t_acc = tgs_eval::clustering_accuracy(&result.tweet_labels(), &tweet_truth);
        assert!(t_acc > 0.8, "tweet accuracy {t_acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (xp, xu, xr, graph, sf0) = planted(4);
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let a = solve_offline(&input, &config(2));
        let b = solve_offline(&input, &config(2));
        assert_eq!(a.iterations, b.iterations);
        assert!(a.factors.su.max_abs_diff(&b.factors.su) == 0.0);
    }

    #[test]
    fn early_stopping_with_loose_tolerance() {
        let (xp, xu, xr, graph, sf0) = planted(5);
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let cfg = OfflineConfig {
            tol: 0.05,
            ..config(2)
        };
        let result = solve_offline(&input, &cfg);
        assert!(result.converged);
        assert!(result.iterations < 150);
    }

    #[test]
    fn history_disabled_by_default() {
        let (xp, xu, xr, graph, sf0) = planted(6);
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let cfg = OfflineConfig {
            k: 2,
            ..Default::default()
        };
        let result = solve_offline(&input, &cfg);
        assert!(result.history.is_empty());
        assert!(result.objective.is_finite());
    }
}

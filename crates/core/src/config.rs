//! Solver configurations.

use crate::error::TgsError;
use crate::factors::InitStrategy;

/// Builds the [`TgsError::InvalidConfig`] for a failed bound check.
fn config_err(field: &'static str, message: impl Into<String>) -> TgsError {
    TgsError::InvalidConfig {
        field,
        message: message.into(),
    }
}

fn check(ok: bool, field: &'static str, message: &str) -> Result<(), TgsError> {
    if ok {
        Ok(())
    } else {
        Err(config_err(field, message))
    }
}

/// Configuration of the offline solver (Algorithm 1).
#[derive(Debug, Clone)]
pub struct OfflineConfig {
    /// Number of sentiment clusters `k` (2 or 3 in the paper).
    pub k: usize,
    /// Lexicon-regularization weight `α ∈ [0, 1]` (Eq. 5). The paper's
    /// balanced choice for offline experiments is 0.05.
    pub alpha: f64,
    /// Graph-regularization weight `β ∈ [0, 1]` (Eq. 6); paper uses 0.8.
    pub beta: f64,
    /// Iteration cap (the paper observes convergence within 10–100).
    pub max_iters: usize,
    /// Relative objective-change tolerance for early stopping.
    pub tol: f64,
    /// RNG seed for factor initialization.
    pub seed: u64,
    /// Factor initialization strategy.
    pub init: InitStrategy,
    /// Record the per-component objective after every iteration
    /// (needed by Fig. 8; costs one extra objective evaluation per
    /// iteration).
    pub track_objective: bool,
}

impl Default for OfflineConfig {
    fn default() -> Self {
        Self {
            k: 3,
            alpha: 0.05,
            beta: 0.8,
            max_iters: 100,
            tol: 1e-5,
            seed: 42,
            init: InitStrategy::default(),
            track_objective: false,
        }
    }
}

impl OfflineConfig {
    /// Checks every field against its documented domain, reporting the
    /// first violation as [`TgsError::InvalidConfig`].
    pub fn try_validate(&self) -> Result<(), TgsError> {
        check(
            self.k >= 2,
            "k",
            &format!("need at least two clusters, got {}", self.k),
        )?;
        check(
            (0.0..=1.0).contains(&self.alpha),
            "alpha",
            "alpha must be in [0, 1]",
        )?;
        check(
            (0.0..=1.0).contains(&self.beta),
            "beta",
            "beta must be in [0, 1]",
        )?;
        check(
            self.max_iters > 0,
            "max_iters",
            "max_iters must be positive",
        )?;
        check(self.tol >= 0.0, "tol", "tol must be non-negative")
    }

    /// Panicking wrapper around [`OfflineConfig::try_validate`].
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }
}

/// Configuration of the online solver (Algorithm 2).
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Number of clusters.
    pub k: usize,
    /// Temporal feature-regularization weight `α` (pulls `Sf(t)` toward
    /// `Sfw(t)`); paper's best online value is 0.9.
    pub alpha: f64,
    /// Graph-regularization weight `β`; paper keeps 0.8 online.
    pub beta: f64,
    /// Temporal user-regularization weight `γ` (pulls evolving users
    /// toward `Suw(t)`); paper's best is 0.2.
    pub gamma: f64,
    /// Time-decay factor `τ ∈ (0, 1]` of the window aggregation;
    /// paper's best is 0.9.
    pub tau: f64,
    /// Window size `w` (the paper uses `w = 2` with daily timestamps:
    /// aggregate the previous `w − 1` snapshots).
    pub window: usize,
    /// Normalize `Sfw`/`Suw` by `Σ τ^i` so the temporal target keeps the
    /// scale of a single snapshot. Default **false** — the paper's
    /// definition is unnormalized, and with `w = 2` normalization would
    /// cancel τ entirely (ablated in the benches).
    pub normalize_window: bool,
    /// Iteration cap per snapshot.
    pub max_iters: usize,
    /// Relative objective-change tolerance.
    pub tol: f64,
    /// RNG seed.
    pub seed: u64,
    /// Initialization for the *first* snapshot (later snapshots are
    /// warm-started from the window per Algorithm 2 line 1).
    pub init: InitStrategy,
    /// Record per-component objectives each iteration.
    pub track_objective: bool,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            k: 3,
            alpha: 0.9,
            beta: 0.8,
            gamma: 0.2,
            tau: 0.9,
            window: 2,
            normalize_window: false,
            max_iters: 60,
            tol: 1e-5,
            seed: 42,
            init: InitStrategy::default(),
            track_objective: false,
        }
    }
}

impl OnlineConfig {
    /// Checks every field against its documented domain, reporting the
    /// first violation as [`TgsError::InvalidConfig`].
    pub fn try_validate(&self) -> Result<(), TgsError> {
        check(
            self.k >= 2,
            "k",
            &format!("need at least two clusters, got {}", self.k),
        )?;
        check(
            (0.0..=1.0).contains(&self.alpha),
            "alpha",
            "alpha must be in [0, 1]",
        )?;
        check(
            (0.0..=1.0).contains(&self.beta),
            "beta",
            "beta must be in [0, 1]",
        )?;
        check(
            (0.0..=1.0).contains(&self.gamma),
            "gamma",
            "gamma must be in [0, 1]",
        )?;
        check(
            self.tau > 0.0 && self.tau <= 1.0,
            "tau",
            "tau must be in (0, 1]",
        )?;
        check(self.window >= 1, "window", "window must be >= 1")?;
        check(
            self.max_iters > 0,
            "max_iters",
            "max_iters must be positive",
        )?;
        check(self.tol >= 0.0, "tol", "tol must be non-negative")
    }

    /// Panicking wrapper around [`OnlineConfig::try_validate`].
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// The offline-equivalent settings used for the first snapshot.
    pub fn first_snapshot_offline(&self) -> OfflineConfig {
        OfflineConfig {
            k: self.k,
            alpha: self.alpha,
            beta: self.beta,
            max_iters: self.max_iters,
            tol: self.tol,
            seed: self.seed,
            init: self.init,
            track_objective: self.track_objective,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        OfflineConfig::default().validate();
        OnlineConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0, 1]")]
    fn offline_bad_alpha() {
        OfflineConfig {
            alpha: 2.0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "tau must be in (0, 1]")]
    fn online_bad_tau() {
        OnlineConfig {
            tau: 0.0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn first_snapshot_inherits_parameters() {
        let on = OnlineConfig {
            alpha: 0.3,
            beta: 0.5,
            k: 2,
            ..Default::default()
        };
        let off = on.first_snapshot_offline();
        assert_eq!(off.alpha, 0.3);
        assert_eq!(off.beta, 0.5);
        assert_eq!(off.k, 2);
    }
}

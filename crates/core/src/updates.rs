//! The multiplicative update rules (Eqs. 7, 9, 11, 12, 13 offline;
//! Eqs. 20–24, 26 online).
//!
//! Every rule has the form `S ← S ∘ sqrt(num / den)` where all terms of
//! `num` and `den` are non-negative by construction (the orthogonality
//! multiplier `Δ` is split as `Δ = Δ⁺ − Δ⁻`). Each update is proven in the
//! paper (via an auxiliary MM function) to not increase the objective —
//! property-tested here.

use tgs_linalg::{mult_update, split_pos_neg, DenseMatrix};

use crate::factors::TriFactors;
use crate::input::TriInput;

/// Balances freshly initialized factors against the data scales: `Sp`
/// absorbs `‖Xr‖` (via `Xr ≈ Su·Spᵀ`), then `Hp` absorbs `‖Xp‖` and `Hu`
/// absorbs `‖Xu‖`. Without this, a random init can reconstruct at 100×
/// the data norm and the square-root multiplicative updates overshoot
/// violently (transients of 1e200+ were observed) before recovering.
pub fn balance_init_scales(input: &TriInput<'_>, f: &mut TriFactors) {
    const EPS: f64 = 1e-12;
    let xr_norm = input.xr.frobenius_sq().sqrt();
    let rec = f.su.gram().frobenius_inner(&f.sp.gram()).max(0.0).sqrt();
    if xr_norm > EPS && rec > EPS {
        f.sp.scale_in_place(xr_norm / rec);
    }
    let xp_norm = input.xp.frobenius_sq().sqrt();
    let a = f.sp.matmul(&f.hp);
    let rec = a.gram().frobenius_inner(&f.sf.gram()).max(0.0).sqrt();
    if xp_norm > EPS && rec > EPS {
        f.hp.scale_in_place(xp_norm / rec);
    }
    let xu_norm = input.xu.frobenius_sq().sqrt();
    let b = f.su.matmul(&f.hu);
    let rec = b.gram().frobenius_inner(&f.sf.gram()).max(0.0).sqrt();
    if xu_norm > EPS && rec > EPS {
        f.hu.scale_in_place(xu_norm / rec);
    }
}

/// Writes `diag(scale)·M` into `out` (row `i` of `m` scaled by
/// `scale[i]`), reusing `out`'s allocation — no clone of the source.
fn row_scale_into(m: &DenseMatrix, scale: &[f64], out: &mut DenseMatrix) {
    assert_eq!(m.rows(), scale.len(), "row_scale length mismatch");
    let (rows, cols) = m.shape();
    out.resize_zeroed(rows, cols);
    let (mv, ov) = (m.as_slice(), out.as_mut_slice());
    for (i, &s) in scale.iter().enumerate() {
        for j in 0..cols {
            ov[i * cols + j] = mv[i * cols + j] * s;
        }
    }
}

/// Allocating convenience over [`row_scale_into`].
fn row_scale(m: &DenseMatrix, scale: &[f64]) -> DenseMatrix {
    let mut out = DenseMatrix::default();
    row_scale_into(m, scale, &mut out);
    out
}

/// Eq. (9) / Eq. (22): update of the tweet–cluster matrix `Sp`.
pub fn update_sp(input: &TriInput<'_>, f: &mut TriFactors) {
    // A = Xp·Sf·Hpᵀ (n × k), C = Xrᵀ·Su (n × k)
    let a = input.xp.mul_dense(&f.sf).matmul_transpose(&f.hp);
    let c = input.xr.transpose_mul_dense(&f.su);
    // k × k pieces
    let hp_sfsf_hp = f.hp.matmul(&f.sf.gram()).matmul_transpose(&f.hp);
    let su_gram = f.su.gram();
    // Δ_Sp = Spᵀ·A + Spᵀ·C − Hp·SfᵀSf·Hpᵀ − SuᵀSu
    let delta =
        f.sp.transpose_matmul(&a)
            .add(&f.sp.transpose_matmul(&c))
            .sub(&hp_sfsf_hp)
            .sub(&su_gram);
    let (dp, dm) = split_pos_neg(&delta);
    let num = a.add(&c).add(&f.sp.matmul(&dm));
    let den = f.sp.matmul(&hp_sfsf_hp.add(&su_gram).add(&dp));
    mult_update(&mut f.sp, &num, &den);
}

/// Eq. (12) / Eq. (21): update of the tweet-side association matrix `Hp`.
pub fn update_hp(input: &TriInput<'_>, f: &mut TriFactors) {
    let xp_sf = input.xp.mul_dense(&f.sf); // n × k
    let num = f.sp.transpose_matmul(&xp_sf); // k × k
    let den = f.sp.gram().matmul(&f.hp).matmul(&f.sf.gram());
    mult_update(&mut f.hp, &num, &den);
}

/// Eq. (13) / Eq. (20): update of the user-side association matrix `Hu`.
pub fn update_hu(input: &TriInput<'_>, f: &mut TriFactors) {
    let xu_sf = input.xu.mul_dense(&f.sf); // m × k
    let num = f.su.transpose_matmul(&xu_sf);
    let den = f.su.gram().matmul(&f.hu).matmul(&f.sf.gram());
    mult_update(&mut f.hu, &num, &den);
}

/// Eq. (7) offline (`sf_target = Sf0`) / Eq. (23) online
/// (`sf_target = Sfw(t)`): update of the feature–cluster matrix `Sf`.
pub fn update_sf(input: &TriInput<'_>, f: &mut TriFactors, alpha: f64, sf_target: &DenseMatrix) {
    // Xuᵀ·Su·Hu and Xpᵀ·Sp·Hp (both l × k)
    let xu_su_hu = input.xu.transpose_mul_dense(&f.su).matmul(&f.hu);
    let xp_sp_hp = input.xp.transpose_mul_dense(&f.sp).matmul(&f.hp);
    // k × k pieces
    let hu_susu_hu = f.hu.transpose().matmul(&f.su.gram()).matmul(&f.hu);
    let hp_spsp_hp = f.hp.transpose().matmul(&f.sp.gram()).matmul(&f.hp);
    // Δ_Sf = Sfᵀ(XuᵀSuHu) + Sfᵀ(XpᵀSpHp) − HuᵀSuᵀSuHu − HpᵀSpᵀSpHp
    //        − α·Sfᵀ(Sf − Sf*)
    let delta =
        f.sf.transpose_matmul(&xu_su_hu)
            .add(&f.sf.transpose_matmul(&xp_sp_hp))
            .sub(&hu_susu_hu)
            .sub(&hp_spsp_hp)
            .sub(&f.sf.transpose_matmul(&f.sf.sub(sf_target)).scale(alpha));
    let (dp, dm) = split_pos_neg(&delta);
    let mut num = xu_su_hu.add(&xp_sp_hp).add(&f.sf.matmul(&dm));
    num.axpy(alpha, sf_target);
    let mut den = f.sf.matmul(&hu_susu_hu.add(&hp_spsp_hp).add(&dp));
    den.axpy(alpha, &f.sf);
    mult_update(&mut f.sf, &num, &den);
}

/// Eq. (11): offline update of the user–cluster matrix `Su`.
pub fn update_su_offline(input: &TriInput<'_>, f: &mut TriFactors, beta: f64) {
    // B = Xu·Sf·Huᵀ, D = Xr·Sp (both m × k)
    let b = input.xu.mul_dense(&f.sf).matmul_transpose(&f.hu);
    let d = input.xr.mul_dense(&f.sp);
    let gu_su = input.graph.adjacency().mul_dense(&f.su);
    let du_su = row_scale(&f.su, input.graph.degrees());
    let lu_su = du_su.sub(&gu_su);
    // k × k pieces
    let hu_sfsf_hu = f.hu.matmul(&f.sf.gram()).matmul_transpose(&f.hu);
    let sp_gram = f.sp.gram();
    // Δ_Su = SuᵀB + SuᵀD − HuSfᵀSfHuᵀ − SpᵀSp − β·SuᵀLuSu
    let delta =
        f.su.transpose_matmul(&b)
            .add(&f.su.transpose_matmul(&d))
            .sub(&hu_sfsf_hu)
            .sub(&sp_gram)
            .sub(&f.su.transpose_matmul(&lu_su).scale(beta));
    let (dp, dm) = split_pos_neg(&delta);
    let mut num = b.add(&d).add(&f.su.matmul(&dm));
    num.axpy(beta, &gu_su);
    let mut den = f.su.matmul(&hu_sfsf_hu.add(&sp_gram).add(&dp));
    den.axpy(beta, &du_su);
    mult_update(&mut f.su, &num, &den);
}

/// Eqs. (24) + (26): online update of `Su`, partitioned into *new* users
/// (no temporal target) and *evolving* users (pulled toward their
/// `Suw(t)` row with weight `γ`).
///
/// `su_target.row(i)` is the aggregated history of local user row
/// `evolving_rows[i]`. Rows in neither list (if any) are treated as new.
pub fn update_su_online(
    input: &TriInput<'_>,
    f: &mut TriFactors,
    beta: f64,
    gamma: f64,
    new_rows: &[usize],
    evolving_rows: &[usize],
    su_target: &DenseMatrix,
) {
    assert_eq!(
        su_target.rows(),
        evolving_rows.len(),
        "one Suw row per evolving user required"
    );
    // Shared full-matrix products (rows are later sliced per block).
    let b = input.xu.mul_dense(&f.sf).matmul_transpose(&f.hu);
    let d = input.xr.mul_dense(&f.sp);
    let gu_su = input.graph.adjacency().mul_dense(&f.su);
    let du_su = row_scale(&f.su, input.graph.degrees());
    let lu_su = du_su.sub(&gu_su);
    let hu_sfsf_hu = f.hu.matmul(&f.sf.gram()).matmul_transpose(&f.hu);
    let sp_gram = f.sp.gram();
    let base_k = hu_sfsf_hu.add(&sp_gram);

    let mut update_block = |rows: &[usize], target: Option<&DenseMatrix>| {
        if rows.is_empty() {
            return;
        }
        let su_b = f.su.select_rows(rows);
        let b_b = b.select_rows(rows);
        let d_b = d.select_rows(rows);
        let gu_su_b = gu_su.select_rows(rows);
        let du_su_b = du_su.select_rows(rows);
        let lu_su_b = lu_su.select_rows(rows);
        // Δ_b per Eq. (24) / Eq. (26)
        let mut delta = su_b
            .transpose_matmul(&b_b)
            .add(&su_b.transpose_matmul(&d_b))
            .sub(&hu_sfsf_hu)
            .sub(&sp_gram)
            .sub(&su_b.transpose_matmul(&lu_su_b).scale(beta));
        if let Some(t) = target {
            delta = delta.sub(&su_b.transpose_matmul(&su_b.sub(t)).scale(gamma));
        }
        let (dp, dm) = split_pos_neg(&delta);
        let mut num = b_b.add(&d_b).add(&su_b.matmul(&dm));
        num.axpy(beta, &gu_su_b);
        let mut den = su_b.matmul(&base_k.add(&dp));
        den.axpy(beta, &du_su_b);
        if let Some(t) = target {
            num.axpy(gamma, t);
            den.axpy(gamma, &su_b);
        }
        let mut updated = su_b;
        mult_update(&mut updated, &num, &den);
        for (local, &row) in rows.iter().enumerate() {
            f.su.copy_row_from(row, &updated, local);
        }
    };

    update_block(new_rows, None);
    update_block(evolving_rows, Some(su_target));
}

/// Guided variant of Eq. (9): tweets split into *free* rows (plain
/// update) and *guided* rows pulled toward one-hot label targets with
/// weight `δ` — the semi-supervised "guided regularization" the paper's
/// conclusion proposes. Mirrors [`update_su_online`]'s block structure.
pub fn update_sp_guided(
    input: &TriInput<'_>,
    f: &mut TriFactors,
    delta: f64,
    free_rows: &[usize],
    guided_rows: &[usize],
    sp_target: &DenseMatrix,
) {
    assert_eq!(
        sp_target.rows(),
        guided_rows.len(),
        "one target row per guided tweet required"
    );
    let a = input.xp.mul_dense(&f.sf).matmul_transpose(&f.hp);
    let c = input.xr.transpose_mul_dense(&f.su);
    let hp_sfsf_hp = f.hp.matmul(&f.sf.gram()).matmul_transpose(&f.hp);
    let su_gram = f.su.gram();
    let base_k = hp_sfsf_hp.add(&su_gram);

    let mut update_block = |rows: &[usize], target: Option<&DenseMatrix>| {
        if rows.is_empty() {
            return;
        }
        let sp_b = f.sp.select_rows(rows);
        let a_b = a.select_rows(rows);
        let c_b = c.select_rows(rows);
        let mut delta_k = sp_b
            .transpose_matmul(&a_b)
            .add(&sp_b.transpose_matmul(&c_b))
            .sub(&hp_sfsf_hp)
            .sub(&su_gram);
        if let Some(t) = target {
            delta_k = delta_k.sub(&sp_b.transpose_matmul(&sp_b.sub(t)).scale(delta));
        }
        let (dp, dm) = split_pos_neg(&delta_k);
        let mut num = a_b.add(&c_b).add(&sp_b.matmul(&dm));
        let mut den = sp_b.matmul(&base_k.add(&dp));
        if let Some(t) = target {
            num.axpy(delta, t);
            den.axpy(delta, &sp_b);
        }
        let mut updated = sp_b;
        mult_update(&mut updated, &num, &den);
        for (local, &row) in rows.iter().enumerate() {
            f.sp.copy_row_from(row, &updated, local);
        }
    };

    update_block(free_rows, None);
    update_block(guided_rows, Some(sp_target));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::offline_objective;
    use rand::RngExt;
    use tgs_graph::UserGraph;
    use tgs_linalg::{seeded_rng, CsrMatrix};

    /// A small random-but-deterministic problem instance.
    fn instance(seed: u64) -> (CsrMatrix, CsrMatrix, CsrMatrix, UserGraph, DenseMatrix) {
        let mut rng = seeded_rng(seed);
        let (n, m, l) = (12, 8, 10);
        let rand_csr = |rows: usize, cols: usize, nnz: usize, rng: &mut rand::rngs::StdRng| {
            let trip: Vec<(usize, usize, f64)> = (0..nnz)
                .map(|_| {
                    (
                        rng.random_range(0..rows),
                        rng.random_range(0..cols),
                        rng.random_range(0.2..2.0),
                    )
                })
                .collect();
            CsrMatrix::from_triplets(rows, cols, &trip).unwrap()
        };
        let xp = rand_csr(n, l, 60, &mut rng);
        let xu = rand_csr(m, l, 40, &mut rng);
        let xr = rand_csr(m, n, 30, &mut rng);
        let edges: Vec<(usize, usize, f64)> = (0..12)
            .map(|_| (rng.random_range(0..m), rng.random_range(0..m), 1.0))
            .filter(|&(a, b, _)| a != b)
            .collect();
        let graph = UserGraph::from_edges(m, &edges);
        let sf0 = DenseMatrix::filled(l, 3, 1.0 / 3.0);
        (xp, xu, xr, graph, sf0)
    }

    fn check_monotone(update: impl Fn(&TriInput<'_>, &mut TriFactors)) {
        for seed in 0..5u64 {
            let (xp, xu, xr, graph, sf0) = instance(seed);
            let input = TriInput {
                xp: &xp,
                xu: &xu,
                xr: &xr,
                graph: &graph,
                sf0: &sf0,
            };
            let mut f = TriFactors::random(12, 8, 10, 3, seed + 100);
            // A couple of warm-up sweeps so we're not at a wild random point.
            for _ in 0..2 {
                update_sp(&input, &mut f);
                update_hp(&input, &mut f);
                update_su_offline(&input, &mut f, 0.5);
                update_hu(&input, &mut f);
                update_sf(&input, &mut f, 0.1, &sf0);
            }
            let before = offline_objective(&input, &f, 0.1, 0.5).total();
            update(&input, &mut f);
            let after = offline_objective(&input, &f, 0.1, 0.5).total();
            assert!(
                after <= before * (1.0 + 1e-6) + 1e-9,
                "seed {seed}: objective rose {before} -> {after}"
            );
            assert!(f.all_nonnegative(), "seed {seed}: negativity introduced");
        }
    }

    #[test]
    fn sp_update_non_increasing() {
        check_monotone(update_sp);
    }

    #[test]
    fn hp_update_non_increasing() {
        check_monotone(update_hp);
    }

    #[test]
    fn hu_update_non_increasing() {
        check_monotone(update_hu);
    }

    #[test]
    fn su_update_non_increasing() {
        check_monotone(|input, f| update_su_offline(input, f, 0.5));
    }

    #[test]
    fn sf_update_non_increasing() {
        check_monotone(|input, f| update_sf(input, f, 0.1, input.sf0));
    }

    #[test]
    fn full_sweep_non_increasing_over_many_iters() {
        let (xp, xu, xr, graph, sf0) = instance(11);
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let mut f = TriFactors::random(12, 8, 10, 3, 0);
        let mut prev = offline_objective(&input, &f, 0.05, 0.8).total();
        for it in 0..30 {
            update_sp(&input, &mut f);
            update_hp(&input, &mut f);
            update_su_offline(&input, &mut f, 0.8);
            update_hu(&input, &mut f);
            update_sf(&input, &mut f, 0.05, &sf0);
            let cur = offline_objective(&input, &f, 0.05, 0.8).total();
            assert!(
                cur <= prev * (1.0 + 1e-6) + 1e-9,
                "iter {it}: objective rose {prev} -> {cur}"
            );
            prev = cur;
        }
    }

    #[test]
    fn online_su_update_handles_blocks() {
        let (xp, xu, xr, graph, sf0) = instance(3);
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let mut f = TriFactors::random(12, 8, 10, 3, 77);
        let new_rows = vec![0, 2, 4];
        let evolving_rows = vec![1, 3, 5, 6, 7];
        let target = DenseMatrix::filled(5, 3, 1.0 / 3.0);
        let before = f.su.clone();
        update_su_online(&input, &mut f, 0.5, 0.2, &new_rows, &evolving_rows, &target);
        assert!(f.su.is_nonnegative());
        // every row moved (updates are multiplicative with non-trivial ratios)
        assert!(f.su.max_abs_diff(&before) > 0.0);
    }

    #[test]
    fn online_su_with_gamma_pulls_towards_target() {
        let (xp, xu, xr, graph, sf0) = instance(5);
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let evolving: Vec<usize> = (0..8).collect();
        // Strong target on class 0.
        let target = DenseMatrix::from_fn(8, 3, |_, j| if j == 0 { 1.0 } else { 1e-6 });
        let mut with_pull = TriFactors::random(12, 8, 10, 3, 4);
        let mut without = with_pull.clone();
        for _ in 0..20 {
            update_su_online(&input, &mut with_pull, 0.0, 1.0, &[], &evolving, &target);
            update_su_online(&input, &mut without, 0.0, 0.0, &[], &evolving, &target);
        }
        let dist_with: f64 = with_pull.su.sub(&target).frobenius_sq();
        let dist_without: f64 = without.su.sub(&target).frobenius_sq();
        assert!(
            dist_with < dist_without,
            "gamma should pull Su toward the target: {dist_with} vs {dist_without}"
        );
    }

    #[test]
    fn row_scale_scales_rows() {
        let m = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let s = row_scale(&m, &[2.0, 0.5]);
        assert_eq!(s.as_slice(), &[2.0, 4.0, 1.5, 2.0]);
    }
}

//! The fused, allocation-free update engine.
//!
//! [`UpdateWorkspace`] is a scratch arena owned by the offline and online
//! solvers. It fixes the two structural costs of the naive per-rule
//! implementation in [`crate::updates`]:
//!
//! 1. **Redundant work.** A seed sweep recomputed `Xp·Sf` in both the
//!    `Sp` and `Hp` rules, `Xu·Sf` in both the `Su` and `Hu` rules,
//!    `Sfᵀ·Sf` in four rules, and walked CSR matrices in transposed
//!    (scatter) order every iteration. The workspace computes each shared
//!    product **once per sweep** at the moment the factors it depends on
//!    settle, and caches [`CscView`] transposes of `Xp`/`Xu`/`Xr` once
//!    per [`UpdateWorkspace::bind`] (once per window), turning every
//!    `Xᵀ·D` into a forward, row-parallel pass.
//! 2. **Allocation traffic.** Every `add`/`sub`/`matmul`/`split_pos_neg`
//!    in the update chains allocated a fresh matrix — dozens of
//!    `rows × k` heap allocations per iteration. All intermediates now
//!    live in reusable buffers, and the final `S ← S ∘ √(num/den)` runs
//!    through [`mult_update_from_parts`], which never materializes
//!    `num`/`den` at all. After the first sweep warms the buffers, a
//!    sweep performs **zero heap allocations** on the sequential path
//!    (parallel dispatch allocates only for thread bookkeeping) —
//!    enforced by `tests/alloc_free_sweep.rs`.
//!
//! Every fused rule reproduces the floating-point operation order of the
//! reference implementation exactly, so results are **bit-for-bit
//! identical** to [`crate::updates`] — property-tested in
//! `tests/proptests.rs` and relied on by the solvers, which now run all
//! sweeps through this engine.

use tgs_linalg::{
    laplacian_quad, mult_update, mult_update_from_parts, split_pos_neg_into, CscView, CsrMatrix,
    DenseMatrix,
};

use crate::factors::TriFactors;
use crate::input::TriInput;
use crate::objective::ObjectiveParts;

/// Scratch arena + per-window caches for the fused update sweeps.
///
/// Create once per solver, [`bind`](UpdateWorkspace::bind) whenever the
/// data matrices change (per offline solve / per online snapshot), then
/// run [`sweep_offline`](UpdateWorkspace::sweep_offline) or
/// [`sweep_online`](UpdateWorkspace::sweep_online) per iteration.
#[derive(Debug, Clone, Default)]
pub struct UpdateWorkspace {
    /// Cached transposes + fingerprints of `Xp` / `Xu` / `Xr`,
    /// incrementally refreshed by `bind` (unchanged matrices keep their
    /// cached transpose; changed ones rebuild into the existing
    /// allocations).
    xp_bind: Option<BoundMatrix>,
    xu_bind: Option<BoundMatrix>,
    xr_bind: Option<BoundMatrix>,

    // --- per-sweep shared products ---
    xp_sf: DenseMatrix, // n×k  Xp·Sf
    xu_sf: DenseMatrix, // m×k  Xu·Sf
    sf_gram: DenseMatrix,
    sp_gram: DenseMatrix,
    su_gram: DenseMatrix,

    // --- large scratch ---
    a: DenseMatrix,     // n×k
    c: DenseMatrix,     // n×k
    b: DenseMatrix,     // m×k
    d: DenseMatrix,     // m×k
    gu_su: DenseMatrix, // m×k
    lu_su: DenseMatrix, // m×k
    e1: DenseMatrix,    // l×k
    e2: DenseMatrix,    // l×k
    l_tmp: DenseMatrix, // l×k

    // --- online block scratch (capacity ≤ m×k) ---
    blk_su: DenseMatrix,
    blk_b: DenseMatrix,
    blk_d: DenseMatrix,
    blk_g: DenseMatrix,
    blk_lu: DenseMatrix,
    blk_tmp: DenseMatrix,
    blk_deg: Vec<f64>,
    base_k: DenseMatrix,

    // --- objective caches (see objective_offline / objective_online) ---
    obj_cross_p: DenseMatrix, // k×k, Spᵀ·(Xp·Sf) snapshot from rule_hp

    /// True when `sf_gram`/`su_gram`/`sp_gram` already hold the Gram of
    /// the *current* `Sf`/`Su`/`Sp` (set at the natural refresh points —
    /// since the gram-in-update fusion, usually inside
    /// [`mult_update_from_parts`] itself — consumed by the next sweep's
    /// warm-up to skip an identical recompute).
    sf_gram_fresh: bool,
    su_gram_fresh: bool,
    sp_gram_fresh: bool,

    // --- small k×k scratch ---
    delta: DenseMatrix,
    dp: DenseMatrix,
    dm: DenseMatrix,
    k1: DenseMatrix,
    k2: DenseMatrix,
    kt: DenseMatrix,
}

/// One bound data matrix: its cached transpose plus the identity of the
/// content it was built from.
#[derive(Debug, Clone)]
struct BoundMatrix {
    /// The cached `Xᵀ` view (forward, row-parallel products).
    xt: CscView,
    /// Shape of the bound matrix.
    shape: (usize, usize),
    /// Stored entries of the bound matrix.
    nnz: usize,
    /// [`CsrMatrix::content_fingerprint`] of the bound matrix — the full
    /// content hash, so a rebind against different same-shape data can
    /// never silently keep a stale transpose. `None` when the last bind
    /// skipped hashing because shape/nnz already proved the matrix
    /// changed (the common per-day case pays zero hashing).
    fingerprint: Option<u64>,
    /// `‖X‖²` — a constant of the bound window, recomputed from scratch
    /// by the reference objective on every call.
    frob_sq: f64,
}

impl BoundMatrix {
    /// Incrementally binds `x` into `slot`: an unchanged matrix (same
    /// shape, nnz and content fingerprint) keeps its cached transpose, a
    /// changed one rebuilds **into the existing allocations**
    /// ([`CscView::rebind`]), and only a first bind allocates. This is
    /// the amortized-rebind path of the online solvers: a window
    /// shifting by one snapshot re-transposes only the matrices that
    /// actually changed, allocation-free once warm.
    fn bind(slot: &mut Option<BoundMatrix>, x: &CsrMatrix) {
        let shape = x.shape();
        let nnz = x.nnz();
        match slot {
            // Same shape and nnz: the matrix *might* be unchanged — the
            // content hash decides. Hashing is the price of safely
            // skipping the transpose, paid only in this branch; when a
            // cached hash is absent the rebuild is unconditional.
            Some(b) if b.shape == shape && b.nnz == nnz => {
                let fingerprint = x.content_fingerprint();
                if b.fingerprint != Some(fingerprint) {
                    b.xt.rebind(x);
                    b.frob_sq = x.frobenius_sq();
                }
                b.fingerprint = Some(fingerprint);
            }
            // Shape or nnz differ: provably changed, rebuild into the
            // existing buffers without paying the O(nnz) hash.
            Some(b) => {
                b.xt.rebind(x);
                b.shape = shape;
                b.nnz = nnz;
                b.fingerprint = None;
                b.frob_sq = x.frobenius_sq();
            }
            None => {
                *slot = Some(BoundMatrix {
                    xt: CscView::of(x),
                    shape,
                    nnz,
                    fingerprint: Some(x.content_fingerprint()),
                    frob_sq: x.frobenius_sq(),
                });
            }
        }
    }

    fn matches(&self, x: &CsrMatrix) -> bool {
        self.shape == x.shape() && self.nnz == x.nnz()
    }
}

impl UpdateWorkspace {
    /// An unbound workspace with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds (or incrementally rebuilds) the cached `Xpᵀ`/`Xuᵀ`/`Xrᵀ`
    /// views for `input`. Call once per offline solve / per online
    /// snapshot; the `O(nnz)` cost amortizes over every sweep of the
    /// window — and across *snapshots*: each matrix is content-
    /// fingerprinted, unchanged matrices keep their cached transpose
    /// outright, and changed ones rebuild into the existing allocations,
    /// so a window shifting by one snapshot rebinds only what moved.
    pub fn bind(&mut self, input: &TriInput<'_>) {
        BoundMatrix::bind(&mut self.xp_bind, input.xp);
        BoundMatrix::bind(&mut self.xu_bind, input.xu);
        BoundMatrix::bind(&mut self.xr_bind, input.xr);
        self.sf_gram_fresh = false;
        self.su_gram_fresh = false;
        self.sp_gram_fresh = false;
    }

    /// True when [`bind`](UpdateWorkspace::bind) has been called for a
    /// matching input shape (cheap per-sweep guard; `bind` itself
    /// verifies full content fingerprints).
    pub fn is_bound_to(&self, input: &TriInput<'_>) -> bool {
        match (&self.xp_bind, &self.xu_bind, &self.xr_bind) {
            (Some(xp), Some(xu), Some(xr)) => {
                xp.matches(input.xp) && xu.matches(input.xu) && xr.matches(input.xr)
            }
            _ => false,
        }
    }

    #[track_caller]
    fn assert_bound(&self, input: &TriInput<'_>) {
        assert!(
            self.is_bound_to(input),
            "UpdateWorkspace::bind must be called before sweeping this input \
             (input shape {:?}, bound shapes {:?})",
            (input.n(), input.m(), input.l()),
            (
                self.xp_bind.as_ref().map(|b| b.shape),
                self.xu_bind.as_ref().map(|b| b.shape),
                self.xr_bind.as_ref().map(|b| b.shape),
            ),
        );
    }

    /// One full offline iteration (Algorithm 1 line order: `Sp`, `Hp`,
    /// `Su`, `Hu`, `Sf`), bit-identical to calling the reference rules in
    /// [`crate::updates`] in the same order.
    pub fn sweep_offline(
        &mut self,
        input: &TriInput<'_>,
        f: &mut TriFactors,
        alpha: f64,
        beta: f64,
        sf_target: &DenseMatrix,
    ) {
        self.assert_bound(input);
        // Shared products valid for the whole sweep (Sf/Su settle last /
        // are refreshed after their own updates below). Grams already
        // fresh from the previous iteration's tail — since the
        // gram-in-update fusion every rule that goes through
        // `mult_update_from_parts` refreshes its factor's Gram inside
        // the update pass itself — are not recomputed; the recompute
        // would be bit-identical.
        input.xp.mul_dense_into(&f.sf, &mut self.xp_sf);
        input.xu.mul_dense_into(&f.sf, &mut self.xu_sf);
        if !self.sf_gram_fresh {
            f.sf.gram_into(&mut self.sf_gram);
        }
        if !self.su_gram_fresh {
            f.su.gram_into(&mut self.su_gram);
        }

        self.rule_sp(f); // fuses sp_gram
        self.sp_gram_fresh = true;
        self.rule_hp(f);
        self.rule_su_offline(input, f, beta); // fuses su_gram
        self.su_gram_fresh = true;
        self.rule_hu(f);
        self.rule_sf(f, alpha, sf_target); // fuses sf_gram
        self.sf_gram_fresh = true;
    }

    /// One full online iteration (Algorithm 2 line order: `Sf`, `Sp`,
    /// `Hp`, `Hu`, block-partitioned `Su`), bit-identical to the
    /// reference rules in [`crate::updates`] called in the same order.
    #[allow(clippy::too_many_arguments)]
    pub fn sweep_online(
        &mut self,
        input: &TriInput<'_>,
        f: &mut TriFactors,
        alpha: f64,
        beta: f64,
        gamma: f64,
        sf_target: &DenseMatrix,
        new_rows: &[usize],
        evolving_rows: &[usize],
        su_target: &DenseMatrix,
    ) {
        self.assert_bound(input);
        assert_eq!(
            su_target.rows(),
            evolving_rows.len(),
            "one Suw row per evolving user required"
        );
        // Grams of the factors as they stand at iteration start; Sf's
        // shared products are computed after its own update below. Grams
        // left fresh by the previous iteration's tail — `sp_gram` by the
        // fused `Sp` rule, `su_gram` by the fused Su scatter + Gram pass
        // — are reused (the recompute would be bit-identical).
        if !self.sp_gram_fresh {
            f.sp.gram_into(&mut self.sp_gram);
        }
        if !self.su_gram_fresh {
            f.su.gram_into(&mut self.su_gram);
        }

        self.rule_sf(f, alpha, sf_target); // fuses sf_gram
        self.sf_gram_fresh = true;
        input.xp.mul_dense_into(&f.sf, &mut self.xp_sf);
        input.xu.mul_dense_into(&f.sf, &mut self.xu_sf);

        self.rule_sp(f); // fuses sp_gram
        self.sp_gram_fresh = true;
        self.rule_hp(f);
        self.rule_hu(f);
        self.rule_su_online(input, f, beta, gamma, new_rows, evolving_rows, su_target);
        // The fused scatter + Gram pass inside the Su rule left `su_gram`
        // holding the Gram of the updated Su, so the objective (and the
        // next iteration's sweep) skip their full re-Gram.
        self.su_gram_fresh = true;
    }

    /// Eq. (9) / Eq. (22): `Sp` update. Requires fresh `xp_sf`,
    /// `sf_gram`, `su_gram`. Leaves `sp_gram` holding the Gram of the
    /// **updated** `Sp` (fused gram-in-update pass).
    fn rule_sp(&mut self, f: &mut TriFactors) {
        // A = (Xp·Sf)·Hpᵀ (n×k), C = Xrᵀ·Su (n×k, forward pass).
        self.xp_sf.matmul_transpose_into(&f.hp, &mut self.a);
        let xr_t = &self.xr_bind.as_ref().expect("workspace must be bound").xt;
        xr_t.transpose_mul_dense_into(&f.su, &mut self.c);
        // K₁ = Hp·(SfᵀSf)·Hpᵀ.
        f.hp.matmul_into(&self.sf_gram, &mut self.kt);
        self.kt.matmul_transpose_into(&f.hp, &mut self.k1);
        // Δ = SpᵀA + SpᵀC − K₁ − SuᵀSu (one fused pass over Sp/A/C).
        f.sp.transpose_matmul_pair_into(&self.a, &self.c, &mut self.delta, &mut self.kt);
        self.delta.add_assign(&self.kt);
        self.delta.sub_assign(&self.k1);
        self.delta.sub_assign(&self.su_gram);
        split_pos_neg_into(&self.delta, &mut self.dp, &mut self.dm);
        // num = (A + C) + Sp·Δ⁻ ; den = Sp·(K₁ + SuᵀSu + Δ⁺).
        self.k1.add_assign(&self.su_gram);
        self.k1.add_assign(&self.dp);
        mult_update_from_parts(
            &mut f.sp,
            &self.a,
            Some(&self.c),
            &self.dm,
            &self.k1,
            &[],
            None,
            0.0,
            Some(&mut self.sp_gram),
        );
    }

    /// Eq. (12) / Eq. (21): `Hp` update. Requires fresh `xp_sf`,
    /// `sp_gram`, `sf_gram`.
    fn rule_hp(&mut self, f: &mut TriFactors) {
        f.sp.transpose_matmul_into(&self.xp_sf, &mut self.k1);
        // Snapshot Spᵀ·(Xp·Sf) for the fused online objective (where
        // xp_sf was built from the final Sf of the sweep).
        self.obj_cross_p.copy_from(&self.k1);
        self.sp_gram.matmul_into(&f.hp, &mut self.kt);
        self.kt.matmul_into(&self.sf_gram, &mut self.k2);
        mult_update(&mut f.hp, &self.k1, &self.k2);
    }

    /// Eq. (13) / Eq. (20): `Hu` update. Requires fresh `xu_sf`,
    /// `su_gram`, `sf_gram`.
    fn rule_hu(&mut self, f: &mut TriFactors) {
        f.su.transpose_matmul_into(&self.xu_sf, &mut self.k1);
        self.su_gram.matmul_into(&f.hu, &mut self.kt);
        self.kt.matmul_into(&self.sf_gram, &mut self.k2);
        mult_update(&mut f.hu, &self.k1, &self.k2);
    }

    /// Eq. (11): offline `Su` update. Requires fresh `xu_sf`, `sf_gram`,
    /// `sp_gram`. Leaves `su_gram` holding the Gram of the **updated**
    /// `Su` (fused gram-in-update pass).
    fn rule_su_offline(&mut self, input: &TriInput<'_>, f: &mut TriFactors, beta: f64) {
        let degrees = input.graph.degrees();
        // B = (Xu·Sf)·Huᵀ, D = Xr·Sp, Gu·Su, Lu·Su = Du·Su − Gu·Su.
        self.xu_sf.matmul_transpose_into(&f.hu, &mut self.b);
        input.xr.mul_dense_into(&f.sp, &mut self.d);
        input
            .graph
            .adjacency()
            .mul_dense_into(&f.su, &mut self.gu_su);
        row_scale_sub_into(&f.su, degrees, &self.gu_su, &mut self.lu_su);
        // K₁ = Hu·(SfᵀSf)·Huᵀ.
        f.hu.matmul_into(&self.sf_gram, &mut self.kt);
        self.kt.matmul_transpose_into(&f.hu, &mut self.k1);
        // Δ = SuᵀB + SuᵀD − K₁ − SpᵀSp − β·Suᵀ(Lu·Su).
        f.su.transpose_matmul_pair_into(&self.b, &self.d, &mut self.delta, &mut self.kt);
        self.delta.add_assign(&self.kt);
        self.delta.sub_assign(&self.k1);
        self.delta.sub_assign(&self.sp_gram);
        f.su.transpose_matmul_into(&self.lu_su, &mut self.kt);
        self.delta.sub_scaled_assign(beta, &self.kt);
        split_pos_neg_into(&self.delta, &mut self.dp, &mut self.dm);
        // num = (B + D) + Su·Δ⁻ + β·Gu·Su ;
        // den = Su·(K₁ + SpᵀSp + Δ⁺) + β·Du·Su.
        self.k1.add_assign(&self.sp_gram);
        self.k1.add_assign(&self.dp);
        mult_update_from_parts(
            &mut f.su,
            &self.b,
            Some(&self.d),
            &self.dm,
            &self.k1,
            &[(beta, &self.gu_su)],
            Some((beta, degrees)),
            0.0,
            Some(&mut self.su_gram),
        );
    }

    /// Eq. (7) offline / Eq. (23) online: `Sf` update. Requires fresh
    /// `sp_gram`, `su_gram`. Leaves `sf_gram` holding the Gram of the
    /// **updated** `Sf` (fused gram-in-update pass).
    fn rule_sf(&mut self, f: &mut TriFactors, alpha: f64, sf_target: &DenseMatrix) {
        let xu_t = &self.xu_bind.as_ref().expect("workspace must be bound").xt;
        let xp_t = &self.xp_bind.as_ref().expect("workspace must be bound").xt;
        // E₁ = (Xuᵀ·Su)·Hu, E₂ = (Xpᵀ·Sp)·Hp (both l×k, forward passes).
        xu_t.transpose_mul_dense_into(&f.su, &mut self.l_tmp);
        self.l_tmp.matmul_into(&f.hu, &mut self.e1);
        xp_t.transpose_mul_dense_into(&f.sp, &mut self.l_tmp);
        self.l_tmp.matmul_into(&f.hp, &mut self.e2);
        // K₁ = Huᵀ·(SuᵀSu)·Hu, K₂ = Hpᵀ·(SpᵀSp)·Hp.
        f.hu.transpose_matmul_into(&self.su_gram, &mut self.kt);
        self.kt.matmul_into(&f.hu, &mut self.k1);
        f.hp.transpose_matmul_into(&self.sp_gram, &mut self.kt);
        self.kt.matmul_into(&f.hp, &mut self.k2);
        // Δ = SfᵀE₁ + SfᵀE₂ − K₁ − K₂ − α·Sfᵀ(Sf − Sf*).
        f.sf.transpose_matmul_pair_into(&self.e1, &self.e2, &mut self.delta, &mut self.kt);
        self.delta.add_assign(&self.kt);
        self.delta.sub_assign(&self.k1);
        self.delta.sub_assign(&self.k2);
        self.l_tmp.copy_from(&f.sf);
        self.l_tmp.sub_assign(sf_target);
        f.sf.transpose_matmul_into(&self.l_tmp, &mut self.kt);
        self.delta.sub_scaled_assign(alpha, &self.kt);
        split_pos_neg_into(&self.delta, &mut self.dp, &mut self.dm);
        // num = (E₁ + E₂) + Sf·Δ⁻ + α·Sf* ;
        // den = Sf·(K₁ + K₂ + Δ⁺) + α·Sf.
        // E₁/E₂ stay intact: the fused objective reads them afterwards.
        self.k1.add_assign(&self.k2);
        self.k1.add_assign(&self.dp);
        mult_update_from_parts(
            &mut f.sf,
            &self.e1,
            Some(&self.e2),
            &self.dm,
            &self.k1,
            &[(alpha, sf_target)],
            None,
            alpha,
            Some(&mut self.sf_gram),
        );
    }

    /// Eqs. (24) + (26): online `Su` update over new / evolving blocks.
    /// Requires fresh `xu_sf`, `sf_gram`, `sp_gram`.
    #[allow(clippy::too_many_arguments)]
    fn rule_su_online(
        &mut self,
        input: &TriInput<'_>,
        f: &mut TriFactors,
        beta: f64,
        gamma: f64,
        new_rows: &[usize],
        evolving_rows: &[usize],
        su_target: &DenseMatrix,
    ) {
        let degrees = input.graph.degrees();
        // Shared full-matrix products (rows are gathered per block).
        self.xu_sf.matmul_transpose_into(&f.hu, &mut self.b);
        input.xr.mul_dense_into(&f.sp, &mut self.d);
        input
            .graph
            .adjacency()
            .mul_dense_into(&f.su, &mut self.gu_su);
        row_scale_sub_into(&f.su, degrees, &self.gu_su, &mut self.lu_su);
        f.hu.matmul_into(&self.sf_gram, &mut self.kt);
        self.kt.matmul_transpose_into(&f.hu, &mut self.k1);
        self.base_k.copy_from(&self.k1);
        self.base_k.add_assign(&self.sp_gram);

        // The new-user block scatters immediately; the evolving block's
        // scatter is deferred into one fused full-row-order pass that
        // also leaves `su_gram` holding the Gram of the **updated** Su.
        // This closes the gather-order blocker that kept the online Su
        // rules out of the gram-in-update fusion: the reduction below
        // runs in full-matrix row order (the order `su_gram` needs),
        // sourcing the updated evolving rows mid-pass instead of
        // accumulating a gathered block in gather order.
        self.su_block(f, beta, gamma, new_rows, None, degrees, true);
        self.su_block(
            f,
            beta,
            gamma,
            evolving_rows,
            Some(su_target),
            degrees,
            false,
        );
        let mut gram = std::mem::take(&mut self.su_gram);
        if evolving_rows.is_empty() {
            // Nothing deferred (blk_su holds the new block, if any);
            // the pass degenerates to a plain full-matrix Gram.
            f.su.scatter_rows_with_gram(&[], &DenseMatrix::default(), &mut gram);
        } else {
            f.su.scatter_rows_with_gram(evolving_rows, &self.blk_su, &mut gram);
        }
        self.su_gram = gram;
    }

    /// One `Su` block (Δ per Eq. 24 / Eq. 26), gathered into the block
    /// buffers and updated; with `scatter` the result is written back
    /// into `f.su` here, otherwise it stays in `blk_su` for the caller's
    /// fused scatter + Gram pass.
    #[allow(clippy::too_many_arguments)]
    fn su_block(
        &mut self,
        f: &mut TriFactors,
        beta: f64,
        gamma: f64,
        rows: &[usize],
        target: Option<&DenseMatrix>,
        degrees: &[f64],
        scatter: bool,
    ) {
        if rows.is_empty() {
            return;
        }
        f.su.select_rows_into(rows, &mut self.blk_su);
        self.b.select_rows_into(rows, &mut self.blk_b);
        self.d.select_rows_into(rows, &mut self.blk_d);
        self.gu_su.select_rows_into(rows, &mut self.blk_g);
        self.lu_su.select_rows_into(rows, &mut self.blk_lu);
        self.blk_deg.clear();
        self.blk_deg.extend(rows.iter().map(|&r| degrees[r]));
        // Δ_b = Su_bᵀB_b + Su_bᵀD_b − K₁ − SpᵀSp − β·Su_bᵀ(LuSu)_b
        //       [− γ·Su_bᵀ(Su_b − Suw)].
        self.blk_su.transpose_matmul_pair_into(
            &self.blk_b,
            &self.blk_d,
            &mut self.delta,
            &mut self.kt,
        );
        self.delta.add_assign(&self.kt);
        self.delta.sub_assign(&self.k1);
        self.delta.sub_assign(&self.sp_gram);
        self.blk_su
            .transpose_matmul_into(&self.blk_lu, &mut self.kt);
        self.delta.sub_scaled_assign(beta, &self.kt);
        if let Some(t) = target {
            self.blk_tmp.copy_from(&self.blk_su);
            self.blk_tmp.sub_assign(t);
            self.blk_su
                .transpose_matmul_into(&self.blk_tmp, &mut self.kt);
            self.delta.sub_scaled_assign(gamma, &self.kt);
        }
        split_pos_neg_into(&self.delta, &mut self.dp, &mut self.dm);
        // num = (B_b + D_b) + Su_b·Δ⁻ + β·(GuSu)_b [+ γ·Suw] ;
        // den = Su_b·(base_K + Δ⁺) + β·(DuSu)_b [+ γ·Su_b].
        self.k2.copy_from(&self.base_k);
        self.k2.add_assign(&self.dp);
        match target {
            Some(t) => mult_update_from_parts(
                &mut self.blk_su,
                &self.blk_b,
                Some(&self.blk_d),
                &self.dm,
                &self.k2,
                &[(beta, &self.blk_g), (gamma, t)],
                Some((beta, &self.blk_deg)),
                gamma,
                // No gram fusion at the block level: a gathered subset's
                // fused Gram would accumulate in gather order. The
                // caller's `scatter_rows_with_gram` pass does the fusion
                // in full-matrix row order instead.
                None,
            ),
            None => mult_update_from_parts(
                &mut self.blk_su,
                &self.blk_b,
                Some(&self.blk_d),
                &self.dm,
                &self.k2,
                &[(beta, &self.blk_g)],
                Some((beta, &self.blk_deg)),
                0.0,
                None,
            ),
        }
        if scatter {
            f.su.scatter_rows_from(rows, &self.blk_su);
        }
    }

    /// Fused evaluation of the offline objective (Eq. 1), valid
    /// **immediately after [`UpdateWorkspace::sweep_offline`]** on the
    /// same input and factors.
    ///
    /// Mathematically equal to [`crate::objective::offline_objective`]
    /// (agreement to ~1e-12 relative, unit-tested), but evaluated from
    /// the sweep's cached products instead of from scratch:
    ///
    /// * `‖X‖²` constants are cached at [`UpdateWorkspace::bind`];
    /// * the cross terms use `⟨Xp, Sp·Hp·Sfᵀ⟩ = ⟨Sf, (Xpᵀ·Sp)·Hp⟩`,
    ///   where `(Xpᵀ·Sp)·Hp` is exactly the `E₂` (resp. `E₁`) product
    ///   the `Sf` rule just computed — the offline sweep updates `Sf`
    ///   last, so `E₁`/`E₂` hold the final `Sp`/`Su`/`Hp`/`Hu`;
    /// * the quadratic fit terms use
    ///   `tr((AᵀA)(SfᵀSf)) = tr((Hpᵀ(SpᵀSp)Hp)(SfᵀSf))` over the cached
    ///   Gram matrices instead of materializing and re-Gramming
    ///   `A = Sp·Hp`.
    ///
    /// This turns the per-iteration objective from the single most
    /// expensive step of a solver iteration into a `O(nnz(Xr)·k +
    /// nnz(Gu)·k + (l + m)·k² + k³)` afterthought.
    pub fn objective_offline(
        &mut self,
        input: &TriInput<'_>,
        f: &TriFactors,
        alpha: f64,
        beta: f64,
    ) -> ObjectiveParts {
        self.assert_bound(input);
        let (xp_sq, xu_sq, xr_sq) = self.x_norms();
        // Sf settled last, but the fused `Sf` rule already cached its
        // Gram inside the update pass; recompute only if something
        // invalidated it (the recompute is bit-identical).
        if !self.sf_gram_fresh {
            f.sf.gram_into(&mut self.sf_gram);
            self.sf_gram_fresh = true;
        }
        let tweet_feature = {
            let cross = f.sf.frobenius_inner(&self.e2);
            f.hp.transpose_matmul_into(&self.sp_gram, &mut self.kt);
            self.kt.matmul_into(&f.hp, &mut self.k1);
            let fit = self.k1.frobenius_inner(&self.sf_gram);
            (xp_sq - 2.0 * cross + fit).max(0.0)
        };
        let user_feature = {
            let cross = f.sf.frobenius_inner(&self.e1);
            f.hu.transpose_matmul_into(&self.su_gram, &mut self.kt);
            self.kt.matmul_into(&f.hu, &mut self.k1);
            let fit = self.k1.frobenius_inner(&self.sf_gram);
            (xu_sq - 2.0 * cross + fit).max(0.0)
        };
        let user_tweet = {
            let cross = input.xr.inner_with_factored(&f.su, &f.sp);
            let fit = self.su_gram.frobenius_inner(&self.sp_gram);
            (xr_sq - 2.0 * cross + fit).max(0.0)
        };
        let lexicon = alpha * sub_frobenius_sq(&f.sf, input.sf0);
        let graph = beta * laplacian_quad(input.graph.adjacency(), input.graph.degrees(), &f.su);
        ObjectiveParts {
            tweet_feature,
            user_feature,
            user_tweet,
            lexicon,
            graph,
            temporal_user: 0.0,
        }
    }

    /// Fused evaluation of the online objective (Eq. 19), valid
    /// **immediately after [`UpdateWorkspace::sweep_online`]** on the
    /// same input and factors. Counterpart of
    /// [`crate::objective::online_objective`] (agreement to ~1e-12
    /// relative, unit-tested).
    ///
    /// The online sweep updates `Sf` first and `Su` last, so the cache
    /// situation differs from offline: `xp_sf`/`xu_sf` and `sf_gram`
    /// hold the final `Sf`, the tweet cross term comes from the
    /// `Spᵀ·(Xp·Sf)` snapshot taken in the `Hp` rule, and the user-side
    /// products are recomputed against the final `Su` (cheap — `m` is
    /// the smallest dimension).
    #[allow(clippy::too_many_arguments)]
    pub fn objective_online(
        &mut self,
        input: &TriInput<'_>,
        f: &TriFactors,
        alpha: f64,
        sf_target: &DenseMatrix,
        beta: f64,
        gamma: f64,
        su_target: Option<&DenseMatrix>,
        evolving_rows: &[usize],
    ) -> ObjectiveParts {
        self.assert_bound(input);
        let (xp_sq, xu_sq, xr_sq) = self.x_norms();
        // Final-Su products (Su settled last online, through the
        // gather-order block rules that cannot fuse the full Gram); the
        // refreshed Gram stays valid into the next sweep's warm-up.
        if !self.su_gram_fresh {
            f.su.gram_into(&mut self.su_gram);
            self.su_gram_fresh = true;
        }
        let tweet_feature = {
            let cross = self.obj_cross_p.frobenius_inner(&f.hp);
            f.hp.transpose_matmul_into(&self.sp_gram, &mut self.kt);
            self.kt.matmul_into(&f.hp, &mut self.k1);
            let fit = self.k1.frobenius_inner(&self.sf_gram);
            (xp_sq - 2.0 * cross + fit).max(0.0)
        };
        let user_feature = {
            f.su.transpose_matmul_into(&self.xu_sf, &mut self.kt);
            let cross = self.kt.frobenius_inner(&f.hu);
            f.hu.transpose_matmul_into(&self.su_gram, &mut self.kt);
            self.kt.matmul_into(&f.hu, &mut self.k1);
            let fit = self.k1.frobenius_inner(&self.sf_gram);
            (xu_sq - 2.0 * cross + fit).max(0.0)
        };
        let user_tweet = {
            let cross = input.xr.inner_with_factored(&f.su, &f.sp);
            let fit = self.su_gram.frobenius_inner(&self.sp_gram);
            (xr_sq - 2.0 * cross + fit).max(0.0)
        };
        let lexicon = alpha * sub_frobenius_sq(&f.sf, sf_target);
        let graph = beta * laplacian_quad(input.graph.adjacency(), input.graph.degrees(), &f.su);
        let temporal_user = match su_target {
            Some(target) if gamma > 0.0 => {
                assert_eq!(
                    target.rows(),
                    evolving_rows.len(),
                    "one target row per evolving user required"
                );
                let mut sq = 0.0;
                for (t_row, &u_row) in evolving_rows.iter().enumerate() {
                    for (c, t) in f.su.row(u_row).iter().zip(target.row(t_row).iter()) {
                        let d = c - t;
                        sq += d * d;
                    }
                }
                gamma * sq
            }
            _ => 0.0,
        };
        ObjectiveParts {
            tweet_feature,
            user_feature,
            user_tweet,
            lexicon,
            graph,
            temporal_user,
        }
    }

    /// Invalidates the cached factor Grams (`SpᵀSp`, `SuᵀSu`, `SfᵀSf`).
    ///
    /// The freshness contract assumes factors only change through this
    /// workspace's own sweeps; any caller that mutates a factor
    /// *externally* between sweeps — e.g. the sharded offline solver
    /// broadcasting the merged `Sf` into each shard — must call this, or
    /// the next sweep/objective will reuse a Gram of the replaced
    /// factor. The subsequent recompute is bit-identical whenever the
    /// factors did not actually change, so over-invalidating costs only
    /// an `O(rows·k²)` pass, never exactness.
    pub fn invalidate_factor_caches(&mut self) {
        self.sf_gram_fresh = false;
        self.su_gram_fresh = false;
        self.sp_gram_fresh = false;
    }

    /// (`‖Xp‖²`, `‖Xu‖²`, `‖Xr‖²`) of the bound window.
    fn x_norms(&self) -> (f64, f64, f64) {
        (
            self.xp_bind.as_ref().expect("bound").frob_sq,
            self.xu_bind.as_ref().expect("bound").frob_sq,
            self.xr_bind.as_ref().expect("bound").frob_sq,
        )
    }

    /// Fused [`crate::updates::balance_init_scales`]: identical scaling
    /// decisions, run through the workspace's `k×k` scratch instead of
    /// allocating Gram/product temporaries.
    pub fn balance_init_scales(&mut self, input: &TriInput<'_>, f: &mut TriFactors) {
        const EPS: f64 = 1e-12;
        let xr_norm = input.xr.frobenius_sq().sqrt();
        f.su.gram_into(&mut self.k1);
        f.sp.gram_into(&mut self.k2);
        let rec = self.k1.frobenius_inner(&self.k2).max(0.0).sqrt();
        if xr_norm > EPS && rec > EPS {
            f.sp.scale_assign(xr_norm / rec);
        }
        let xp_norm = input.xp.frobenius_sq().sqrt();
        f.sp.matmul_into(&f.hp, &mut self.a);
        self.a.gram_into(&mut self.k1);
        f.sf.gram_into(&mut self.k2);
        let rec = self.k1.frobenius_inner(&self.k2).max(0.0).sqrt();
        if xp_norm > EPS && rec > EPS {
            f.hp.scale_assign(xp_norm / rec);
        }
        let xu_norm = input.xu.frobenius_sq().sqrt();
        f.su.matmul_into(&f.hu, &mut self.b);
        self.b.gram_into(&mut self.k1);
        let rec = self.k1.frobenius_inner(&self.k2).max(0.0).sqrt();
        if xu_norm > EPS && rec > EPS {
            f.hu.scale_assign(xu_norm / rec);
        }
    }
}

/// `‖a − b‖²_F` without materializing the difference — same element
/// order as `a.sub(&b).frobenius_sq()`.
fn sub_frobenius_sq(a: &DenseMatrix, b: &DenseMatrix) -> f64 {
    assert_eq!(a.shape(), b.shape(), "sub_frobenius_sq shape mismatch");
    a.as_slice()
        .iter()
        .zip(b.as_slice().iter())
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Writes `diag(scale)·m − sub` into `out` in one pass — the fused form
/// of `row_scale(m, scale).sub(&sub)` (the Laplacian `Lu·Su` term),
/// preserving its floating-point association `(mᵢⱼ·scaleᵢ) − subᵢⱼ`.
fn row_scale_sub_into(m: &DenseMatrix, scale: &[f64], sub: &DenseMatrix, out: &mut DenseMatrix) {
    assert_eq!(m.rows(), scale.len(), "row_scale length mismatch");
    assert_eq!(m.shape(), sub.shape(), "row_scale_sub shape mismatch");
    let (rows, cols) = m.shape();
    out.resize_zeroed(rows, cols);
    let (mv, sv, ov) = (m.as_slice(), sub.as_slice(), out.as_mut_slice());
    for (i, &s) in scale.iter().enumerate().take(rows) {
        for j in 0..cols {
            let idx = i * cols + j;
            ov[idx] = mv[idx] * s - sv[idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::updates;
    use rand::RngExt;
    use tgs_graph::UserGraph;
    use tgs_linalg::{seeded_rng, CsrMatrix};

    /// A small random-but-deterministic problem instance (mirrors
    /// `updates::tests::instance`).
    fn instance(seed: u64) -> (CsrMatrix, CsrMatrix, CsrMatrix, UserGraph, DenseMatrix) {
        let mut rng = seeded_rng(seed);
        let (n, m, l) = (12, 8, 10);
        let rand_csr = |rows: usize, cols: usize, nnz: usize, rng: &mut rand::rngs::StdRng| {
            let trip: Vec<(usize, usize, f64)> = (0..nnz)
                .map(|_| {
                    (
                        rng.random_range(0..rows),
                        rng.random_range(0..cols),
                        rng.random_range(0.2..2.0),
                    )
                })
                .collect();
            CsrMatrix::from_triplets(rows, cols, &trip).unwrap()
        };
        let xp = rand_csr(n, l, 60, &mut rng);
        let xu = rand_csr(m, l, 40, &mut rng);
        let xr = rand_csr(m, n, 30, &mut rng);
        let edges: Vec<(usize, usize, f64)> = (0..12)
            .map(|_| (rng.random_range(0..m), rng.random_range(0..m), 1.0))
            .filter(|&(a, b, _)| a != b)
            .collect();
        let graph = UserGraph::from_edges(m, &edges);
        let sf0 = DenseMatrix::filled(l, 3, 1.0 / 3.0);
        (xp, xu, xr, graph, sf0)
    }

    fn assert_factors_identical(a: &TriFactors, b: &TriFactors, what: &str) {
        assert_eq!(a.sp, b.sp, "{what}: Sp diverged");
        assert_eq!(a.su, b.su, "{what}: Su diverged");
        assert_eq!(a.sf, b.sf, "{what}: Sf diverged");
        assert_eq!(a.hp, b.hp, "{what}: Hp diverged");
        assert_eq!(a.hu, b.hu, "{what}: Hu diverged");
    }

    #[test]
    fn offline_sweep_bit_identical_to_reference_rules() {
        for seed in 0..4u64 {
            let (xp, xu, xr, graph, sf0) = instance(seed);
            let input = TriInput {
                xp: &xp,
                xu: &xu,
                xr: &xr,
                graph: &graph,
                sf0: &sf0,
            };
            let mut reference = TriFactors::random(12, 8, 10, 3, seed + 50);
            let mut fused = reference.clone();
            let mut ws = UpdateWorkspace::new();
            ws.bind(&input);
            for _ in 0..5 {
                updates::update_sp(&input, &mut reference);
                updates::update_hp(&input, &mut reference);
                updates::update_su_offline(&input, &mut reference, 0.4);
                updates::update_hu(&input, &mut reference);
                updates::update_sf(&input, &mut reference, 0.07, &sf0);
                ws.sweep_offline(&input, &mut fused, 0.07, 0.4, &sf0);
                assert_factors_identical(&reference, &fused, &format!("seed {seed}"));
            }
        }
    }

    #[test]
    fn online_sweep_bit_identical_to_reference_rules() {
        for seed in 0..4u64 {
            let (xp, xu, xr, graph, sf0) = instance(seed + 20);
            let input = TriInput {
                xp: &xp,
                xu: &xu,
                xr: &xr,
                graph: &graph,
                sf0: &sf0,
            };
            let mut reference = TriFactors::random(12, 8, 10, 3, seed + 90);
            let mut fused = reference.clone();
            let mut ws = UpdateWorkspace::new();
            ws.bind(&input);
            let new_rows = vec![0, 3];
            let evolving_rows = vec![1, 2, 4, 5, 6, 7];
            let su_target = DenseMatrix::from_fn(6, 3, |i, j| 0.1 + ((i + j) % 3) as f64 * 0.3);
            let sf_target = DenseMatrix::from_fn(10, 3, |i, j| 0.2 + ((i * j) % 4) as f64 * 0.2);
            for _ in 0..5 {
                updates::update_sf(&input, &mut reference, 0.15, &sf_target);
                updates::update_sp(&input, &mut reference);
                updates::update_hp(&input, &mut reference);
                updates::update_hu(&input, &mut reference);
                updates::update_su_online(
                    &input,
                    &mut reference,
                    0.3,
                    0.2,
                    &new_rows,
                    &evolving_rows,
                    &su_target,
                );
                ws.sweep_online(
                    &input,
                    &mut fused,
                    0.15,
                    0.3,
                    0.2,
                    &sf_target,
                    &new_rows,
                    &evolving_rows,
                    &su_target,
                );
                assert_factors_identical(&reference, &fused, &format!("seed {seed}"));
            }
        }
    }

    #[test]
    fn balance_init_scales_bit_identical_to_reference() {
        for seed in 0..4u64 {
            let (xp, xu, xr, graph, sf0) = instance(seed + 40);
            let input = TriInput {
                xp: &xp,
                xu: &xu,
                xr: &xr,
                graph: &graph,
                sf0: &sf0,
            };
            let mut reference = TriFactors::random(12, 8, 10, 3, seed);
            let mut fused = reference.clone();
            updates::balance_init_scales(&input, &mut reference);
            let mut ws = UpdateWorkspace::new();
            ws.bind(&input);
            ws.balance_init_scales(&input, &mut fused);
            assert_factors_identical(&reference, &fused, &format!("seed {seed}"));
        }
    }

    #[test]
    fn fused_objectives_match_reference_evaluation() {
        use crate::objective::{offline_objective, online_objective};
        for seed in 0..4u64 {
            let (xp, xu, xr, graph, sf0) = instance(seed + 60);
            let input = TriInput {
                xp: &xp,
                xu: &xu,
                xr: &xr,
                graph: &graph,
                sf0: &sf0,
            };
            let mut f = TriFactors::random(12, 8, 10, 3, seed + 7);
            let mut ws = UpdateWorkspace::new();
            ws.bind(&input);
            let close = |a: f64, b: f64, what: &str| {
                assert!(
                    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs())),
                    "{what}: fused {a} vs reference {b}"
                );
            };
            // Offline: after each sweep the fused objective must agree.
            for _ in 0..3 {
                ws.sweep_offline(&input, &mut f, 0.1, 0.5, &sf0);
                let fused = ws.objective_offline(&input, &f, 0.1, 0.5);
                let reference = offline_objective(&input, &f, 0.1, 0.5);
                close(fused.tweet_feature, reference.tweet_feature, "tweet");
                close(fused.user_feature, reference.user_feature, "user");
                close(fused.user_tweet, reference.user_tweet, "retweet");
                close(fused.lexicon, reference.lexicon, "lexicon");
                close(fused.graph, reference.graph, "graph");
                close(fused.total(), reference.total(), "total");
            }
            // Online: same contract for the online sweep/objective pair.
            let new_rows = vec![0, 2];
            let evolving_rows = vec![1, 3, 4, 5, 6, 7];
            let su_target = DenseMatrix::from_fn(6, 3, |i, j| 0.1 + ((i * 2 + j) % 4) as f64 * 0.2);
            for _ in 0..3 {
                ws.sweep_online(
                    &input,
                    &mut f,
                    0.1,
                    0.5,
                    0.3,
                    &sf0,
                    &new_rows,
                    &evolving_rows,
                    &su_target,
                );
                let fused = ws.objective_online(
                    &input,
                    &f,
                    0.1,
                    &sf0,
                    0.5,
                    0.3,
                    Some(&su_target),
                    &evolving_rows,
                );
                let reference = online_objective(
                    &input,
                    &f,
                    0.1,
                    &sf0,
                    0.5,
                    0.3,
                    Some(&su_target),
                    &evolving_rows,
                );
                close(fused.tweet_feature, reference.tweet_feature, "online tweet");
                close(fused.user_feature, reference.user_feature, "online user");
                close(
                    fused.temporal_user,
                    reference.temporal_user,
                    "online temporal",
                );
                close(fused.total(), reference.total(), "online total");
            }
        }
    }

    /// The incremental bind must never keep a stale transpose: rebinding
    /// to a same-shape, same-nnz matrix with different *values* (the
    /// adversarial case for any fingerprint scheme) must produce sweeps
    /// bit-identical to a fresh workspace, and rebinding the unchanged
    /// input (the amortized fast path) must too.
    #[test]
    fn incremental_bind_never_stales() {
        let (xp_a, xu, xr, graph, sf0) = instance(3);
        // Same sparsity pattern as xp_a, different values.
        let trip: Vec<(usize, usize, f64)> =
            xp_a.iter().map(|(r, c, v)| (r, c, v + 0.125)).collect();
        let xp_b = CsrMatrix::from_triplets(xp_a.rows(), xp_a.cols(), &trip).unwrap();
        assert_eq!(xp_a.shape(), xp_b.shape());
        assert_eq!(xp_a.nnz(), xp_b.nnz());
        let input_a = TriInput {
            xp: &xp_a,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let input_b = TriInput {
            xp: &xp_b,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        // Lockstep: the long-lived workspace rebinds A → B → A → A
        // (changed values under identical shape/nnz, then an unchanged
        // rebind); a throwaway workspace bound fresh each round is the
        // reference. Factors advance together, so any stale cached
        // transpose diverges the factors at that round.
        let mut reused = UpdateWorkspace::new();
        let mut f_reused = TriFactors::random(12, 8, 10, 3, 5);
        let mut f_fresh = f_reused.clone();
        for (round, input) in [input_a, input_b, input_a, input_a].iter().enumerate() {
            reused.bind(input);
            reused.sweep_offline(input, &mut f_reused, 0.07, 0.4, &sf0);
            let mut fresh = UpdateWorkspace::new();
            fresh.bind(input);
            fresh.sweep_offline(input, &mut f_fresh, 0.07, 0.4, &sf0);
            assert_factors_identical(
                &f_reused,
                &f_fresh,
                &format!("round {round}: incremental bind diverged"),
            );
        }
    }

    /// External factor mutation (the sharded solver's merged-`Sf`
    /// broadcast) must not leave the next sweep running on a stale
    /// cached Gram: after `invalidate_factor_caches`, a warmed
    /// workspace must match a fresh one bit-for-bit.
    #[test]
    fn invalidate_after_external_factor_mutation() {
        let (xp, xu, xr, graph, sf0) = instance(9);
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let mut warmed = UpdateWorkspace::new();
        let mut f_warmed = TriFactors::random(12, 8, 10, 3, 21);
        warmed.bind(&input);
        warmed.sweep_offline(&input, &mut f_warmed, 0.07, 0.4, &sf0);
        warmed.objective_offline(&input, &f_warmed, 0.07, 0.4);
        // Simulate the sharded merge: replace Sf from outside.
        f_warmed.sf.map_in_place(|v| (v * 0.9).max(1e-12));
        warmed.invalidate_factor_caches();
        let mut f_fresh = f_warmed.clone();
        warmed.sweep_offline(&input, &mut f_warmed, 0.07, 0.4, &sf0);
        let mut fresh = UpdateWorkspace::new();
        fresh.bind(&input);
        fresh.sweep_offline(&input, &mut f_fresh, 0.07, 0.4, &sf0);
        assert_factors_identical(&f_warmed, &f_fresh, "post-mutation sweep");
    }

    #[test]
    #[should_panic(expected = "UpdateWorkspace::bind must be called")]
    fn sweep_without_bind_panics() {
        let (xp, xu, xr, graph, sf0) = instance(1);
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let mut f = TriFactors::random(12, 8, 10, 3, 1);
        let mut ws = UpdateWorkspace::new();
        ws.sweep_offline(&input, &mut f, 0.1, 0.5, &sf0);
    }
}

//! Algorithm 2: the online solver for dynamic sentiment clustering.
//!
//! Per snapshot `t`, the solver (1) partitions users into new / evolving /
//! disappeared, (2) warm-starts `Sf(t)` from the decayed window `Sfw(t)`
//! and evolving users from `Suw(t)` (Algorithm 2 line 1), and (3) iterates
//! the online update rules — the temporal regularizers `α‖Sf(t)−Sfw(t)‖²`
//! and `γ‖Su(d,e)(t)−Suw(t)‖²` keep the solution smooth over time.

use tgs_linalg::{random_factor_with, seeded_rng};

use crate::config::OnlineConfig;
use crate::error::TgsError;
use crate::factors::{InitStrategy, TriFactors};
use crate::input::TriInput;
use crate::objective::{online_objective, ObjectiveParts};
use crate::window::{FactorWindow, SentimentHistory, UserPartition};
use crate::workspace::UpdateWorkspace;

/// One snapshot of data plus the mapping from local user rows to global
/// user ids.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotData<'a> {
    /// The snapshot's matrices (`Xp(t)`, `Xu(t)`, `Xr(t)`, `Gu(t)`, `Sf0`).
    pub input: TriInput<'a>,
    /// Global user id of each local row of `Xu(t)` / `Xr(t)`.
    pub user_ids: &'a [usize],
}

/// Result of one online step.
#[derive(Debug, Clone)]
pub struct OnlineStepResult {
    /// Converged local factors (`Su` rows align with
    /// [`SnapshotData::user_ids`]).
    pub factors: TriFactors,
    /// New/evolving/disappeared user partition used for this step.
    pub partition: UserPartition,
    /// Per-iteration objective decomposition (empty unless tracking).
    pub history: Vec<ObjectiveParts>,
    /// Iterations actually run.
    pub iterations: usize,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Final objective value (Eq. 19).
    pub objective: f64,
}

impl OnlineStepResult {
    /// Hard tweet labels for the snapshot.
    pub fn tweet_labels(&self) -> Vec<usize> {
        self.factors.tweet_labels()
    }

    /// Hard user labels (local row order).
    pub fn user_labels(&self) -> Vec<usize> {
        self.factors.user_labels()
    }
}

/// The stateful online solver. Feed snapshots in time order via
/// [`OnlineSolver::step`].
#[derive(Debug, Clone)]
pub struct OnlineSolver {
    config: OnlineConfig,
    sf_window: FactorWindow,
    history: SentimentHistory,
    steps: u64,
    /// Fused-sweep scratch arena, rebound to each snapshot's matrices and
    /// reused across snapshots so steady-state steps stay allocation-light.
    workspace: UpdateWorkspace,
}

/// The temporal state an [`OnlineSolver`] carries between snapshots, in
/// plain owned form for checkpointing. Produced by
/// [`OnlineSolver::export_state`]; consumed by [`OnlineSolver::from_state`].
/// Restoring a solver from its exported state is exact: subsequent steps
/// produce bit-identical results to the original solver.
#[derive(Debug, Clone)]
pub struct OnlineSolverState {
    /// Snapshots processed so far (drives the per-step warm-start seed).
    pub steps: u64,
    /// The `Sf` window contents, most recent first.
    pub sf_window: Vec<tgs_linalg::DenseMatrix>,
    /// The per-user history's global step counter.
    pub history_step: i64,
    /// Per-user `(step, row)` observations, sorted by user id. Steps are
    /// signed: rows imported through a live rebalance keep their age and
    /// can predate the importing solver's step 0.
    pub history_rows: crate::window::HistoryRows,
}

/// One ghost row's prescription: the remote user's global id and their
/// current sentiment factor (the raw decayed `Suw` aggregate broadcast by
/// the owning shard; uniform when the owner has no history yet).
pub type GhostFactor = (usize, Vec<f64>);

/// Per-user temporal state exported for a live shard rebalance —
/// everything the owning solver knows about a contiguous user-id range,
/// in age-relative (placement-independent) form. Produced by
/// [`OnlineSolver::export_users`]; consumed by
/// [`OnlineSolver::import_users`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MigratedUsers {
    /// Per-user `(age, Su row)` observations, sorted by user id.
    pub rows: crate::window::AgedHistoryRows,
}

impl OnlineSolver {
    /// Creates a solver with empty history, reporting configuration
    /// violations as [`TgsError::InvalidConfig`].
    pub fn try_new(config: OnlineConfig) -> Result<Self, TgsError> {
        config.try_validate()?;
        Ok(Self::new_unchecked(config))
    }

    /// Panicking wrapper around [`OnlineSolver::try_new`].
    pub fn new(config: OnlineConfig) -> Self {
        config.validate();
        Self::new_unchecked(config)
    }

    fn new_unchecked(config: OnlineConfig) -> Self {
        // The Sf window is always normalized: with the paper's w = 2 an
        // unnormalized target τ·Sf(t−1) re-shrinks Sf every snapshot and
        // destabilizes cluster-column alignment over long streams (see
        // DESIGN.md; ablated in the benches). τ still governs the decay
        // of per-user history below.
        let sf_window = FactorWindow::new(config.window, config.tau, true);
        let history =
            SentimentHistory::new(config.k, config.window, config.tau, config.normalize_window);
        Self {
            config,
            sf_window,
            history,
            steps: 0,
            workspace: UpdateWorkspace::new(),
        }
    }

    /// The solver configuration.
    pub fn config(&self) -> &OnlineConfig {
        &self.config
    }

    /// Snapshots processed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Decayed sentiment estimate for any user seen within the window —
    /// the "disappeared users carry forward" view of Fig. 5.
    pub fn sentiment_of(&self, user: usize) -> Option<Vec<f64>> {
        self.history.aggregate_row(user)
    }

    /// Exports the solver's temporal state for checkpointing.
    pub fn export_state(&self) -> OnlineSolverState {
        OnlineSolverState {
            steps: self.steps,
            sf_window: self.sf_window.snapshots().cloned().collect(),
            history_step: self.history.steps(),
            history_rows: self.history.export_rows(),
        }
    }

    /// The per-user history's global step counter — exposed so delta
    /// checkpoints can record the counter without the O(users) clone of
    /// [`OnlineSolver::export_state`].
    pub fn history_step(&self) -> i64 {
        self.history.steps()
    }

    /// Exports the history rows of just the given users (see
    /// [`crate::window::SentimentHistory::export_rows_for`]) — the
    /// O(changes) read behind delta checkpoints.
    pub fn export_history_rows_for(&self, users: &[usize]) -> crate::window::HistoryRows {
        self.history.export_rows_for(users)
    }

    /// The `Sf` window's retained snapshots, most recent first, without
    /// cloning (cf. the owned copies in [`OnlineSolver::export_state`]).
    pub fn sf_window_snapshots(&self) -> impl Iterator<Item = &tgs_linalg::DenseMatrix> {
        self.sf_window.snapshots()
    }

    /// Rebuilds a solver from checkpointed state. The restored solver is
    /// bit-identical to the original: feeding both the same subsequent
    /// snapshots yields the same factors, objectives and partitions.
    pub fn from_state(config: OnlineConfig, state: OnlineSolverState) -> Result<Self, TgsError> {
        config.try_validate()?;
        // Semantic validation: a structurally well-formed but tampered
        // state must fail here with a typed error, not panic later inside
        // the window aggregation.
        if let Some(first) = state.sf_window.first() {
            for sf in &state.sf_window {
                if sf.cols() != config.k || sf.shape() != first.shape() {
                    return Err(TgsError::corrupt(format!(
                        "sf window snapshot is {}×{}, expected a consistent l×{}",
                        sf.rows(),
                        sf.cols(),
                        config.k
                    )));
                }
            }
        }
        // Mirror `new`: the Sf window is always normalized (see the
        // comment there); the per-user history follows the config.
        let sf_window = FactorWindow::restore(config.window, config.tau, true, state.sf_window);
        let history = SentimentHistory::restore(
            config.k,
            config.window,
            config.tau,
            config.normalize_window,
            state.history_step,
            state.history_rows,
        )?;
        Ok(Self {
            config,
            sf_window,
            history,
            steps: state.steps,
            workspace: UpdateWorkspace::new(),
        })
    }

    /// Processes one snapshot: warm start, iterate updates, commit
    /// history. Malformed inputs are reported as the matching
    /// [`TgsError`] shape variant.
    pub fn try_step(&mut self, data: &SnapshotData<'_>) -> Result<OnlineStepResult, TgsError> {
        self.step_impl(data, None, &[])
    }

    /// Like [`OnlineSolver::try_step`], but with ghost rows: each
    /// `(user, factor)` pair in `ghosts` names a user of `data.user_ids`
    /// whose row is a ghost — a remote user materialized on this shard
    /// for a cross-shard re-tweet edge. Ghost rows warm-start from (and
    /// are γ-regularized toward) the carried remote factor instead of
    /// local history, and they are **not** recorded into this solver's
    /// per-user history — the owning shard records them. With an empty
    /// list this is exactly `try_step`.
    pub fn try_step_with_ghosts(
        &mut self,
        data: &SnapshotData<'_>,
        ghosts: &[GhostFactor],
    ) -> Result<OnlineStepResult, TgsError> {
        self.step_impl(data, None, ghosts)
    }

    /// Like [`OnlineSolver::try_step`], but sourcing the `Sfw(t)`
    /// warm-start/regularization target from an *externally shared*
    /// window instead of this solver's own.
    ///
    /// This is the seam shard-parallel solving hangs off
    /// ([`crate::ShardedOnlineSolver`]): each shard solves its user/tweet
    /// factors locally against the globally merged word–sentiment window,
    /// and the coordinator — not this solver — pushes the merged `Sf(t)`
    /// back into `shared`. The solver's own window stays untouched (and
    /// empty when every step goes through this entry point); per-user
    /// history still advances normally, since users are shard-local.
    pub fn try_step_shared(
        &mut self,
        data: &SnapshotData<'_>,
        shared: &FactorWindow,
    ) -> Result<OnlineStepResult, TgsError> {
        self.step_impl(data, Some(shared), &[])
    }

    /// Shared-window stepping with ghost rows — the full sharded
    /// protocol: `Sfw(t)` comes from the coordinator's merged window and
    /// ghost rows carry the owning shards' broadcast factors (see
    /// [`OnlineSolver::try_step_with_ghosts`]).
    pub fn try_step_shared_with_ghosts(
        &mut self,
        data: &SnapshotData<'_>,
        shared: &FactorWindow,
        ghosts: &[GhostFactor],
    ) -> Result<OnlineStepResult, TgsError> {
        self.step_impl(data, Some(shared), ghosts)
    }

    /// True when this solver has in-window history for `user` (i.e. it
    /// acts as the user's owner for ghost-factor broadcasts).
    pub fn knows_user(&self, user: usize) -> bool {
        self.history.knows(user)
    }

    /// Removes and returns the temporal state of every user with id in
    /// `lo..hi` — the export half of a live shard rebalance. The
    /// returned rows are age-relative, so importing them into a solver
    /// with a different step counter preserves each observation's decay
    /// age exactly; export followed by import into the same solver (with
    /// no steps in between) is a lossless round trip.
    pub fn export_users(&mut self, lo: usize, hi: usize) -> MigratedUsers {
        MigratedUsers {
            rows: self.history.take_users(lo, hi),
        }
    }

    /// Imports user state exported from another solver (see
    /// [`OnlineSolver::export_users`]). Rejects malformed rows and users
    /// this solver already tracks — validation happens before any
    /// insertion, and a rejection returns the state untouched so the
    /// caller can restore it to its source instead of losing it.
    #[allow(clippy::result_large_err)]
    pub fn import_users(&mut self, users: MigratedUsers) -> Result<(), (TgsError, MigratedUsers)> {
        self.history
            .import_aged(users.rows)
            .map_err(|(e, rows)| (e, MigratedUsers { rows }))
    }

    /// The one step implementation behind [`OnlineSolver::try_step`]
    /// (own window) and [`OnlineSolver::try_step_shared`] (coordinator's
    /// window), optionally with ghost rows. All paths are bit-identical
    /// given windows with equal contents and no ghosts.
    fn step_impl(
        &mut self,
        data: &SnapshotData<'_>,
        shared: Option<&FactorWindow>,
        ghosts: &[GhostFactor],
    ) -> Result<OnlineStepResult, TgsError> {
        let input = &data.input;
        input.try_validate(self.config.k)?;
        if data.user_ids.len() != input.m() {
            return Err(TgsError::UserIdCountMismatch {
                rows: input.m(),
                ids: data.user_ids.len(),
            });
        }
        let k = self.config.k;
        let mut partition = self.history.partition(data.user_ids);

        // --- Resolve ghost rows (cross-shard re-tweet protocol) ---
        // Each ghost is a remote user present only through a re-tweet
        // edge; their row is prescribed by the carried remote factor and
        // withheld from this shard's history.
        let mut ghost_dists: Vec<(usize, &[f64])> = Vec::with_capacity(ghosts.len());
        // One pass over the user ids instead of a scan per ghost.
        let user_rows: std::collections::HashMap<usize, usize> = if ghosts.is_empty() {
            std::collections::HashMap::new()
        } else {
            data.user_ids
                .iter()
                .enumerate()
                .map(|(row, &u)| (u, row))
                .collect()
        };
        for (user, dist) in ghosts {
            let row = *user_rows.get(user).ok_or_else(|| {
                TgsError::invalid_argument(format!(
                    "ghost user {user} is not a row of this snapshot slice"
                ))
            })?;
            if dist.len() != k {
                return Err(TgsError::invalid_argument(format!(
                    "ghost factor for user {user} has {} classes, expected {k}",
                    dist.len()
                )));
            }
            ghost_dists.push((row, dist.as_slice()));
        }
        if !ghost_dists.is_empty() {
            ghost_dists.sort_unstable_by_key(|&(row, _)| row);
            let ghost_rows: Vec<usize> = ghost_dists.iter().map(|&(row, _)| row).collect();
            partition
                .new_rows
                .retain(|row| ghost_rows.binary_search(row).is_err());
            partition
                .evolving_rows
                .retain(|row| ghost_rows.binary_search(row).is_err());
            partition.ghost_rows = ghost_rows;
        }

        // --- Warm start (Algorithm 2 lines 1–2) ---
        let step_seed = self
            .config
            .seed
            .wrapping_add(self.steps.wrapping_mul(0x9E37_79B9));
        let mut factors = TriFactors::init(
            input.n(),
            input.m(),
            input.l(),
            k,
            input.sf0,
            self.config.init,
            step_seed,
        );
        let sf_window = shared.unwrap_or(&self.sf_window);
        let sf_target = sf_window.aggregate().unwrap_or_else(|| input.sf0.clone());
        // Sf(t) = Sfw(t) on non-first snapshots.
        if !sf_window.is_empty() {
            factors.sf = sf_target.clone();
            factors.sf.clamp_min(tgs_linalg::FACTOR_FLOOR);
        }
        // Evolving users start from their decayed history (L1-normalized
        // for the warm start so long-absent users still begin at a sane
        // scale; the raw decayed aggregate stays the γ-target, so their
        // temporal pull fades naturally).
        let su_target = self
            .history
            .aggregate_matrix(data.user_ids, &partition.evolving_rows);
        let mut su_init = su_target.clone();
        su_init.normalize_rows_l1();
        for (i, &row) in partition.evolving_rows.iter().enumerate() {
            factors.su.copy_row_from(row, &su_init, i);
        }
        factors.su.clamp_min(tgs_linalg::FACTOR_FLOOR);
        // New users: fresh random rows (already random from init).
        let mut rng = seeded_rng(step_seed.wrapping_add(1));
        let fresh = random_factor_with(partition.new_rows.len(), k, &mut rng);
        for (i, &row) in partition.new_rows.iter().enumerate() {
            factors.su.copy_row_from(row, &fresh, i);
        }
        // Ghost rows: the carried remote factor, L1-normalized for the
        // warm start (mirroring evolving users); the raw factor stays the
        // γ-target below.
        for &(row, dist) in &ghost_dists {
            let total: f64 = dist.iter().sum();
            let scale = if total > 0.0 { 1.0 / total } else { 1.0 };
            for (j, &v) in dist.iter().enumerate() {
                factors
                    .su
                    .set(row, j, (v * scale).max(tgs_linalg::FACTOR_FLOOR));
            }
        }
        // Keep Su at distribution scale (its rows are the temporal state);
        // Sp, Hp, Hu absorb the snapshot's data norms.
        self.workspace.bind(input);
        self.workspace.balance_init_scales(input, &mut factors);

        // --- Iterate (Algorithm 2 lines 3–8) ---
        // The γ-regularized rows are the evolving users plus any ghost
        // rows (pulled toward the owner's broadcast factor). Without
        // ghosts this is exactly the evolving set — same slices, same
        // matrix — preserving the no-ghost paths bit for bit.
        let mut reg_rows_merged;
        let mut reg_target_merged;
        let (reg_rows, reg_target): (&[usize], &tgs_linalg::DenseMatrix) = if ghost_dists.is_empty()
        {
            (&partition.evolving_rows, &su_target)
        } else {
            reg_rows_merged =
                Vec::with_capacity(partition.evolving_rows.len() + partition.ghost_rows.len());
            reg_rows_merged.extend_from_slice(&partition.evolving_rows);
            reg_rows_merged.extend_from_slice(&partition.ghost_rows);
            reg_rows_merged.sort_unstable();
            reg_target_merged = tgs_linalg::DenseMatrix::zeros(reg_rows_merged.len(), k);
            for (i, &row) in reg_rows_merged.iter().enumerate() {
                if let Ok(g) = ghost_dists.binary_search_by_key(&row, |&(r, _)| r) {
                    for (j, &v) in ghost_dists[g].1.iter().enumerate() {
                        reg_target_merged.set(i, j, v);
                    }
                } else {
                    // `evolving_rows` is built in ascending row order by
                    // `partition`, so the lookup stays logarithmic.
                    let e = partition
                        .evolving_rows
                        .binary_search(&row)
                        .expect("merged row is evolving or ghost");
                    reg_target_merged.copy_row_from(i, &su_target, e);
                }
            }
            (&reg_rows_merged, &reg_target_merged)
        };
        let (alpha, beta, gamma) = (self.config.alpha, self.config.beta, self.config.gamma);
        let evaluate = |f: &TriFactors| {
            online_objective(
                input,
                f,
                alpha,
                &sf_target,
                beta,
                gamma,
                Some(reg_target),
                reg_rows,
            )
        };
        let mut history = Vec::new();
        let mut prev = evaluate(&factors);
        if self.config.track_objective {
            history.push(prev);
        }
        let mut converged = false;
        let mut iterations = 0;
        for it in 0..self.config.max_iters {
            self.workspace.sweep_online(
                input,
                &mut factors,
                alpha,
                beta,
                gamma,
                &sf_target,
                &partition.new_rows,
                reg_rows,
                reg_target,
            );
            iterations = it + 1;
            // In-loop evaluation through the workspace caches (agrees
            // with `online_objective` to ~1e-12 relative).
            let cur = self.workspace.objective_online(
                input,
                &factors,
                alpha,
                &sf_target,
                beta,
                gamma,
                Some(reg_target),
                reg_rows,
            );
            if self.config.track_objective {
                history.push(cur);
            }
            let denom = prev.total().abs().max(1.0);
            if (prev.total() - cur.total()).abs() / denom < self.config.tol {
                prev = cur;
                converged = true;
                break;
            }
            prev = cur;
        }
        debug_assert!(
            factors.all_nonnegative(),
            "updates must preserve non-negativity"
        );

        // --- Commit (window + per-user history) ---
        // Rows are recorded L1-normalized: Su(ij) is "the likelihood of
        // user i's sentiment in class j" (§2), so the carried state is a
        // class distribution, immune to the solver's arbitrary row scale.
        let mut su_dist = factors.su.clone();
        su_dist.normalize_rows_l1();
        // Ghost rows are withheld: the owning shard records those users.
        self.history
            .record_masked(data.user_ids, &su_dist, &partition.ghost_rows);
        // Under a shared window the coordinator pushes the *merged* Sf(t)
        // after gathering every shard; pushing the local one here would
        // desynchronize the two windows.
        if shared.is_none() {
            self.sf_window.push(factors.sf.clone());
        }
        self.steps += 1;

        Ok(OnlineStepResult {
            factors,
            partition,
            history,
            iterations,
            converged,
            objective: prev.total(),
        })
    }

    /// Panicking wrapper around [`OnlineSolver::try_step`], kept for the
    /// bench binaries and quick scripts.
    pub fn step(&mut self, data: &SnapshotData<'_>) -> OnlineStepResult {
        self.try_step(data).unwrap_or_else(|e| panic!("{e}"))
    }

    /// First-snapshot behaviour check: true until [`OnlineSolver::step`]
    /// has been called.
    pub fn is_cold(&self) -> bool {
        self.steps == 0
    }

    /// Uses [`InitStrategy`] for the first snapshot; exposed for tests.
    pub fn init_strategy(&self) -> InitStrategy {
        self.config.init
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;
    use tgs_graph::UserGraph;
    use tgs_linalg::{seeded_rng, CsrMatrix, DenseMatrix};

    /// Planted two-cluster snapshot over the given global user set.
    /// Users with even global id are class 0, odd are class 1.
    fn snapshot(
        users: &[usize],
        n: usize,
        l: usize,
        seed: u64,
    ) -> (
        CsrMatrix,
        CsrMatrix,
        CsrMatrix,
        UserGraph,
        DenseMatrix,
        Vec<usize>,
    ) {
        let mut rng = seeded_rng(seed);
        let m = users.len();
        let mut xp = Vec::new();
        let mut xu = Vec::new();
        let mut xr = Vec::new();
        let mut edges = Vec::new();
        let mut tweet_class = Vec::new();
        for i in 0..n {
            // pick an author, tweet inherits the author's class
            let a = rng.random_range(0..m);
            let c = users[a] % 2;
            tweet_class.push(c);
            for _ in 0..4 {
                let f = 2 * rng.random_range(0..l / 2) + c;
                xp.push((i, f, 1.0));
            }
            xr.push((a, i, 1.0));
        }
        for (row, &u) in users.iter().enumerate() {
            let c = u % 2;
            for _ in 0..6 {
                let f = 2 * rng.random_range(0..l / 2) + c;
                xu.push((row, f, 1.0));
            }
            // homophilous edge to a same-class peer
            if let Some(peer) = users.iter().position(|&v| v % 2 == c && v != u) {
                edges.push((row, peer, 1.0));
            }
        }
        let xp = CsrMatrix::from_triplets(n, l, &xp).unwrap();
        let xu = CsrMatrix::from_triplets(m, l, &xu).unwrap();
        let xr = CsrMatrix::from_triplets(m, n, &xr).unwrap();
        let graph = UserGraph::from_edges(m, &edges);
        let sf0 = DenseMatrix::from_fn(l, 2, |f, j| if f % 2 == j { 0.8 } else { 0.2 });
        (xp, xu, xr, graph, sf0, tweet_class)
    }

    fn config() -> OnlineConfig {
        OnlineConfig {
            k: 2,
            max_iters: 80,
            tol: 1e-7,
            ..Default::default()
        }
    }

    #[test]
    fn first_step_partitions_all_as_new() {
        let users = vec![0, 1, 2, 3];
        let (xp, xu, xr, graph, sf0, _) = snapshot(&users, 20, 10, 1);
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let mut solver = OnlineSolver::new(config());
        assert!(solver.is_cold());
        let result = solver.step(&SnapshotData {
            input,
            user_ids: &users,
        });
        assert_eq!(result.partition.new_rows.len(), 4);
        assert!(result.partition.evolving_rows.is_empty());
        assert!(!solver.is_cold());
    }

    #[test]
    fn second_step_sees_evolving_and_disappeared() {
        let users_a = vec![0, 1, 2, 3];
        let users_b = vec![2, 3, 4, 5];
        let mut solver = OnlineSolver::new(config());
        let (xp, xu, xr, graph, sf0, _) = snapshot(&users_a, 20, 10, 1);
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        solver.step(&SnapshotData {
            input,
            user_ids: &users_a,
        });
        let (xp, xu, xr, graph, sf0, _) = snapshot(&users_b, 20, 10, 2);
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let result = solver.step(&SnapshotData {
            input,
            user_ids: &users_b,
        });
        assert_eq!(result.partition.evolving_rows, vec![0, 1]); // users 2, 3
        assert_eq!(result.partition.new_rows, vec![2, 3]); // users 4, 5
        assert_eq!(result.partition.disappeared, vec![0, 1]);
    }

    #[test]
    fn online_clusters_planted_stream() {
        let mut solver = OnlineSolver::new(config());
        let mut accs = Vec::new();
        for t in 0..4u64 {
            let users: Vec<usize> = (0..8).collect();
            let (xp, xu, xr, graph, sf0, tweet_class) = snapshot(&users, 40, 12, t + 10);
            let input = TriInput {
                xp: &xp,
                xu: &xu,
                xr: &xr,
                graph: &graph,
                sf0: &sf0,
            };
            let result = solver.step(&SnapshotData {
                input,
                user_ids: &users,
            });
            let acc = tgs_eval::clustering_accuracy(&result.tweet_labels(), &tweet_class);
            accs.push(acc);
            let user_truth: Vec<usize> = users.iter().map(|&u| u % 2).collect();
            let uacc = tgs_eval::clustering_accuracy(&result.user_labels(), &user_truth);
            assert!(uacc > 0.7, "step {t}: user accuracy {uacc}");
        }
        let last = *accs.last().unwrap();
        assert!(
            last > 0.85,
            "final tweet accuracy {last} (history {accs:?})"
        );
    }

    #[test]
    fn disappeared_users_still_queryable() {
        // window = 3 keeps two past snapshots, so a user absent from one
        // snapshot still has an in-window estimate.
        let mut solver = OnlineSolver::new(OnlineConfig {
            window: 3,
            ..config()
        });
        let users_a = vec![0, 1, 2, 3];
        let (xp, xu, xr, graph, sf0, _) = snapshot(&users_a, 20, 10, 3);
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        solver.step(&SnapshotData {
            input,
            user_ids: &users_a,
        });
        // user 0 absent in step 2 but within window
        let users_b = vec![1, 2, 3, 4];
        let (xp, xu, xr, graph, sf0, _) = snapshot(&users_b, 20, 10, 4);
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        solver.step(&SnapshotData {
            input,
            user_ids: &users_b,
        });
        let s = solver.sentiment_of(0);
        assert!(
            s.is_some(),
            "disappeared user should keep a decayed estimate"
        );
        assert_eq!(s.unwrap().len(), 2);
    }

    #[test]
    fn objective_non_increasing_within_step() {
        let users: Vec<usize> = (0..8).collect();
        let (xp, xu, xr, graph, sf0, _) = snapshot(&users, 40, 12, 6);
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let cfg = OnlineConfig {
            track_objective: true,
            ..config()
        };
        let mut solver = OnlineSolver::new(cfg);
        // warm the window so temporal terms are active on the second step
        solver.step(&SnapshotData {
            input,
            user_ids: &users,
        });
        let (xp, xu, xr, graph, sf0, _) = snapshot(&users, 40, 12, 7);
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let result = solver.step(&SnapshotData {
            input,
            user_ids: &users,
        });
        assert!(result.history.len() >= 2);
        for w in result.history.windows(2) {
            assert!(
                w[1].total() <= w[0].total() * (1.0 + 1e-6) + 1e-9,
                "objective rose {} -> {}",
                w[0].total(),
                w[1].total()
            );
        }
    }

    #[test]
    fn restore_from_state_is_bit_identical() {
        let users: Vec<usize> = (0..6).collect();
        let mut original = OnlineSolver::new(config());
        for t in 0..2u64 {
            let (xp, xu, xr, graph, sf0, _) = snapshot(&users, 25, 10, t + 40);
            let input = TriInput {
                xp: &xp,
                xu: &xu,
                xr: &xr,
                graph: &graph,
                sf0: &sf0,
            };
            original.step(&SnapshotData {
                input,
                user_ids: &users,
            });
        }
        let mut restored =
            OnlineSolver::from_state(original.config().clone(), original.export_state()).unwrap();
        assert_eq!(restored.steps(), original.steps());
        let (xp, xu, xr, graph, sf0, _) = snapshot(&users, 25, 10, 99);
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let data = SnapshotData {
            input,
            user_ids: &users,
        };
        let a = original.step(&data);
        let b = restored.step(&data);
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.factors.su, b.factors.su);
        assert_eq!(a.factors.sf, b.factors.sf);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn from_state_rejects_tampered_temporal_state() {
        use crate::error::TgsErrorKind;
        use tgs_linalg::DenseMatrix;
        // sf window with the wrong class count
        let bad_window = OnlineSolverState {
            steps: 1,
            sf_window: vec![DenseMatrix::zeros(4, 5)],
            history_step: 1,
            history_rows: vec![],
        };
        let err = OnlineSolver::from_state(config(), bad_window).unwrap_err();
        assert_eq!(err.kind(), TgsErrorKind::CorruptCheckpoint);
        // history entry whose step lies beyond the restored counter
        let bad_history = OnlineSolverState {
            steps: 1,
            sf_window: vec![],
            history_step: 1,
            history_rows: vec![(7, vec![(5, vec![0.5, 0.5])])],
        };
        let err = OnlineSolver::from_state(config(), bad_history).unwrap_err();
        assert_eq!(err.kind(), TgsErrorKind::CorruptCheckpoint);
    }

    #[test]
    fn try_step_reports_user_id_mismatch() {
        let users = vec![0, 1, 2, 3];
        let (xp, xu, xr, graph, sf0, _) = snapshot(&users, 20, 10, 1);
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let mut solver = OnlineSolver::new(config());
        let err = solver
            .try_step(&SnapshotData {
                input,
                user_ids: &users[..3],
            })
            .unwrap_err();
        assert_eq!(err.kind(), crate::error::TgsErrorKind::UserIdCountMismatch);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut solver = OnlineSolver::new(config());
            let mut out = Vec::new();
            for t in 0..3u64 {
                let users: Vec<usize> = (0..6).collect();
                let (xp, xu, xr, graph, sf0, _) = snapshot(&users, 25, 10, t + 20);
                let input = TriInput {
                    xp: &xp,
                    xu: &xu,
                    xr: &xr,
                    graph: &graph,
                    sf0: &sf0,
                };
                let result = solver.step(&SnapshotData {
                    input,
                    user_ids: &users,
                });
                out.push(result.objective);
            }
            out
        };
        assert_eq!(run(), run());
    }
}

//! Extensions from the paper's conclusion (§7): the authors propose a
//! unified framework with *optional* regularizations beyond the published
//! ones — **guided (semi-supervised) regularization** and **sparsity
//! regularization**. This module implements both on top of the offline
//! solver.
//!
//! * Guided: labeled tweets/users are pulled toward their one-hot class
//!   rows with weight `δ`, using the same block-partitioned
//!   multiplicative machinery as the online temporal pull (Eq. 26 with
//!   the label prior in place of `Suw`).
//! * Sparsity: after each sweep, an L1 proximal step soft-thresholds the
//!   cluster indicator matrices, driving near-zero memberships to the
//!   floor (crisper clusters).

use tgs_linalg::{DenseMatrix, FACTOR_FLOOR};

use crate::config::OfflineConfig;
use crate::factors::TriFactors;
use crate::input::TriInput;
use crate::objective::offline_objective;
use crate::offline::OfflineResult;
use crate::updates::{
    balance_init_scales, update_hp, update_hu, update_sf, update_sp_guided, update_su_online,
};

/// Label information for the guided (semi-supervised) solver.
#[derive(Debug, Clone, Copy)]
pub struct Guidance<'a> {
    /// Known tweet classes (`None` = unlabeled).
    pub tweet_labels: &'a [Option<usize>],
    /// Known user classes (`None` = unlabeled).
    pub user_labels: &'a [Option<usize>],
}

/// Configuration of the guided/sparse solver.
#[derive(Debug, Clone)]
pub struct GuidedConfig {
    /// Base offline settings (k, α, β, iterations, seed, init).
    pub base: OfflineConfig,
    /// Guidance weight `δ ≥ 0`: how strongly labeled rows are pulled
    /// toward their one-hot class (0 = plain unsupervised solve).
    pub delta: f64,
    /// Sparsity weight `λ ≥ 0`: L1 soft-threshold applied to `Sp` and
    /// `Su` after each sweep (0 disables).
    pub sparsity: f64,
}

impl Default for GuidedConfig {
    fn default() -> Self {
        Self {
            base: OfflineConfig::default(),
            delta: 0.5,
            sparsity: 0.0,
        }
    }
}

impl GuidedConfig {
    /// Validates invariants.
    pub fn validate(&self) {
        self.base.validate();
        assert!(
            self.delta >= 0.0 && self.delta.is_finite(),
            "delta must be non-negative"
        );
        assert!(
            self.sparsity >= 0.0 && self.sparsity.is_finite(),
            "sparsity must be non-negative"
        );
    }
}

/// Builds `(guided_rows, one_hot_targets)` from per-item labels: row `i`
/// of the returned matrix is the target for item `guided_rows[i]`.
fn guidance_targets(labels: &[Option<usize>], k: usize) -> (Vec<usize>, DenseMatrix) {
    let rows: Vec<usize> = labels
        .iter()
        .enumerate()
        .filter_map(|(i, l)| match l {
            Some(c) if *c < k => Some(i),
            _ => None,
        })
        .collect();
    let mut targets = DenseMatrix::filled(rows.len(), k, FACTOR_FLOOR);
    for (t, &i) in rows.iter().enumerate() {
        let class = labels[i].expect("filtered to labeled rows");
        targets.set(t, class, 1.0);
    }
    (rows, targets)
}

/// L1 proximal step: soft-threshold every entry by `lambda`, flooring at
/// the solver's positivity floor (the exact prox of `λ‖S‖₁` under the
/// non-negativity constraint).
fn soft_threshold(m: &mut DenseMatrix, lambda: f64) {
    if lambda <= 0.0 {
        return;
    }
    m.map_in_place(|v| (v - lambda).max(FACTOR_FLOOR));
}

/// Semi-supervised tri-clustering: the offline solve of Eq. (1) plus a
/// guidance pull `δ·(‖Sp(g) − Yp‖² + ‖Su(g) − Yu‖²)` over the labeled
/// rows, and an optional L1 sparsity prox.
pub fn solve_guided(
    input: &TriInput<'_>,
    guidance: &Guidance<'_>,
    config: &GuidedConfig,
) -> OfflineResult {
    config.validate();
    input.validate(config.base.k);
    assert_eq!(
        guidance.tweet_labels.len(),
        input.n(),
        "one tweet-label slot per tweet required"
    );
    assert_eq!(
        guidance.user_labels.len(),
        input.m(),
        "one user-label slot per user required"
    );
    let k = config.base.k;
    let (sp_rows, sp_targets) = guidance_targets(guidance.tweet_labels, k);
    let (su_rows, su_targets) = guidance_targets(guidance.user_labels, k);
    let sp_free: Vec<usize> = {
        let set: std::collections::HashSet<usize> = sp_rows.iter().copied().collect();
        (0..input.n()).filter(|i| !set.contains(i)).collect()
    };
    let su_free: Vec<usize> = {
        let set: std::collections::HashSet<usize> = su_rows.iter().copied().collect();
        (0..input.m()).filter(|i| !set.contains(i)).collect()
    };

    let mut factors = TriFactors::init(
        input.n(),
        input.m(),
        input.l(),
        k,
        input.sf0,
        config.base.init,
        config.base.seed,
    );
    // Labeled rows start at their targets (a warm start, like the online
    // solver's evolving users).
    for (t, &row) in sp_rows.iter().enumerate() {
        factors.sp.copy_row_from(row, &sp_targets, t);
    }
    for (t, &row) in su_rows.iter().enumerate() {
        factors.su.copy_row_from(row, &su_targets, t);
    }
    balance_init_scales(input, &mut factors);

    let mut history = Vec::new();
    let mut prev = offline_objective(input, &factors, config.base.alpha, config.base.beta);
    if config.base.track_objective {
        history.push(prev);
    }
    let mut converged = false;
    let mut iterations = 0;
    for it in 0..config.base.max_iters {
        update_sp_guided(
            input,
            &mut factors,
            config.delta,
            &sp_free,
            &sp_rows,
            &sp_targets,
        );
        update_hp(input, &mut factors);
        update_su_online(
            input,
            &mut factors,
            config.base.beta,
            config.delta,
            &su_free,
            &su_rows,
            &su_targets,
        );
        update_hu(input, &mut factors);
        update_sf(input, &mut factors, config.base.alpha, input.sf0);
        soft_threshold(&mut factors.sp, config.sparsity);
        soft_threshold(&mut factors.su, config.sparsity);
        iterations = it + 1;
        let cur = offline_objective(input, &factors, config.base.alpha, config.base.beta);
        if config.base.track_objective {
            history.push(cur);
        }
        let denom = prev.total().abs().max(1.0);
        if (prev.total() - cur.total()).abs() / denom < config.base.tol {
            prev = cur;
            converged = true;
            break;
        }
        prev = cur;
    }
    OfflineResult {
        factors,
        history,
        iterations,
        converged,
        objective: prev.total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;
    use tgs_graph::UserGraph;
    use tgs_linalg::{seeded_rng, CsrMatrix};

    /// Weak-signal planted instance where guidance should help: features
    /// barely separate the two classes.
    fn weak_instance(
        seed: u64,
    ) -> (
        CsrMatrix,
        CsrMatrix,
        CsrMatrix,
        UserGraph,
        DenseMatrix,
        Vec<usize>,
        Vec<usize>,
    ) {
        let mut rng = seeded_rng(seed);
        let (n, m, l) = (40, 12, 14);
        let mut xp = Vec::new();
        let mut xu = Vec::new();
        let mut xr = Vec::new();
        let mut tweet_truth = Vec::new();
        for i in 0..n {
            let c = i % 2;
            tweet_truth.push(c);
            for _ in 0..4 {
                // only 60% of tokens carry the class signal
                let f = if rng.random_range(0.0..1.0) < 0.6 {
                    2 * rng.random_range(0..l / 2) + c
                } else {
                    rng.random_range(0..l)
                };
                xp.push((i, f, 1.0));
            }
            let author = 2 * rng.random_range(0..m / 2) + c;
            xr.push((author, i, 1.0));
        }
        let user_truth: Vec<usize> = (0..m).map(|u| u % 2).collect();
        for (u, &c) in user_truth.iter().enumerate() {
            for _ in 0..5 {
                let f = if rng.random_range(0.0..1.0) < 0.6 {
                    2 * rng.random_range(0..l / 2) + c
                } else {
                    rng.random_range(0..l)
                };
                xu.push((u, f, 1.0));
            }
        }
        let xp = CsrMatrix::from_triplets(n, l, &xp).unwrap();
        let xu = CsrMatrix::from_triplets(m, l, &xu).unwrap();
        let xr = CsrMatrix::from_triplets(m, n, &xr).unwrap();
        let graph = UserGraph::empty(m);
        let sf0 = DenseMatrix::filled(l, 2, 0.5); // no lexicon signal
        (xp, xu, xr, graph, sf0, tweet_truth, user_truth)
    }

    fn base(k: usize) -> OfflineConfig {
        OfflineConfig {
            k,
            max_iters: 80,
            ..Default::default()
        }
    }

    #[test]
    fn guidance_improves_weak_signal_clustering() {
        let (xp, xu, xr, graph, sf0, tweet_truth, user_truth) = weak_instance(3);
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        // 25% of tweets labeled
        let tweet_labels: Vec<Option<usize>> = tweet_truth
            .iter()
            .enumerate()
            .map(|(i, &c)| if i % 4 == 0 { Some(c) } else { None })
            .collect();
        let user_labels: Vec<Option<usize>> = vec![None; user_truth.len()];
        let guidance = Guidance {
            tweet_labels: &tweet_labels,
            user_labels: &user_labels,
        };
        let unguided = solve_guided(
            &input,
            &guidance,
            &GuidedConfig {
                delta: 0.0,
                base: base(2),
                ..Default::default()
            },
        );
        let guided = solve_guided(
            &input,
            &guidance,
            &GuidedConfig {
                delta: 1.0,
                base: base(2),
                ..Default::default()
            },
        );
        let acc_unguided = tgs_eval::clustering_accuracy(&unguided.tweet_labels(), &tweet_truth);
        let acc_guided = tgs_eval::clustering_accuracy(&guided.tweet_labels(), &tweet_truth);
        assert!(
            acc_guided >= acc_unguided,
            "guidance should not hurt: {acc_unguided} -> {acc_guided}"
        );
        // Labeled rows should actually be classified as their labels.
        let labels = guided.tweet_labels();
        let respected = tweet_labels
            .iter()
            .enumerate()
            .filter(|(i, l)| l.map(|c| labels[*i] == c).unwrap_or(true))
            .count();
        assert!(
            respected as f64 / tweet_labels.len() as f64 > 0.9,
            "guided labels should be respected"
        );
    }

    #[test]
    fn user_guidance_pins_labeled_users() {
        let (xp, xu, xr, graph, sf0, _, user_truth) = weak_instance(7);
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let tweet_labels: Vec<Option<usize>> = vec![None; xp.rows()];
        let user_labels: Vec<Option<usize>> = user_truth.iter().map(|&c| Some(c)).collect();
        let guidance = Guidance {
            tweet_labels: &tweet_labels,
            user_labels: &user_labels,
        };
        let result = solve_guided(
            &input,
            &guidance,
            &GuidedConfig {
                delta: 1.0,
                base: base(2),
                ..Default::default()
            },
        );
        let acc = tgs_eval::classification_accuracy(&result.user_labels(), &user_truth);
        assert!(acc > 0.9, "fully labeled users should stay pinned: {acc}");
    }

    #[test]
    fn sparsity_sharpens_memberships() {
        let (xp, xu, xr, graph, sf0, _, _) = weak_instance(11);
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let no_labels = vec![None; xp.rows()];
        let no_user_labels = vec![None; xu.rows()];
        let guidance = Guidance {
            tweet_labels: &no_labels,
            user_labels: &no_user_labels,
        };
        let dense = solve_guided(
            &input,
            &guidance,
            &GuidedConfig {
                delta: 0.0,
                sparsity: 0.0,
                base: base(2),
            },
        );
        let sparse = solve_guided(
            &input,
            &guidance,
            &GuidedConfig {
                delta: 0.0,
                sparsity: 0.05,
                base: base(2),
            },
        );
        let near_floor = |m: &DenseMatrix| {
            m.as_slice().iter().filter(|&&v| v < 1e-6).count() as f64 / m.as_slice().len() as f64
        };
        assert!(
            near_floor(&sparse.factors.sp) > near_floor(&dense.factors.sp),
            "sparsity prox should zero out more memberships: {} vs {}",
            near_floor(&sparse.factors.sp),
            near_floor(&dense.factors.sp)
        );
        assert!(sparse.factors.all_nonnegative());
    }

    #[test]
    fn guidance_targets_built_correctly() {
        let labels = vec![Some(1), None, Some(0), Some(9)]; // 9 out of range → skipped
        let (rows, targets) = guidance_targets(&labels, 2);
        assert_eq!(rows, vec![0, 2]);
        assert!(targets.get(0, 1) > 0.9);
        assert!(targets.get(1, 0) > 0.9);
        assert!(targets.get(0, 0) < 1e-6);
    }

    #[test]
    fn deterministic_given_seed() {
        let (xp, xu, xr, graph, sf0, tweet_truth, _) = weak_instance(13);
        let input = TriInput {
            xp: &xp,
            xu: &xu,
            xr: &xr,
            graph: &graph,
            sf0: &sf0,
        };
        let tweet_labels: Vec<Option<usize>> = tweet_truth
            .iter()
            .enumerate()
            .map(|(i, &c)| if i % 5 == 0 { Some(c) } else { None })
            .collect();
        let user_labels = vec![None; xu.rows()];
        let guidance = Guidance {
            tweet_labels: &tweet_labels,
            user_labels: &user_labels,
        };
        let cfg = GuidedConfig {
            base: base(2),
            ..Default::default()
        };
        let a = solve_guided(&input, &guidance, &cfg);
        let b = solve_guided(&input, &guidance, &cfg);
        assert_eq!(a.tweet_labels(), b.tweet_labels());
        assert_eq!(a.objective, b.objective);
    }
}

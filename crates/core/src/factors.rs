//! The factor matrices of the tri-factorization.

use tgs_linalg::{random_factor_with, seeded_rng, DenseMatrix};

/// The five factor matrices of Eq. (1):
/// `Xp ≈ Sp·Hp·Sfᵀ`, `Xu ≈ Su·Hu·Sfᵀ`, `Xr ≈ Su·Spᵀ`.
#[derive(Debug, Clone)]
pub struct TriFactors {
    /// Feature–cluster matrix (`l × k`).
    pub sf: DenseMatrix,
    /// Tweet–cluster matrix (`n × k`).
    pub sp: DenseMatrix,
    /// User–cluster matrix (`m × k`).
    pub su: DenseMatrix,
    /// Tweet-side association matrix (`k × k`).
    pub hp: DenseMatrix,
    /// User-side association matrix (`k × k`).
    pub hu: DenseMatrix,
}

/// How the factors are initialized before the multiplicative updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitStrategy {
    /// All factors i.i.d. uniform positive (Algorithm 1 line 1 verbatim).
    Random,
    /// `Sf` starts at the lexicon prior `Sf0` (plus a small positive
    /// jitter); everything else random. Converges in fewer iterations and
    /// pins cluster columns to sentiment classes — the practical choice,
    /// and the way the paper uses the lexicon ("initialize the feature
    /// sentiment class matrix").
    #[default]
    LexiconSeeded,
}

impl TriFactors {
    /// Random non-negative initialization for the given problem sizes.
    pub fn random(n: usize, m: usize, l: usize, k: usize, seed: u64) -> Self {
        let mut rng = seeded_rng(seed);
        Self {
            sf: random_factor_with(l, k, &mut rng),
            sp: random_factor_with(n, k, &mut rng),
            su: random_factor_with(m, k, &mut rng),
            hp: random_factor_with(k, k, &mut rng),
            hu: random_factor_with(k, k, &mut rng),
        }
    }

    /// Initialization per `strategy` (see [`InitStrategy`]).
    pub fn init(
        n: usize,
        m: usize,
        l: usize,
        k: usize,
        sf0: &DenseMatrix,
        strategy: InitStrategy,
        seed: u64,
    ) -> Self {
        assert_eq!(sf0.shape(), (l, k), "Sf0 must be l × k");
        let mut factors = Self::random(n, m, l, k, seed);
        if strategy == InitStrategy::LexiconSeeded {
            // Prior plus jitter: keeps entries strictly positive and breaks
            // ties among uniform rows.
            let mut rng = seeded_rng(seed.wrapping_add(0x5eed));
            let jitter = random_factor_with(l, k, &mut rng).scale(0.01);
            factors.sf = sf0.add(&jitter);
            // Identity-leaning association matrices align cluster columns
            // with sentiment classes from the start.
            factors.hp =
                DenseMatrix::identity(k).add(&random_factor_with(k, k, &mut rng).scale(0.1));
            factors.hu =
                DenseMatrix::identity(k).add(&random_factor_with(k, k, &mut rng).scale(0.1));
        }
        factors
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.sf.cols()
    }

    /// Hard tweet labels: argmax of each `Sp` row.
    pub fn tweet_labels(&self) -> Vec<usize> {
        self.sp.argmax_rows()
    }

    /// Hard user labels: argmax of each `Su` row.
    pub fn user_labels(&self) -> Vec<usize> {
        self.su.argmax_rows()
    }

    /// Hard feature labels: argmax of each `Sf` row.
    pub fn feature_labels(&self) -> Vec<usize> {
        self.sf.argmax_rows()
    }

    /// True when every factor is element-wise non-negative and finite —
    /// the invariant multiplicative updates must preserve.
    pub fn all_nonnegative(&self) -> bool {
        self.sf.is_nonnegative()
            && self.sp.is_nonnegative()
            && self.su.is_nonnegative()
            && self.hp.is_nonnegative()
            && self.hu.is_nonnegative()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_init_shapes_and_positivity() {
        let f = TriFactors::random(5, 4, 6, 3, 1);
        assert_eq!(f.sp.shape(), (5, 3));
        assert_eq!(f.su.shape(), (4, 3));
        assert_eq!(f.sf.shape(), (6, 3));
        assert_eq!(f.hp.shape(), (3, 3));
        assert_eq!(f.hu.shape(), (3, 3));
        assert!(f.all_nonnegative());
        assert_eq!(f.k(), 3);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = TriFactors::random(5, 4, 6, 3, 9);
        let b = TriFactors::random(5, 4, 6, 3, 9);
        assert_eq!(a.sp, b.sp);
        assert_eq!(a.hu, b.hu);
    }

    #[test]
    fn lexicon_seeded_starts_near_prior() {
        let sf0 = DenseMatrix::from_fn(6, 3, |i, j| if i % 3 == j { 0.8 } else { 0.1 });
        let f = TriFactors::init(5, 4, 6, 3, &sf0, InitStrategy::LexiconSeeded, 7);
        assert!(f.sf.sub(&sf0).max_abs() < 0.02);
        assert!(f.all_nonnegative());
        // hp close to identity
        assert!(f.hp.get(0, 0) > f.hp.get(0, 1));
    }

    #[test]
    fn labels_are_argmax() {
        let mut f = TriFactors::random(2, 2, 2, 2, 3);
        f.sp = DenseMatrix::from_vec(2, 2, vec![0.9, 0.1, 0.2, 0.8]).unwrap();
        assert_eq!(f.tweet_labels(), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "Sf0 must be l × k")]
    fn init_rejects_bad_prior_shape() {
        let sf0 = DenseMatrix::zeros(5, 3);
        TriFactors::init(5, 4, 6, 3, &sf0, InitStrategy::LexiconSeeded, 7);
    }
}

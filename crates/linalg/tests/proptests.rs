//! Property-based tests for the linear-algebra kernels: algebraic
//! identities that must hold for arbitrary matrices, plus exactness
//! proofs for the fused/in-place kernels — every `_into`/fused variant
//! must reproduce its allocating counterpart **bit-for-bit** (`==`, not
//! approximately), which is what lets the solvers switch to the fused
//! engine without perturbing any published number.

use proptest::prelude::*;
use tgs_linalg::{
    approx_error_bi, laplacian_quad, mult_update, mult_update_from_parts, split_pos_neg,
    split_pos_neg_into, CscView, CsrMatrix, DenseMatrix,
};

/// Strategy: a dense matrix with entries in [0, 10].
fn dense(rows: usize, cols: usize) -> impl Strategy<Value = DenseMatrix> {
    proptest::collection::vec(0.0..10.0f64, rows * cols)
        .prop_map(move |data| DenseMatrix::from_vec(rows, cols, data).unwrap())
}

/// Strategy: signed dense matrix with entries in [-10, 10].
fn signed_dense(rows: usize, cols: usize) -> impl Strategy<Value = DenseMatrix> {
    proptest::collection::vec(-10.0..10.0f64, rows * cols)
        .prop_map(move |data| DenseMatrix::from_vec(rows, cols, data).unwrap())
}

/// Strategy: sparse matrix from up to `max_nnz` random triplets.
fn sparse(rows: usize, cols: usize, max_nnz: usize) -> impl Strategy<Value = CsrMatrix> {
    proptest::collection::vec((0..rows, 0..cols, 0.1..5.0f64), 0..max_nnz)
        .prop_map(move |trip| CsrMatrix::from_triplets(rows, cols, &trip).unwrap())
}

proptest! {
    #[test]
    fn transpose_involution(a in dense(4, 6)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_associative(a in dense(3, 4), b in dense(4, 2), c in dense(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-8);
    }

    #[test]
    fn matmul_distributes_over_add(a in dense(3, 4), b in dense(4, 2), c in dense(4, 2)) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-8);
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal(a in dense(6, 3)) {
        let g = a.gram();
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((g.get(i, j) - g.get(j, i)).abs() < 1e-10);
            }
            prop_assert!(g.get(i, i) >= -1e-12);
        }
    }

    #[test]
    fn transpose_of_product(a in dense(3, 4), b in dense(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(left.max_abs_diff(&right) < 1e-10);
    }

    #[test]
    fn frobenius_triangle_inequality(a in signed_dense(4, 4), b in signed_dense(4, 4)) {
        prop_assert!(a.add(&b).frobenius() <= a.frobenius() + b.frobenius() + 1e-9);
    }

    #[test]
    fn split_pos_neg_invariants(d in signed_dense(3, 5)) {
        let (p, n) = split_pos_neg(&d);
        prop_assert!(p.is_nonnegative());
        prop_assert!(n.is_nonnegative());
        prop_assert!(p.sub(&n).max_abs_diff(&d) < 1e-12);
        // Disjoint support: at most one of p, n is nonzero per entry.
        for (x, y) in p.as_slice().iter().zip(n.as_slice()) {
            prop_assert!(*x == 0.0 || *y == 0.0);
        }
    }

    #[test]
    fn sparse_roundtrip_through_dense(x in sparse(5, 7, 20)) {
        let d = x.to_dense();
        let mut trip = Vec::new();
        for i in 0..5 {
            for j in 0..7 {
                if d.get(i, j) != 0.0 {
                    trip.push((i, j, d.get(i, j)));
                }
            }
        }
        let back = CsrMatrix::from_triplets(5, 7, &trip).unwrap();
        prop_assert_eq!(back, x);
    }

    #[test]
    fn sparse_mul_dense_equals_dense_mul(x in sparse(5, 7, 20), d in dense(7, 3)) {
        let fast = x.mul_dense(&d);
        let slow = x.to_dense().matmul(&d);
        prop_assert!(fast.max_abs_diff(&slow) < 1e-9);
    }

    #[test]
    fn sparse_transpose_mul_dense_equals_dense(x in sparse(5, 7, 20), d in dense(5, 3)) {
        let fast = x.transpose_mul_dense(&d);
        let slow = x.to_dense().transpose().matmul(&d);
        prop_assert!(fast.max_abs_diff(&slow) < 1e-9);
    }

    #[test]
    fn sparse_transpose_preserves_entries(x in sparse(6, 4, 15)) {
        let t = x.transpose();
        prop_assert_eq!(t.nnz(), x.nnz());
        for (i, j, v) in x.iter() {
            prop_assert_eq!(t.get(j, i), v);
        }
    }

    #[test]
    fn approx_error_bi_nonnegative_and_matches_dense(
        x in sparse(4, 5, 12), a in dense(4, 2), b in dense(5, 2)
    ) {
        let fast = approx_error_bi(&x, &a, &b);
        let slow = x.to_dense().sub(&a.matmul_transpose(&b)).frobenius_sq();
        prop_assert!(fast >= 0.0);
        prop_assert!((fast - slow).abs() < 1e-6 * (1.0 + slow));
    }

    #[test]
    fn laplacian_quad_nonnegative_on_symmetric_graphs(
        edges in proptest::collection::vec((0usize..6, 0usize..6, 0.1..2.0f64), 0..10),
        s in dense(6, 3),
    ) {
        // Symmetrize: add both directions, skip self-loops.
        let mut trip = Vec::new();
        for (i, j, w) in edges {
            if i != j {
                trip.push((i, j, w));
                trip.push((j, i, w));
            }
        }
        let g = CsrMatrix::from_triplets(6, 6, &trip).unwrap();
        let deg = g.row_sums();
        let q = laplacian_quad(&g, &deg, &s);
        prop_assert!(q >= -1e-9, "Laplacian quadratic form must be PSD, got {q}");
    }

    // ---- fused/in-place kernels: bit-for-bit exactness ----

    #[test]
    fn matmul_into_bit_identical(a in dense(5, 4), b in dense(4, 3)) {
        let mut out = DenseMatrix::zeros(1, 1); // wrong shape on purpose
        a.matmul_into(&b, &mut out);
        prop_assert_eq!(out, a.matmul(&b));
    }

    #[test]
    fn transpose_matmul_into_bit_identical(a in dense(6, 3), b in dense(6, 4)) {
        let mut out = DenseMatrix::default();
        a.transpose_matmul_into(&b, &mut out);
        prop_assert_eq!(out, a.transpose_matmul(&b));
    }

    #[test]
    fn matmul_transpose_into_bit_identical(a in dense(5, 3), b in dense(4, 3)) {
        let mut out = DenseMatrix::default();
        a.matmul_transpose_into(&b, &mut out);
        prop_assert_eq!(out, a.matmul_transpose(&b));
    }

    #[test]
    fn gram_into_bit_identical(a in dense(7, 3)) {
        let mut out = DenseMatrix::default();
        a.gram_into(&mut out);
        prop_assert_eq!(out, a.gram());
    }

    #[test]
    fn assign_ops_bit_identical(a in signed_dense(4, 5), b in signed_dense(4, 5), c in -3.0..3.0f64) {
        let mut add = a.clone();
        add.add_assign(&b);
        prop_assert_eq!(add, a.add(&b));
        let mut sub = a.clone();
        sub.sub_assign(&b);
        prop_assert_eq!(sub, a.sub(&b));
        let mut sub_scaled = a.clone();
        sub_scaled.sub_scaled_assign(c, &b);
        prop_assert_eq!(sub_scaled, a.sub(&b.scale(c)));
        let mut scaled = a.clone();
        scaled.scale_assign(c);
        prop_assert_eq!(scaled, a.scale(c));
    }

    #[test]
    fn transpose_matmul_pair_bit_identical(
        s in dense(6, 3), x in dense(6, 4), y in dense(6, 4)
    ) {
        let mut out_x = DenseMatrix::default();
        let mut out_y = DenseMatrix::default();
        s.transpose_matmul_pair_into(&x, &y, &mut out_x, &mut out_y);
        prop_assert_eq!(out_x, s.transpose_matmul(&x));
        prop_assert_eq!(out_y, s.transpose_matmul(&y));
    }

    #[test]
    fn split_pos_neg_into_bit_identical(d in signed_dense(3, 5)) {
        let (pos_ref, neg_ref) = split_pos_neg(&d);
        let mut pos = DenseMatrix::default();
        let mut neg = DenseMatrix::default();
        split_pos_neg_into(&d, &mut pos, &mut neg);
        prop_assert_eq!(pos, pos_ref);
        prop_assert_eq!(neg, neg_ref);
    }

    #[test]
    fn cached_transpose_spmm_bit_identical(x in sparse(6, 8, 25), d in dense(6, 3)) {
        let csc = CscView::of(&x);
        // forward pass over the cached transpose == fresh scatter pass
        prop_assert_eq!(csc.transpose_mul_dense(&d), x.transpose_mul_dense(&d));
        let mut out = DenseMatrix::default();
        csc.transpose_mul_dense_into(&d, &mut out);
        prop_assert_eq!(out, x.transpose().mul_dense(&d));
    }

    #[test]
    fn mul_dense_into_bit_identical(x in sparse(6, 8, 25), d in dense(8, 3)) {
        let mut out = DenseMatrix::default();
        x.mul_dense_into(&d, &mut out);
        prop_assert_eq!(out, x.mul_dense(&d));
    }

    #[test]
    fn mult_update_from_parts_bit_identical_to_chain(
        s0 in dense(6, 3),
        num_base in dense(6, 3),
        delta in signed_dense(3, 3),
        base_k in dense(3, 3),
        extra in dense(6, 3),
        scaled in dense(6, 3),
        deg in proptest::collection::vec(0.0..4.0f64, 6),
        beta in 0.0..2.0f64,
        gamma in 0.0..2.0f64,
    ) {
        let (dp, dm) = split_pos_neg(&delta);
        // Reference: the seed's allocating term-by-term chain.
        let mut s_ref = s0.clone();
        let num = num_base.add(&s_ref.matmul(&dm));
        let mut num = num;
        num.axpy(beta, &extra);
        num.axpy(gamma, &scaled);
        let den_k = base_k.add(&dp);
        let mut den = s_ref.matmul(&den_k);
        // β·diag(deg)·S term, built exactly like updates::row_scale + axpy
        let mut du_s = s_ref.clone();
        for (i, &dv) in deg.iter().enumerate() {
            for v in du_s.row_mut(i) {
                *v *= dv;
            }
        }
        den.axpy(beta, &du_s);
        den.axpy(gamma, &s_ref);
        mult_update(&mut s_ref, &num, &den);
        // Fused: one pass, no intermediates — with the gram-in-update
        // output, which must equal a post-hoc Gram of the result
        // bit-for-bit.
        let mut s_fused = s0.clone();
        let mut fused_gram = DenseMatrix::default();
        mult_update_from_parts(
            &mut s_fused,
            &num_base,
            None,
            &dm,
            &den_k,
            &[(beta, &extra), (gamma, &scaled)],
            Some((beta, &deg)),
            gamma,
            Some(&mut fused_gram),
        );
        prop_assert_eq!(fused_gram, s_fused.gram());
        prop_assert_eq!(s_fused, s_ref);
    }

    #[test]
    fn row_sums_match_iteration(x in sparse(5, 5, 15)) {
        let sums = x.row_sums();
        for (i, &s) in sums.iter().enumerate() {
            let manual: f64 = x.iter_row(i).map(|(_, v)| v).sum();
            prop_assert!((s - manual).abs() < 1e-12);
        }
    }
}

/// Regression: the wide-output fallback of `transpose_matmul_pair_into`
/// (accumulators exceed the shared reduction buffer) must still match
/// `transpose_matmul`'s fixed-block summation tree bit-for-bit.
#[test]
fn transpose_matmul_pair_wide_fallback_bit_identical() {
    use tgs_linalg::seeded_rng;
    let (rows, k) = (5000, 24); // 2*k*k > MAX_REDUCE_LEN, rows > one block
    let s = tgs_linalg::random_factor(rows, k, 1);
    let mut rng = seeded_rng(2);
    let x = tgs_linalg::random_factor_with(rows, k, &mut rng);
    let y = tgs_linalg::random_factor_with(rows, k, &mut rng);
    let mut out_x = DenseMatrix::default();
    let mut out_y = DenseMatrix::default();
    s.transpose_matmul_pair_into(&x, &y, &mut out_x, &mut out_y);
    assert_eq!(out_x, s.transpose_matmul(&x));
    assert_eq!(out_y, s.transpose_matmul(&y));
}

//! Property-based tests for the linear-algebra kernels: algebraic
//! identities that must hold for arbitrary matrices.

use proptest::prelude::*;
use tgs_linalg::{approx_error_bi, laplacian_quad, split_pos_neg, CsrMatrix, DenseMatrix};

/// Strategy: a dense matrix with entries in [0, 10].
fn dense(rows: usize, cols: usize) -> impl Strategy<Value = DenseMatrix> {
    proptest::collection::vec(0.0..10.0f64, rows * cols)
        .prop_map(move |data| DenseMatrix::from_vec(rows, cols, data).unwrap())
}

/// Strategy: signed dense matrix with entries in [-10, 10].
fn signed_dense(rows: usize, cols: usize) -> impl Strategy<Value = DenseMatrix> {
    proptest::collection::vec(-10.0..10.0f64, rows * cols)
        .prop_map(move |data| DenseMatrix::from_vec(rows, cols, data).unwrap())
}

/// Strategy: sparse matrix from up to `max_nnz` random triplets.
fn sparse(rows: usize, cols: usize, max_nnz: usize) -> impl Strategy<Value = CsrMatrix> {
    proptest::collection::vec((0..rows, 0..cols, 0.1..5.0f64), 0..max_nnz)
        .prop_map(move |trip| CsrMatrix::from_triplets(rows, cols, &trip).unwrap())
}

proptest! {
    #[test]
    fn transpose_involution(a in dense(4, 6)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_associative(a in dense(3, 4), b in dense(4, 2), c in dense(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-8);
    }

    #[test]
    fn matmul_distributes_over_add(a in dense(3, 4), b in dense(4, 2), c in dense(4, 2)) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-8);
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal(a in dense(6, 3)) {
        let g = a.gram();
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((g.get(i, j) - g.get(j, i)).abs() < 1e-10);
            }
            prop_assert!(g.get(i, i) >= -1e-12);
        }
    }

    #[test]
    fn transpose_of_product(a in dense(3, 4), b in dense(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(left.max_abs_diff(&right) < 1e-10);
    }

    #[test]
    fn frobenius_triangle_inequality(a in signed_dense(4, 4), b in signed_dense(4, 4)) {
        prop_assert!(a.add(&b).frobenius() <= a.frobenius() + b.frobenius() + 1e-9);
    }

    #[test]
    fn split_pos_neg_invariants(d in signed_dense(3, 5)) {
        let (p, n) = split_pos_neg(&d);
        prop_assert!(p.is_nonnegative());
        prop_assert!(n.is_nonnegative());
        prop_assert!(p.sub(&n).max_abs_diff(&d) < 1e-12);
        // Disjoint support: at most one of p, n is nonzero per entry.
        for (x, y) in p.as_slice().iter().zip(n.as_slice()) {
            prop_assert!(*x == 0.0 || *y == 0.0);
        }
    }

    #[test]
    fn sparse_roundtrip_through_dense(x in sparse(5, 7, 20)) {
        let d = x.to_dense();
        let mut trip = Vec::new();
        for i in 0..5 {
            for j in 0..7 {
                if d.get(i, j) != 0.0 {
                    trip.push((i, j, d.get(i, j)));
                }
            }
        }
        let back = CsrMatrix::from_triplets(5, 7, &trip).unwrap();
        prop_assert_eq!(back, x);
    }

    #[test]
    fn sparse_mul_dense_equals_dense_mul(x in sparse(5, 7, 20), d in dense(7, 3)) {
        let fast = x.mul_dense(&d);
        let slow = x.to_dense().matmul(&d);
        prop_assert!(fast.max_abs_diff(&slow) < 1e-9);
    }

    #[test]
    fn sparse_transpose_mul_dense_equals_dense(x in sparse(5, 7, 20), d in dense(5, 3)) {
        let fast = x.transpose_mul_dense(&d);
        let slow = x.to_dense().transpose().matmul(&d);
        prop_assert!(fast.max_abs_diff(&slow) < 1e-9);
    }

    #[test]
    fn sparse_transpose_preserves_entries(x in sparse(6, 4, 15)) {
        let t = x.transpose();
        prop_assert_eq!(t.nnz(), x.nnz());
        for (i, j, v) in x.iter() {
            prop_assert_eq!(t.get(j, i), v);
        }
    }

    #[test]
    fn approx_error_bi_nonnegative_and_matches_dense(
        x in sparse(4, 5, 12), a in dense(4, 2), b in dense(5, 2)
    ) {
        let fast = approx_error_bi(&x, &a, &b);
        let slow = x.to_dense().sub(&a.matmul_transpose(&b)).frobenius_sq();
        prop_assert!(fast >= 0.0);
        prop_assert!((fast - slow).abs() < 1e-6 * (1.0 + slow));
    }

    #[test]
    fn laplacian_quad_nonnegative_on_symmetric_graphs(
        edges in proptest::collection::vec((0usize..6, 0usize..6, 0.1..2.0f64), 0..10),
        s in dense(6, 3),
    ) {
        // Symmetrize: add both directions, skip self-loops.
        let mut trip = Vec::new();
        for (i, j, w) in edges {
            if i != j {
                trip.push((i, j, w));
                trip.push((j, i, w));
            }
        }
        let g = CsrMatrix::from_triplets(6, 6, &trip).unwrap();
        let deg = g.row_sums();
        let q = laplacian_quad(&g, &deg, &s);
        prop_assert!(q >= -1e-9, "Laplacian quadratic form must be PSD, got {q}");
    }

    #[test]
    fn row_sums_match_iteration(x in sparse(5, 5, 15)) {
        let sums = x.row_sums();
        for (i, &s) in sums.iter().enumerate() {
            let manual: f64 = x.iter_row(i).map(|(_, v)| v).sum();
            prop_assert!((s - manual).abs() < 1e-12);
        }
    }
}

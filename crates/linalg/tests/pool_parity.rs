//! Bit-equality proofs for the persistent worker pool: every parallel
//! primitive must produce **identical bits** (`==`, not approximately)
//! whether it runs inline, on the pool at any thread budget, or on the
//! scoped-thread algorithm it replaced — chunk boundaries and the
//! block-ordered partial fold are part of the numeric contract, so the
//! pool migration must be invisible to every published number.
//!
//! The pool budget (`TGS_THREADS` / [`set_pool_threads_override`]) and
//! the prefetch distance are process-global, so every test here
//! serializes on one mutex instead of trusting libtest's parallel
//! harness.

use std::sync::Mutex;

use proptest::prelude::*;
use tgs_linalg::parallel::{for_each_row_block_reduce, for_each_row_chunk, reduce_rows};
use tgs_linalg::{
    set_parallel_work_threshold, set_pool_threads_override, set_prefetch_lookahead, CsrMatrix,
    DenseMatrix, REDUCE_BLOCK_ROWS,
};

/// Serializes tests that touch the process-global pool budget, work
/// threshold, or prefetch distance.
static GLOBAL_KNOBS: Mutex<()> = Mutex::new(());

/// Runs `f` with the pool budget forced to `threads` and the work
/// threshold forced to 1 (so every primitive takes its parallel path),
/// restoring both afterwards.
fn with_budget<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let prev_t = set_pool_threads_override(Some(threads));
    let prev_w = set_parallel_work_threshold(1);
    let result = f();
    set_parallel_work_threshold(prev_w);
    set_pool_threads_override(prev_t);
    result
}

/// Deterministic pseudo-random fill with wildly varying magnitudes, so
/// any change in floating-point summation order changes the bits.
fn lcg_fill(seed: u64, len: usize) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let mantissa = ((state >> 11) as f64) / (1u64 << 53) as f64;
            let exp = ((state >> 3) % 17) as i32 - 8;
            (mantissa + 0.5) * 2f64.powi(exp)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Scoped-thread references: faithful replicas of the pre-pool
// algorithms (same ceil-divided chunk boundaries, same fixed
// REDUCE_BLOCK_ROWS blocks folded in block order), run on ad-hoc
// `std::thread::scope` threads exactly like the old implementation.
// ---------------------------------------------------------------------

fn scoped_for_each_row_chunk(
    threads: usize,
    rows: usize,
    buf: &mut [f64],
    row_width: usize,
    body: impl Fn(usize, &mut [f64]) + Sync,
) {
    let rows_per_chunk = rows.div_ceil(threads.max(1));
    let body = &body;
    std::thread::scope(|s| {
        for (c, chunk) in buf
            .chunks_mut((rows_per_chunk * row_width).max(1))
            .enumerate()
        {
            s.spawn(move || body(c * rows_per_chunk, chunk));
        }
    });
}

fn scoped_reduce_rows(
    rows: usize,
    acc: &mut [f64],
    body: impl Fn(usize, usize, &mut [f64]) + Sync,
) {
    let len = acc.len();
    let blocks = rows.div_ceil(REDUCE_BLOCK_ROWS);
    let mut slots = vec![0.0f64; blocks * len];
    let body = &body;
    std::thread::scope(|s| {
        for (b, slot) in slots.chunks_mut(len).enumerate() {
            s.spawn(move || {
                let r0 = b * REDUCE_BLOCK_ROWS;
                let r1 = (r0 + REDUCE_BLOCK_ROWS).min(rows);
                body(r0, r1, slot);
            });
        }
    });
    for slot in slots.chunks_exact(len) {
        for (a, p) in acc.iter_mut().zip(slot.iter()) {
            *a += p;
        }
    }
}

fn scoped_block_reduce(
    rows: usize,
    buf: &mut [f64],
    row_width: usize,
    acc: &mut [f64],
    body: impl Fn(usize, &mut [f64], &mut [f64]) + Sync,
) {
    let len = acc.len();
    let blocks = rows.div_ceil(REDUCE_BLOCK_ROWS);
    let block_len = REDUCE_BLOCK_ROWS * row_width;
    let mut slots = vec![0.0f64; blocks * len];
    let body = &body;
    std::thread::scope(|s| {
        for ((b, chunk), slot) in buf
            .chunks_mut(block_len.max(1))
            .enumerate()
            .zip(slots.chunks_mut(len))
        {
            s.spawn(move || body(b * REDUCE_BLOCK_ROWS, chunk, slot));
        }
    });
    for slot in slots.chunks_exact(len) {
        for (a, p) in acc.iter_mut().zip(slot.iter()) {
            *a += p;
        }
    }
}

// ---------------------------------------------------------------------
// The primitive bodies under test. Each writes/accumulates values that
// depend only on the *global* row index, so any mis-assignment of rows
// to chunks shows up as a bit difference.
// ---------------------------------------------------------------------

fn chunk_body(data: &[f64], width: usize) -> impl Fn(usize, &mut [f64]) + Sync + '_ {
    move |first_row, chunk| {
        for (local, out_row) in chunk.chunks_exact_mut(width).enumerate() {
            let r = first_row + local;
            for (j, v) in out_row.iter_mut().enumerate() {
                *v = data[r * width + j] * 1.5 + r as f64;
            }
        }
    }
}

fn reduce_body(data: &[f64], len: usize) -> impl Fn(usize, usize, &mut [f64]) + Sync + '_ {
    move |r0, r1, partial| {
        for r in r0..r1 {
            for (j, p) in partial.iter_mut().enumerate() {
                *p += data[r * len + j];
            }
        }
    }
}

#[test]
fn chunk_pooled_matches_scoped_and_inline_at_every_budget() {
    let _g = GLOBAL_KNOBS.lock().unwrap_or_else(|e| e.into_inner());
    // 997 rows: not a multiple of any tested budget, so every run has a
    // ragged tail chunk.
    let (rows, width) = (997usize, 3usize);
    let data = lcg_fill(41, rows * width);

    let mut inline = vec![0.0; rows * width];
    chunk_body(&data, width)(0, &mut inline);

    for budget in [1usize, 2, 3, 5, 8] {
        let mut scoped = vec![0.0; rows * width];
        scoped_for_each_row_chunk(budget, rows, &mut scoped, width, chunk_body(&data, width));
        assert_eq!(scoped, inline, "scoped reference differs at {budget}");

        let mut pooled = vec![0.0; rows * width];
        with_budget(budget, || {
            for_each_row_chunk(
                rows,
                usize::MAX,
                &mut pooled,
                width,
                chunk_body(&data, width),
            );
        });
        assert_eq!(
            pooled, inline,
            "pooled chunk run differs at budget {budget}"
        );
    }
}

#[test]
fn reduce_pooled_matches_scoped_reference_bit_for_bit() {
    let _g = GLOBAL_KNOBS.lock().unwrap_or_else(|e| e.into_inner());
    // Three blocks: two full REDUCE_BLOCK_ROWS blocks plus a 517-row
    // ragged tail — the summation-tree shape the contract fixes.
    let (rows, len) = (2 * REDUCE_BLOCK_ROWS + 517, 7usize);
    let data = lcg_fill(42, rows * len);

    let mut scoped = vec![0.0; len];
    scoped_reduce_rows(rows, &mut scoped, reduce_body(&data, len));

    for budget in [1usize, 2, 3, 8] {
        let mut pooled = vec![0.0; len];
        with_budget(budget, || {
            reduce_rows(rows, usize::MAX, &mut pooled, reduce_body(&data, len));
        });
        assert_eq!(
            pooled, scoped,
            "reduce summation tree changed at budget {budget}"
        );
    }
}

#[test]
fn block_reduce_pooled_matches_scoped_reference_bit_for_bit() {
    let _g = GLOBAL_KNOBS.lock().unwrap_or_else(|e| e.into_inner());
    let (rows, width, len) = (2 * REDUCE_BLOCK_ROWS + 901, 3usize, 9usize);
    let data = lcg_fill(43, rows * width.max(len));
    let body = |first_row: usize, chunk: &mut [f64], partial: &mut [f64]| {
        for (local, out_row) in chunk.chunks_exact_mut(width).enumerate() {
            let r = first_row + local;
            for (j, v) in out_row.iter_mut().enumerate() {
                *v = data[r * width + j] + r as f64;
            }
            for (j, p) in partial.iter_mut().enumerate() {
                *p += data[r * width + j % width] * (j + 1) as f64;
            }
        }
    };

    let mut scoped_buf = vec![0.0; rows * width];
    let mut scoped_acc = vec![0.0; len];
    scoped_block_reduce(rows, &mut scoped_buf, width, &mut scoped_acc, body);

    for budget in [1usize, 2, 4, 8] {
        let mut buf = vec![0.0; rows * width];
        let mut acc = vec![0.0; len];
        with_budget(budget, || {
            for_each_row_block_reduce(rows, usize::MAX, &mut buf, width, &mut acc, body);
        });
        assert_eq!(
            buf, scoped_buf,
            "block-reduce rows differ at budget {budget}"
        );
        assert_eq!(
            acc, scoped_acc,
            "block-reduce fold differs at budget {budget}"
        );
    }
}

#[test]
fn gram_identical_across_budgets_and_to_scoped_fold() {
    let _g = GLOBAL_KNOBS.lock().unwrap_or_else(|e| e.into_inner());
    let (rows, k) = (2 * REDUCE_BLOCK_ROWS + 300, 3usize);
    let a = DenseMatrix::from_vec(rows, k, lcg_fill(44, rows * k)).unwrap();

    let mut reference = DenseMatrix::default();
    with_budget(1, || a.gram_into(&mut reference));

    for budget in [2usize, 4, 8] {
        let mut g = DenseMatrix::default();
        with_budget(budget, || a.gram_into(&mut g));
        assert_eq!(g, reference, "gram_into drifted at budget {budget}");
    }
}

#[test]
fn fused_scatter_gram_matches_posthoc_gram_bit_for_bit() {
    let _g = GLOBAL_KNOBS.lock().unwrap_or_else(|e| e.into_inner());
    // Rows span multiple reduction blocks; the scattered subset
    // straddles block boundaries, so the fused kernel must scatter each
    // block's rows before Gram-reading them.
    let (rows, k) = (2 * REDUCE_BLOCK_ROWS + 300, 3usize);
    let scatter_rows: Vec<usize> = (0..rows).step_by(7).collect();
    let block =
        DenseMatrix::from_vec(scatter_rows.len(), k, lcg_fill(45, scatter_rows.len() * k)).unwrap();
    let base = DenseMatrix::from_vec(rows, k, lcg_fill(46, rows * k)).unwrap();

    let mut reference = base.clone();
    let mut ref_gram = DenseMatrix::default();
    with_budget(1, || {
        reference.scatter_rows_from(&scatter_rows, &block);
        reference.gram_into(&mut ref_gram);
    });

    for budget in [1usize, 2, 4] {
        let mut fused = base.clone();
        let mut gram = DenseMatrix::default();
        with_budget(budget, || {
            fused.scatter_rows_with_gram(&scatter_rows, &block, &mut gram);
        });
        assert_eq!(
            fused, reference,
            "fused scatter rows differ at budget {budget}"
        );
        assert_eq!(gram, ref_gram, "fused gram differs at budget {budget}");
    }
}

#[test]
fn pool_survives_contention_from_concurrent_callers() {
    let _g = GLOBAL_KNOBS.lock().unwrap_or_else(|e| e.into_inner());
    // Two caller threads hammer the same pool with independent pooled
    // reductions; neither may deadlock, and each must get exactly the
    // answer it gets when running alone.
    let (rows, k) = (2 * REDUCE_BLOCK_ROWS + 111, 3usize);
    let a = DenseMatrix::from_vec(rows, k, lcg_fill(47, rows * k)).unwrap();
    let b = DenseMatrix::from_vec(rows, k, lcg_fill(48, rows * k)).unwrap();

    let (solo_a, solo_b) = with_budget(4, || {
        let mut ga = DenseMatrix::default();
        let mut gb = DenseMatrix::default();
        a.gram_into(&mut ga);
        b.gram_into(&mut gb);
        (ga, gb)
    });

    with_budget(4, || {
        std::thread::scope(|s| {
            let ha = s.spawn(|| {
                let mut g = DenseMatrix::default();
                for _ in 0..20 {
                    a.gram_into(&mut g);
                }
                g
            });
            let hb = s.spawn(|| {
                let mut g = DenseMatrix::default();
                for _ in 0..20 {
                    b.gram_into(&mut g);
                }
                g
            });
            assert_eq!(ha.join().unwrap(), solo_a, "caller A saw cross-talk");
            assert_eq!(hb.join().unwrap(), solo_b, "caller B saw cross-talk");
        });
    });
}

#[test]
fn prefetch_distance_never_changes_results() {
    let _g = GLOBAL_KNOBS.lock().unwrap_or_else(|e| e.into_inner());
    let trip: Vec<(usize, usize, f64)> = lcg_fill(49, 600)
        .chunks_exact(3)
        .map(|c| {
            (
                (c[0].to_bits() % 300) as usize,
                (c[1].to_bits() % 500) as usize,
                c[2],
            )
        })
        .collect();
    let x = CsrMatrix::from_triplets(300, 500, &trip).unwrap();
    let d = DenseMatrix::from_vec(500, 4, lcg_fill(50, 2000)).unwrap();

    let prev = set_prefetch_lookahead(Some(8));
    let reference = x.mul_dense(&d);
    for distance in [0usize, 2, 4, 64] {
        set_prefetch_lookahead(Some(distance));
        assert_eq!(
            x.mul_dense(&d),
            reference,
            "prefetch distance {distance} changed spmm bits"
        );
    }
    set_prefetch_lookahead(Some(prev));
}

// Arbitrary row counts (spanning the single-block/multi-block
// boundary), widths, and budgets: pooled chunking must equal the
// inline result bit-for-bit.
proptest! {
    #[test]
    fn pooled_chunk_parity(
        rows in 1usize..6000,
        width in 1usize..5,
        budget in 1usize..9,
        seed in 0u64..1000
    ) {
        let _g = GLOBAL_KNOBS.lock().unwrap_or_else(|e| e.into_inner());
        let data = lcg_fill(seed, rows * width);
        let mut inline = vec![0.0; rows * width];
        chunk_body(&data, width)(0, &mut inline);
        let mut pooled = vec![0.0; rows * width];
        with_budget(budget, || {
            for_each_row_chunk(rows, usize::MAX, &mut pooled, width, chunk_body(&data, width));
        });
        prop_assert_eq!(pooled, inline);
    }
}

// Reduction parity across the block boundary: pooled fold must
// match the scoped-thread reference at every budget.
proptest! {
    #[test]
    fn pooled_reduce_parity(
        extra in 0usize..2000,
        len in 1usize..6,
        budget in 1usize..9,
        seed in 0u64..1000
    ) {
        let _g = GLOBAL_KNOBS.lock().unwrap_or_else(|e| e.into_inner());
        let rows = REDUCE_BLOCK_ROWS + extra;
        let data = lcg_fill(seed, rows * len);
        let mut scoped = vec![0.0; len];
        scoped_reduce_rows(rows, &mut scoped, reduce_body(&data, len));
        let mut pooled = vec![0.0; len];
        with_budget(budget, || {
            reduce_rows(rows, usize::MAX, &mut pooled, reduce_body(&data, len));
        });
        prop_assert_eq!(pooled, scoped);
    }
}

// Fused scatter+Gram equals scatter-then-`gram_into` on arbitrary
// small instances (sequential single-block regime).
proptest! {
    #[test]
    fn fused_scatter_gram_small_parity(
        rows in 1usize..40,
        k in 1usize..5,
        seed in 0u64..1000,
        stride in 1usize..6
    ) {
        let _g = GLOBAL_KNOBS.lock().unwrap_or_else(|e| e.into_inner());
        let scatter: Vec<usize> = (0..rows).step_by(stride).collect();
        let base = DenseMatrix::from_vec(rows, k, lcg_fill(seed, rows * k)).unwrap();
        let block =
            DenseMatrix::from_vec(scatter.len(), k, lcg_fill(seed ^ 0xabcd, scatter.len() * k))
                .unwrap();

        let mut reference = base.clone();
        reference.scatter_rows_from(&scatter, &block);
        let mut ref_gram = DenseMatrix::default();
        reference.gram_into(&mut ref_gram);

        let mut fused = base.clone();
        let mut gram = DenseMatrix::default();
        fused.scatter_rows_with_gram(&scatter, &block, &mut gram);
        prop_assert_eq!(fused, reference);
        prop_assert_eq!(gram, ref_gram);
    }
}

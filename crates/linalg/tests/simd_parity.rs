//! SIMD-dispatch parity proptests: every dispatched kernel must produce
//! **bit-identical** results (`==`, not approximately) under the scalar
//! tier and under the best detected tier, across random shapes —
//! including widths that are not a multiple of the 4×f64 AVX2 lane
//! count (tails) and the ranks the solvers actually use (`k ∈ {2, 3,
//! 10}`, plus odd widths).
//!
//! The override is thread-local and the dispatch decision is made on
//! the calling thread, so these tests are safe under libtest's parallel
//! harness. On machines without AVX2 both runs take the scalar path and
//! the assertions hold trivially.

use proptest::prelude::*;
use tgs_linalg::{
    mult_update, mult_update_from_parts, set_simd_tier_override, split_pos_neg, split_pos_neg_into,
    CsrMatrix, DenseMatrix, SimdTier,
};

/// Runs `body` once forced to the scalar tier and once under the
/// detected tier, returning both results.
fn both_tiers<R>(mut body: impl FnMut() -> R) -> (R, R) {
    let prev = set_simd_tier_override(Some(SimdTier::Scalar));
    let scalar = body();
    set_simd_tier_override(None);
    let dispatched = body();
    set_simd_tier_override(prev);
    (scalar, dispatched)
}

/// Strategy: a dense matrix with entries in [-8, 8] (signed exercises
/// the zero-skip and split branches too).
fn dense(rows: usize, cols: usize) -> impl Strategy<Value = DenseMatrix> {
    proptest::collection::vec(-8.0..8.0f64, rows * cols)
        .prop_map(move |data| DenseMatrix::from_vec(rows, cols, data).unwrap())
}

/// Strategy: non-negative dense matrix (factor-shaped).
fn factor(rows: usize, cols: usize) -> impl Strategy<Value = DenseMatrix> {
    proptest::collection::vec(0.0..8.0f64, rows * cols)
        .prop_map(move |data| DenseMatrix::from_vec(rows, cols, data).unwrap())
}

/// Strategy: sparse matrix from up to `max_nnz` random triplets.
fn sparse(rows: usize, cols: usize, max_nnz: usize) -> impl Strategy<Value = CsrMatrix> {
    proptest::collection::vec((0..rows, 0..cols, 0.1..5.0f64), 0..max_nnz)
        .prop_map(move |trip| CsrMatrix::from_triplets(rows, cols, &trip).unwrap())
}

/// Shapes that cover lane tails: widths 1..=11 hit every residue mod 4,
/// and the row counts keep odd remainders against internal chunking.
fn shape() -> impl Strategy<Value = (usize, usize)> {
    (1usize..23, 1usize..12)
}

/// The solver ranks: the paper's 2 and 3 plus the scaling rank 10.
fn solver_k() -> impl Strategy<Value = usize> {
    prop_oneof![Just(2usize), Just(3usize), Just(10usize)]
}

proptest! {
    #[test]
    fn matmul_into_parity((m, k) in shape(), w in 1usize..11, seed in 0u64..1_000_000_000) {
        let a = dense_from_seed(m, k, seed);
        let b = dense_from_seed(k, w, seed ^ 1);
        let (s, v) = both_tiers(|| {
            let mut out = DenseMatrix::default();
            a.matmul_into(&b, &mut out);
            out
        });
        prop_assert_eq!(s, v);
    }

    #[test]
    fn gram_into_parity((m, k) in shape()) {
        let a = dense_from_seed(m, k, 7);
        let (s, v) = both_tiers(|| {
            let mut out = DenseMatrix::default();
            a.gram_into(&mut out);
            out
        });
        prop_assert_eq!(s, v);
    }

    #[test]
    fn transpose_matmul_into_parity((m, k) in shape(), w in 1usize..11) {
        let a = dense_from_seed(m, k, 11);
        let b = dense_from_seed(m, w, 13);
        let (s, v) = both_tiers(|| {
            let mut out = DenseMatrix::default();
            a.transpose_matmul_into(&b, &mut out);
            out
        });
        prop_assert_eq!(s, v);
    }

    #[test]
    fn transpose_matmul_pair_parity((m, k) in shape(), w in 1usize..11) {
        let a = dense_from_seed(m, k, 17);
        let x = dense_from_seed(m, w, 19);
        let y = dense_from_seed(m, w, 23);
        let (s, v) = both_tiers(|| {
            let mut ox = DenseMatrix::default();
            let mut oy = DenseMatrix::default();
            a.transpose_matmul_pair_into(&x, &y, &mut ox, &mut oy);
            (ox, oy)
        });
        prop_assert_eq!(s, v);
    }

    #[test]
    fn matmul_transpose_into_parity((m, k) in shape(), w in 1usize..11) {
        let a = dense_from_seed(m, k, 29);
        let b = dense_from_seed(w, k, 31);
        let (s, v) = both_tiers(|| {
            let mut out = DenseMatrix::default();
            a.matmul_transpose_into(&b, &mut out);
            out
        });
        prop_assert_eq!(s, v);
    }

    #[test]
    fn elementwise_assign_parity(a in dense(5, 7), b in dense(5, 7), c in -3.0..3.0f64) {
        let (s, v) = both_tiers(|| {
            let mut add = a.clone();
            add.add_assign(&b);
            let mut sub = a.clone();
            sub.sub_assign(&b);
            let mut sub_scaled = a.clone();
            sub_scaled.sub_scaled_assign(c, &b);
            let mut axpy = a.clone();
            axpy.axpy(c, &b);
            let mut scaled = a.clone();
            scaled.scale_assign(c);
            (add, sub, sub_scaled, axpy, scaled)
        });
        prop_assert_eq!(s, v);
    }

    #[test]
    fn split_pos_neg_into_parity(d in dense(6, 9)) {
        let (s, v) = both_tiers(|| {
            let mut pos = DenseMatrix::default();
            let mut neg = DenseMatrix::default();
            split_pos_neg_into(&d, &mut pos, &mut neg);
            (pos, neg)
        });
        prop_assert_eq!(s, v);
    }

    #[test]
    fn mult_update_parity(num in factor(9, 5), den in factor(9, 5), s0 in factor(9, 5)) {
        let (s, v) = both_tiers(|| {
            let mut s = s0.clone();
            mult_update(&mut s, &num, &den);
            s
        });
        prop_assert_eq!(s, v);
    }

    #[test]
    fn spmm_parity(x in sparse(9, 13, 40), w in 1usize..11, seed in 0u64..1_000_000_000) {
        let d = dense_from_seed(13, w, seed);
        let dt = dense_from_seed(9, w, seed ^ 5);
        let (s, v) = both_tiers(|| {
            let mut out = DenseMatrix::default();
            x.mul_dense_into(&d, &mut out);
            let mut out_t = DenseMatrix::default();
            x.transpose_mul_dense_into(&dt, &mut out_t);
            (out, out_t)
        });
        prop_assert_eq!(s, v);
    }

    // The fused update at the solver ranks (k in {2, 3, 10} hits the
    // monomorphized bodies and their lane tails), with the fused gram
    // output compared too.
    #[test]
    fn mult_update_from_parts_parity(
        k in solver_k(),
        rows in 1usize..33,
        beta in 0.0..2.0f64,
        gamma in 0.0..2.0f64,
        seed in 0u64..1_000_000_000,
    ) {
        let s0 = dense_from_seed(rows, k, seed) .map(f64::abs);
        let num_base = dense_from_seed(rows, k, seed ^ 2).map(f64::abs);
        let extra = dense_from_seed(rows, k, seed ^ 3).map(f64::abs);
        let delta = dense_from_seed(k, k, seed ^ 4);
        let (dp, dm) = split_pos_neg(&delta);
        let den_k = dense_from_seed(k, k, seed ^ 5).map(f64::abs).add(&dp);
        let deg: Vec<f64> = (0..rows).map(|i| (i % 5) as f64 * 0.4).collect();
        let (s, v) = both_tiers(|| {
            let mut s = s0.clone();
            let mut gram = DenseMatrix::default();
            mult_update_from_parts(
                &mut s,
                &num_base,
                None,
                &dm,
                &den_k,
                &[(beta, &extra)],
                Some((beta, &deg)),
                gamma,
                Some(&mut gram),
            );
            (s, gram)
        });
        prop_assert_eq!(&s, &v);
        // And the fused gram equals a post-hoc Gram, bit for bit.
        prop_assert_eq!(&s.1, &s.0.gram());
    }
}

/// Deterministic pseudo-random dense matrix (value diversity without
/// widening the proptest case space).
fn dense_from_seed(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut state = seed | 1;
    DenseMatrix::from_fn(rows, cols, |i, j| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = ((state >> 33) as f64) / (1u64 << 31) as f64; // [0, 2)
        let v = u - 1.0; // [-1, 1)
        v * (1.0 + ((i + j) % 7) as f64)
    })
}

//! Deterministic random initialization for factor matrices.
//!
//! Every stochastic component of the workspace accepts an explicit `u64`
//! seed, so experiments reproduce bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::dense::DenseMatrix;

/// Lower bound for random factor entries. Multiplicative updates cannot
/// escape exact zeros, so initialization stays strictly positive.
const INIT_FLOOR: f64 = 0.05;

/// Creates a deterministic RNG from a seed.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A `rows × cols` matrix with i.i.d. entries uniform in `[INIT_FLOOR, 1)`.
pub fn random_factor(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut rng = seeded_rng(seed);
    random_factor_with(rows, cols, &mut rng)
}

/// Same as [`random_factor`] but drawing from a caller-provided RNG, so a
/// sequence of factors can share one seed stream.
pub fn random_factor_with(rows: usize, cols: usize, rng: &mut impl Rng) -> DenseMatrix {
    DenseMatrix::from_fn(rows, cols, |_, _| rng.random_range(INIT_FLOOR..1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = random_factor(5, 3, 42);
        let b = random_factor(5, 3, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_factor(5, 3, 1);
        let b = random_factor(5, 3, 2);
        assert!(a.max_abs_diff(&b) > 0.0);
    }

    #[test]
    fn entries_in_expected_range() {
        let a = random_factor(20, 4, 7);
        assert!(a.as_slice().iter().all(|&v| (0.05..1.0).contains(&v)));
    }
}

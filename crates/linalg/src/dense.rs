//! Row-major dense matrices.
//!
//! The tri-clustering algorithm only ever materializes *thin* dense matrices
//! (`n×k`, `m×k`, `l×k` with `k ∈ {2,3}`) and tiny `k×k` association
//! matrices, so a simple contiguous row-major layout is both cache-friendly
//! and sufficient. All hot kernels operate on row slices to let the compiler
//! elide bounds checks.

use crate::simd::simd_kernel;
use crate::LinalgError;

/// A dense row-major `rows × cols` matrix of `f64`. `Default` is the
/// empty `0 × 0` matrix (used for lazily-sized workspace buffers).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// Returns an error when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (rows, cols),
                got: (data.len(), 1),
                op: "DenseMatrix::from_vec",
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Entry accessor. Panics when out of bounds (debug-friendly hot path).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Entry setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Immutable row slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let r = self.row(i);
            for (j, &v) in r.iter().enumerate() {
                out.data[j * self.rows + i] = v;
            }
        }
        out
    }

    /// Reshapes to `rows × cols` and zero-fills, reusing the existing
    /// allocation whenever its capacity suffices. This is how the solver
    /// workspaces keep per-sweep buffers allocation-free after warm-up.
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Copies `other` into `self`, reusing the allocation when possible.
    pub fn copy_from(&mut self, other: &DenseMatrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Dense matrix product `self · other`.
    ///
    /// Uses the i-k-j loop order so the inner loop streams over contiguous
    /// rows of `other` and the output.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::default(); // sized (once) by matmul_into
        self.matmul_into(other, &mut out);
        out
    }

    /// In-place variant of [`DenseMatrix::matmul`]: writes `self · other`
    /// into `out` (reshaped as needed), row-parallel on large inputs and
    /// SIMD-dispatched (see [`crate::simd`]; bit-identical across tiers).
    pub fn matmul_into(&self, other: &DenseMatrix, out: &mut DenseMatrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: ({}, {}) x ({}, {})",
            self.rows, self.cols, other.rows, other.cols
        );
        out.resize_zeroed(self.rows, other.cols);
        matmul_into_kernel(self, other, out);
    }

    /// Gram matrix `selfᵀ · self` (`cols × cols`).
    ///
    /// The workhorse for `SᵀS` terms: one pass over the rows, accumulating
    /// rank-1 outer products, exploiting symmetry.
    pub fn gram(&self) -> DenseMatrix {
        let mut out = DenseMatrix::default(); // sized (once) by gram_into
        self.gram_into(&mut out);
        out
    }

    /// In-place variant of [`DenseMatrix::gram`]: writes `selfᵀ·self` into
    /// `out` (reshaped as needed), with a chunked parallel reduction on
    /// large inputs. SIMD-dispatched; bit-identical across tiers.
    pub fn gram_into(&self, out: &mut DenseMatrix) {
        out.resize_zeroed(self.cols, self.cols);
        gram_into_kernel(self, out);
    }

    /// `selfᵀ · other` without materializing the transpose.
    pub fn transpose_matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::default(); // sized (once) by the _into
        self.transpose_matmul_into(other, &mut out);
        out
    }

    /// In-place variant of [`DenseMatrix::transpose_matmul`]: writes
    /// `selfᵀ · other` into `out` (reshaped as needed), with a chunked
    /// parallel reduction on large inputs. SIMD-dispatched; bit-identical
    /// across tiers.
    pub fn transpose_matmul_into(&self, other: &DenseMatrix, out: &mut DenseMatrix) {
        assert_eq!(
            self.rows, other.rows,
            "transpose_matmul shape mismatch: ({}, {})ᵀ x ({}, {})",
            self.rows, self.cols, other.rows, other.cols
        );
        out.resize_zeroed(self.cols, other.cols);
        transpose_matmul_into_kernel(self, other, out);
    }

    /// Computes `selfᵀ · x` and `selfᵀ · y` in a single pass over the
    /// rows of all three matrices (`x` and `y` share `self`'s row count).
    ///
    /// Bit-identical to two separate [`DenseMatrix::transpose_matmul`]
    /// calls — each output element accumulates contributions in the same
    /// (increasing row) order — but reads `self` once instead of twice.
    /// This is the shape of every Δ computation in the update sweeps
    /// (`SpᵀA + SpᵀC`, `SuᵀB + SuᵀD`, `SfᵀE₁ + SfᵀE₂`).
    pub fn transpose_matmul_pair_into(
        &self,
        x: &DenseMatrix,
        y: &DenseMatrix,
        out_x: &mut DenseMatrix,
        out_y: &mut DenseMatrix,
    ) {
        assert_eq!(self.rows, x.rows(), "transpose_matmul_pair: x row mismatch");
        assert_eq!(self.rows, y.rows(), "transpose_matmul_pair: y row mismatch");
        assert_eq!(
            x.cols(),
            y.cols(),
            "transpose_matmul_pair: x/y width mismatch"
        );
        let width = x.cols();
        out_x.resize_zeroed(self.cols, width);
        out_y.resize_zeroed(self.cols, width);
        transpose_matmul_pair_kernel(self, x, y, out_x, out_y);
    }

    /// `self · otherᵀ`.
    pub fn matmul_transpose(&self, other: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::default(); // sized (once) by the _into
        self.matmul_transpose_into(other, &mut out);
        out
    }

    /// In-place variant of [`DenseMatrix::matmul_transpose`]: writes
    /// `self · otherᵀ` into `out` (reshaped as needed), row-parallel on
    /// large inputs. SIMD-dispatched; bit-identical across tiers.
    pub fn matmul_transpose_into(&self, other: &DenseMatrix, out: &mut DenseMatrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose shape mismatch: ({}, {}) x ({}, {})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        out.resize_zeroed(self.rows, other.rows);
        matmul_transpose_into_kernel(self, other, out);
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &DenseMatrix) -> DenseMatrix {
        self.zip_with(other, |a, b| a * b)
    }

    /// Element-wise sum.
    pub fn add(&self, other: &DenseMatrix) -> DenseMatrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &DenseMatrix) -> DenseMatrix {
        self.zip_with(other, |a, b| a - b)
    }

    /// In-place element-wise addition: `self += other`.
    pub fn add_assign(&mut self, other: &DenseMatrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        add_assign_kernel(crate::simd::active_tier(), &mut self.data, &other.data);
    }

    /// In-place element-wise subtraction: `self -= other`.
    pub fn sub_assign(&mut self, other: &DenseMatrix) {
        assert_eq!(self.shape(), other.shape(), "sub_assign shape mismatch");
        sub_assign_kernel(crate::simd::active_tier(), &mut self.data, &other.data);
    }

    /// In-place `self -= scale * other`, with the product grouped as
    /// `scale * b` per entry — the same floating-point association as
    /// `self.sub(&other.scale(scale))`, so fused call sites reproduce the
    /// allocating chain bit-for-bit.
    pub fn sub_scaled_assign(&mut self, scale: f64, other: &DenseMatrix) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "sub_scaled_assign shape mismatch"
        );
        sub_scaled_assign_kernel(
            crate::simd::active_tier(),
            &mut self.data,
            scale,
            &other.data,
        );
    }

    /// In-place scalar multiplication (alias of
    /// [`DenseMatrix::scale_in_place`], named for symmetry with the other
    /// `_assign` kernels).
    pub fn scale_assign(&mut self, scalar: f64) {
        self.scale_in_place(scalar);
    }

    /// In-place element-wise addition of `scale * other`.
    pub fn axpy(&mut self, scale: f64, other: &DenseMatrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        axpy_kernel(
            crate::simd::active_tier(),
            &mut self.data,
            scale,
            &other.data,
        );
    }

    /// Returns `self * scalar`.
    pub fn scale(&self, scalar: f64) -> DenseMatrix {
        self.map(|v| v * scalar)
    }

    /// In-place scalar multiplication.
    pub fn scale_in_place(&mut self, scalar: f64) {
        scale_kernel(crate::simd::active_tier(), &mut self.data, scalar);
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> DenseMatrix {
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every entry in place.
    pub fn map_in_place(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    fn zip_with(&self, other: &DenseMatrix, f: impl Fn(f64, f64) -> f64) -> DenseMatrix {
        assert_eq!(self.shape(), other.shape(), "element-wise shape mismatch");
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Squared Frobenius norm `‖M‖²_F`.
    pub fn frobenius_sq(&self) -> f64 {
        self.data.iter().map(|&v| v * v).sum()
    }

    /// Frobenius norm `‖M‖_F`.
    pub fn frobenius(&self) -> f64 {
        self.frobenius_sq().sqrt()
    }

    /// Trace of a square matrix.
    pub fn trace(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "trace requires a square matrix");
        (0..self.rows).map(|i| self.get(i, i)).sum()
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// Largest absolute difference against `other` (convergence checks).
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .fold(0.0_f64, |m, (&a, &b)| m.max((a - b).abs()))
    }

    /// Frobenius inner product `⟨self, other⟩`.
    pub fn frobenius_inner(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(
            self.shape(),
            other.shape(),
            "frobenius_inner shape mismatch"
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Index of the largest entry in each row (ties broken towards the
    /// lowest index). This is how soft cluster memberships become labels.
    pub fn argmax_rows(&self) -> Vec<usize> {
        self.rows_iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .fold((0usize, f64::NEG_INFINITY), |(bi, bv), (i, &v)| {
                        if v > bv {
                            (i, v)
                        } else {
                            (bi, bv)
                        }
                    })
                    .0
            })
            .collect()
    }

    /// Normalizes each row to sum to one (rows summing to zero are left as
    /// a uniform distribution).
    pub fn normalize_rows_l1(&mut self) {
        let k = self.cols;
        if k == 0 {
            return;
        }
        for row in self.data.chunks_exact_mut(k) {
            let s: f64 = row.iter().sum();
            if s > 0.0 {
                for v in row.iter_mut() {
                    *v /= s;
                }
            } else {
                let u = 1.0 / k as f64;
                for v in row.iter_mut() {
                    *v = u;
                }
            }
        }
    }

    /// Clamps all entries below `min` up to `min` (non-negativity guard).
    pub fn clamp_min(&mut self, min: f64) {
        for v in &mut self.data {
            if *v < min {
                *v = min;
            }
        }
    }

    /// True when every entry is finite and `>= 0`.
    pub fn is_nonnegative(&self) -> bool {
        self.data.iter().all(|&v| v.is_finite() && v >= 0.0)
    }

    /// Copies row `src` of `other` into row `dst` of `self`.
    pub fn copy_row_from(&mut self, dst: usize, other: &DenseMatrix, src: usize) {
        assert_eq!(self.cols, other.cols, "copy_row_from column mismatch");
        let k = self.cols;
        self.data[dst * k..(dst + 1) * k].copy_from_slice(other.row(src));
    }

    /// Vertically stacks `self` on top of `other`.
    pub fn vstack(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        DenseMatrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Gathers the given rows into a new matrix.
    pub fn select_rows(&self, rows: &[usize]) -> DenseMatrix {
        let mut out = DenseMatrix::default(); // sized (once) by the _into
        self.select_rows_into(rows, &mut out);
        out
    }

    /// In-place variant of [`DenseMatrix::select_rows`]: gathers into
    /// `out`, reusing its allocation when capacity suffices.
    pub fn select_rows_into(&self, rows: &[usize], out: &mut DenseMatrix) {
        out.resize_zeroed(rows.len(), self.cols);
        for (dst, &src) in rows.iter().enumerate() {
            out.copy_row_from(dst, self, src);
        }
    }

    /// Scatters the rows of `block` back: row `i` of `block` overwrites
    /// row `rows[i]` of `self` (inverse of [`DenseMatrix::select_rows`]).
    pub fn scatter_rows_from(&mut self, rows: &[usize], block: &DenseMatrix) {
        assert_eq!(
            rows.len(),
            block.rows(),
            "scatter_rows_from row-count mismatch"
        );
        for (src, &dst) in rows.iter().enumerate() {
            self.copy_row_from(dst, block, src);
        }
    }

    /// Fused scatter + Gram: row `i` of `block` overwrites row `rows[i]`
    /// of `self` (exactly [`DenseMatrix::scatter_rows_from`]) while one
    /// blocked pass accumulates `selfᵀ·self` **post-scatter** into
    /// `gram`. Bit-identical to scattering first and calling
    /// [`DenseMatrix::gram_into`] afterwards, at every thread count
    /// (property-tested): the pass reuses `reduce_rows`'s fixed blocks
    /// and block-ordered fold, and each block overwrites the rows it
    /// owns before reading them — so the gather-order problem that kept
    /// the online `Su` block rules out of the gram-in-update fusion does
    /// not arise (the reduction runs in full-matrix row order, not
    /// gather order). `rows` must be strictly ascending (the online
    /// solver's row partitions are).
    pub fn scatter_rows_with_gram(
        &mut self,
        rows: &[usize],
        block: &DenseMatrix,
        gram: &mut DenseMatrix,
    ) {
        assert_eq!(
            rows.len(),
            block.rows(),
            "scatter_rows_with_gram row-count mismatch"
        );
        debug_assert!(
            rows.windows(2).all(|w| w[0] < w[1]),
            "scatter rows must be strictly ascending"
        );
        if let Some(&last) = rows.last() {
            assert!(last < self.rows, "scatter row {last} out of bounds");
            assert_eq!(
                block.cols(),
                self.cols,
                "scatter_rows_with_gram width mismatch"
            );
        }
        gram.resize_zeroed(self.cols, self.cols);
        scatter_gram_kernel(self, rows, block, gram);
    }
}

// --- SIMD-dispatched hot loops (see `crate::simd`) ---
//
// Each kernel below is the scalar body of the corresponding public
// method, re-instantiated under runtime-selected `target_feature`
// wrappers. The bodies are unchanged from the pre-dispatch
// implementations, so every tier is bit-identical (property-tested in
// `tests/simd_parity.rs`); shape checks and output sizing stay in the
// public methods. The tier is resolved once on the calling thread and
// passed into the row-parallel chunk closures, so worker threads run
// the caller's tier (including test overrides).

/// Hot loop of [`DenseMatrix::matmul_into`]: row-parallel over output
/// chunks, each chunk dispatched to the active tier.
fn matmul_into_kernel(a: &DenseMatrix, other: &DenseMatrix, out: &mut DenseMatrix) {
    let tier = crate::simd::active_tier();
    let width = other.cols;
    let work = a.rows * a.cols * width;
    crate::parallel::for_each_row_chunk(a.rows, work, &mut out.data, width, |r0, chunk| {
        matmul_chunk(tier, a, other, r0, chunk);
    });
}

simd_kernel! {
    /// One output-row chunk of `matmul_into` (i-k-j order, zero-skip).
    fn matmul_chunk(a: &DenseMatrix, other: &DenseMatrix, r0: usize, chunk: &mut [f64]) {
        let width = other.cols;
        for (local, out_row) in chunk.chunks_exact_mut(width.max(1)).enumerate() {
            let a_row = a.row(r0 + local);
            for (k, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += av * b;
                }
            }
        }
    }
}

/// Hot loop of [`DenseMatrix::gram_into`]: blocked parallel reduction,
/// each row range dispatched to the active tier, then the mirror.
fn gram_into_kernel(a: &DenseMatrix, out: &mut DenseMatrix) {
    let tier = crate::simd::active_tier();
    let k = a.cols;
    let work = a.rows * k * k;
    crate::parallel::reduce_rows(a.rows, work, &mut out.data, |r0, r1, acc| {
        gram_rows(tier, a, r0, r1, acc);
    });
    // mirror the upper triangle
    for p in 0..k {
        for q in (p + 1)..k {
            out.data[q * k + p] = out.data[p * k + q];
        }
    }
}

simd_kernel! {
    /// Rows `[r0, r1)` of the Gram reduction: symmetric rank-1
    /// accumulation over the upper triangle. The triangle is walked via
    /// subslices (not `acc[p * k + q]` indexing) so the inner loop is a
    /// bounds-check-free lane-ordered axpy — same operations in the same
    /// order, just better codegen.
    fn gram_rows(a: &DenseMatrix, r0: usize, r1: usize, acc: &mut [f64]) {
        match a.cols {
            2 => gram_rows_w::<2>(a, r0, r1, acc),
            3 => gram_rows_w::<3>(a, r0, r1, acc),
            10 => gram_rows_w::<10>(a, r0, r1, acc),
            _ => gram_rows_w::<0>(a, r0, r1, acc),
        }
    }
}

/// Width-monomorphized body of [`gram_rows`] (`W = 0` means runtime
/// width).
#[inline(always)]
fn gram_rows_w<const W: usize>(a: &DenseMatrix, r0: usize, r1: usize, acc: &mut [f64]) {
    let k = if W > 0 { W } else { a.cols };
    for i in r0..r1 {
        let row = &a.row(i)[..k];
        for (p, &rp) in row.iter().enumerate() {
            if rp == 0.0 {
                continue;
            }
            let acc_row = &mut acc[p * k + p..(p + 1) * k];
            for (o, &b) in acc_row.iter_mut().zip(row[p..].iter()) {
                *o += rp * b;
            }
        }
    }
}

/// Hot loop of [`DenseMatrix::scatter_rows_with_gram`]: exactly
/// [`gram_into_kernel`]'s blocked reduction, with each block first
/// overwriting the listed rows it owns. The matrix is threaded through
/// as a raw base address because block bodies both write (their own
/// rows, disjoint across blocks) and read (the Gram accumulation) —
/// a shared `&DenseMatrix` could not coexist with those writes.
fn scatter_gram_kernel(
    a: &mut DenseMatrix,
    rows: &[usize],
    block: &DenseMatrix,
    out: &mut DenseMatrix,
) {
    let tier = crate::simd::active_tier();
    let k = a.cols;
    let total_rows = a.rows;
    let work = total_rows * k * k;
    let base = a.data.as_mut_ptr() as usize;
    crate::parallel::reduce_rows(total_rows, work, &mut out.data, |r0, r1, acc| {
        // The listed rows falling in this block's half-open range; they
        // are strictly ascending, so this is a binary-searched subslice.
        let lo = rows.partition_point(|&r| r < r0);
        let hi = rows.partition_point(|&r| r < r1);
        scatter_gram_rows(tier, base, k, block, &rows[lo..hi], lo, r0, r1, acc);
    });
    // mirror the upper triangle
    for p in 0..k {
        for q in (p + 1)..k {
            out.data[q * k + p] = out.data[p * k + q];
        }
    }
}

simd_kernel! {
    /// Rows `[r0, r1)` of the fused pass: scatter the listed rows
    /// (global indices, all inside the range) from `block` rows starting
    /// at `block_off`, then run the Gram accumulation over the whole
    /// range — the same operations in the same order as a scatter
    /// followed by [`gram_rows`].
    fn scatter_gram_rows(
        base: usize,
        k: usize,
        block: &DenseMatrix,
        rows: &[usize],
        block_off: usize,
        r0: usize,
        r1: usize,
        acc: &mut [f64],
    ) {
        for (i, &dst) in rows.iter().enumerate() {
            let src = &block.row(block_off + i)[..k];
            // SAFETY: `dst ∈ [r0, r1)`, the row range owned by this call.
            let dst_row =
                unsafe { std::slice::from_raw_parts_mut((base as *mut f64).add(dst * k), k) };
            dst_row.copy_from_slice(src);
        }
        match k {
            2 => gram_span_w::<2>(base, k, r0, r1, acc),
            3 => gram_span_w::<3>(base, k, r0, r1, acc),
            10 => gram_span_w::<10>(base, k, r0, r1, acc),
            _ => gram_span_w::<0>(base, k, r0, r1, acc),
        }
    }
}

/// Gram accumulation over rows `[r0, r1)` read through a raw base
/// address: the same subslice-upper-triangle, zero-skip loop as
/// [`gram_rows_w`], so the floating-point sequence is identical.
#[inline(always)]
fn gram_span_w<const W: usize>(base: usize, k: usize, r0: usize, r1: usize, acc: &mut [f64]) {
    let k = if W > 0 { W } else { k };
    for i in r0..r1 {
        // SAFETY: row `i` lies in this call's owned range (disjoint
        // across reduction blocks), and its scatter writes are done.
        let row = unsafe { std::slice::from_raw_parts((base as *const f64).add(i * k), k) };
        for (p, &rp) in row.iter().enumerate() {
            if rp == 0.0 {
                continue;
            }
            let acc_row = &mut acc[p * k + p..(p + 1) * k];
            for (o, &b) in acc_row.iter_mut().zip(row[p..].iter()) {
                *o += rp * b;
            }
        }
    }
}

/// Hot loop of [`DenseMatrix::transpose_matmul_into`].
fn transpose_matmul_into_kernel(a: &DenseMatrix, other: &DenseMatrix, out: &mut DenseMatrix) {
    let tier = crate::simd::active_tier();
    let width = other.cols;
    let work = a.rows * a.cols * width;
    crate::parallel::reduce_rows(a.rows, work, &mut out.data, |r0, r1, acc| {
        transpose_matmul_rows(tier, a, other, r0, r1, acc);
    });
}

simd_kernel! {
    /// Rows `[r0, r1)` of the `selfᵀ·other` reduction, monomorphized on
    /// the common thin widths so the inner axpy fully unrolls (identical
    /// floating-point sequence at every width).
    fn transpose_matmul_rows(
        a: &DenseMatrix,
        other: &DenseMatrix,
        r0: usize,
        r1: usize,
        acc: &mut [f64],
    ) {
        match other.cols {
            2 => transpose_matmul_rows_w::<2>(a, other, r0, r1, acc),
            3 => transpose_matmul_rows_w::<3>(a, other, r0, r1, acc),
            10 => transpose_matmul_rows_w::<10>(a, other, r0, r1, acc),
            _ => transpose_matmul_rows_w::<0>(a, other, r0, r1, acc),
        }
    }
}

/// Width-monomorphized body of [`transpose_matmul_rows`] (`W = 0` means
/// runtime width). `#[inline(always)]` so it compiles into each
/// dispatched wrapper with that wrapper's target features.
#[inline(always)]
fn transpose_matmul_rows_w<const W: usize>(
    a: &DenseMatrix,
    other: &DenseMatrix,
    r0: usize,
    r1: usize,
    acc: &mut [f64],
) {
    let width = if W > 0 { W } else { other.cols };
    for i in r0..r1 {
        let a_row = a.row(i);
        let b_row = &other.row(i)[..width];
        for (a_idx, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let out_row = &mut acc[a_idx * width..(a_idx + 1) * width];
            for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * b;
            }
        }
    }
}

/// Hot loop of [`DenseMatrix::transpose_matmul_pair_into`]: both
/// accumulators ride in one reduction buffer so the pass stays a single
/// `reduce_rows` call (and a single parallel dispatch).
fn transpose_matmul_pair_kernel(
    s: &DenseMatrix,
    x: &DenseMatrix,
    y: &DenseMatrix,
    out_x: &mut DenseMatrix,
    out_y: &mut DenseMatrix,
) {
    let tier = crate::simd::active_tier();
    let width = x.cols();
    let work = 2 * s.rows * s.cols * width;
    let len = s.cols * width;
    if 2 * len <= crate::parallel::MAX_REDUCE_LEN {
        let mut acc = [0.0f64; crate::parallel::MAX_REDUCE_LEN];
        crate::parallel::reduce_rows(s.rows, work, &mut acc[..2 * len], |r0, r1, acc| {
            let (ax, ay) = acc.split_at_mut(len);
            transpose_matmul_pair_rows(tier, s, x, y, r0, r1, ax, ay);
        });
        out_x.as_mut_slice().copy_from_slice(&acc[..len]);
        out_y.as_mut_slice().copy_from_slice(&acc[len..2 * len]);
    } else {
        // Wide outputs: the accumulators don't fit the shared
        // reduction buffer, so reduce each product separately — same
        // fixed-block summation tree as `transpose_matmul_into`, so
        // the bit-identity contract holds at every width (the fused
        // single-pass saving only applies to thin factors anyway).
        transpose_matmul_into_kernel(s, x, out_x);
        transpose_matmul_into_kernel(s, y, out_y);
        let _ = work;
    }
}

simd_kernel! {
    /// Rows `[r0, r1)` of the fused pair reduction, monomorphized on the
    /// common thin widths (identical floating-point sequence).
    fn transpose_matmul_pair_rows(
        s: &DenseMatrix,
        x: &DenseMatrix,
        y: &DenseMatrix,
        r0: usize,
        r1: usize,
        acc_x: &mut [f64],
        acc_y: &mut [f64],
    ) {
        match x.cols() {
            2 => pair_rows_w::<2>(s, x, y, r0, r1, acc_x, acc_y),
            3 => pair_rows_w::<3>(s, x, y, r0, r1, acc_x, acc_y),
            10 => pair_rows_w::<10>(s, x, y, r0, r1, acc_x, acc_y),
            _ => pair_rows_w::<0>(s, x, y, r0, r1, acc_x, acc_y),
        }
    }
}

/// Width-monomorphized body of [`transpose_matmul_pair_rows`] (`W = 0`
/// means runtime width).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn pair_rows_w<const W: usize>(
    s: &DenseMatrix,
    x: &DenseMatrix,
    y: &DenseMatrix,
    r0: usize,
    r1: usize,
    acc_x: &mut [f64],
    acc_y: &mut [f64],
) {
    let width = if W > 0 { W } else { x.cols() };
    for i in r0..r1 {
        let a_row = s.row(i);
        let x_row = &x.row(i)[..width];
        let y_row = &y.row(i)[..width];
        for (a_idx, &a) in a_row.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let out_x = &mut acc_x[a_idx * width..(a_idx + 1) * width];
            for (o, &b) in out_x.iter_mut().zip(x_row.iter()) {
                *o += a * b;
            }
            let out_y = &mut acc_y[a_idx * width..(a_idx + 1) * width];
            for (o, &b) in out_y.iter_mut().zip(y_row.iter()) {
                *o += a * b;
            }
        }
    }
}

/// Hot loop of [`DenseMatrix::matmul_transpose_into`].
fn matmul_transpose_into_kernel(a: &DenseMatrix, other: &DenseMatrix, out: &mut DenseMatrix) {
    let tier = crate::simd::active_tier();
    let width = other.rows;
    let work = a.rows * a.cols * width;
    crate::parallel::for_each_row_chunk(a.rows, work, &mut out.data, width, |r0, chunk| {
        matmul_transpose_chunk(tier, a, other, r0, chunk);
    });
}

simd_kernel! {
    /// One output-row chunk of `matmul_transpose_into` (row-dot layout).
    /// Outputs are computed four at a time: the four dot chains run in
    /// independent lanes, and every individual output still accumulates
    /// `(((0 + a₀b₀) + a₁b₁) + …)` in exactly [`dot`]'s order, so the
    /// tile is bit-identical to the plain per-output loop while breaking
    /// the add-latency chain that serializes it.
    fn matmul_transpose_chunk(a: &DenseMatrix, other: &DenseMatrix, r0: usize, chunk: &mut [f64]) {
        let width = other.rows;
        for (local, out_row) in chunk.chunks_exact_mut(width.max(1)).enumerate() {
            let a_row = a.row(r0 + local);
            let mut j = 0;
            while j + 4 <= width {
                let (b0, b1, b2, b3) = (
                    other.row(j),
                    other.row(j + 1),
                    other.row(j + 2),
                    other.row(j + 3),
                );
                let mut acc = [0.0f64; 4];
                for (t, &av) in a_row.iter().enumerate() {
                    acc[0] += av * b0[t];
                    acc[1] += av * b1[t];
                    acc[2] += av * b2[t];
                    acc[3] += av * b3[t];
                }
                out_row[j..j + 4].copy_from_slice(&acc);
                j += 4;
            }
            for (jj, o) in out_row.iter_mut().enumerate().skip(j) {
                *o = dot(a_row, other.row(jj));
            }
        }
    }
}

simd_kernel! {
    /// Element-wise `a += b`.
    fn add_assign_kernel(a: &mut [f64], b: &[f64]) {
        for (av, &bv) in a.iter_mut().zip(b.iter()) {
            *av += bv;
        }
    }
}

simd_kernel! {
    /// Element-wise `a -= b`.
    fn sub_assign_kernel(a: &mut [f64], b: &[f64]) {
        for (av, &bv) in a.iter_mut().zip(b.iter()) {
            *av -= bv;
        }
    }
}

simd_kernel! {
    /// Element-wise `a -= scale * b` (product grouped as `scale * b`).
    fn sub_scaled_assign_kernel(a: &mut [f64], scale: f64, b: &[f64]) {
        for (av, &bv) in a.iter_mut().zip(b.iter()) {
            *av -= scale * bv;
        }
    }
}

simd_kernel! {
    /// Element-wise `a += scale * b`.
    fn axpy_kernel(a: &mut [f64], scale: f64, b: &[f64]) {
        for (av, &bv) in a.iter_mut().zip(b.iter()) {
            *av += scale * bv;
        }
    }
}

simd_kernel! {
    /// Element-wise `a *= scalar`.
    fn scale_kernel(a: &mut [f64], scalar: f64) {
        for v in a.iter_mut() {
            *v *= scalar;
        }
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f64]) -> DenseMatrix {
        DenseMatrix::from_vec(rows, cols, v.to_vec()).unwrap()
    }

    #[test]
    fn zeros_shape_and_content() {
        let z = DenseMatrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = DenseMatrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c, m(2, 2, &[58.0, 64.0, 139.0, 154.0]));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn gram_matches_explicit_transpose_product() {
        let a = m(3, 2, &[1.0, 2.0, 0.0, 1.0, 3.0, 1.0]);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a);
        assert!(g.max_abs_diff(&explicit) < 1e-12);
    }

    #[test]
    fn transpose_matmul_matches_explicit() {
        let a = m(3, 2, &[1.0, 2.0, 0.0, 1.0, 3.0, 1.0]);
        let b = m(3, 4, &(0..12).map(|v| v as f64).collect::<Vec<_>>());
        let fast = a.transpose_matmul(&b);
        let explicit = a.transpose().matmul(&b);
        assert!(fast.max_abs_diff(&explicit) < 1e-12);
    }

    #[test]
    fn matmul_transpose_matches_explicit() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(4, 3, &(0..12).map(|v| v as f64).collect::<Vec<_>>());
        let fast = a.matmul_transpose(&b);
        let explicit = a.matmul(&b.transpose());
        assert!(fast.max_abs_diff(&explicit) < 1e-12);
    }

    #[test]
    fn hadamard_add_sub() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(a.hadamard(&b), m(2, 2, &[5.0, 12.0, 21.0, 32.0]));
        assert_eq!(a.add(&b), m(2, 2, &[6.0, 8.0, 10.0, 12.0]));
        assert_eq!(b.sub(&a), m(2, 2, &[4.0, 4.0, 4.0, 4.0]));
    }

    #[test]
    fn frobenius_and_trace() {
        let a = m(2, 2, &[3.0, 0.0, 4.0, 0.0]);
        assert_eq!(a.frobenius_sq(), 25.0);
        assert_eq!(a.frobenius(), 5.0);
        assert_eq!(a.trace(), 3.0);
    }

    #[test]
    #[should_panic(expected = "trace requires a square matrix")]
    fn trace_panics_on_rect() {
        m(1, 2, &[1.0, 2.0]).trace();
    }

    #[test]
    fn argmax_rows_breaks_ties_low() {
        let a = m(3, 3, &[0.1, 0.8, 0.1, 0.5, 0.5, 0.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.argmax_rows(), vec![1, 0, 2]);
    }

    #[test]
    fn normalize_rows_handles_zero_rows() {
        let mut a = m(2, 2, &[2.0, 2.0, 0.0, 0.0]);
        a.normalize_rows_l1();
        assert_eq!(a, m(2, 2, &[0.5, 0.5, 0.5, 0.5]));
    }

    #[test]
    fn vstack_and_select_rows() {
        let a = m(1, 2, &[1.0, 2.0]);
        let b = m(2, 2, &[3.0, 4.0, 5.0, 6.0]);
        let s = a.vstack(&b);
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row(2), &[5.0, 6.0]);
        let sel = s.select_rows(&[2, 0]);
        assert_eq!(sel, m(2, 2, &[5.0, 6.0, 1.0, 2.0]));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = m(1, 2, &[1.0, 1.0]);
        let b = m(1, 2, &[2.0, 3.0]);
        a.axpy(0.5, &b);
        assert_eq!(a, m(1, 2, &[2.0, 2.5]));
    }

    #[test]
    fn is_nonnegative_detects_negatives_and_nan() {
        assert!(m(1, 2, &[0.0, 1.0]).is_nonnegative());
        assert!(!m(1, 2, &[-0.1, 1.0]).is_nonnegative());
        assert!(!m(1, 2, &[f64::NAN, 1.0]).is_nonnegative());
    }
}

//! Runtime-dispatched SIMD specialization of the thin-`k` hot kernels.
//!
//! The dispatch layer recompiles the **exact scalar kernel bodies** under
//! `#[target_feature]` wrappers and selects a variant once per process
//! (`is_x86_feature_detected!` at first use, overridable via the
//! `TGS_SIMD` environment variable). Because the specialized variants run
//! the *same* Rust code — same loop structure, same mul/add order, no
//! FMA contraction (Rust never emits fast-math flags, so LLVM may not
//! fuse `a * b + c` into one rounding) — every lane computes the exact
//! IEEE-754 sequence of the scalar path and results are **bit-identical**
//! across tiers, scalar tails included. What changes is pure codegen:
//! with AVX2 enabled, LLVM vectorizes the lane-ordered elementwise and
//! accumulate loops 4 f64s at a time (plus the scalar tail for widths
//! that are not a multiple of the lane count) instead of the 2-wide SSE2
//! baseline. Parity is property-tested in `tests/simd_parity.rs`.
//!
//! Tiers:
//!
//! * [`SimdTier::Scalar`] — the portable baseline (x86-64 SSE2 codegen).
//! * [`SimdTier::Avx2`] — AVX2 without FMA.
//! * [`SimdTier::Avx2Fma`] — AVX2 + FMA detected. Arithmetic is still
//!   mul-then-add (contraction would change rounding and break the
//!   bit-identity contract); the tier exists so diagnostics record the
//!   precise ISA and codegen may use FMA-set encodings where
//!   rounding-neutral.
//! * [`SimdTier::Neon`] — aarch64, where NEON is part of the baseline
//!   target: the "scalar" body already compiles to NEON, so the tier is
//!   reported for diagnostics and dispatches to the shared body.
//!
//! `TGS_SIMD` accepts `auto` (default), `off`, `avx2`, `fma`. Overrides
//! are clamped to what the CPU actually supports — requesting `fma` on an
//! AVX2-only machine degrades to `avx2`, and any x86 tier degrades to
//! `scalar` off x86-64 — so a stale environment variable can never make
//! the process execute unsupported instructions.

use std::sync::atomic::{AtomicU8, Ordering};

/// The instruction-set tier a dispatched kernel executes under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdTier {
    /// Portable baseline codegen (no runtime feature use).
    Scalar = 0,
    /// AVX2 (256-bit, 4×f64 lanes).
    Avx2 = 1,
    /// AVX2 + FMA available (arithmetic stays mul-then-add; see module
    /// docs).
    Avx2Fma = 2,
    /// aarch64 NEON (baseline on that target; reported for diagnostics).
    Neon = 3,
}

impl SimdTier {
    /// Short stable name, recorded in `EngineStats` / bench artifacts.
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Avx2 => "avx2",
            SimdTier::Avx2Fma => "avx2+fma",
            SimdTier::Neon => "neon",
        }
    }

    fn from_u8(v: u8) -> SimdTier {
        match v {
            1 => SimdTier::Avx2,
            2 => SimdTier::Avx2Fma,
            3 => SimdTier::Neon,
            _ => SimdTier::Scalar,
        }
    }
}

/// What this CPU supports, independent of any override.
pub fn detected_tier() -> SimdTier {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            if is_x86_feature_detected!("fma") {
                return SimdTier::Avx2Fma;
            }
            return SimdTier::Avx2;
        }
        SimdTier::Scalar
    }
    #[cfg(target_arch = "aarch64")]
    {
        SimdTier::Neon
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        SimdTier::Scalar
    }
}

/// Parses a `TGS_SIMD` value into the *requested* tier. Unrecognized
/// values (and `auto`) request the best detected tier; the request is
/// clamped to `detected` so an override can never enable instructions
/// the CPU lacks.
pub(crate) fn resolve_request(request: Option<&str>, detected: SimdTier) -> SimdTier {
    let lowered = request.map(|r| r.trim().to_ascii_lowercase());
    let requested = match lowered.as_deref() {
        // Case-insensitive, with the common "disable" spellings — a
        // near-miss of "off" silently enabling full SIMD would defeat
        // the knob's whole purpose (provenance while debugging).
        Some("off") | Some("scalar") | Some("none") | Some("0") | Some("false")
        | Some("disable") | Some("disabled") => SimdTier::Scalar,
        Some("avx2") => SimdTier::Avx2,
        Some("fma") | Some("avx2+fma") | Some("avx2fma") => SimdTier::Avx2Fma,
        _ => detected, // auto / unset / unrecognized
    };
    // NEON is not orderable against the x86 tiers; any explicit x86
    // request off x86-64 degrades to scalar, `auto` keeps NEON.
    if detected == SimdTier::Neon {
        return match requested {
            SimdTier::Scalar => SimdTier::Scalar,
            _ => SimdTier::Neon,
        };
    }
    requested.min(detected)
}

/// Process-wide resolved tier: 0xFF = not yet initialized.
static ACTIVE: AtomicU8 = AtomicU8::new(0xFF);

thread_local! {
    /// Per-thread override used by parity tests and the SIMD benches to
    /// force a specific tier. Thread-local on purpose: dispatch decisions
    /// are made on the calling thread (worker threads only execute the
    /// already-chosen body), and a process-global override would race
    /// between concurrently running tests.
    static OVERRIDE: std::cell::Cell<u8> = const { std::cell::Cell::new(0xFF) };
}

fn resolve_from_env() -> SimdTier {
    let env = std::env::var("TGS_SIMD").ok();
    resolve_request(env.as_deref(), detected_tier())
}

/// The tier dispatched kernels execute under on this thread: the
/// thread-local override if set, otherwise the process-wide tier
/// (resolved once from `TGS_SIMD` + CPU detection).
#[inline]
pub fn active_tier() -> SimdTier {
    let o = OVERRIDE.with(|c| c.get());
    if o != 0xFF {
        return SimdTier::from_u8(o);
    }
    let v = ACTIVE.load(Ordering::Relaxed);
    if v != 0xFF {
        return SimdTier::from_u8(v);
    }
    let resolved = resolve_from_env();
    ACTIVE.store(resolved as u8, Ordering::Relaxed);
    resolved
}

/// Short name of [`active_tier`] (stats / bench provenance).
pub fn active_tier_name() -> &'static str {
    active_tier().name()
}

/// Forces the dispatch tier on the **current thread** (parity tests,
/// `simd_kernels/{scalar,dispatched}` benches). `None` restores normal
/// resolution. The request is clamped to the detected capabilities, so
/// forcing `Avx2Fma` on a machine without it silently degrades — callers
/// comparing tiers should check [`active_tier`] afterwards. Returns the
/// previous override.
pub fn set_simd_tier_override(tier: Option<SimdTier>) -> Option<SimdTier> {
    let clamped = tier.map(|t| {
        let detected = detected_tier();
        if detected == SimdTier::Neon {
            // NEON is not orderable against the x86 tiers.
            if t == SimdTier::Scalar {
                SimdTier::Scalar
            } else {
                SimdTier::Neon
            }
        } else {
            t.min(detected)
        }
    });
    let prev = OVERRIDE.with(|c| c.replace(clamped.map_or(0xFF, |t| t as u8)));
    if prev == 0xFF {
        None
    } else {
        Some(SimdTier::from_u8(prev))
    }
}

/// Defines a runtime-dispatched kernel: the body is instantiated once as
/// the portable `scalar` function and again under
/// `#[target_feature(enable = "avx2")]` / `"avx2,fma"` wrappers; the
/// generated front function takes the tier as its **first argument** and
/// selects a variant. Callers resolve [`active_tier`] once on the
/// calling thread and pass it down — dispatch therefore works inside
/// row-parallel chunk closures running on worker threads (where a
/// thread-local lookup would miss the caller's override), and the cost
/// per chunk is one match.
///
/// The body is duplicated *textually* into each wrapper (not shared via
/// an inlined helper) so that rustc's closure-inherits-target-feature
/// rule applies to any closure in the body, and because the identical
/// source compiled at a higher feature level executes the identical
/// IEEE-754 sequence (no fast-math, no contraction), every variant is
/// bit-identical.
macro_rules! simd_kernel {
    ($(#[$meta:meta])* $vis:vis fn $name:ident$(<const $K:ident: usize>)?( $($arg:ident: $ty:ty),* $(,)? ) $body:block) => {
        $(#[$meta])*
        #[allow(clippy::too_many_arguments)]
        $vis fn $name$(<const $K: usize>)?(tier: $crate::simd::SimdTier, $($arg: $ty),*) {
            #[inline(always)]
            #[allow(clippy::too_many_arguments)]
            fn variant_scalar$(<const $K: usize>)?($($arg: $ty),*) $body

            #[cfg(target_arch = "x86_64")]
            #[target_feature(enable = "avx2")]
            #[allow(clippy::too_many_arguments)]
            unsafe fn variant_avx2$(<const $K: usize>)?($($arg: $ty),*) $body

            #[cfg(target_arch = "x86_64")]
            #[target_feature(enable = "avx2,fma")]
            #[allow(clippy::too_many_arguments)]
            unsafe fn variant_avx2_fma$(<const $K: usize>)?($($arg: $ty),*) $body

            match tier {
                // SAFETY: tiers are only ever produced by `active_tier`,
                // which reports a tier strictly after
                // `is_x86_feature_detected!` confirmed the features (env
                // and test overrides are clamped to detection).
                #[cfg(target_arch = "x86_64")]
                $crate::simd::SimdTier::Avx2 => unsafe { variant_avx2$(::<$K>)?($($arg),*) },
                #[cfg(target_arch = "x86_64")]
                $crate::simd::SimdTier::Avx2Fma => unsafe { variant_avx2_fma$(::<$K>)?($($arg),*) },
                _ => variant_scalar$(::<$K>)?($($arg),*),
            }
        }
    };
}

pub(crate) use simd_kernel;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_request_clamps_to_detected() {
        use SimdTier::*;
        // auto / unknown take the detected tier
        assert_eq!(resolve_request(None, Avx2Fma), Avx2Fma);
        assert_eq!(resolve_request(Some("auto"), Avx2), Avx2);
        assert_eq!(resolve_request(Some("warp-drive"), Scalar), Scalar);
        // off always wins, case-insensitively and under aliases
        assert_eq!(resolve_request(Some("off"), Avx2Fma), Scalar);
        assert_eq!(resolve_request(Some("OFF"), Avx2Fma), Scalar);
        assert_eq!(resolve_request(Some(" Off "), Avx2Fma), Scalar);
        assert_eq!(resolve_request(Some("disabled"), Avx2Fma), Scalar);
        assert_eq!(resolve_request(Some("0"), Avx2Fma), Scalar);
        assert_eq!(resolve_request(Some("scalar"), Neon), Scalar);
        assert_eq!(resolve_request(Some("AVX2"), Avx2Fma), Avx2);
        assert_eq!(resolve_request(Some("FMA"), Avx2Fma), Avx2Fma);
        // explicit requests clamp to capability
        assert_eq!(resolve_request(Some("fma"), Avx2Fma), Avx2Fma);
        assert_eq!(resolve_request(Some("fma"), Avx2), Avx2);
        assert_eq!(resolve_request(Some("avx2"), Avx2Fma), Avx2);
        assert_eq!(resolve_request(Some("avx2"), Scalar), Scalar);
        // x86 requests degrade gracefully on aarch64
        assert_eq!(resolve_request(Some("avx2"), Neon), Neon);
        assert_eq!(resolve_request(None, Neon), Neon);
    }

    #[test]
    fn override_is_thread_local_and_clamped() {
        let process_tier = std::thread::spawn(active_tier).join().unwrap();
        let prev = set_simd_tier_override(Some(SimdTier::Scalar));
        assert_eq!(active_tier(), SimdTier::Scalar);
        // A spawned thread sees the un-overridden process tier.
        let other = std::thread::spawn(active_tier).join().unwrap();
        assert_eq!(other, process_tier, "override leaked across threads");
        set_simd_tier_override(prev);
    }

    #[test]
    fn tier_names_are_stable() {
        assert_eq!(SimdTier::Scalar.name(), "scalar");
        assert_eq!(SimdTier::Avx2.name(), "avx2");
        assert_eq!(SimdTier::Avx2Fma.name(), "avx2+fma");
        assert_eq!(SimdTier::Neon.name(), "neon");
    }
}

//! Persistent, process-wide worker pool for the row-parallel kernels.
//!
//! Before this module, every parallel kernel invocation spawned fresh OS
//! threads through `std::thread::scope` — roughly 10µs of spawn + join
//! cost per call, paid hundreds of times per solve in the thin-`k`
//! regime, with no control over where the scheduler placed the workers.
//! The pool replaces that with long-lived workers parked on a condvar
//! (a futex wait on Linux) that wake, claim tasks from a shared queue,
//! and park again.
//!
//! Design rules, in the same guarantee discipline as the SIMD layer
//! (`simd.rs`) and the blocked reductions (`parallel.rs`):
//!
//! * **Determinism is the caller's property.** The pool only distributes
//!   task *indices*; which thread runs which task is unspecified. The
//!   kernels in `parallel.rs` keep their bit-identical results because
//!   chunk boundaries and the block-ordered partial fold are computed by
//!   the caller, exactly as in the scoped-thread paths they replace.
//! * **Callers participate.** `run_tasks` claims tasks on the calling
//!   thread too, so a job always completes even with zero free workers —
//!   and nested dispatch (a pooled kernel issued from inside a pooled
//!   shard sweep) cannot deadlock: the innermost caller drains its own
//!   job by itself in the worst case.
//! * **Steady state allocates nothing.** Jobs live on the caller's
//!   stack; the queue is a `VecDeque` that keeps its capacity; reduction
//!   scratch comes from a reusable buffer stack ([`with_scratch`]).
//!   Workers are spawned lazily, once.
//!
//! Two environment knobs, mirroring `TGS_SIMD`:
//!
//! * `TGS_THREADS` — worker-thread budget (clamped to `1..=`
//!   [`HARD_THREAD_CAP`]); default `available_parallelism()`. `1`
//!   bypasses the pool entirely (pure sequential dispatch).
//! * `TGS_PIN` — `1`/`true`/`on` pins each worker to its own core via
//!   `sched_setaffinity` (best effort; Linux only, graceful no-op
//!   elsewhere). Off by default: on a shared box pinning can lose to the
//!   scheduler, so it is opt-in for dedicated-core deployments.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

use crate::parallel::HARD_THREAD_CAP;

// ---------------------------------------------------------------------------
// Thread-budget resolution (TGS_THREADS + runtime override)
// ---------------------------------------------------------------------------

/// Process-wide runtime override; `0` means "no override". Benches use
/// this to sweep thread counts within one process (the env var is read
/// once), the same way `set_parallel_work_threshold` sweeps dispatch.
static THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Cached `TGS_THREADS` / detected parallelism; `0` means "not yet read".
static ENV_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Effective thread budget: the runtime override if set, else
/// `TGS_THREADS`, else `available_parallelism()` — always clamped to
/// `1..=`[`HARD_THREAD_CAP`]. A budget of `1` disables pooled dispatch.
pub fn pool_threads() -> usize {
    let ov = THREADS_OVERRIDE.load(Ordering::Relaxed);
    if ov != 0 {
        return ov;
    }
    let cached = ENV_THREADS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let resolved = std::env::var("TGS_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(detected_parallelism)
        .min(HARD_THREAD_CAP);
    ENV_THREADS.store(resolved, Ordering::Relaxed);
    resolved
}

/// Overrides the thread budget process-wide (clamped to
/// `1..=`[`HARD_THREAD_CAP`]); `None` restores the `TGS_THREADS` /
/// detected default. Returns the previous override. Process-global like
/// [`crate::parallel::set_parallel_work_threshold`] — concurrent callers
/// see each other's setting, which is safe because every kernel built on
/// the pool is bit-identical at every thread count.
pub fn set_pool_threads_override(threads: Option<usize>) -> Option<usize> {
    let raw = threads.map_or(0, |n| n.clamp(1, HARD_THREAD_CAP));
    let prev = THREADS_OVERRIDE.swap(raw, Ordering::Relaxed);
    (prev != 0).then_some(prev)
}

fn detected_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

// ---------------------------------------------------------------------------
// Core affinity (TGS_PIN)
// ---------------------------------------------------------------------------

/// Cached `TGS_PIN` state: 0 = unread, 1 = off, 2 = on.
static PIN_STATE: AtomicU8 = AtomicU8::new(0);

/// Whether `TGS_PIN` requests core pinning (`1`/`true`/`on`/`yes`,
/// case-insensitive). Pinning itself is still best-effort and a no-op
/// off Linux; this reports the *request*, which is what
/// `EngineStats::pinned` surfaces.
pub fn pinning_enabled() -> bool {
    match PIN_STATE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let on = std::env::var("TGS_PIN")
                .map(|s| {
                    matches!(
                        s.trim().to_ascii_lowercase().as_str(),
                        "1" | "true" | "on" | "yes"
                    )
                })
                .unwrap_or(false);
            PIN_STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

#[cfg(target_os = "linux")]
mod affinity {
    /// 1024 CPUs, matching the kernel's default `cpu_set_t` width.
    const CPU_SET_WORDS: usize = 16;

    // std already links libc on Linux; declaring the symbol directly
    // avoids a libc crate dependency (the workspace vendors none).
    unsafe extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }

    /// Best-effort: pins the calling thread to `cores`. Returns whether
    /// the kernel accepted the mask.
    pub fn pin_current_thread(cores: &[usize]) -> bool {
        let mut mask = [0u64; CPU_SET_WORDS];
        let mut any = false;
        for &c in cores {
            if c < CPU_SET_WORDS * 64 {
                mask[c / 64] |= 1u64 << (c % 64);
                any = true;
            }
        }
        // pid 0 = the calling thread.
        any && unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) } == 0
    }
}

#[cfg(not(target_os = "linux"))]
mod affinity {
    /// Graceful no-op off Linux: affinity is advisory everywhere else.
    pub fn pin_current_thread(_cores: &[usize]) -> bool {
        false
    }
}

/// Pins the calling thread to the `set_index`-th of `n_sets` disjoint,
/// near-equal contiguous core groups (engine shard workers use this so
/// fleet solves stop fighting the scheduler). No-op returning `false`
/// unless [`pinning_enabled`] and the platform supports affinity. An
/// empty group (more sets than cores) falls back to the single core
/// `set_index % cores`.
pub fn pin_current_to_core_set(set_index: usize, n_sets: usize) -> bool {
    if !pinning_enabled() || n_sets == 0 {
        return false;
    }
    let cores = detected_parallelism();
    let set_index = set_index % n_sets;
    let lo = set_index * cores / n_sets;
    let hi = ((set_index + 1) * cores / n_sets).min(cores);
    let group: Vec<usize> = if lo < hi {
        (lo..hi).collect()
    } else {
        vec![set_index % cores]
    };
    affinity::pin_current_thread(&group)
}

// ---------------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------------

/// A scatter-gather job, owned by the caller's stack frame for the
/// duration of one [`run_tasks`] call. Workers only touch it while it is
/// reachable from the queue (under the queue lock) or while running a
/// task they claimed — and the caller cannot return before `pending`
/// hits zero and the job is unlinked from the queue, so no worker ever
/// observes a dangling job.
struct Job {
    /// Lifetime-erased task body; valid for the lifetime of the
    /// `run_tasks` call that owns this job.
    body: *const (dyn Fn(usize) + Sync),
    n_tasks: usize,
    /// Next unclaimed task index; claims are `fetch_add` so caller and
    /// workers can race without double-running a task.
    next: AtomicUsize,
    /// Tasks not yet *finished* (claimed ≠ finished); the caller waits
    /// on this reaching zero.
    pending: AtomicUsize,
    /// Set when any task body panicked; the caller re-panics.
    panicked: AtomicBool,
    done_mx: Mutex<()>,
    done_cv: Condvar,
}

/// Queue entry. Only ever dereferenced under the discipline documented
/// on [`Job`].
#[derive(Clone, Copy, PartialEq, Eq)]
struct JobRef(*const Job);

// SAFETY: the pointer is only dereferenced while the owning `run_tasks`
// frame is provably alive (see `Job` docs), and `Job` itself is Sync.
unsafe impl Send for JobRef {}

struct PoolState {
    queue: VecDeque<JobRef>,
    /// Workers spawned so far (monotone; the pool never shrinks).
    workers: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    /// Reusable f64 buffers for blocked-reduction partials; popped and
    /// pushed by [`with_scratch`] so steady-state reductions allocate
    /// nothing.
    scratch: Mutex<Vec<Vec<f64>>>,
}

static POOL: Pool = Pool {
    state: Mutex::new(PoolState {
        queue: VecDeque::new(),
        workers: 0,
    }),
    work_cv: Condvar::new(),
    scratch: Mutex::new(Vec::new()),
};

fn lock_state() -> MutexGuard<'static, PoolState> {
    POOL.state.lock().unwrap_or_else(|e| e.into_inner())
}

/// Number of pool workers spawned so far (diagnostics / tests).
pub fn spawned_workers() -> usize {
    lock_state().workers
}

/// Lazily grows the pool to `target` workers. Workers are never torn
/// down; raising the budget mid-process (benches sweeping
/// [`set_pool_threads_override`]) just spawns the difference.
fn ensure_workers(target: usize) {
    let target = target.min(HARD_THREAD_CAP);
    let mut st = lock_state();
    while st.workers < target {
        let index = st.workers;
        st.workers += 1;
        std::thread::Builder::new()
            .name(format!("tgs-pool-{index}"))
            .spawn(move || worker_loop(index))
            .expect("spawn tgs pool worker");
    }
}

fn worker_loop(index: usize) {
    if pinning_enabled() {
        // Core 0 is left to the main thread; worker i takes core i+1
        // (mod the machine) so each long-lived worker has a stable home.
        let cores = detected_parallelism();
        let _ = affinity::pin_current_thread(&[(index + 1) % cores.max(1)]);
    }
    let mut st = lock_state();
    loop {
        // Scan front-to-back for a job with unclaimed tasks; exhausted
        // jobs are unlinked in passing (their caller may still be
        // waiting on in-flight tasks — unlinking only stops new claims).
        let mut claimed = None;
        while let Some(&jr) = st.queue.front() {
            // SAFETY: `jr` is in the queue and we hold the queue lock,
            // so the owning `run_tasks` frame is still alive.
            let job = unsafe { &*jr.0 };
            let t = job.next.fetch_add(1, Ordering::Relaxed);
            if t < job.n_tasks {
                claimed = Some((jr, t));
                break;
            }
            st.queue.pop_front();
        }
        match claimed {
            Some((jr, t)) => {
                drop(st);
                // SAFETY: we claimed task `t`, so `pending > 0` keeps the
                // caller parked (and the job alive) until we finish it.
                run_one(unsafe { &*jr.0 }, t);
                st = lock_state();
            }
            None => {
                st = POOL.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
    }
}

/// Runs one claimed task and signals the owner when it was the last.
fn run_one(job: &Job, t: usize) {
    // SAFETY: the body outlives the job (both live in the `run_tasks`
    // frame that is parked until `pending == 0`).
    let body = unsafe { &*job.body };
    if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(t))).is_err() {
        job.panicked.store(true, Ordering::Release);
    }
    if job.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
        // Pair the notify with the mutex so the caller cannot miss it
        // between its `pending` check and its wait.
        let _g = job.done_mx.lock().unwrap_or_else(|e| e.into_inner());
        job.done_cv.notify_all();
    }
}

/// Runs `body(0) … body(n_tasks − 1)` exactly once each, distributed
/// over the pool plus the calling thread. Returns when all tasks have
/// finished; panics (after all tasks finish) if any task panicked.
///
/// Sequential inline — no queue, no synchronization — when `n_tasks <= 1`
/// or the effective thread budget ([`pool_threads`]) is `1`.
///
/// Determinism contract: task-index → work mapping is the caller's;
/// the pool guarantees only that each index runs once. Tasks for one job
/// may run concurrently with tasks of other jobs sharing the pool.
pub fn run_tasks<F>(n_tasks: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    if n_tasks == 0 {
        return;
    }
    let budget = pool_threads();
    if n_tasks == 1 || budget <= 1 {
        for t in 0..n_tasks {
            body(t);
        }
        return;
    }
    ensure_workers(budget - 1);

    let body_dyn: &(dyn Fn(usize) + Sync) = &body;
    // SAFETY: lifetime erasure only — the erased reference never escapes
    // this frame (the job is unlinked from the queue and fully drained
    // before return).
    let body_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(body_dyn) };
    let job = Job {
        body: body_static as *const _,
        n_tasks,
        next: AtomicUsize::new(0),
        pending: AtomicUsize::new(n_tasks),
        panicked: AtomicBool::new(false),
        done_mx: Mutex::new(()),
        done_cv: Condvar::new(),
    };
    let job_ref = JobRef(&job as *const Job);
    {
        let mut st = lock_state();
        st.queue.push_back(job_ref);
        POOL.work_cv.notify_all();
    }
    // Participate: claim tasks alongside the workers. This both removes
    // one thread of spawn latency and guarantees progress under nested
    // dispatch (the caller can always drain its own job).
    loop {
        let t = job.next.fetch_add(1, Ordering::Relaxed);
        if t >= n_tasks {
            break;
        }
        run_one(&job, t);
    }
    // Wait for tasks claimed by workers.
    if job.pending.load(Ordering::Acquire) != 0 {
        let mut g = job.done_mx.lock().unwrap_or_else(|e| e.into_inner());
        while job.pending.load(Ordering::Acquire) != 0 {
            g = job.done_cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
    // Unlink before the frame dies; a worker may have parked without
    // revisiting the exhausted entry.
    {
        let mut st = lock_state();
        st.queue.retain(|j| *j != job_ref);
    }
    if job.panicked.load(Ordering::Acquire) {
        panic!("tgs pool task panicked");
    }
}

/// Hands `f` a zeroed `len`-long f64 buffer drawn from a reusable stack,
/// returning the buffer afterwards — so blocked reductions get their
/// per-block partial slots without allocating in steady state (the
/// buffer only grows on the first, largest request).
pub fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    let mut buf = {
        let mut stack = POOL.scratch.lock().unwrap_or_else(|e| e.into_inner());
        stack.pop().unwrap_or_default()
    };
    buf.clear();
    buf.resize(len, 0.0);
    let out = f(&mut buf[..len]);
    let mut stack = POOL.scratch.lock().unwrap_or_else(|e| e.into_inner());
    stack.push(buf);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_tasks_covers_every_index_once() {
        let prev = set_pool_threads_override(Some(4));
        let n = 257;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        run_tasks(n, |t| {
            hits[t].fetch_add(1, Ordering::Relaxed);
        });
        set_pool_threads_override(prev);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn budget_one_is_inline_and_ordered() {
        let prev = set_pool_threads_override(Some(1));
        let order = Mutex::new(Vec::new());
        run_tasks(5, |t| order.lock().unwrap().push(t));
        set_pool_threads_override(prev);
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn nested_dispatch_completes() {
        let prev = set_pool_threads_override(Some(3));
        let total = AtomicUsize::new(0);
        run_tasks(4, |_| {
            run_tasks(4, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        set_pool_threads_override(prev);
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn task_panic_propagates_to_caller() {
        let prev = set_pool_threads_override(Some(2));
        let result = std::panic::catch_unwind(|| {
            run_tasks(8, |t| {
                if t == 5 {
                    panic!("boom");
                }
            });
        });
        set_pool_threads_override(prev);
        assert!(result.is_err());
    }

    #[test]
    fn scratch_is_zeroed_and_reused() {
        with_scratch(16, |buf| {
            assert!(buf.iter().all(|&v| v == 0.0));
            buf.fill(7.0);
        });
        with_scratch(8, |buf| {
            assert_eq!(buf.len(), 8);
            assert!(buf.iter().all(|&v| v == 0.0));
        });
    }

    #[test]
    fn threads_override_roundtrips() {
        let prev = set_pool_threads_override(Some(7));
        assert_eq!(pool_threads(), 7);
        let back = set_pool_threads_override(prev);
        assert_eq!(back, Some(7));
    }

    #[test]
    fn pinning_helpers_are_graceful() {
        // Whatever the platform/env, these must not crash and must obey
        // the TGS_PIN gate.
        let pinned = pin_current_to_core_set(0, 2);
        if !pinning_enabled() {
            assert!(!pinned);
        }
        assert!(!pin_current_to_core_set(0, 0));
    }
}

//! Row-chunked parallelism on `std::thread::scope`.
//!
//! Matrix kernels in this workspace are embarrassingly row-parallel: each
//! output row depends on one input row. Rather than pulling in a thread-pool
//! dependency we split the output buffer into disjoint row chunks and run
//! them on scoped threads — zero unsafe, zero dependencies. Small problems
//! stay single-threaded to avoid spawn overhead.

/// Work (in f64 multiply-adds) below which we stay single-threaded.
/// A thread spawn costs on the order of 10µs; at ~1ns per FLOP the
/// break-even is a few hundred thousand operations per thread.
const PARALLEL_WORK_THRESHOLD: usize = 2_000_000;

/// Upper bound on worker threads (matrices here rarely benefit past this).
const MAX_THREADS: usize = 8;

/// Splits `buf` (holding `rows` logical rows of `row_width` values) into
/// near-equal chunks and invokes `body(first_row, chunk)` for each — in
/// parallel when `work` (an estimate of total multiply-adds) is large
/// enough, sequentially otherwise.
pub fn for_each_row_chunk<F>(rows: usize, work: usize, buf: &mut [f64], row_width: usize, body: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    debug_assert_eq!(buf.len(), rows * row_width);
    let threads = desired_threads(rows, work);
    if threads <= 1 {
        body(0, buf);
        return;
    }
    let rows_per_chunk = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest = buf;
        let mut first_row = 0;
        while !rest.is_empty() {
            let take = (rows_per_chunk * row_width).min(rest.len());
            let (chunk, tail) = rest.split_at_mut(take);
            let body = &body;
            let row0 = first_row;
            scope.spawn(move || body(row0, chunk));
            first_row += take / row_width.max(1);
            rest = tail;
        }
    });
}

fn desired_threads(rows: usize, work: usize) -> usize {
    if work < PARALLEL_WORK_THRESHOLD || rows < 2 {
        return 1;
    }
    let available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let by_work = (work / PARALLEL_WORK_THRESHOLD).max(1);
    available.min(MAX_THREADS).min(by_work).min(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_small_work() {
        let mut buf = vec![0.0; 4 * 3];
        for_each_row_chunk(4, 10, &mut buf, 3, |r0, chunk| {
            for (i, row) in chunk.chunks_exact_mut(3).enumerate() {
                row[0] = (r0 + i) as f64;
            }
        });
        assert_eq!(buf[0], 0.0);
        assert_eq!(buf[3], 1.0);
        assert_eq!(buf[9], 3.0);
    }

    #[test]
    fn parallel_large_work_covers_all_rows() {
        let rows = 1000;
        let width = 4;
        let mut buf = vec![0.0; rows * width];
        for_each_row_chunk(rows, 100_000_000, &mut buf, width, |r0, chunk| {
            for (i, row) in chunk.chunks_exact_mut(width).enumerate() {
                for v in row.iter_mut() {
                    *v = (r0 + i) as f64;
                }
            }
        });
        for r in 0..rows {
            for c in 0..width {
                assert_eq!(buf[r * width + c], r as f64, "row {r} col {c}");
            }
        }
    }

    #[test]
    fn thread_count_bounds() {
        assert_eq!(desired_threads(100, 10), 1);
        assert!(desired_threads(100, usize::MAX / 2) <= MAX_THREADS);
        assert_eq!(desired_threads(1, usize::MAX / 2), 1);
    }
}

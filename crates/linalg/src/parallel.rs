//! Row-chunked parallelism on `std::thread::scope`.
//!
//! Matrix kernels in this workspace are embarrassingly row-parallel: each
//! output row depends on one input row. Rather than pulling in a thread-pool
//! dependency we split the output buffer into disjoint row chunks and run
//! them on scoped threads — zero unsafe, zero dependencies. Small problems
//! stay single-threaded to avoid spawn overhead.
//!
//! Two tunables govern dispatch:
//!
//! * the *work threshold* (estimated multiply-adds below which everything
//!   stays sequential) — process-wide and overridable at runtime via
//!   [`set_parallel_work_threshold`], which benches use to force both
//!   paths and the allocation-counting test uses to pin the sequential
//!   path (thread spawning allocates);
//! * the *thread cap* — `std::thread::available_parallelism()` clamped to
//!   [`HARD_THREAD_CAP`].

use std::sync::atomic::{AtomicUsize, Ordering};

/// Default work (in f64 multiply-adds) below which we stay
/// single-threaded. A thread spawn costs on the order of 10µs; at ~1ns
/// per FLOP the break-even is a few hundred thousand operations per
/// thread.
pub const DEFAULT_PARALLEL_WORK_THRESHOLD: usize = 2_000_000;

/// Hard upper bound on worker threads regardless of core count: the thin
/// (`rows × k`, small `k`) kernels here are memory-bandwidth-bound well
/// before this.
pub const HARD_THREAD_CAP: usize = 32;

static WORK_THRESHOLD: AtomicUsize = AtomicUsize::new(DEFAULT_PARALLEL_WORK_THRESHOLD);

/// Current work threshold for parallel dispatch.
pub fn parallel_work_threshold() -> usize {
    WORK_THRESHOLD.load(Ordering::Relaxed)
}

/// Overrides the work threshold process-wide. `usize::MAX` disables
/// parallelism entirely (used by the zero-allocation test); `0` forces it
/// for any non-trivial problem (used by benches to exercise the parallel
/// path on small inputs). Returns the previous value.
pub fn set_parallel_work_threshold(threshold: usize) -> usize {
    WORK_THRESHOLD.swap(threshold, Ordering::Relaxed)
}

/// Worker-thread cap: detected parallelism clamped to [`HARD_THREAD_CAP`].
pub fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(HARD_THREAD_CAP)
}

/// Splits `buf` (holding `rows` logical rows of `row_width` values) into
/// near-equal chunks and invokes `body(first_row, chunk)` for each — in
/// parallel when `work` (an estimate of total multiply-adds) is large
/// enough, sequentially otherwise.
pub fn for_each_row_chunk<F>(rows: usize, work: usize, buf: &mut [f64], row_width: usize, body: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    debug_assert_eq!(buf.len(), rows * row_width);
    let threads = desired_threads(rows, work);
    if threads <= 1 {
        body(0, buf);
        return;
    }
    let rows_per_chunk = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest = buf;
        let mut first_row = 0;
        while !rest.is_empty() {
            let take = (rows_per_chunk * row_width).min(rest.len());
            let (chunk, tail) = rest.split_at_mut(take);
            let body = &body;
            let row0 = first_row;
            scope.spawn(move || body(row0, chunk));
            first_row += take / row_width.max(1);
            rest = tail;
        }
    });
}

/// Maximum accumulator length (f64s) supported by [`reduce_rows`]'s
/// per-block stack buffers: `k × k` up to `k = 32`.
pub const MAX_REDUCE_LEN: usize = 1024;

/// Row-block size for [`reduce_rows`]. Fixed (not derived from thread
/// count) so the summation tree — and therefore the floating-point
/// result — is identical on every machine and at every thread count:
/// block partials are always merged in block order.
pub const REDUCE_BLOCK_ROWS: usize = 4096;

/// Parallel reduction over row ranges into a small shared accumulator
/// (Gram matrices, `AᵀB` products): `body(r0, r1, partial)` accumulates
/// rows `[r0, r1)` into `partial` (pre-zeroed, `acc.len()` long).
///
/// Rows are processed in fixed [`REDUCE_BLOCK_ROWS`] blocks whose
/// partials are folded into `acc` in block order — the parallel and
/// sequential paths produce **bit-identical** results, so kernels built
/// on this (e.g. `gram_into`) stay deterministic across machines.
/// Sequential (and allocation-free) when the work estimate is below
/// threshold, when everything fits one block, or when
/// `acc.len() > MAX_REDUCE_LEN`.
pub fn reduce_rows<F>(rows: usize, work: usize, acc: &mut [f64], body: F)
where
    F: Fn(usize, usize, &mut [f64]) + Sync,
{
    let len = acc.len();
    if rows <= REDUCE_BLOCK_ROWS || len > MAX_REDUCE_LEN {
        body(0, rows, acc);
        return;
    }
    let blocks = rows.div_ceil(REDUCE_BLOCK_ROWS);
    let threads = desired_threads(rows, work).min(blocks);
    if threads <= 1 {
        // Sequential, but over the same fixed blocks the parallel path
        // uses, so both orders of summation are identical.
        let mut partial = [0.0f64; MAX_REDUCE_LEN];
        for b in 0..blocks {
            let r0 = b * REDUCE_BLOCK_ROWS;
            let r1 = (r0 + REDUCE_BLOCK_ROWS).min(rows);
            partial[..len].fill(0.0);
            body(r0, r1, &mut partial[..len]);
            for (a, p) in acc.iter_mut().zip(partial[..len].iter()) {
                *a += p;
            }
        }
        return;
    }
    // Each worker claims blocks by atomic counter; partials land in a
    // per-block slot vector and are folded in block order afterwards.
    let slots = std::sync::Mutex::new(vec![None::<Box<[f64]>>; blocks]);
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let body = &body;
            let slots = &slots;
            let next = &next;
            scope.spawn(move || {
                let mut partial = [0.0f64; MAX_REDUCE_LEN];
                loop {
                    let b = next.fetch_add(1, Ordering::Relaxed);
                    if b >= blocks {
                        break;
                    }
                    let r0 = b * REDUCE_BLOCK_ROWS;
                    let r1 = (r0 + REDUCE_BLOCK_ROWS).min(rows);
                    partial[..len].fill(0.0);
                    body(r0, r1, &mut partial[..len]);
                    slots.lock().expect("reduce_rows slot lock")[b] =
                        Some(partial[..len].to_vec().into_boxed_slice());
                }
            });
        }
    });
    let slots = slots.into_inner().expect("reduce_rows slots");
    for slot in slots.into_iter() {
        let slot = slot.expect("every block reduced");
        for (a, p) in acc.iter_mut().zip(slot.iter()) {
            *a += p;
        }
    }
}

/// Combined row-chunked map + blocked reduction: like
/// [`for_each_row_chunk`] for the disjoint output rows in `buf`, but each
/// call also accumulates into a partial that is folded into `acc` with
/// **exactly the reduction structure of [`reduce_rows`]** — fixed
/// [`REDUCE_BLOCK_ROWS`] blocks, partials merged in block order — so a
/// kernel that fuses a per-row update with a Gram-style reduction
/// produces an accumulator bit-identical to running [`reduce_rows`] over
/// the updated rows afterwards, at every thread count.
///
/// `body(first_row, rows_chunk, partial)` must write the owned rows of
/// `buf` (disjoint across calls) and accumulate into `partial`
/// (pre-zeroed). `acc` must be pre-zeroed by the caller. Mirroring
/// [`reduce_rows`], the whole range is handed to one `body` call
/// (`partial` = `acc` directly) when everything fits a single block or
/// when `acc.len() > MAX_REDUCE_LEN`; those regimes are sequential and
/// allocation-free.
pub fn for_each_row_block_reduce<F>(
    rows: usize,
    work: usize,
    buf: &mut [f64],
    row_width: usize,
    acc: &mut [f64],
    body: F,
) where
    F: Fn(usize, &mut [f64], &mut [f64]) + Sync,
{
    debug_assert_eq!(buf.len(), rows * row_width);
    let len = acc.len();
    if rows <= REDUCE_BLOCK_ROWS || len > MAX_REDUCE_LEN {
        body(0, buf, acc);
        return;
    }
    let blocks = rows.div_ceil(REDUCE_BLOCK_ROWS);
    let block_len = REDUCE_BLOCK_ROWS * row_width;
    let threads = desired_threads(rows, work).min(blocks);
    if threads <= 1 {
        // Sequential, but over the same fixed blocks the parallel path
        // uses, so both summation orders are identical.
        let mut partial = [0.0f64; MAX_REDUCE_LEN];
        for (b, chunk) in buf.chunks_mut(block_len.max(1)).enumerate() {
            partial[..len].fill(0.0);
            body(b * REDUCE_BLOCK_ROWS, chunk, &mut partial[..len]);
            for (a, p) in acc.iter_mut().zip(partial[..len].iter()) {
                *a += p;
            }
        }
        return;
    }
    // Workers claim blocks by atomic counter; each takes its disjoint
    // chunk of `buf` from a slot and parks its partial for the in-order
    // fold below.
    let chunk_slots: Vec<std::sync::Mutex<Option<&mut [f64]>>> = buf
        .chunks_mut(block_len.max(1))
        .map(|c| std::sync::Mutex::new(Some(c)))
        .collect();
    let partial_slots = std::sync::Mutex::new(vec![None::<Box<[f64]>>; blocks]);
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let body = &body;
            let chunk_slots = &chunk_slots;
            let partial_slots = &partial_slots;
            let next = &next;
            scope.spawn(move || {
                let mut partial = [0.0f64; MAX_REDUCE_LEN];
                loop {
                    let b = next.fetch_add(1, Ordering::Relaxed);
                    if b >= blocks {
                        break;
                    }
                    let chunk = chunk_slots[b]
                        .lock()
                        .expect("block chunk lock")
                        .take()
                        .expect("each block claimed once");
                    partial[..len].fill(0.0);
                    body(b * REDUCE_BLOCK_ROWS, chunk, &mut partial[..len]);
                    partial_slots.lock().expect("partial slot lock")[b] =
                        Some(partial[..len].to_vec().into_boxed_slice());
                }
            });
        }
    });
    let partials = partial_slots.into_inner().expect("partial slots");
    for slot in partials.into_iter() {
        let slot = slot.expect("every block reduced");
        for (a, p) in acc.iter_mut().zip(slot.iter()) {
            *a += p;
        }
    }
}

fn desired_threads(rows: usize, work: usize) -> usize {
    let threshold = parallel_work_threshold();
    if work < threshold || rows < 2 {
        return 1;
    }
    let by_work = (work / threshold.max(1)).max(1);
    max_threads().min(by_work).min(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_small_work() {
        let mut buf = vec![0.0; 4 * 3];
        for_each_row_chunk(4, 10, &mut buf, 3, |r0, chunk| {
            for (i, row) in chunk.chunks_exact_mut(3).enumerate() {
                row[0] = (r0 + i) as f64;
            }
        });
        assert_eq!(buf[0], 0.0);
        assert_eq!(buf[3], 1.0);
        assert_eq!(buf[9], 3.0);
    }

    #[test]
    fn parallel_large_work_covers_all_rows() {
        let rows = 1000;
        let width = 4;
        let mut buf = vec![0.0; rows * width];
        for_each_row_chunk(rows, 100_000_000, &mut buf, width, |r0, chunk| {
            for (i, row) in chunk.chunks_exact_mut(width).enumerate() {
                for v in row.iter_mut() {
                    *v = (r0 + i) as f64;
                }
            }
        });
        for r in 0..rows {
            for c in 0..width {
                assert_eq!(buf[r * width + c], r as f64, "row {r} col {c}");
            }
        }
    }

    #[test]
    fn thread_count_bounds() {
        assert_eq!(desired_threads(100, 10), 1);
        assert!(desired_threads(100, usize::MAX / 2) <= HARD_THREAD_CAP);
        assert_eq!(desired_threads(1, usize::MAX / 2), 1);
        assert!(max_threads() >= 1);
    }

    #[test]
    fn reduce_rows_matches_sequential_sum() {
        // acc[j] = Σ_r (r + j); integer-valued sums are exact, so the
        // blocked orders must agree with the straight sum exactly. Rows
        // exceed one block so the blocked paths are exercised.
        let rows = 3 * REDUCE_BLOCK_ROWS + 17;
        let len = 6;
        let expected: Vec<f64> = (0..len)
            .map(|j| (0..rows).map(|r| (r + j) as f64).sum())
            .collect();
        for work in [10usize, 100_000_000] {
            let mut acc = vec![0.0; len];
            reduce_rows(rows, work, &mut acc, |r0, r1, partial| {
                for r in r0..r1 {
                    for (j, p) in partial.iter_mut().enumerate() {
                        *p += (r + j) as f64;
                    }
                }
            });
            assert_eq!(acc, expected, "work={work}");
        }
    }

    #[test]
    fn reduce_rows_blocked_paths_bit_identical() {
        // Non-associative float data: sequential-blocked and
        // parallel-blocked must still agree bit-for-bit because the block
        // boundaries and merge order are fixed.
        let rows = 2 * REDUCE_BLOCK_ROWS + 123;
        let len = 4;
        let value = |r: usize, j: usize| ((r * 31 + j * 7) % 97) as f64 * 0.123 + 0.011;
        let run = |work: usize| {
            let mut acc = vec![0.0; len];
            reduce_rows(rows, work, &mut acc, |r0, r1, partial| {
                for r in r0..r1 {
                    for (j, p) in partial.iter_mut().enumerate() {
                        *p += value(r, j);
                    }
                }
            });
            acc
        };
        let sequential = run(0); // below threshold → sequential blocked path
        let parallel = run(usize::MAX / 2); // threaded path (when cores allow)
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn threshold_override_roundtrips() {
        let prev = set_parallel_work_threshold(123);
        assert_eq!(parallel_work_threshold(), 123);
        set_parallel_work_threshold(prev);
        assert_eq!(parallel_work_threshold(), prev);
    }
}

//! Row-chunked parallelism on the persistent worker pool.
//!
//! Matrix kernels in this workspace are embarrassingly row-parallel: each
//! output row depends on one input row. Rather than pulling in a thread-pool
//! dependency we split the output buffer into disjoint row chunks and run
//! them as tasks on the process-wide [`crate::pool`] — long-lived workers
//! parked on a condvar, replacing the per-call `std::thread::scope` spawns
//! these primitives used before. Small problems stay single-threaded to
//! avoid dispatch overhead entirely.
//!
//! Determinism: chunk boundaries and the blocked-reduction summation tree
//! are computed here, exactly as in the scoped-thread era, so every kernel
//! built on these primitives is **bit-identical** at every thread count
//! and on every machine (see [`REDUCE_BLOCK_ROWS`]).
//!
//! Two tunables govern dispatch:
//!
//! * the *work threshold* (estimated multiply-adds below which everything
//!   stays sequential) — process-wide and overridable at runtime via
//!   [`set_parallel_work_threshold`], which benches use to force both
//!   paths and the allocation-counting test uses to pin the sequential
//!   path;
//! * the *thread budget* — `TGS_THREADS` / detected parallelism clamped to
//!   [`HARD_THREAD_CAP`], see [`crate::pool::pool_threads`].

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::pool;

/// Default work (in f64 multiply-adds) below which we stay
/// single-threaded. Pooled dispatch costs far less than the ~10µs thread
/// spawn it replaced, but waking parked workers is still not free; the
/// threshold keeps genuinely small kernels inline.
pub const DEFAULT_PARALLEL_WORK_THRESHOLD: usize = 2_000_000;

/// Hard upper bound on worker threads regardless of core count: the thin
/// (`rows × k`, small `k`) kernels here are memory-bandwidth-bound well
/// before this.
pub const HARD_THREAD_CAP: usize = 32;

static WORK_THRESHOLD: AtomicUsize = AtomicUsize::new(DEFAULT_PARALLEL_WORK_THRESHOLD);

/// Current work threshold for parallel dispatch.
pub fn parallel_work_threshold() -> usize {
    WORK_THRESHOLD.load(Ordering::Relaxed)
}

/// Overrides the work threshold process-wide. `usize::MAX` disables
/// parallelism entirely; `0` forces it for any non-trivial problem (used
/// by benches to exercise the pooled path on small inputs). Returns the
/// previous value.
pub fn set_parallel_work_threshold(threshold: usize) -> usize {
    WORK_THRESHOLD.swap(threshold, Ordering::Relaxed)
}

/// Worker-thread budget: `TGS_THREADS` (or detected parallelism) clamped
/// to [`HARD_THREAD_CAP`], including any
/// [`pool::set_pool_threads_override`] in effect.
pub fn max_threads() -> usize {
    pool::pool_threads()
}

/// Splits `buf` (holding `rows` logical rows of `row_width` values) into
/// near-equal chunks and invokes `body(first_row, chunk)` for each — as
/// pool tasks when `work` (an estimate of total multiply-adds) is large
/// enough, sequentially otherwise. Results are chunking-independent
/// (each output row is written by exactly one call), so dispatch never
/// changes the answer.
pub fn for_each_row_chunk<F>(rows: usize, work: usize, buf: &mut [f64], row_width: usize, body: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    debug_assert_eq!(buf.len(), rows * row_width);
    let threads = desired_threads(rows, work);
    if threads <= 1 || row_width == 0 {
        body(0, buf);
        return;
    }
    // Same boundaries as the scoped-thread era: ceil-divided row chunks,
    // the last one ragged.
    let rows_per_chunk = rows.div_ceil(threads);
    let n_chunks = rows.div_ceil(rows_per_chunk);
    let chunk_len = rows_per_chunk * row_width;
    let total = buf.len();
    let base = buf.as_mut_ptr() as usize;
    pool::run_tasks(n_chunks, |c| {
        let start = c * chunk_len;
        let take = chunk_len.min(total - start);
        // SAFETY: tasks cover disjoint `[start, start + take)` ranges of
        // `buf`, which outlives the (synchronous) dispatch.
        let chunk = unsafe { std::slice::from_raw_parts_mut((base as *mut f64).add(start), take) };
        body(c * rows_per_chunk, chunk);
    });
}

/// Maximum accumulator length (f64s) supported by [`reduce_rows`]'s
/// per-block stack buffers: `k × k` up to `k = 32`.
pub const MAX_REDUCE_LEN: usize = 1024;

/// Row-block size for [`reduce_rows`]. Fixed (not derived from thread
/// count) so the summation tree — and therefore the floating-point
/// result — is identical on every machine and at every thread count:
/// block partials are always merged in block order.
pub const REDUCE_BLOCK_ROWS: usize = 4096;

/// Parallel reduction over row ranges into a small shared accumulator
/// (Gram matrices, `AᵀB` products): `body(r0, r1, partial)` accumulates
/// rows `[r0, r1)` into `partial` (pre-zeroed, `acc.len()` long).
///
/// Rows are processed in fixed [`REDUCE_BLOCK_ROWS`] blocks whose
/// partials are folded into `acc` in block order — the pooled and
/// sequential paths produce **bit-identical** results, so kernels built
/// on this (e.g. `gram_into`) stay deterministic across machines.
/// Sequential (and allocation-free) when the work estimate is below
/// threshold, when everything fits one block, or when
/// `acc.len() > MAX_REDUCE_LEN`; the pooled path draws its per-block
/// slots from the pool's reusable scratch stack, so it allocates nothing
/// in steady state either.
pub fn reduce_rows<F>(rows: usize, work: usize, acc: &mut [f64], body: F)
where
    F: Fn(usize, usize, &mut [f64]) + Sync,
{
    let len = acc.len();
    if rows <= REDUCE_BLOCK_ROWS || len > MAX_REDUCE_LEN {
        body(0, rows, acc);
        return;
    }
    let blocks = rows.div_ceil(REDUCE_BLOCK_ROWS);
    let threads = desired_threads(rows, work).min(blocks);
    if threads <= 1 {
        // Sequential, but over the same fixed blocks the pooled path
        // uses, so both orders of summation are identical.
        let mut partial = [0.0f64; MAX_REDUCE_LEN];
        for b in 0..blocks {
            let r0 = b * REDUCE_BLOCK_ROWS;
            let r1 = (r0 + REDUCE_BLOCK_ROWS).min(rows);
            partial[..len].fill(0.0);
            body(r0, r1, &mut partial[..len]);
            for (a, p) in acc.iter_mut().zip(partial[..len].iter()) {
                *a += p;
            }
        }
        return;
    }
    // One task per fixed block; each writes its partial into a disjoint
    // pre-zeroed slot, folded below in block order.
    pool::with_scratch(blocks * len, |slots| {
        let slot_base = slots.as_mut_ptr() as usize;
        pool::run_tasks(blocks, |b| {
            let r0 = b * REDUCE_BLOCK_ROWS;
            let r1 = (r0 + REDUCE_BLOCK_ROWS).min(rows);
            // SAFETY: slot `b` is the disjoint range `[b·len, (b+1)·len)`
            // of `slots`, which outlives the dispatch.
            let partial = unsafe {
                std::slice::from_raw_parts_mut((slot_base as *mut f64).add(b * len), len)
            };
            body(r0, r1, partial);
        });
        for slot in slots.chunks_exact(len) {
            for (a, p) in acc.iter_mut().zip(slot.iter()) {
                *a += p;
            }
        }
    });
}

/// Combined row-chunked map + blocked reduction: like
/// [`for_each_row_chunk`] for the disjoint output rows in `buf`, but each
/// call also accumulates into a partial that is folded into `acc` with
/// **exactly the reduction structure of [`reduce_rows`]** — fixed
/// [`REDUCE_BLOCK_ROWS`] blocks, partials merged in block order — so a
/// kernel that fuses a per-row update with a Gram-style reduction
/// produces an accumulator bit-identical to running [`reduce_rows`] over
/// the updated rows afterwards, at every thread count.
///
/// `body(first_row, rows_chunk, partial)` must write the owned rows of
/// `buf` (disjoint across calls) and accumulate into `partial`
/// (pre-zeroed). `acc` must be pre-zeroed by the caller. Mirroring
/// [`reduce_rows`], the whole range is handed to one `body` call
/// (`partial` = `acc` directly) when everything fits a single block or
/// when `acc.len() > MAX_REDUCE_LEN`; those regimes are sequential and
/// allocation-free.
pub fn for_each_row_block_reduce<F>(
    rows: usize,
    work: usize,
    buf: &mut [f64],
    row_width: usize,
    acc: &mut [f64],
    body: F,
) where
    F: Fn(usize, &mut [f64], &mut [f64]) + Sync,
{
    debug_assert_eq!(buf.len(), rows * row_width);
    let len = acc.len();
    if rows <= REDUCE_BLOCK_ROWS || len > MAX_REDUCE_LEN {
        body(0, buf, acc);
        return;
    }
    let blocks = rows.div_ceil(REDUCE_BLOCK_ROWS);
    let block_len = REDUCE_BLOCK_ROWS * row_width;
    let threads = desired_threads(rows, work).min(blocks);
    if threads <= 1 || row_width == 0 {
        // Sequential, but over the same fixed blocks the pooled path
        // uses, so both summation orders are identical.
        let mut partial = [0.0f64; MAX_REDUCE_LEN];
        for (b, chunk) in buf.chunks_mut(block_len.max(1)).enumerate() {
            partial[..len].fill(0.0);
            body(b * REDUCE_BLOCK_ROWS, chunk, &mut partial[..len]);
            for (a, p) in acc.iter_mut().zip(partial[..len].iter()) {
                *a += p;
            }
        }
        return;
    }
    // One task per fixed block: task `b` owns rows-chunk `b` of `buf`
    // and partial slot `b`; partials fold below in block order.
    let total = buf.len();
    let buf_base = buf.as_mut_ptr() as usize;
    pool::with_scratch(blocks * len, |slots| {
        let slot_base = slots.as_mut_ptr() as usize;
        pool::run_tasks(blocks, |b| {
            let start = b * block_len;
            let take = block_len.min(total - start);
            // SAFETY: tasks cover disjoint ranges of `buf` and disjoint
            // `len`-long slots of `slots`; both outlive the dispatch.
            let chunk =
                unsafe { std::slice::from_raw_parts_mut((buf_base as *mut f64).add(start), take) };
            let partial = unsafe {
                std::slice::from_raw_parts_mut((slot_base as *mut f64).add(b * len), len)
            };
            body(b * REDUCE_BLOCK_ROWS, chunk, partial);
        });
        for slot in slots.chunks_exact(len) {
            for (a, p) in acc.iter_mut().zip(slot.iter()) {
                *a += p;
            }
        }
    });
}

fn desired_threads(rows: usize, work: usize) -> usize {
    let threshold = parallel_work_threshold();
    if work < threshold || rows < 2 {
        return 1;
    }
    let by_work = (work / threshold.max(1)).max(1);
    max_threads().min(by_work).min(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_small_work() {
        let mut buf = vec![0.0; 4 * 3];
        for_each_row_chunk(4, 10, &mut buf, 3, |r0, chunk| {
            for (i, row) in chunk.chunks_exact_mut(3).enumerate() {
                row[0] = (r0 + i) as f64;
            }
        });
        assert_eq!(buf[0], 0.0);
        assert_eq!(buf[3], 1.0);
        assert_eq!(buf[9], 3.0);
    }

    #[test]
    fn parallel_large_work_covers_all_rows() {
        let rows = 1000;
        let width = 4;
        let mut buf = vec![0.0; rows * width];
        for_each_row_chunk(rows, 100_000_000, &mut buf, width, |r0, chunk| {
            for (i, row) in chunk.chunks_exact_mut(width).enumerate() {
                for v in row.iter_mut() {
                    *v = (r0 + i) as f64;
                }
            }
        });
        for r in 0..rows {
            for c in 0..width {
                assert_eq!(buf[r * width + c], r as f64, "row {r} col {c}");
            }
        }
    }

    #[test]
    fn pooled_chunking_covers_all_rows_at_many_budgets() {
        // Ragged tails: rows deliberately not a multiple of any chunk
        // count; every budget must write every row exactly once.
        let rows = 997;
        let width = 3;
        for budget in [2usize, 3, 5, 8] {
            let prev = crate::pool::set_pool_threads_override(Some(budget));
            let mut buf = vec![-1.0; rows * width];
            for_each_row_chunk(rows, usize::MAX / 2, &mut buf, width, |r0, chunk| {
                for (i, row) in chunk.chunks_exact_mut(width).enumerate() {
                    for v in row.iter_mut() {
                        *v = (r0 + i) as f64;
                    }
                }
            });
            crate::pool::set_pool_threads_override(prev);
            for r in 0..rows {
                assert_eq!(buf[r * width], r as f64, "budget {budget} row {r}");
            }
        }
    }

    #[test]
    fn thread_count_bounds() {
        assert_eq!(desired_threads(100, 10), 1);
        assert!(desired_threads(100, usize::MAX / 2) <= HARD_THREAD_CAP);
        assert_eq!(desired_threads(1, usize::MAX / 2), 1);
        assert!(max_threads() >= 1);
    }

    #[test]
    fn reduce_rows_matches_sequential_sum() {
        // acc[j] = Σ_r (r + j); integer-valued sums are exact, so the
        // blocked orders must agree with the straight sum exactly. Rows
        // exceed one block so the blocked paths are exercised.
        let rows = 3 * REDUCE_BLOCK_ROWS + 17;
        let len = 6;
        let expected: Vec<f64> = (0..len)
            .map(|j| (0..rows).map(|r| (r + j) as f64).sum())
            .collect();
        for work in [10usize, 100_000_000] {
            let mut acc = vec![0.0; len];
            reduce_rows(rows, work, &mut acc, |r0, r1, partial| {
                for r in r0..r1 {
                    for (j, p) in partial.iter_mut().enumerate() {
                        *p += (r + j) as f64;
                    }
                }
            });
            assert_eq!(acc, expected, "work={work}");
        }
    }

    #[test]
    fn reduce_rows_blocked_paths_bit_identical() {
        // Non-associative float data: sequential-blocked and
        // pool-blocked must still agree bit-for-bit because the block
        // boundaries and merge order are fixed.
        let rows = 2 * REDUCE_BLOCK_ROWS + 123;
        let len = 4;
        let value = |r: usize, j: usize| ((r * 31 + j * 7) % 97) as f64 * 0.123 + 0.011;
        let run = |work: usize| {
            let mut acc = vec![0.0; len];
            reduce_rows(rows, work, &mut acc, |r0, r1, partial| {
                for r in r0..r1 {
                    for (j, p) in partial.iter_mut().enumerate() {
                        *p += value(r, j);
                    }
                }
            });
            acc
        };
        let sequential = run(0); // below threshold → sequential blocked path
        let parallel = run(usize::MAX / 2); // pooled path (when budget allows)
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn threshold_override_roundtrips() {
        let prev = set_parallel_work_threshold(123);
        assert_eq!(parallel_work_threshold(), 123);
        set_parallel_work_threshold(prev);
        assert_eq!(parallel_work_threshold(), prev);
    }
}

//! Compressed sparse row (CSR) matrices.
//!
//! The three data matrices of the tri-clustering problem (`Xp`, `Xu`, `Xr`)
//! and the user–user graph `Gu` are extremely sparse (a tweet holds ~10
//! words out of thousands), so every kernel here is `O(nnz·k)` rather than
//! `O(rows·cols)`. Column indices are stored as `u32` — the paper's data is
//! tens of thousands of columns, far below the 4.3B limit — which halves the
//! index memory versus `usize`.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::dense::DenseMatrix;
use crate::simd::simd_kernel;
use crate::LinalgError;

/// Default CSR-gather prefetch distance: how many entries ahead of the
/// current nonzero the dense-row prefetch hint is issued. 8 entries ≈
/// the L2 latency a thin-row gather needs to hide on the campaign box
/// (see the `spmm_prefetch` bench sweep).
pub const DEFAULT_PREFETCH_LOOKAHEAD: usize = 8;

/// Upper clamp for `TGS_PREFETCH`: beyond this the hints evict lines
/// before the gather arrives, so larger requests are meaningless.
const MAX_PREFETCH_LOOKAHEAD: usize = 64;

/// Cached effective distance; `usize::MAX` means "not yet resolved".
static PREFETCH_LOOKAHEAD: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Effective CSR-gather prefetch distance: `TGS_PREFETCH` (clamped to
/// `0..=64`; `0` disables the hints) or
/// [`DEFAULT_PREFETCH_LOOKAHEAD`]. Prefetching is a pure latency hint —
/// the distance never changes computed values, only when cache lines
/// arrive.
pub fn prefetch_lookahead() -> usize {
    let cached = PREFETCH_LOOKAHEAD.load(Ordering::Relaxed);
    if cached != usize::MAX {
        return cached;
    }
    let resolved = std::env::var("TGS_PREFETCH")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .map(|n| n.min(MAX_PREFETCH_LOOKAHEAD))
        .unwrap_or(DEFAULT_PREFETCH_LOOKAHEAD);
    PREFETCH_LOOKAHEAD.store(resolved, Ordering::Relaxed);
    resolved
}

/// Overrides the prefetch distance process-wide (clamped like
/// `TGS_PREFETCH`); `None` re-resolves from the environment on next
/// use. Returns the previous effective distance. Benches use this to
/// sweep distances within one process.
pub fn set_prefetch_lookahead(distance: Option<usize>) -> usize {
    let prev = prefetch_lookahead();
    let raw = distance.map_or(usize::MAX, |n| n.min(MAX_PREFETCH_LOOKAHEAD));
    PREFETCH_LOOKAHEAD.store(raw, Ordering::Relaxed);
    prev
}

/// A CSR sparse matrix of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `indptr[i]..indptr[i+1]` is the value range of row `i`.
    indptr: Vec<usize>,
    /// Column index per stored value, strictly increasing within a row.
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// An empty (all-zero) matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds a CSR matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate coordinates are summed; explicit zeros (including duplicate
    /// groups summing to zero) are dropped. Returns an error when any
    /// coordinate is out of bounds or any value is non-finite.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self, LinalgError> {
        if cols > u32::MAX as usize {
            return Err(LinalgError::TooManyColumns { cols });
        }
        for &(r, c, v) in triplets {
            if r >= rows || c >= cols {
                return Err(LinalgError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    rows,
                    cols,
                });
            }
            if !v.is_finite() {
                return Err(LinalgError::NonFiniteValue { row: r, col: c });
            }
        }
        // Counting sort by row, then sort each row segment by column.
        let mut counts = vec![0usize; rows + 1];
        for &(r, _, _) in triplets {
            counts[r + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let mut order: Vec<(u32, f64)> = vec![(0, 0.0); triplets.len()];
        let mut cursor = counts.clone();
        for &(r, c, v) in triplets {
            order[cursor[r]] = (c as u32, v);
            cursor[r] += 1;
        }
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        indptr.push(0);
        for r in 0..rows {
            let seg = &mut order[counts[r]..counts[r + 1]];
            seg.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < seg.len() {
                let col = seg[i].0;
                let mut sum = 0.0;
                while i < seg.len() && seg[i].0 == col {
                    sum += seg[i].1;
                    i += 1;
                }
                if sum != 0.0 {
                    indices.push(col);
                    values.push(sum);
                }
            }
            indptr.push(indices.len());
        }
        Ok(Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored (non-zero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterator over `(col, value)` pairs of row `i`.
    #[inline]
    pub fn iter_row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.indptr[i]..self.indptr[i + 1];
        self.indices[range.clone()]
            .iter()
            .zip(self.values[range].iter())
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Column-index and value slices of row `i` (zero-copy row access
    /// for kernels that tile over a row's entries).
    #[inline]
    pub fn row_entries(&self, i: usize) -> (&[u32], &[f64]) {
        let range = self.indptr[i]..self.indptr[i + 1];
        (&self.indices[range.clone()], &self.values[range])
    }

    /// Iterator over all `(row, col, value)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| self.iter_row(r).map(move |(c, v)| (r, c, v)))
    }

    /// Value at `(i, j)` (binary search within the row).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let range = self.indptr[i]..self.indptr[i + 1];
        match self.indices[range.clone()].binary_search(&(j as u32)) {
            Ok(pos) => self.values[range.start + pos],
            Err(_) => 0.0,
        }
    }

    /// Sparse–dense product `self · d` → dense `(rows × d.cols)`.
    pub fn mul_dense(&self, d: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::default(); // sized (once) by the _into
        self.mul_dense_into(d, &mut out);
        out
    }

    /// In-place variant of [`CsrMatrix::mul_dense`]: writes `self · d`
    /// into `out` (reshaped as needed), row-parallel on large inputs and
    /// SIMD-dispatched (see [`crate::simd`]; bit-identical across tiers).
    pub fn mul_dense_into(&self, d: &DenseMatrix, out: &mut DenseMatrix) {
        assert_eq!(
            self.cols,
            d.rows(),
            "mul_dense shape mismatch: ({}, {}) x ({}, {})",
            self.rows,
            self.cols,
            d.rows(),
            d.cols()
        );
        let k = d.cols();
        out.resize_zeroed(self.rows, k);
        let tier = crate::simd::active_tier();
        crate::parallel::for_each_row_chunk(
            self.rows,
            self.nnz() * k,
            out.as_mut_slice(),
            k,
            |r0, chunk| {
                spmm_chunk(tier, self, d, r0, chunk);
            },
        );
    }

    /// Transposed sparse–dense product `selfᵀ · d` → dense `(cols × d.cols)`.
    ///
    /// Scatter formulation: a pass over stored entries. On large inputs
    /// the output rows are chunked across threads, each scanning the
    /// entry stream for its column range; for repeated products against
    /// the same matrix, prefer a cached [`CscView`], which turns this
    /// into a forward gather pass.
    pub fn transpose_mul_dense(&self, d: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::default(); // sized (once) by the _into
        self.transpose_mul_dense_into(d, &mut out);
        out
    }

    /// In-place variant of [`CsrMatrix::transpose_mul_dense`].
    pub fn transpose_mul_dense_into(&self, d: &DenseMatrix, out: &mut DenseMatrix) {
        assert_eq!(
            self.rows,
            d.rows(),
            "transpose_mul_dense shape mismatch: ({}, {})ᵀ x ({}, {})",
            self.rows,
            self.cols,
            d.rows(),
            d.cols()
        );
        let k = d.cols();
        out.resize_zeroed(self.cols, k);
        let tier = crate::simd::active_tier();
        crate::parallel::for_each_row_chunk(
            self.cols,
            self.nnz() * k,
            out.as_mut_slice(),
            k,
            |c0, chunk| {
                spmm_transpose_chunk(tier, self, d, c0, chunk);
            },
        );
    }

    /// Materialized transpose (CSR of the transposed matrix).
    pub fn transpose(&self) -> CsrMatrix {
        let mut out = CsrMatrix::zeros(0, 0);
        self.transpose_into(&mut out);
        out
    }

    /// In-place variant of [`CsrMatrix::transpose`]: writes the
    /// transposed CSR into `out`, reusing its buffers whenever their
    /// capacity suffices. This is what lets a rebinding solver workspace
    /// refresh its cached `Xᵀ` views without reallocating per snapshot
    /// (see `UpdateWorkspace::bind`). The produced structure is
    /// bit-identical to [`CsrMatrix::transpose`] (same counting sort and
    /// fill order).
    pub fn transpose_into(&self, out: &mut CsrMatrix) {
        out.rows = self.cols;
        out.cols = self.rows;
        let nnz = self.nnz();
        out.indptr.clear();
        out.indptr.resize(self.cols + 1, 0);
        out.indices.clear();
        out.indices.resize(nnz, 0);
        out.values.clear();
        out.values.resize(nnz, 0.0);
        // Counting pass: start offset of each output row (input column),
        // built directly in `out.indptr` (shifted back after the fill,
        // which uses it as the write cursor — no scratch allocation).
        for &c in &self.indices {
            out.indptr[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            out.indptr[i + 1] += out.indptr[i];
        }
        for r in 0..self.rows {
            for (c, v) in self.iter_row(r) {
                let pos = out.indptr[c];
                out.indices[pos] = r as u32;
                out.values[pos] = v;
                out.indptr[c] += 1;
            }
        }
        // After the fill, indptr[c] holds the *end* of row c (= the next
        // row's start); shift right once to restore start offsets.
        for c in (1..=self.cols).rev() {
            out.indptr[c] = out.indptr[c - 1];
        }
        out.indptr[0] = 0;
    }

    /// A fast 64-bit content fingerprint over shape, structure and
    /// values, used by solver workspaces to detect that a rebind is
    /// against the *same* matrix and skip rebuilding cached transposes.
    /// Multi-lane multiply-xor mixing (~1 cycle/word) — far cheaper than
    /// the transpose it guards. Equal matrices always collide; unequal
    /// matrices collide with probability ~2⁻⁶⁴ (and only matter when
    /// shape and nnz also agree).
    pub fn content_fingerprint(&self) -> u64 {
        const M: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut lanes = [
            0x243F_6A88_85A3_08D3u64, // independent lane seeds (π digits)
            0x1319_8A2E_0370_7344,
            0xA409_3822_299F_31D0,
            0x082E_FA98_EC4E_6C89,
        ];
        let mut feed = |lane: usize, v: u64| {
            let l = &mut lanes[lane & 3];
            *l = (*l ^ v).wrapping_mul(M).rotate_left(23);
        };
        feed(0, self.rows as u64);
        feed(1, self.cols as u64);
        feed(2, self.nnz() as u64);
        for (i, &p) in self.indptr.iter().enumerate() {
            feed(i, p as u64);
        }
        for (i, &c) in self.indices.iter().enumerate() {
            feed(i, c as u64);
        }
        for (i, &v) in self.values.iter().enumerate() {
            feed(i, v.to_bits());
        }
        let mut h = 0u64;
        for l in lanes {
            h = (h ^ l).wrapping_mul(M);
            h ^= h >> 29;
        }
        h
    }

    /// Per-row sums (for degree vectors of adjacency matrices).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|r| self.iter_row(r).map(|(_, v)| v).sum())
            .collect()
    }

    /// Per-column sums.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for (_, c, v) in self.iter() {
            out[c] += v;
        }
        out
    }

    /// Squared Frobenius norm.
    pub fn frobenius_sq(&self) -> f64 {
        self.values.iter().map(|&v| v * v).sum()
    }

    /// Sum of all stored values.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Frobenius inner product with a factored dense matrix:
    /// `⟨self, A·Bᵀ⟩ = Σ_{(i,j)∈nnz} self[ij] · (A[i,:] · B[j,:])`.
    ///
    /// This is the key trick that lets all objective values be computed
    /// without densifying `A·Bᵀ`.
    pub fn inner_with_factored(&self, a: &DenseMatrix, b: &DenseMatrix) -> f64 {
        assert_eq!(
            self.rows,
            a.rows(),
            "inner_with_factored: row factor mismatch"
        );
        assert_eq!(
            self.cols,
            b.rows(),
            "inner_with_factored: col factor mismatch"
        );
        assert_eq!(a.cols(), b.cols(), "inner_with_factored: rank mismatch");
        // Entries are processed four at a time: the four dot chains run
        // in independent lanes (each in exactly `dot`'s order) and
        // `total` still accumulates one `v·⟨a,b⟩` term per entry in
        // entry order — bit-identical to the plain loop, without its
        // serial add-latency chain.
        let mut total = 0.0;
        for r in 0..self.rows {
            let a_row = a.row(r);
            let range = self.indptr[r]..self.indptr[r + 1];
            let cols = &self.indices[range.clone()];
            let vals = &self.values[range];
            let mut idx = 0;
            while idx + 4 <= cols.len() {
                let (b0, b1, b2, b3) = (
                    b.row(cols[idx] as usize),
                    b.row(cols[idx + 1] as usize),
                    b.row(cols[idx + 2] as usize),
                    b.row(cols[idx + 3] as usize),
                );
                let mut acc = [0.0f64; 4];
                for (t, &av) in a_row.iter().enumerate() {
                    acc[0] += av * b0[t];
                    acc[1] += av * b1[t];
                    acc[2] += av * b2[t];
                    acc[3] += av * b3[t];
                }
                total += vals[idx] * acc[0];
                total += vals[idx + 1] * acc[1];
                total += vals[idx + 2] * acc[2];
                total += vals[idx + 3] * acc[3];
                idx += 4;
            }
            for i in idx..cols.len() {
                total += vals[i] * crate::dense::dot(a_row, b.row(cols[i] as usize));
            }
        }
        total
    }

    /// Returns a new matrix scaled by `scalar`.
    pub fn scale(&self, scalar: f64) -> CsrMatrix {
        let mut out = self.clone();
        for v in &mut out.values {
            *v *= scalar;
        }
        out
    }

    /// Gathers the given rows (in order) into a new CSR matrix with
    /// `rows.len()` rows and the same column space.
    pub fn select_rows(&self, rows: &[usize]) -> CsrMatrix {
        let mut indptr = Vec::with_capacity(rows.len() + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for &r in rows {
            assert!(r < self.rows, "select_rows: row {r} out of bounds");
            let range = self.indptr[r]..self.indptr[r + 1];
            indices.extend_from_slice(&self.indices[range.clone()]);
            values.extend_from_slice(&self.values[range]);
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows: rows.len(),
            cols: self.cols,
            indptr,
            indices,
            values,
        }
    }

    /// Vertically stacks `self` on top of `other` (same column count).
    pub fn vstack(&self, other: &CsrMatrix) -> CsrMatrix {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut indptr = self.indptr.clone();
        let offset = *indptr.last().unwrap();
        indptr.extend(other.indptr[1..].iter().map(|&p| p + offset));
        let mut indices = self.indices.clone();
        indices.extend_from_slice(&other.indices);
        let mut values = self.values.clone();
        values.extend_from_slice(&other.values);
        CsrMatrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            indptr,
            indices,
            values,
        }
    }

    /// Dense rendering (tests / tiny matrices only).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            out.set(r, c, v);
        }
        out
    }

    /// Density in `[0, 1]`.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// True when the matrix is structurally symmetric with equal values.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let t = self.transpose();
        if t.indptr != self.indptr || t.indices != self.indices {
            return false;
        }
        self.values
            .iter()
            .zip(t.values.iter())
            .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

simd_kernel! {
    /// One output-row chunk of the CSR×dense product: the row-accumulate
    /// inner loop streams `d` rows into the output row `k` lanes wide,
    /// monomorphized on the common thin widths (identical floating-point
    /// sequence at every width).
    fn spmm_chunk(x: &CsrMatrix, d: &DenseMatrix, r0: usize, chunk: &mut [f64]) {
        match d.cols() {
            2 => spmm_chunk_w::<2>(x, d, r0, chunk),
            3 => spmm_chunk_w::<3>(x, d, r0, chunk),
            10 => spmm_chunk_w::<10>(x, d, r0, chunk),
            _ => spmm_chunk_w::<0>(x, d, r0, chunk),
        }
    }
}

/// Width-monomorphized body of [`spmm_chunk`] (`W = 0` means runtime
/// width). The gathered `d` rows are the kernel's cache-miss source, so
/// each iteration issues a prefetch hint [`prefetch_lookahead`] entries
/// ahead — a pure latency hint with no effect on the computed values
/// (distance 0 disables the hints entirely).
#[inline(always)]
fn spmm_chunk_w<const W: usize>(x: &CsrMatrix, d: &DenseMatrix, r0: usize, chunk: &mut [f64]) {
    let k = if W > 0 { W } else { d.cols() };
    let lookahead = prefetch_lookahead();
    for (local, out_row) in chunk.chunks_exact_mut(k.max(1)).enumerate() {
        let r = r0 + local;
        let range = x.indptr[r]..x.indptr[r + 1];
        let cols = &x.indices[range.clone()];
        let vals = &x.values[range];
        for (idx, (&c, &v)) in cols.iter().zip(vals.iter()).enumerate() {
            if lookahead != 0 {
                if let Some(&cn) = cols.get(idx + lookahead) {
                    prefetch_read(d.row(cn as usize));
                }
            }
            let d_row = &d.row(c as usize)[..k];
            for (o, &dv) in out_row.iter_mut().zip(d_row.iter()) {
                *o += v * dv;
            }
        }
    }
}

/// Architectural prefetch hint for an upcoming read. Hints never change
/// results — only when the cache lines arrive.
#[inline(always)]
fn prefetch_read(s: &[f64]) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a hint; it performs no memory access
    // that could fault and has no architectural effect on state beyond
    // the caches. The pointer is derived from a live slice.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(s.as_ptr() as *const i8);
        if s.len() > 8 {
            // thin rows can straddle two cache lines
            _mm_prefetch::<_MM_HINT_T0>(s.as_ptr().wrapping_add(s.len() - 1) as *const i8);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = s;
}

simd_kernel! {
    /// One output-row chunk of the transposed CSR×dense product. Each
    /// chunk owns output rows (= input columns) `[c0, c1)`: every thread
    /// walks all input rows but, since columns are sorted within a row,
    /// binary-searches straight to its range. Column contributions stay
    /// in increasing input-row order, so the result is bit-identical to
    /// the sequential scatter.
    fn spmm_transpose_chunk(x: &CsrMatrix, d: &DenseMatrix, c0: usize, chunk: &mut [f64]) {
        let k = d.cols();
        let c1 = c0 + chunk.len() / k.max(1);
        for r in 0..x.rows {
            let d_row = d.row(r);
            let row_range = x.indptr[r]..x.indptr[r + 1];
            let row_cols = &x.indices[row_range.clone()];
            let lo = row_cols.partition_point(|&c| (c as usize) < c0);
            for (idx, &c) in row_cols.iter().enumerate().skip(lo) {
                let c = c as usize;
                if c >= c1 {
                    break;
                }
                let v = x.values[row_range.start + idx];
                let off = (c - c0) * k;
                let out_row = &mut chunk[off..off + k];
                for (o, &dv) in out_row.iter_mut().zip(d_row.iter()) {
                    *o += v * dv;
                }
            }
        }
    }
}

/// A cached column-oriented view of a [`CsrMatrix`]: the transposed CSR,
/// built once, turning every later `Aᵀ·D` product into a forward,
/// row-parallel gather pass instead of a cache-hostile scatter.
///
/// The update sweeps multiply against `Xpᵀ`, `Xuᵀ` and `Xrᵀ` every
/// iteration while the data matrices stay fixed for a whole window — so
/// the `O(nnz)` build cost amortizes to nothing. Contributions to each
/// output row arrive in the same (increasing input-row) order as the
/// scatter formulation, so results are bit-identical to
/// [`CsrMatrix::transpose_mul_dense`].
#[derive(Debug, Clone, PartialEq)]
pub struct CscView {
    transposed: CsrMatrix,
}

impl CscView {
    /// Builds the view (one counting pass plus one fill pass over `nnz`).
    pub fn of(a: &CsrMatrix) -> Self {
        CscView {
            transposed: a.transpose(),
        }
    }

    /// Rebuilds the view for a new matrix, reusing the existing buffers
    /// whenever their capacity suffices (via
    /// [`CsrMatrix::transpose_into`]). This is the amortized-rebind path:
    /// a solver workspace that re-binds every snapshot refreshes its
    /// cached transposes without per-snapshot allocations once warm.
    pub fn rebind(&mut self, a: &CsrMatrix) {
        a.transpose_into(&mut self.transposed);
    }

    /// Rows of the *original* matrix.
    #[inline]
    #[allow(clippy::misnamed_getters)] // the view is transposed on purpose
    pub fn rows(&self) -> usize {
        self.transposed.cols
    }

    /// Columns of the *original* matrix.
    #[inline]
    #[allow(clippy::misnamed_getters)] // the view is transposed on purpose
    pub fn cols(&self) -> usize {
        self.transposed.rows
    }

    /// Stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.transposed.nnz()
    }

    /// The transposed matrix as a plain CSR (rows = original columns).
    #[inline]
    pub fn transposed_csr(&self) -> &CsrMatrix {
        &self.transposed
    }

    /// `Aᵀ · d` for the original matrix `A`, as a forward CSR pass.
    pub fn transpose_mul_dense(&self, d: &DenseMatrix) -> DenseMatrix {
        self.transposed.mul_dense(d)
    }

    /// In-place variant of [`CscView::transpose_mul_dense`].
    pub fn transpose_mul_dense_into(&self, d: &DenseMatrix, out: &mut DenseMatrix) {
        self.transposed.mul_dense_into(d, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[1, 0, 2],
        //  [0, 0, 0],
        //  [3, 4, 0]]
        CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)])
            .unwrap()
    }

    #[test]
    fn from_triplets_sums_duplicates_and_drops_zeros() {
        let m = CsrMatrix::from_triplets(
            2,
            2,
            &[
                (0, 0, 1.0),
                (0, 0, 2.0),
                (1, 1, 5.0),
                (1, 1, -5.0),
                (0, 1, 0.0),
            ],
        )
        .unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn from_triplets_rejects_out_of_bounds_and_nan() {
        assert!(CsrMatrix::from_triplets(1, 1, &[(1, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(1, 1, &[(0, 0, f64::NAN)]).is_err());
    }

    #[test]
    fn get_and_iter_row() {
        let m = sample();
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), 0.0);
        let row2: Vec<_> = m.iter_row(2).collect();
        assert_eq!(row2, vec![(0, 3.0), (1, 4.0)]);
    }

    #[test]
    fn mul_dense_matches_dense_product() {
        let m = sample();
        let d = DenseMatrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let sparse_result = m.mul_dense(&d);
        let dense_result = m.to_dense().matmul(&d);
        assert!(sparse_result.max_abs_diff(&dense_result) < 1e-12);
    }

    #[test]
    fn transpose_mul_dense_matches_dense_product() {
        let m = sample();
        let d = DenseMatrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let fast = m.transpose_mul_dense(&d);
        let explicit = m.to_dense().transpose().matmul(&d);
        assert!(fast.max_abs_diff(&explicit) < 1e-12);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 3));
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn sums_and_norms() {
        let m = sample();
        assert_eq!(m.row_sums(), vec![3.0, 0.0, 7.0]);
        assert_eq!(m.col_sums(), vec![4.0, 4.0, 2.0]);
        assert_eq!(m.frobenius_sq(), 1.0 + 4.0 + 9.0 + 16.0);
        assert_eq!(m.sum(), 10.0);
    }

    #[test]
    fn inner_with_factored_matches_dense() {
        let m = sample();
        let a = DenseMatrix::from_vec(3, 2, vec![1.0, 0.5, 2.0, 1.0, 0.0, 3.0]).unwrap();
        let b = DenseMatrix::from_vec(3, 2, vec![1.0, 1.0, 2.0, 0.0, 0.5, 2.0]).unwrap();
        let fast = m.inner_with_factored(&a, &b);
        let ab = a.matmul_transpose(&b);
        let explicit = m.to_dense().frobenius_inner(&ab);
        assert!((fast - explicit).abs() < 1e-12);
    }

    #[test]
    fn select_rows_and_vstack() {
        let m = sample();
        let sel = m.select_rows(&[2, 0]);
        assert_eq!(sel.get(0, 1), 4.0);
        assert_eq!(sel.get(1, 0), 1.0);
        let stacked = m.vstack(&sel);
        assert_eq!(stacked.rows(), 5);
        assert_eq!(stacked.get(3, 1), 4.0);
        assert_eq!(stacked.nnz(), m.nnz() + sel.nnz());
    }

    #[test]
    fn symmetry_check() {
        let sym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 2.0), (1, 0, 2.0), (0, 0, 1.0)]).unwrap();
        assert!(sym.is_symmetric(0.0));
        let asym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 2.0)]).unwrap();
        assert!(!asym.is_symmetric(0.0));
    }

    #[test]
    fn density_and_empty() {
        assert_eq!(CsrMatrix::zeros(4, 5).density(), 0.0);
        assert!((sample().density() - 4.0 / 9.0).abs() < 1e-12);
    }
}

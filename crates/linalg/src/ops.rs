//! Kernels specific to multiplicative-update non-negative matrix
//! tri-factorization: Δ-splitting, the square-root multiplicative update,
//! and factored-form objective evaluation.

use crate::dense::DenseMatrix;
use crate::sparse::CsrMatrix;

/// Denominator guard for multiplicative updates. Entries of the factor
/// matrices live around `1/k ≈ 0.3`, so `1e-12` is far below signal while
/// still preventing division by zero.
pub const EPS: f64 = 1e-12;

/// Floor applied to factor entries after each update. Multiplicative
/// updates can never resurrect an exact zero, so we keep entries strictly
/// positive (standard NMF practice, cf. Lee & Seung).
pub const FACTOR_FLOOR: f64 = 1e-12;

/// Splits a matrix into its positive and negative parts:
/// `Δ⁺ = (|Δ| + Δ)/2`, `Δ⁻ = (|Δ| − Δ)/2`, so that `Δ = Δ⁺ − Δ⁻` with both
/// parts non-negative. Used on the orthogonality multipliers in
/// Eqs. (7), (9), (11) of the paper.
pub fn split_pos_neg(delta: &DenseMatrix) -> (DenseMatrix, DenseMatrix) {
    let pos = delta.map(|v| if v > 0.0 { v } else { 0.0 });
    let neg = delta.map(|v| if v < 0.0 { -v } else { 0.0 });
    (pos, neg)
}

/// The multiplicative update `S ← S ∘ sqrt(num / (den + EPS))`, with a
/// positivity floor.
///
/// All numerator and denominator terms produced by the update rules are
/// non-negative by construction, so the square root is always defined.
pub fn mult_update(s: &mut DenseMatrix, num: &DenseMatrix, den: &DenseMatrix) {
    assert_eq!(s.shape(), num.shape(), "mult_update numerator shape mismatch");
    assert_eq!(s.shape(), den.shape(), "mult_update denominator shape mismatch");
    let sv = s.as_mut_slice();
    let nv = num.as_slice();
    let dv = den.as_slice();
    for i in 0..sv.len() {
        let ratio = nv[i].max(0.0) / (dv[i].max(0.0) + EPS);
        let updated = sv[i] * ratio.sqrt();
        sv[i] = if updated.is_finite() { updated.max(FACTOR_FLOOR) } else { FACTOR_FLOOR };
    }
}

/// `‖X − A·Bᵀ‖²_F` without densifying `A·Bᵀ`:
/// `‖X‖² − 2⟨X, ABᵀ⟩ + tr((AᵀA)(BᵀB))`.
pub fn approx_error_bi(x: &CsrMatrix, a: &DenseMatrix, b: &DenseMatrix) -> f64 {
    assert_eq!(x.rows(), a.rows(), "approx_error_bi: A row mismatch");
    assert_eq!(x.cols(), b.rows(), "approx_error_bi: B row mismatch");
    let x_sq = x.frobenius_sq();
    let cross = x.inner_with_factored(a, b);
    let fit = a.gram().frobenius_inner(&b.gram());
    (x_sq - 2.0 * cross + fit).max(0.0)
}

/// `‖X − S·H·Fᵀ‖²_F` via `A = S·H` then [`approx_error_bi`].
pub fn approx_error_tri(
    x: &CsrMatrix,
    s: &DenseMatrix,
    h: &DenseMatrix,
    f: &DenseMatrix,
) -> f64 {
    let a = s.matmul(h);
    approx_error_bi(x, &a, f)
}

/// Graph-regularization energy `tr(SᵀLS)` for `L = D − G` evaluated
/// directly from the sparse adjacency:
/// `tr(SᵀLS) = Σ_i deg_i·‖S_i‖² − Σ_{(i,j)∈G} G_ij·⟨S_i, S_j⟩`.
///
/// Never materializes the Laplacian. For a symmetric `G` this equals
/// `½·ΣΣ G_ij·‖S_i − S_j‖²`.
pub fn laplacian_quad(g: &CsrMatrix, degrees: &[f64], s: &DenseMatrix) -> f64 {
    assert_eq!(g.rows(), g.cols(), "laplacian_quad: G must be square");
    assert_eq!(g.rows(), s.rows(), "laplacian_quad: S row mismatch");
    assert_eq!(g.rows(), degrees.len(), "laplacian_quad: degree length mismatch");
    let mut total = 0.0;
    for (i, &d) in degrees.iter().enumerate() {
        let row = s.row(i);
        total += d * crate::dense::dot(row, row);
    }
    for i in 0..g.rows() {
        let si = s.row(i);
        for (j, w) in g.iter_row(i) {
            total -= w * crate::dense::dot(si, s.row(j));
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_pos_neg_reconstructs() {
        let d = DenseMatrix::from_vec(2, 2, vec![1.0, -2.0, 0.0, 3.5]).unwrap();
        let (p, n) = split_pos_neg(&d);
        assert!(p.is_nonnegative() && n.is_nonnegative());
        assert!(p.sub(&n).max_abs_diff(&d) < 1e-15);
        // |Δ| = Δ⁺ + Δ⁻
        assert_eq!(p.add(&n).as_slice(), &[1.0, 2.0, 0.0, 3.5]);
    }

    #[test]
    fn mult_update_fixed_point_when_num_eq_den() {
        let mut s = DenseMatrix::from_vec(1, 3, vec![0.2, 0.5, 0.9]).unwrap();
        let num = DenseMatrix::filled(1, 3, 2.0);
        let den = DenseMatrix::filled(1, 3, 2.0);
        let before = s.clone();
        mult_update(&mut s, &num, &den);
        assert!(s.max_abs_diff(&before) < 1e-9);
    }

    #[test]
    fn mult_update_moves_towards_larger_numerator() {
        let mut s = DenseMatrix::filled(1, 2, 1.0);
        let num = DenseMatrix::from_vec(1, 2, vec![4.0, 1.0]).unwrap();
        let den = DenseMatrix::filled(1, 2, 1.0);
        mult_update(&mut s, &num, &den);
        assert!((s.get(0, 0) - 2.0).abs() < 1e-9);
        assert!((s.get(0, 1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mult_update_keeps_positivity_floor() {
        let mut s = DenseMatrix::filled(1, 1, 0.5);
        let num = DenseMatrix::zeros(1, 1);
        let den = DenseMatrix::filled(1, 1, 1.0);
        mult_update(&mut s, &num, &den);
        assert!(s.get(0, 0) >= FACTOR_FLOOR);
        assert!(s.get(0, 0) < 1e-6);
    }

    #[test]
    fn approx_error_bi_matches_dense_computation() {
        let x = CsrMatrix::from_triplets(3, 2, &[(0, 0, 1.0), (1, 1, 2.0), (2, 0, 0.5)]).unwrap();
        let a = DenseMatrix::from_vec(3, 2, vec![0.5, 0.1, 0.2, 0.9, 0.3, 0.3]).unwrap();
        let b = DenseMatrix::from_vec(2, 2, vec![1.0, 0.0, 0.2, 0.8]).unwrap();
        let fast = approx_error_bi(&x, &a, &b);
        let dense = x.to_dense().sub(&a.matmul_transpose(&b)).frobenius_sq();
        assert!((fast - dense).abs() < 1e-10, "fast={fast} dense={dense}");
    }

    #[test]
    fn approx_error_tri_matches_dense_computation() {
        let x = CsrMatrix::from_triplets(3, 4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 2.0)]).unwrap();
        let s = DenseMatrix::from_vec(3, 2, vec![0.9, 0.1, 0.2, 0.8, 0.5, 0.5]).unwrap();
        let h = DenseMatrix::from_vec(2, 2, vec![1.0, 0.2, 0.1, 1.0]).unwrap();
        let f = DenseMatrix::from_vec(4, 2, vec![0.7, 0.1, 0.1, 0.6, 0.4, 0.4, 0.2, 0.9]).unwrap();
        let fast = approx_error_tri(&x, &s, &h, &f);
        let dense = x.to_dense().sub(&s.matmul(&h).matmul_transpose(&f)).frobenius_sq();
        assert!((fast - dense).abs() < 1e-10);
    }

    #[test]
    fn laplacian_quad_matches_pairwise_definition() {
        // Path graph 0-1-2 with weights 2 and 3.
        let g = CsrMatrix::from_triplets(
            3,
            3,
            &[(0, 1, 2.0), (1, 0, 2.0), (1, 2, 3.0), (2, 1, 3.0)],
        )
        .unwrap();
        let deg = g.row_sums();
        let s = DenseMatrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
        let fast = laplacian_quad(&g, &deg, &s);
        // ½ ΣΣ G_ij ||s_i − s_j||²  (each undirected edge counted twice)
        let mut expected = 0.0;
        for (i, j, w) in g.iter() {
            let d0 = s.get(i, 0) - s.get(j, 0);
            let d1 = s.get(i, 1) - s.get(j, 1);
            expected += 0.5 * w * (d0 * d0 + d1 * d1);
        }
        assert!((fast - expected).abs() < 1e-12, "fast={fast} expected={expected}");
    }

    #[test]
    fn laplacian_quad_zero_for_constant_rows() {
        let g =
            CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)])
                .unwrap();
        let deg = g.row_sums();
        let s = DenseMatrix::filled(3, 2, 0.7);
        assert!(laplacian_quad(&g, &deg, &s).abs() < 1e-12);
    }
}

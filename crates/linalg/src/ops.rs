//! Kernels specific to multiplicative-update non-negative matrix
//! tri-factorization: Δ-splitting, the square-root multiplicative update,
//! and factored-form objective evaluation.

use crate::dense::DenseMatrix;
use crate::simd::simd_kernel;
use crate::sparse::CsrMatrix;

/// Denominator guard for multiplicative updates. Entries of the factor
/// matrices live around `1/k ≈ 0.3`, so `1e-12` is far below signal while
/// still preventing division by zero.
pub const EPS: f64 = 1e-12;

/// Floor applied to factor entries after each update. Multiplicative
/// updates can never resurrect an exact zero, so we keep entries strictly
/// positive (standard NMF practice, cf. Lee & Seung).
pub const FACTOR_FLOOR: f64 = 1e-12;

/// Splits a matrix into its positive and negative parts:
/// `Δ⁺ = (|Δ| + Δ)/2`, `Δ⁻ = (|Δ| − Δ)/2`, so that `Δ = Δ⁺ − Δ⁻` with both
/// parts non-negative. Used on the orthogonality multipliers in
/// Eqs. (7), (9), (11) of the paper.
pub fn split_pos_neg(delta: &DenseMatrix) -> (DenseMatrix, DenseMatrix) {
    let pos = delta.map(|v| if v > 0.0 { v } else { 0.0 });
    let neg = delta.map(|v| if v < 0.0 { -v } else { 0.0 });
    (pos, neg)
}

/// In-place variant of [`split_pos_neg`]: writes `Δ⁺` into `pos` and `Δ⁻`
/// into `neg`, reusing their allocations. SIMD-dispatched (see
/// [`crate::simd`]); bit-identical across tiers.
pub fn split_pos_neg_into(delta: &DenseMatrix, pos: &mut DenseMatrix, neg: &mut DenseMatrix) {
    let (rows, cols) = delta.shape();
    pos.resize_zeroed(rows, cols);
    neg.resize_zeroed(rows, cols);
    split_pos_neg_kernel(
        crate::simd::active_tier(),
        delta.as_slice(),
        pos.as_mut_slice(),
        neg.as_mut_slice(),
    );
}

simd_kernel! {
    /// Element-wise positive/negative split.
    fn split_pos_neg_kernel(delta: &[f64], pv: &mut [f64], nv: &mut [f64]) {
        for (i, &v) in delta.iter().enumerate() {
            pv[i] = if v > 0.0 { v } else { 0.0 };
            nv[i] = if v < 0.0 { -v } else { 0.0 };
        }
    }
}

/// The multiplicative update `S ← S ∘ sqrt(num / (den + EPS))`, with a
/// positivity floor.
///
/// All numerator and denominator terms produced by the update rules are
/// non-negative by construction, so the square root is always defined.
pub fn mult_update(s: &mut DenseMatrix, num: &DenseMatrix, den: &DenseMatrix) {
    assert_eq!(
        s.shape(),
        num.shape(),
        "mult_update numerator shape mismatch"
    );
    assert_eq!(
        s.shape(),
        den.shape(),
        "mult_update denominator shape mismatch"
    );
    mult_update_kernel(
        crate::simd::active_tier(),
        s.as_mut_slice(),
        num.as_slice(),
        den.as_slice(),
    );
}

simd_kernel! {
    /// Element-wise `s ← s ∘ sqrt(num / (den + EPS))` with the floor.
    fn mult_update_kernel(sv: &mut [f64], nv: &[f64], dv: &[f64]) {
        for i in 0..sv.len() {
            let ratio = nv[i].max(0.0) / (dv[i].max(0.0) + EPS);
            let updated = sv[i] * ratio.sqrt();
            sv[i] = if updated.is_finite() {
                updated.max(FACTOR_FLOOR)
            } else {
                FACTOR_FLOOR
            };
        }
    }
}

/// Widest factor rank handled by [`mult_update_from_parts`]'s stack
/// buffers (the paper uses `k ∈ {2, 3}`; scaling experiments go to ~10).
pub const MAX_FUSED_K: usize = 64;

/// The fused multiplicative update: performs
///
/// ```text
/// num = num_base + S·Δ⁻  (+ Σ cᵢ·Mᵢ over num_axpys, in order)
/// den = S·den_k          (+ c·diag(vec)·S) (+ c_self·S)
/// S  ← S ∘ sqrt(num / (den + EPS))
/// ```
///
/// in one row-parallel pass, without materializing `num`/`den` (the seed
/// implementation allocated four full `rows × k` temporaries per rule for
/// this chain). Floating-point operation order matches the allocating
/// chain `num_base.add(&s.matmul(dm))` + `axpy`s exactly, so results are
/// bit-for-bit identical — property-tested in `tests/proptests.rs`.
///
/// * `num_base` / `num_base2` — the data-driven numerator terms; with
///   `num_base2` present the numerator starts from
///   `num_base + num_base2` (summed element-wise before the `S·Δ⁻`
///   term, exactly like the reference chain `a.add(&c)`), which spares
///   the caller a separate full-size addition pass.
/// * `dm` — `Δ⁻` (`k × k`); the numerator gains `S·Δ⁻`.
/// * `den_k` — the full denominator `k × k` (e.g. `K + Δ⁺`); the
///   denominator is `S·den_k`.
/// * `num_axpys` — scaled matrices added to the numerator after the `S·Δ⁻`
///   term, in slice order (e.g. `β·Gu·Su`, then `γ·Suw`).
/// * `den_row_scale` — `(c, vec)` adds `c·vec[i]·S[i,j]` to the
///   denominator (the `β·Du·S` Laplacian degree term).
/// * `den_self_scale` — adds `c·S[i,j]` to the denominator (the `α`/`γ`
///   proximal terms); `0.0` disables.
/// * `gram` — the fused gram-in-update pass: when present, receives
///   `SᵀS` of the **updated** factor, accumulated inside the same sweep
///   over the rows instead of a separate `O(rows·k²)` re-Gram
///   afterwards. The accumulation runs over the same fixed
///   [`crate::parallel::REDUCE_BLOCK_ROWS`] blocks (partials folded in
///   block order) as [`DenseMatrix::gram_into`], so the result is
///   **bit-identical** to calling `s.gram_into(gram)` after the update,
///   at every thread count.
///
/// For `k > MAX_FUSED_K` a heap-buffered fallback is used (cold path —
/// the zero-allocation guarantee covers realistic ranks only).
#[allow(clippy::too_many_arguments)]
pub fn mult_update_from_parts(
    s: &mut DenseMatrix,
    num_base: &DenseMatrix,
    num_base2: Option<&DenseMatrix>,
    dm: &DenseMatrix,
    den_k: &DenseMatrix,
    num_axpys: &[(f64, &DenseMatrix)],
    den_row_scale: Option<(f64, &[f64])>,
    den_self_scale: f64,
    gram: Option<&mut DenseMatrix>,
) {
    let (rows, k) = s.shape();
    assert_eq!(
        num_base.shape(),
        (rows, k),
        "mult_update_from_parts num_base shape"
    );
    if let Some(b2) = num_base2 {
        assert_eq!(
            b2.shape(),
            (rows, k),
            "mult_update_from_parts num_base2 shape"
        );
    }
    assert_eq!(dm.shape(), (k, k), "mult_update_from_parts dm shape");
    assert_eq!(den_k.shape(), (k, k), "mult_update_from_parts den_k shape");
    for (_, m) in num_axpys {
        assert_eq!(
            m.shape(),
            (rows, k),
            "mult_update_from_parts num_axpy shape"
        );
    }
    if let Some((_, vec)) = den_row_scale {
        assert_eq!(
            vec.len(),
            rows,
            "mult_update_from_parts den_row_scale length"
        );
    }
    if k == 0 || rows == 0 {
        if let Some(g) = gram {
            s.gram_into(g); // degenerate shapes: keep gram semantics
        }
        return;
    }
    let args = FusedUpdateArgs {
        num_base,
        num_base2,
        dm,
        den_k,
        num_axpys,
        den_row_scale,
        den_self_scale,
    };
    // The paper's ranks (k ∈ {2, 3}) are so thin that per-row loop setup
    // dominates the arithmetic; monomorphized fixed-rank bodies keep the
    // kernel competitive there (k = 10 is the scaling rank the benches
    // track). All variants execute the identical floating-point
    // sequence, so results do not depend on the dispatch.
    match k {
        2 => fused_update_rows::<2>(s, &args, gram),
        3 => fused_update_rows::<3>(s, &args, gram),
        4 => fused_update_rows::<4>(s, &args, gram),
        10 => fused_update_rows::<10>(s, &args, gram),
        _ => fused_update_rows::<0>(s, &args, gram), // 0 = dynamic width
    }
}

/// Shared operand bundle for [`mult_update_from_parts`].
struct FusedUpdateArgs<'a> {
    num_base: &'a DenseMatrix,
    num_base2: Option<&'a DenseMatrix>,
    dm: &'a DenseMatrix,
    den_k: &'a DenseMatrix,
    num_axpys: &'a [(f64, &'a DenseMatrix)],
    den_row_scale: Option<(f64, &'a [f64])>,
    den_self_scale: f64,
}

/// Row loop of the fused update. `K > 0` monomorphizes the rank (loops
/// fully unrolled, scratch in registers); `K = 0` uses runtime width.
/// With `gram` present the rows run through the fixed-block reduction
/// of [`crate::parallel::for_each_row_block_reduce`] so the fused
/// `SᵀS` matches a post-hoc `gram_into` bit-for-bit (the per-row update
/// itself is row-independent, so chunking never affects the factor).
fn fused_update_rows<const K: usize>(
    s: &mut DenseMatrix,
    args: &FusedUpdateArgs<'_>,
    gram: Option<&mut DenseMatrix>,
) {
    let (rows, k) = s.shape();
    debug_assert!(K == 0 || K == k);
    let tier = crate::simd::active_tier();
    // ~3 k-wide dots per output entry.
    let work = rows * k * k * 3;
    match gram {
        None => {
            crate::parallel::for_each_row_chunk(rows, work, s.as_mut_slice(), k, |r0, chunk| {
                fused_update_chunk::<K>(tier, args, k, r0, chunk);
            });
        }
        Some(g) => {
            g.resize_zeroed(k, k);
            crate::parallel::for_each_row_block_reduce(
                rows,
                work,
                s.as_mut_slice(),
                k,
                g.as_mut_slice(),
                |r0, chunk, partial| {
                    fused_update_gram_chunk::<K>(tier, args, k, r0, chunk, partial);
                },
            );
            // mirror the upper triangle (same tail as `gram_into`)
            let gv = g.as_mut_slice();
            for p in 0..k {
                for q in (p + 1)..k {
                    gv[q * k + p] = gv[p * k + q];
                }
            }
        }
    }
}

/// The per-row arithmetic of the fused update, shared by the plain and
/// gram-accumulating chunk kernels. `#[inline(always)]` so it compiles
/// into each dispatched wrapper with that wrapper's target features.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn fused_update_one_row<const K: usize>(
    args: &FusedUpdateArgs<'_>,
    i: usize,
    s_row: &mut [f64],
    s_old: &mut [f64],
    num_row: &mut [f64],
    den_row: &mut [f64],
) {
    s_old.copy_from_slice(s_row);
    // (S·Δ⁻)[i,:] and (S·den_k)[i,:], accumulated in the exact
    // i-k-j order (and zero-skip) of DenseMatrix::matmul, with
    // `dm`/`den_k` rows streamed contiguously.
    num_row.fill(0.0);
    den_row.fill(0.0);
    for (a, &sa) in s_old.iter().enumerate() {
        if sa != 0.0 {
            for (o, &b) in num_row.iter_mut().zip(args.dm.row(a)) {
                *o += sa * b;
            }
            for (o, &b) in den_row.iter_mut().zip(args.den_k.row(a)) {
                *o += sa * b;
            }
        }
    }
    // num = num_base[i,:] (+ num_base2[i,:]) + S·Δ⁻ (+ axpys
    // in order) — grouped as (base1 + base2) + prod, matching
    // `a.add(&c).add(&s.matmul(&dm))`.
    #[allow(clippy::assign_op_pattern)] // written as (base + prod) to mirror the chain
    match args.num_base2 {
        Some(b2) => {
            for ((o, &b), &b2v) in num_row.iter_mut().zip(args.num_base.row(i)).zip(b2.row(i)) {
                *o = (b + b2v) + *o;
            }
        }
        None => {
            for (o, &b) in num_row.iter_mut().zip(args.num_base.row(i)) {
                *o = b + *o;
            }
        }
    }
    for &(c, m) in args.num_axpys {
        for (o, &b) in num_row.iter_mut().zip(m.row(i)) {
            *o += c * b;
        }
    }
    // den += degree / proximal terms.
    if let Some((c, vec)) = args.den_row_scale {
        let vi = vec[i];
        for (o, &sv) in den_row.iter_mut().zip(s_old.iter()) {
            *o += c * (sv * vi);
        }
    }
    if args.den_self_scale != 0.0 {
        for (o, &sv) in den_row.iter_mut().zip(s_old.iter()) {
            *o += args.den_self_scale * sv;
        }
    }
    // The exact arithmetic of `mult_update`.
    for (j, sv) in s_row.iter_mut().enumerate() {
        let ratio = num_row[j].max(0.0) / (den_row[j].max(0.0) + EPS);
        let updated = s_old[j] * ratio.sqrt();
        *sv = if updated.is_finite() {
            updated.max(FACTOR_FLOOR)
        } else {
            FACTOR_FLOOR
        };
    }
}

simd_kernel! {
    /// One row chunk of the fused update (no gram accumulation).
    fn fused_update_chunk<const K: usize>(
        args: &FusedUpdateArgs<'_>,
        k: usize,
        r0: usize,
        chunk: &mut [f64],
    ) {
        let mut stack = [0.0f64; 3 * MAX_FUSED_K];
        let mut heap; // cold fallback for very wide factors
        let scratch: &mut [f64] = if k <= MAX_FUSED_K {
            &mut stack[..3 * k]
        } else {
            heap = vec![0.0f64; 3 * k];
            &mut heap
        };
        let (s_old, rest) = scratch.split_at_mut(k);
        let (num_row, den_row) = rest.split_at_mut(k);
        for (local, s_row) in chunk.chunks_exact_mut(k).enumerate() {
            // Fix the slice lengths to the monomorphized rank so every
            // inner loop has a compile-time trip count.
            let width = if K > 0 { K } else { k };
            fused_update_one_row::<K>(
                args,
                r0 + local,
                s_row,
                &mut s_old[..width],
                &mut num_row[..width],
                &mut den_row[..width],
            );
        }
    }
}

simd_kernel! {
    /// One row block of the fused update **with** gram accumulation:
    /// after updating each row, its outer product accumulates into
    /// `partial` with exactly the upper-triangle loop of `gram_into`.
    fn fused_update_gram_chunk<const K: usize>(
        args: &FusedUpdateArgs<'_>,
        k: usize,
        r0: usize,
        chunk: &mut [f64],
        partial: &mut [f64],
    ) {
        let mut stack = [0.0f64; 3 * MAX_FUSED_K];
        let mut heap; // cold fallback for very wide factors
        let scratch: &mut [f64] = if k <= MAX_FUSED_K {
            &mut stack[..3 * k]
        } else {
            heap = vec![0.0f64; 3 * k];
            &mut heap
        };
        let (s_old, rest) = scratch.split_at_mut(k);
        let (num_row, den_row) = rest.split_at_mut(k);
        for (local, s_row) in chunk.chunks_exact_mut(k).enumerate() {
            let width = if K > 0 { K } else { k };
            fused_update_one_row::<K>(
                args,
                r0 + local,
                s_row,
                &mut s_old[..width],
                &mut num_row[..width],
                &mut den_row[..width],
            );
            // Same loop shape (zero-skip, upper triangle, increasing
            // rows) as `gram_into`'s reduction body, subslice-walked
            // like `gram_rows` so the inner axpy is bounds-check free.
            for (p, &rp) in s_row.iter().enumerate() {
                if rp == 0.0 {
                    continue;
                }
                let acc_row = &mut partial[p * k + p..(p + 1) * k];
                for (o, &b) in acc_row.iter_mut().zip(s_row[p..].iter()) {
                    *o += rp * b;
                }
            }
        }
    }
}

/// `‖X − A·Bᵀ‖²_F` without densifying `A·Bᵀ`:
/// `‖X‖² − 2⟨X, ABᵀ⟩ + tr((AᵀA)(BᵀB))`.
pub fn approx_error_bi(x: &CsrMatrix, a: &DenseMatrix, b: &DenseMatrix) -> f64 {
    assert_eq!(x.rows(), a.rows(), "approx_error_bi: A row mismatch");
    assert_eq!(x.cols(), b.rows(), "approx_error_bi: B row mismatch");
    let x_sq = x.frobenius_sq();
    let cross = x.inner_with_factored(a, b);
    let fit = a.gram().frobenius_inner(&b.gram());
    (x_sq - 2.0 * cross + fit).max(0.0)
}

/// `‖X − S·H·Fᵀ‖²_F` via `A = S·H` then [`approx_error_bi`].
pub fn approx_error_tri(x: &CsrMatrix, s: &DenseMatrix, h: &DenseMatrix, f: &DenseMatrix) -> f64 {
    let a = s.matmul(h);
    approx_error_bi(x, &a, f)
}

/// Graph-regularization energy `tr(SᵀLS)` for `L = D − G` evaluated
/// directly from the sparse adjacency:
/// `tr(SᵀLS) = Σ_i deg_i·‖S_i‖² − Σ_{(i,j)∈G} G_ij·⟨S_i, S_j⟩`.
///
/// Never materializes the Laplacian. For a symmetric `G` this equals
/// `½·ΣΣ G_ij·‖S_i − S_j‖²`.
pub fn laplacian_quad(g: &CsrMatrix, degrees: &[f64], s: &DenseMatrix) -> f64 {
    assert_eq!(g.rows(), g.cols(), "laplacian_quad: G must be square");
    assert_eq!(g.rows(), s.rows(), "laplacian_quad: S row mismatch");
    assert_eq!(
        g.rows(),
        degrees.len(),
        "laplacian_quad: degree length mismatch"
    );
    let mut total = 0.0;
    for (i, &d) in degrees.iter().enumerate() {
        let row = s.row(i);
        total += d * crate::dense::dot(row, row);
    }
    // Edges four at a time: four independent dot lanes (each in exactly
    // `dot`'s order), `total` still accumulating one term per edge in
    // edge order — bit-identical to the plain loop without its serial
    // add-latency chain.
    for i in 0..g.rows() {
        let si = s.row(i);
        let (cols, weights) = g.row_entries(i);
        let mut idx = 0;
        while idx + 4 <= cols.len() {
            let (s0, s1, s2, s3) = (
                s.row(cols[idx] as usize),
                s.row(cols[idx + 1] as usize),
                s.row(cols[idx + 2] as usize),
                s.row(cols[idx + 3] as usize),
            );
            let mut acc = [0.0f64; 4];
            for (t, &av) in si.iter().enumerate() {
                acc[0] += av * s0[t];
                acc[1] += av * s1[t];
                acc[2] += av * s2[t];
                acc[3] += av * s3[t];
            }
            total -= weights[idx] * acc[0];
            total -= weights[idx + 1] * acc[1];
            total -= weights[idx + 2] * acc[2];
            total -= weights[idx + 3] * acc[3];
            idx += 4;
        }
        for (&c, &w) in cols[idx..].iter().zip(weights[idx..].iter()) {
            total -= w * crate::dense::dot(si, s.row(c as usize));
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_pos_neg_reconstructs() {
        let d = DenseMatrix::from_vec(2, 2, vec![1.0, -2.0, 0.0, 3.5]).unwrap();
        let (p, n) = split_pos_neg(&d);
        assert!(p.is_nonnegative() && n.is_nonnegative());
        assert!(p.sub(&n).max_abs_diff(&d) < 1e-15);
        // |Δ| = Δ⁺ + Δ⁻
        assert_eq!(p.add(&n).as_slice(), &[1.0, 2.0, 0.0, 3.5]);
    }

    #[test]
    fn mult_update_fixed_point_when_num_eq_den() {
        let mut s = DenseMatrix::from_vec(1, 3, vec![0.2, 0.5, 0.9]).unwrap();
        let num = DenseMatrix::filled(1, 3, 2.0);
        let den = DenseMatrix::filled(1, 3, 2.0);
        let before = s.clone();
        mult_update(&mut s, &num, &den);
        assert!(s.max_abs_diff(&before) < 1e-9);
    }

    #[test]
    fn mult_update_moves_towards_larger_numerator() {
        let mut s = DenseMatrix::filled(1, 2, 1.0);
        let num = DenseMatrix::from_vec(1, 2, vec![4.0, 1.0]).unwrap();
        let den = DenseMatrix::filled(1, 2, 1.0);
        mult_update(&mut s, &num, &den);
        assert!((s.get(0, 0) - 2.0).abs() < 1e-9);
        assert!((s.get(0, 1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mult_update_keeps_positivity_floor() {
        let mut s = DenseMatrix::filled(1, 1, 0.5);
        let num = DenseMatrix::zeros(1, 1);
        let den = DenseMatrix::filled(1, 1, 1.0);
        mult_update(&mut s, &num, &den);
        assert!(s.get(0, 0) >= FACTOR_FLOOR);
        assert!(s.get(0, 0) < 1e-6);
    }

    #[test]
    fn approx_error_bi_matches_dense_computation() {
        let x = CsrMatrix::from_triplets(3, 2, &[(0, 0, 1.0), (1, 1, 2.0), (2, 0, 0.5)]).unwrap();
        let a = DenseMatrix::from_vec(3, 2, vec![0.5, 0.1, 0.2, 0.9, 0.3, 0.3]).unwrap();
        let b = DenseMatrix::from_vec(2, 2, vec![1.0, 0.0, 0.2, 0.8]).unwrap();
        let fast = approx_error_bi(&x, &a, &b);
        let dense = x.to_dense().sub(&a.matmul_transpose(&b)).frobenius_sq();
        assert!((fast - dense).abs() < 1e-10, "fast={fast} dense={dense}");
    }

    #[test]
    fn approx_error_tri_matches_dense_computation() {
        let x = CsrMatrix::from_triplets(3, 4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 2.0)]).unwrap();
        let s = DenseMatrix::from_vec(3, 2, vec![0.9, 0.1, 0.2, 0.8, 0.5, 0.5]).unwrap();
        let h = DenseMatrix::from_vec(2, 2, vec![1.0, 0.2, 0.1, 1.0]).unwrap();
        let f = DenseMatrix::from_vec(4, 2, vec![0.7, 0.1, 0.1, 0.6, 0.4, 0.4, 0.2, 0.9]).unwrap();
        let fast = approx_error_tri(&x, &s, &h, &f);
        let dense = x
            .to_dense()
            .sub(&s.matmul(&h).matmul_transpose(&f))
            .frobenius_sq();
        assert!((fast - dense).abs() < 1e-10);
    }

    #[test]
    fn laplacian_quad_matches_pairwise_definition() {
        // Path graph 0-1-2 with weights 2 and 3.
        let g =
            CsrMatrix::from_triplets(3, 3, &[(0, 1, 2.0), (1, 0, 2.0), (1, 2, 3.0), (2, 1, 3.0)])
                .unwrap();
        let deg = g.row_sums();
        let s = DenseMatrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
        let fast = laplacian_quad(&g, &deg, &s);
        // ½ ΣΣ G_ij ||s_i − s_j||²  (each undirected edge counted twice)
        let mut expected = 0.0;
        for (i, j, w) in g.iter() {
            let d0 = s.get(i, 0) - s.get(j, 0);
            let d1 = s.get(i, 1) - s.get(j, 1);
            expected += 0.5 * w * (d0 * d0 + d1 * d1);
        }
        assert!(
            (fast - expected).abs() < 1e-12,
            "fast={fast} expected={expected}"
        );
    }

    #[test]
    fn laplacian_quad_zero_for_constant_rows() {
        let g =
            CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)])
                .unwrap();
        let deg = g.row_sums();
        let s = DenseMatrix::filled(3, 2, 0.7);
        assert!(laplacian_quad(&g, &deg, &s).abs() < 1e-12);
    }
}

//! # tgs-linalg
//!
//! Dense and sparse (CSR) linear-algebra kernels purpose-built for the
//! non-negative matrix tri-factorization at the heart of the tripartite
//! sentiment co-clustering framework (Zhu et al., 2014).
//!
//! Design constraints this crate optimizes for:
//!
//! * Data matrices (`Xp`, `Xu`, `Xr`, `Gu`) are huge but very sparse → CSR
//!   with `O(nnz·k)` kernels, never densified.
//! * Factor matrices are *thin* (`rows × k`, `k ∈ {2, 3}`) → contiguous
//!   row-major dense storage, Gram products in `O(rows·k²)`.
//! * Objective values are needed every iteration → factored Frobenius
//!   identities (`‖X − ABᵀ‖² = ‖X‖² − 2⟨X, ABᵀ⟩ + tr((AᵀA)(BᵀB))`).
//! * Experiments must be reproducible → explicit seeds everywhere.
//!
//! ```
//! use tgs_linalg::{CsrMatrix, DenseMatrix};
//!
//! let x = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (1, 2, 2.0)]).unwrap();
//! let d = DenseMatrix::filled(3, 2, 1.0);
//! let y = x.mul_dense(&d);
//! assert_eq!(y.get(1, 0), 2.0);
//! ```

pub mod dense;
pub mod ops;
pub mod parallel;
pub mod pool;
pub mod rng;
pub mod simd;
pub mod sparse;

pub use dense::{dot, DenseMatrix};
pub use ops::{
    approx_error_bi, approx_error_tri, laplacian_quad, mult_update, mult_update_from_parts,
    split_pos_neg, split_pos_neg_into, EPS, FACTOR_FLOOR, MAX_FUSED_K,
};
pub use parallel::{
    max_threads, parallel_work_threshold, set_parallel_work_threshold,
    DEFAULT_PARALLEL_WORK_THRESHOLD, HARD_THREAD_CAP, MAX_REDUCE_LEN, REDUCE_BLOCK_ROWS,
};
pub use pool::{
    pin_current_to_core_set, pinning_enabled, pool_threads, run_tasks as pool_run_tasks,
    set_pool_threads_override,
};
pub use rng::{random_factor, random_factor_with, seeded_rng};
pub use simd::{
    active_tier as simd_tier, active_tier_name as simd_tier_name, detected_tier as simd_detected,
    set_simd_tier_override, SimdTier,
};
pub use sparse::{
    prefetch_lookahead, set_prefetch_lookahead, CscView, CsrMatrix, DEFAULT_PREFETCH_LOOKAHEAD,
};

/// Errors produced when constructing matrices from user data.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// A buffer length did not match the requested shape.
    ShapeMismatch {
        /// Requested `(rows, cols)`.
        expected: (usize, usize),
        /// Observed shape (or `(len, 1)` for flat buffers).
        got: (usize, usize),
        /// Operation name for context.
        op: &'static str,
    },
    /// A triplet coordinate fell outside the declared shape.
    IndexOutOfBounds {
        /// Offending row.
        row: usize,
        /// Offending column.
        col: usize,
        /// Declared row count.
        rows: usize,
        /// Declared column count.
        cols: usize,
    },
    /// A triplet value was NaN or infinite.
    NonFiniteValue {
        /// Offending row.
        row: usize,
        /// Offending column.
        col: usize,
    },
    /// More columns than the `u32` index type can address.
    TooManyColumns {
        /// Requested column count.
        cols: usize,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch { expected, got, op } => write!(
                f,
                "{op}: shape mismatch, expected {}x{} but got {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
            LinalgError::IndexOutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(
                f,
                "index ({row}, {col}) out of bounds for {rows}x{cols} matrix"
            ),
            LinalgError::NonFiniteValue { row, col } => {
                write!(f, "non-finite value at ({row}, {col})")
            }
            LinalgError::TooManyColumns { cols } => {
                write!(f, "{cols} columns exceed the u32 index limit")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

//! Building the interaction matrices from raw posting/retweeting events.
//!
//! The paper derives two structures from user–tweet interactions:
//!
//! * `Xr` (`m × n`): the user–tweet matrix. A user is connected to a tweet
//!   when they *post* or *re-tweet* it (Fig. 2: dashed/solid lines).
//! * `Gu` (`m × m`): the user–user re-tweeting graph. An edge links a
//!   re-tweeter with the tweet's author, weighted by interaction count.

use tgs_linalg::CsrMatrix;

use crate::graph::UserGraph;

/// A single user–tweet interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interaction {
    /// `user` authored `tweet`.
    Post {
        /// Acting user id.
        user: usize,
        /// Tweet id.
        tweet: usize,
    },
    /// `user` re-tweeted `tweet`, which was authored by `author`.
    Retweet {
        /// Acting user id.
        user: usize,
        /// Tweet id.
        tweet: usize,
        /// Original author of the tweet.
        author: usize,
    },
}

/// Weights applied when assembling `Xr`.
#[derive(Debug, Clone, Copy)]
pub struct InteractionWeights {
    /// Weight of a posting edge in `Xr`.
    pub post: f64,
    /// Weight of a re-tweet edge in `Xr`.
    pub retweet: f64,
}

impl Default for InteractionWeights {
    fn default() -> Self {
        Self {
            post: 1.0,
            retweet: 1.0,
        }
    }
}

/// Builds `Xr` and `Gu` from an event log.
///
/// Returns `(xr, user_graph)` where `xr` is `num_users × num_tweets`.
pub fn build_interactions(
    num_users: usize,
    num_tweets: usize,
    events: &[Interaction],
    weights: InteractionWeights,
) -> (CsrMatrix, UserGraph) {
    let mut xr_triplets = Vec::with_capacity(events.len());
    let mut gu_edges = Vec::new();
    for ev in events {
        match *ev {
            Interaction::Post { user, tweet } => {
                assert!(
                    user < num_users && tweet < num_tweets,
                    "post event out of bounds"
                );
                xr_triplets.push((user, tweet, weights.post));
            }
            Interaction::Retweet {
                user,
                tweet,
                author,
            } => {
                assert!(
                    user < num_users && tweet < num_tweets && author < num_users,
                    "retweet event out of bounds"
                );
                xr_triplets.push((user, tweet, weights.retweet));
                if user != author {
                    gu_edges.push((user, author, 1.0));
                }
            }
        }
    }
    let xr = CsrMatrix::from_triplets(num_users, num_tweets, &xr_triplets)
        .expect("validated events are in bounds");
    let gu = UserGraph::from_edges(num_users, &gu_edges);
    (xr, gu)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn posts_and_retweets_fill_xr() {
        let events = vec![
            Interaction::Post { user: 0, tweet: 0 },
            Interaction::Post { user: 1, tweet: 1 },
            Interaction::Retweet {
                user: 0,
                tweet: 1,
                author: 1,
            },
        ];
        let (xr, gu) = build_interactions(2, 2, &events, InteractionWeights::default());
        assert_eq!(xr.get(0, 0), 1.0);
        assert_eq!(xr.get(0, 1), 1.0);
        assert_eq!(xr.get(1, 1), 1.0);
        assert_eq!(gu.weight(0, 1), 1.0);
    }

    #[test]
    fn repeated_retweets_accumulate_edge_weight() {
        let events = vec![
            Interaction::Retweet {
                user: 0,
                tweet: 1,
                author: 1,
            },
            Interaction::Retweet {
                user: 0,
                tweet: 2,
                author: 1,
            },
        ];
        let (xr, gu) = build_interactions(2, 3, &events, InteractionWeights::default());
        assert_eq!(gu.weight(0, 1), 2.0);
        assert_eq!(xr.nnz(), 2);
    }

    #[test]
    fn self_retweet_adds_no_graph_edge() {
        let events = vec![Interaction::Retweet {
            user: 0,
            tweet: 0,
            author: 0,
        }];
        let (_, gu) = build_interactions(1, 1, &events, InteractionWeights::default());
        assert_eq!(gu.num_edges(), 0);
    }

    #[test]
    fn custom_weights_respected() {
        let events = vec![
            Interaction::Post { user: 0, tweet: 0 },
            Interaction::Retweet {
                user: 1,
                tweet: 0,
                author: 0,
            },
        ];
        let w = InteractionWeights {
            post: 2.0,
            retweet: 0.5,
        };
        let (xr, _) = build_interactions(2, 1, &events, w);
        assert_eq!(xr.get(0, 0), 2.0);
        assert_eq!(xr.get(1, 0), 0.5);
    }
}

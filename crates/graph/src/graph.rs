//! Undirected weighted user–user graphs.

use tgs_linalg::CsrMatrix;

/// An undirected, weighted graph over `0..num_nodes` stored as a
/// symmetric CSR adjacency matrix plus a degree vector — exactly the
/// `Gu` / `Du` pair the graph regularizer `β·tr(SᵀLuS)` consumes.
#[derive(Debug, Clone)]
pub struct UserGraph {
    adjacency: CsrMatrix,
    degrees: Vec<f64>,
}

impl UserGraph {
    /// A graph with no edges.
    pub fn empty(num_nodes: usize) -> Self {
        Self {
            adjacency: CsrMatrix::zeros(num_nodes, num_nodes),
            degrees: vec![0.0; num_nodes],
        }
    }

    /// Builds from undirected weighted edges. Parallel edges sum their
    /// weights; self-loops are dropped; each edge is stored in both
    /// directions.
    pub fn from_edges(num_nodes: usize, edges: &[(usize, usize, f64)]) -> Self {
        let mut triplets = Vec::with_capacity(edges.len() * 2);
        for &(u, v, w) in edges {
            assert!(
                u < num_nodes && v < num_nodes,
                "edge ({u}, {v}) out of bounds"
            );
            assert!(w >= 0.0, "edge weights must be non-negative, got {w}");
            if u == v || w == 0.0 {
                continue;
            }
            triplets.push((u, v, w));
            triplets.push((v, u, w));
        }
        let adjacency = CsrMatrix::from_triplets(num_nodes, num_nodes, &triplets)
            .expect("validated edges are in bounds");
        let degrees = adjacency.row_sums();
        Self { adjacency, degrees }
    }

    /// Wraps an existing symmetric adjacency matrix.
    ///
    /// Panics when the matrix is not square or not symmetric.
    pub fn from_adjacency(adjacency: CsrMatrix) -> Self {
        assert!(adjacency.is_symmetric(1e-9), "adjacency must be symmetric");
        let degrees = adjacency.row_sums();
        Self { adjacency, degrees }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adjacency.rows()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adjacency.nnz() / 2
    }

    /// Weighted degree of node `u`.
    pub fn degree(&self, u: usize) -> f64 {
        self.degrees[u]
    }

    /// The full degree vector (diagonal of `Du`).
    pub fn degrees(&self) -> &[f64] {
        &self.degrees
    }

    /// The symmetric adjacency matrix `Gu`.
    pub fn adjacency(&self) -> &CsrMatrix {
        &self.adjacency
    }

    /// Neighbors of `u` with edge weights.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.adjacency.iter_row(u)
    }

    /// Edge weight between `u` and `v` (0 when absent).
    pub fn weight(&self, u: usize, v: usize) -> f64 {
        self.adjacency.get(u, v)
    }

    /// Restricts the graph to the given nodes (relabelled `0..nodes.len()`
    /// in order). Edges to excluded nodes are dropped.
    pub fn subgraph(&self, nodes: &[usize]) -> UserGraph {
        let mut remap = vec![usize::MAX; self.num_nodes()];
        for (new, &old) in nodes.iter().enumerate() {
            remap[old] = new;
        }
        let mut edges = Vec::new();
        for (new_u, &old_u) in nodes.iter().enumerate() {
            for (old_v, w) in self.neighbors(old_u) {
                let new_v = remap[old_v];
                if new_v != usize::MAX && new_u < new_v {
                    edges.push((new_u, new_v, w));
                }
            }
        }
        UserGraph::from_edges(nodes.len(), &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_symmetrizes_and_sums() {
        let g = UserGraph::from_edges(3, &[(0, 1, 1.0), (1, 0, 2.0), (1, 2, 1.5)]);
        assert_eq!(g.weight(0, 1), 3.0);
        assert_eq!(g.weight(1, 0), 3.0);
        assert_eq!(g.weight(1, 2), 1.5);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(1), 4.5);
    }

    #[test]
    fn self_loops_dropped() {
        let g = UserGraph::from_edges(2, &[(0, 0, 5.0), (0, 1, 1.0)]);
        assert_eq!(g.weight(0, 0), 0.0);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = UserGraph::empty(4);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 0);
        assert!(g.degrees().iter().all(|&d| d == 0.0));
    }

    #[test]
    #[should_panic(expected = "adjacency must be symmetric")]
    fn from_adjacency_rejects_asymmetric() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]).unwrap();
        UserGraph::from_adjacency(a);
    }

    #[test]
    fn neighbors_iteration() {
        let g = UserGraph::from_edges(4, &[(0, 1, 1.0), (0, 2, 2.0)]);
        let n: Vec<_> = g.neighbors(0).collect();
        assert_eq!(n, vec![(1, 1.0), (2, 2.0)]);
    }

    #[test]
    fn subgraph_relabels_and_filters() {
        let g = UserGraph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]);
        let s = g.subgraph(&[1, 2]);
        assert_eq!(s.num_nodes(), 2);
        assert_eq!(s.num_edges(), 1);
        assert_eq!(s.weight(0, 1), 2.0);
    }
}

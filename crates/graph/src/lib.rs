//! # tgs-graph
//!
//! Social-graph substrate: the user–user re-tweeting graph `Gu` (with
//! degrees and Laplacians), connected components, and builders that turn
//! raw posting/re-tweeting event logs into the `Xr` matrix and `Gu` graph
//! the tri-clustering framework consumes.
//!
//! ```
//! use tgs_graph::{build_interactions, Interaction, InteractionWeights};
//!
//! let events = vec![
//!     Interaction::Post { user: 0, tweet: 0 },
//!     Interaction::Retweet { user: 1, tweet: 0, author: 0 },
//! ];
//! let (xr, gu) = build_interactions(2, 1, &events, InteractionWeights::default());
//! assert_eq!(xr.get(1, 0), 1.0);
//! assert_eq!(gu.weight(0, 1), 1.0);
//! ```

pub mod builder;
pub mod components;
pub mod graph;
pub mod laplacian;

pub use builder::{build_interactions, Interaction, InteractionWeights};
pub use components::{connected_components, largest_component, num_components, UnionFind};
pub use graph::UserGraph;
pub use laplacian::{laplacian, laplacian_quad_reference, normalized_laplacian, transition_matrix};

//! Graph Laplacian utilities.
//!
//! The hot-path quadratic form `tr(SᵀLS)` lives in `tgs_linalg::ops`
//! (it never materializes `L`); this module provides explicit Laplacians
//! for tests, baselines (BACG, label propagation) and spectral checks.

use tgs_linalg::{CsrMatrix, DenseMatrix};

use crate::graph::UserGraph;

/// The combinatorial Laplacian `L = D − G` as a sparse matrix.
pub fn laplacian(graph: &UserGraph) -> CsrMatrix {
    let n = graph.num_nodes();
    let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(graph.adjacency().nnz() + n);
    for (i, &d) in graph.degrees().iter().enumerate() {
        if d != 0.0 {
            triplets.push((i, i, d));
        }
    }
    for (i, j, w) in graph.adjacency().iter() {
        triplets.push((i, j, -w));
    }
    CsrMatrix::from_triplets(n, n, &triplets).expect("laplacian triplets in bounds")
}

/// The random-walk normalized transition matrix `P = D⁻¹·G`
/// (rows of isolated nodes are left zero). The workhorse of label
/// propagation.
pub fn transition_matrix(graph: &UserGraph) -> CsrMatrix {
    let n = graph.num_nodes();
    let mut triplets = Vec::with_capacity(graph.adjacency().nnz());
    for (i, j, w) in graph.adjacency().iter() {
        let d = graph.degree(i);
        if d > 0.0 {
            triplets.push((i, j, w / d));
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets).expect("transition triplets in bounds")
}

/// The symmetric normalized Laplacian `L_sym = I − D^{-1/2}·G·D^{-1/2}`
/// (used by spectral baselines).
pub fn normalized_laplacian(graph: &UserGraph) -> CsrMatrix {
    let n = graph.num_nodes();
    let inv_sqrt: Vec<f64> = graph
        .degrees()
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(graph.adjacency().nnz() + n);
    for i in 0..n {
        triplets.push((i, i, 1.0));
    }
    for (i, j, w) in graph.adjacency().iter() {
        triplets.push((i, j, -w * inv_sqrt[i] * inv_sqrt[j]));
    }
    CsrMatrix::from_triplets(n, n, &triplets).expect("normalized laplacian triplets in bounds")
}

/// Evaluates `tr(SᵀLS)` through the explicit Laplacian (slow reference
/// used in tests against `tgs_linalg::laplacian_quad`).
pub fn laplacian_quad_reference(graph: &UserGraph, s: &DenseMatrix) -> f64 {
    let l = laplacian(graph);
    let ls = l.mul_dense(s);
    s.frobenius_inner(&ls)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgs_linalg::laplacian_quad;

    fn path3() -> UserGraph {
        UserGraph::from_edges(3, &[(0, 1, 2.0), (1, 2, 3.0)])
    }

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let l = laplacian(&path3());
        for s in l.row_sums() {
            assert!(s.abs() < 1e-12);
        }
    }

    #[test]
    fn laplacian_diagonal_is_degree() {
        let g = path3();
        let l = laplacian(&g);
        for i in 0..3 {
            assert_eq!(l.get(i, i), g.degree(i));
        }
    }

    #[test]
    fn quad_form_matches_fast_path() {
        let g = path3();
        let s = DenseMatrix::from_vec(3, 2, vec![1.0, 0.0, 0.5, 0.5, 0.0, 1.0]).unwrap();
        let slow = laplacian_quad_reference(&g, &s);
        let fast = laplacian_quad(g.adjacency(), g.degrees(), &s);
        assert!((slow - fast).abs() < 1e-10);
    }

    #[test]
    fn transition_rows_are_stochastic() {
        let p = transition_matrix(&path3());
        for (i, s) in p.row_sums().iter().enumerate() {
            assert!((s - 1.0).abs() < 1e-12, "row {i} sums to {s}");
        }
    }

    #[test]
    fn transition_isolated_nodes_zero_rows() {
        let g = UserGraph::from_edges(3, &[(0, 1, 1.0)]);
        let p = transition_matrix(&g);
        assert_eq!(p.iter_row(2).count(), 0);
    }

    #[test]
    fn normalized_laplacian_diagonal_ones_for_connected() {
        let l = normalized_laplacian(&path3());
        for i in 0..3 {
            assert!((l.get(i, i) - 1.0).abs() < 1e-12);
        }
        // symmetric
        assert!(l.is_symmetric(1e-12));
    }
}

//! Connected components (union-find).

use crate::graph::UserGraph;

/// Disjoint-set forest with union-by-rank and path halving.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns true when they were
    /// previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        self.components -= 1;
        true
    }

    /// Current number of disjoint sets.
    pub fn num_components(&self) -> usize {
        self.components
    }
}

/// Labels every node with a dense component id (`0..num_components`, in
/// order of first appearance).
pub fn connected_components(graph: &UserGraph) -> Vec<usize> {
    let n = graph.num_nodes();
    let mut uf = UnionFind::new(n);
    for u in 0..n {
        for (v, _) in graph.neighbors(u) {
            uf.union(u, v);
        }
    }
    let mut label_of_root = vec![usize::MAX; n];
    let mut labels = Vec::with_capacity(n);
    let mut next = 0;
    for u in 0..n {
        let root = uf.find(u);
        if label_of_root[root] == usize::MAX {
            label_of_root[root] = next;
            next += 1;
        }
        labels.push(label_of_root[root]);
    }
    labels
}

/// Number of connected components.
pub fn num_components(graph: &UserGraph) -> usize {
    let labels = connected_components(graph);
    labels.iter().copied().max().map_or(0, |m| m + 1)
}

/// Nodes of the largest connected component (ascending order).
pub fn largest_component(graph: &UserGraph) -> Vec<usize> {
    let labels = connected_components(graph);
    if labels.is_empty() {
        return Vec::new();
    }
    let k = labels.iter().max().unwrap() + 1;
    let mut sizes = vec![0usize; k];
    for &l in &labels {
        sizes[l] += 1;
    }
    let best = (0..k).max_by_key(|&l| sizes[l]).unwrap();
    (0..labels.len()).filter(|&u| labels[u] == best).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_union() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_components(), 4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.num_components(), 3);
        assert_eq!(uf.find(0), uf.find(1));
    }

    #[test]
    fn components_of_two_cliques() {
        let g = UserGraph::from_edges(6, &[(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (4, 5, 1.0)]);
        let labels = connected_components(&g);
        assert_eq!(labels, vec![0, 0, 0, 1, 1, 1]);
        assert_eq!(num_components(&g), 2);
    }

    #[test]
    fn isolated_nodes_are_own_components() {
        let g = UserGraph::from_edges(3, &[(0, 1, 1.0)]);
        assert_eq!(num_components(&g), 2);
        assert_eq!(connected_components(&g), vec![0, 0, 1]);
    }

    #[test]
    fn largest_component_picks_biggest() {
        let g = UserGraph::from_edges(5, &[(0, 1, 1.0), (2, 3, 1.0), (3, 4, 1.0)]);
        assert_eq!(largest_component(&g), vec![2, 3, 4]);
    }

    #[test]
    fn empty_graph_components() {
        let g = UserGraph::empty(0);
        assert_eq!(num_components(&g), 0);
        assert!(largest_component(&g).is_empty());
    }
}

//! Deterministic synthetic-firehose load generator.
//!
//! [`LoadGen`] emits a seeded stream of [`EngineSnapshot`]s shaped like
//! real social-media traffic: user activity follows a Zipf law (a few
//! accounts produce most documents), word choice follows a second Zipf
//! law over a supplied word pool whose rank order *drifts* over time
//! (the trending vocabulary rotates), and a fraction of documents
//! trigger re-tweet bursts. The stream is a pure function of
//! [`LoadConfig`] plus the word pool — two generators built from the
//! same inputs emit bit-identical snapshots, which is what lets soak
//! runs compare ingest strategies on *the same* traffic.
//!
//! ```
//! use tgs_load::{LoadConfig, LoadGen};
//!
//! let words: Vec<String> = (0..32).map(|i| format!("w{i}")).collect();
//! let mut gen = LoadGen::new(LoadConfig::default(), words).unwrap();
//! let snap = gen.next_snapshot();
//! assert_eq!(snap.docs.len(), LoadConfig::default().docs_per_step);
//! ```

use rand::rngs::StdRng;
use rand::{Rng, RngExt};
use tgs_core::TgsError;
use tgs_data::Zipf;
use tgs_engine::EngineSnapshot;
use tgs_linalg::seeded_rng;

/// Knobs of the synthetic firehose. Everything is deterministic given
/// `seed` — there is no entropy source besides it.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadConfig {
    /// RNG seed; the entire stream is a pure function of it.
    pub seed: u64,
    /// User-id universe (ids are `0..users`).
    pub users: usize,
    /// Zipf exponent of user activity (larger ⇒ fewer users dominate).
    pub user_skew: f64,
    /// Zipf exponent of word choice within the pool.
    pub word_skew: f64,
    /// Documents emitted per generated snapshot.
    pub docs_per_step: usize,
    /// Tokens per document.
    pub words_per_doc: usize,
    /// Probability that a document sparks a re-tweet burst.
    pub retweet_prob: f64,
    /// Maximum re-tweets in one burst (uniform `1..=burst_len`).
    pub burst_len: usize,
    /// Word ranks rotate by this much each step, modelling vocabulary
    /// drift; 0 freezes the trending set.
    pub drift_stride: usize,
    /// Timestamp of the first snapshot.
    pub start_ts: u64,
    /// Timestamp increment between snapshots; 0 pins every snapshot to
    /// `start_ts` (they coalesce into one time bucket).
    pub ts_stride: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            users: 1_000,
            user_skew: 1.1,
            word_skew: 1.05,
            docs_per_step: 16,
            words_per_doc: 8,
            retweet_prob: 0.15,
            burst_len: 4,
            drift_stride: 3,
            start_ts: 0,
            ts_stride: 1,
        }
    }
}

impl LoadConfig {
    fn validate(&self) -> Result<(), TgsError> {
        if self.users == 0 {
            return Err(TgsError::invalid_argument("load: users must be >= 1"));
        }
        if self.docs_per_step == 0 {
            return Err(TgsError::invalid_argument(
                "load: docs_per_step must be >= 1",
            ));
        }
        if self.words_per_doc == 0 {
            return Err(TgsError::invalid_argument(
                "load: words_per_doc must be >= 1",
            ));
        }
        if !(0.0..=1.0).contains(&self.retweet_prob) {
            return Err(TgsError::invalid_argument(
                "load: retweet_prob must lie in [0, 1]",
            ));
        }
        if self.retweet_prob > 0.0 && self.burst_len == 0 {
            return Err(TgsError::invalid_argument(
                "load: burst_len must be >= 1 when retweet_prob > 0",
            ));
        }
        Ok(())
    }
}

/// Multiplicative-hash spread of a Zipf *rank* onto a user id. Without
/// it rank 0 — the most active account — would always be user 0, which
/// on a range-partitioned fleet pins the entire hot set to shard 0.
fn spread(rank: usize, users: usize) -> usize {
    // splitmix64 finalizer: a plain multiplicative hash maps rank 0 to
    // user 0 and collides badly after the modulo.
    let mut x = (rank as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % users as u64) as usize
}

/// Deterministic seeded snapshot stream; see the crate docs.
#[derive(Debug, Clone)]
pub struct LoadGen {
    config: LoadConfig,
    words: Vec<String>,
    user_zipf: Zipf,
    word_zipf: Zipf,
    rng: StdRng,
    step: usize,
    docs_emitted: u64,
    retweets_emitted: u64,
}

impl LoadGen {
    /// Builds a generator over `words` (the token pool documents draw
    /// from — typically the engine's fitted vocabulary, so generated
    /// documents survive encoding). Fails on an empty pool or an
    /// out-of-domain config.
    pub fn new(config: LoadConfig, words: Vec<String>) -> Result<Self, TgsError> {
        config.validate()?;
        if words.is_empty() {
            return Err(TgsError::invalid_argument("load: word pool is empty"));
        }
        let user_zipf = Zipf::new(config.users, config.user_skew);
        let word_zipf = Zipf::new(words.len(), config.word_skew);
        let rng = seeded_rng(config.seed);
        Ok(Self {
            config,
            words,
            user_zipf,
            word_zipf,
            rng,
            step: 0,
            docs_emitted: 0,
            retweets_emitted: 0,
        })
    }

    /// The configuration this stream was built from.
    pub fn config(&self) -> &LoadConfig {
        &self.config
    }

    /// Snapshots generated so far.
    pub fn step(&self) -> usize {
        self.step
    }

    /// Documents generated so far.
    pub fn docs_emitted(&self) -> u64 {
        self.docs_emitted
    }

    /// Re-tweet edges generated so far.
    pub fn retweets_emitted(&self) -> u64 {
        self.retweets_emitted
    }

    /// Timestamp the *next* snapshot will carry.
    pub fn next_timestamp(&self) -> u64 {
        self.config
            .start_ts
            .saturating_add(self.config.ts_stride.saturating_mul(self.step as u64))
    }

    /// Emits the next snapshot into `snap`, reusing its allocations
    /// (pair with `try_ingest_reusable`, which hands rejected snapshots
    /// back). Documents are pre-tokenized so ingest cost is dominated
    /// by assembly and the solver, not string splitting.
    pub fn fill(&mut self, snap: &mut EngineSnapshot) {
        snap.reset(self.next_timestamp());
        let rotation = self.step.wrapping_mul(self.config.drift_stride);
        for doc in 0..self.config.docs_per_step {
            let user = spread(self.user_zipf.sample(&mut self.rng), self.config.users);
            let tokens = (0..self.config.words_per_doc)
                .map(|_| {
                    let rank = (self.word_zipf.sample(&mut self.rng) + rotation) % self.words.len();
                    self.words[rank].clone()
                })
                .collect();
            snap.push_tokens(user, tokens);
            if self.config.retweet_prob > 0.0 && self.rng.next_f64() < self.config.retweet_prob {
                let burst = self.rng.random_range(1..=self.config.burst_len);
                for _ in 0..burst {
                    let retweeter = spread(self.user_zipf.sample(&mut self.rng), self.config.users);
                    snap.push_retweet(retweeter, doc);
                    self.retweets_emitted += 1;
                }
            }
        }
        self.docs_emitted += self.config.docs_per_step as u64;
        self.step += 1;
    }

    /// Emits the next snapshot into a fresh allocation.
    pub fn next_snapshot(&mut self) -> EngineSnapshot {
        let mut snap = EngineSnapshot::new(0);
        self.fill(&mut snap);
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("word{i}")).collect()
    }

    #[test]
    fn config_domains_are_enforced() {
        let words = pool(8);
        for bad in [
            LoadConfig {
                users: 0,
                ..LoadConfig::default()
            },
            LoadConfig {
                docs_per_step: 0,
                ..LoadConfig::default()
            },
            LoadConfig {
                words_per_doc: 0,
                ..LoadConfig::default()
            },
            LoadConfig {
                retweet_prob: 1.5,
                ..LoadConfig::default()
            },
            LoadConfig {
                retweet_prob: 0.5,
                burst_len: 0,
                ..LoadConfig::default()
            },
        ] {
            assert!(LoadGen::new(bad, words.clone()).is_err());
        }
        assert!(LoadGen::new(LoadConfig::default(), Vec::new()).is_err());
        assert!(LoadGen::new(LoadConfig::default(), words).is_ok());
    }

    #[test]
    fn same_seed_means_same_stream() {
        let cfg = LoadConfig {
            seed: 7,
            ..LoadConfig::default()
        };
        let mut a = LoadGen::new(cfg.clone(), pool(64)).unwrap();
        let mut b = LoadGen::new(cfg, pool(64)).unwrap();
        for _ in 0..10 {
            assert_eq!(a.next_snapshot(), b.next_snapshot());
        }
        assert_eq!(a.docs_emitted(), b.docs_emitted());
        assert_eq!(a.retweets_emitted(), b.retweets_emitted());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = LoadGen::new(
            LoadConfig {
                seed: 1,
                ..LoadConfig::default()
            },
            pool(64),
        )
        .unwrap();
        let mut b = LoadGen::new(
            LoadConfig {
                seed: 2,
                ..LoadConfig::default()
            },
            pool(64),
        )
        .unwrap();
        assert_ne!(a.next_snapshot(), b.next_snapshot());
    }

    #[test]
    fn timestamps_advance_by_stride() {
        let mut gen = LoadGen::new(
            LoadConfig {
                start_ts: 100,
                ts_stride: 5,
                ..LoadConfig::default()
            },
            pool(8),
        )
        .unwrap();
        assert_eq!(gen.next_snapshot().timestamp, 100);
        assert_eq!(gen.next_snapshot().timestamp, 105);
        assert_eq!(gen.next_timestamp(), 110);
    }

    #[test]
    fn fill_reuses_and_matches_fresh_allocation() {
        let cfg = LoadConfig {
            seed: 9,
            ..LoadConfig::default()
        };
        let mut a = LoadGen::new(cfg.clone(), pool(32)).unwrap();
        let mut b = LoadGen::new(cfg, pool(32)).unwrap();
        let mut reused = EngineSnapshot::new(0);
        for _ in 0..5 {
            a.fill(&mut reused);
            assert_eq!(reused, b.next_snapshot());
        }
    }

    #[test]
    fn hot_ranks_are_spread_across_the_id_space() {
        // The most active Zipf ranks must not collapse onto the low
        // user ids, or a range-partitioned fleet soaks shard 0 only.
        let users = 1_000;
        let ids: Vec<usize> = (0..8).map(|rank| spread(rank, users)).collect();
        assert!(ids.iter().any(|&u| u >= users / 2));
        let distinct: std::collections::HashSet<_> = ids.iter().collect();
        assert!(distinct.len() >= 6);
    }

    #[test]
    fn drift_rotates_the_trending_vocabulary() {
        let cfg = LoadConfig {
            drift_stride: 11,
            retweet_prob: 0.0,
            docs_per_step: 64,
            ..LoadConfig::default()
        };
        let mut gen = LoadGen::new(cfg, pool(256)).unwrap();
        let first = gen.next_snapshot();
        for _ in 0..20 {
            gen.next_snapshot();
        }
        let late = gen.next_snapshot();
        let toks = |s: &EngineSnapshot| -> std::collections::HashSet<String> {
            s.docs
                .iter()
                .flat_map(|d| match &d.content {
                    tgs_engine::DocContent::Tokens(t) => t.clone(),
                    tgs_engine::DocContent::Raw(_) => Vec::new(),
                })
                .collect()
        };
        let early_set = toks(&first);
        let late_set = toks(&late);
        assert!(late_set.difference(&early_set).next().is_some());
    }
}

//! Distributed shard fleet for the tripartite sentiment engine.
//!
//! The multi-shard router in `tgs-engine` drives its workers through
//! the object-safe [`ShardTransport`] seam. This crate supplies the
//! remote half of that seam over plain `std::net` TCP — no async
//! runtime, no serialization framework, no new dependencies:
//!
//! - [`frame`] — the length-prefixed frame layer: `[u32 len][u8
//!   version][u8 opcode][u64 generation][u64 slot][payload]` requests,
//!   `[u32 len][u8 version][u8 status][payload]` responses.
//! - [`wire`] — payload codecs for every engine value that crosses the
//!   wire (snapshots, timelines, stats, factors, checkpoint sections)
//!   plus a [`TgsError`](tgs_core::TgsError) codec that keeps
//!   dispatch-relevant variants — above all `StaleTopology`, which the
//!   router's lazy re-keying matches on — intact across the trip.
//! - [`TcpShard`] — the client: one lazily-dialed connection per shard
//!   slot, per-call timeouts, bounded reconnect with doubling backoff,
//!   and retry only where replay is safe. A dead peer surfaces as
//!   [`TgsError::Net`](tgs_core::TgsError::Net), never a panic.
//! - [`ShardServer`] — the `tgs shard` side: a slot-hosting TCP server
//!   whose slots are created over the wire (`INIT` from a checkpoint
//!   section, `SPAWN_SIBLING` during a live split).
//! - [`deploy_fleet`] / [`attach_fleet`] — the `tgs serve` bootstrap:
//!   checkpoint a deterministic cold local fleet, ship one section per
//!   server, rebuild the router over TCP transports. Restore is exact,
//!   so a loopback fleet is bit-identical to the in-process engine it
//!   was cloned from.
//!
//! Every frame carries the topology generation of the partition map the
//! caller routed with; shards reject stale generations so a handle
//! that slept through a rebalance re-keys instead of misrouting. The
//! byte-level contract lives in `crates/net/PROTOCOL.md`.

pub mod client;
pub mod frame;
pub mod router;
pub mod server;
pub mod wire;

pub use client::{NetConfig, ServerInfo, TcpShard};
pub use router::{attach_fleet, deploy_fleet};
pub use server::ShardServer;

// Re-exported so downstream code can name the seam without also
// depending on tgs_engine directly.
pub use tgs_engine::ShardTransport;

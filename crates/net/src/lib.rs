//! Distributed shard fleet for the tripartite sentiment engine.
//!
//! The multi-shard router in `tgs-engine` drives its workers through
//! the object-safe [`ShardTransport`] seam. This crate supplies the
//! remote half of that seam over plain `std::net` TCP — no async
//! runtime, no serialization framework, no new dependencies:
//!
//! - [`frame`] — the length-prefixed frame layer: `[u32 len][u8
//!   version][u8 opcode][u64 generation][u64 slot][payload]` requests,
//!   `[u32 len][u8 version][u8 status][payload]` responses.
//! - [`wire`] — payload codecs for every engine value that crosses the
//!   wire (snapshots, timelines, stats, factors, checkpoint sections)
//!   plus a [`TgsError`](tgs_core::TgsError) codec that keeps
//!   dispatch-relevant variants — above all `StaleTopology`, which the
//!   router's lazy re-keying matches on — intact across the trip.
//! - [`TcpShard`] — the client: one lazily-dialed connection per shard
//!   slot, per-call timeouts, bounded reconnect with doubling backoff,
//!   and retry only where replay is safe. A dead peer surfaces as
//!   [`TgsError::Net`](tgs_core::TgsError::Net), never a panic.
//! - [`ShardServer`] — the `tgs shard` side: a slot-hosting TCP server
//!   whose slots are created over the wire (`INIT` from a checkpoint
//!   section, `SPAWN_SIBLING` during a live split).
//! - [`deploy_fleet`] / [`attach_fleet`] — the `tgs serve` bootstrap:
//!   checkpoint a deterministic cold local fleet, ship one section per
//!   server, rebuild the router over TCP transports. Restore is exact,
//!   so a loopback fleet is bit-identical to the in-process engine it
//!   was cloned from.
//!
//! Every frame carries the topology generation of the partition map the
//! caller routed with; shards reject stale generations so a handle
//! that slept through a rebalance re-keys instead of misrouting. The
//! byte-level contract lives in `crates/net/PROTOCOL.md`.
//!
//! On top of the transport sit the robustness layers:
//!
//! - [`fault`] — deterministic, seeded fault injection
//!   ([`FaultPolicy`], `TGS_FAULTS`) that makes a [`TcpShard`] drop,
//!   delay, truncate, or error-reply with per-opcode probabilities, so
//!   every failure mode is testable in-process and over loopback TCP.
//! - [`supervise`] — [`SupervisedShard`] wraps each remote handle with
//!   a bounded replay journal and an automatic recovery state machine
//!   (reconnect with capped jittered backoff, re-`INIT` from the last
//!   good checkpoint section, replay in order); [`Supervisor`] adds
//!   periodic fleet-wide checkpoint refreshes and health probes with
//!   consecutive-failure thresholds. [`deploy_supervised`] is the
//!   supervised flavor of [`deploy_fleet`].
//! - [`RouterEndpoint`] — exposes a whole `ShardedEngine` (tgs_engine)
//!   behind the same wire protocol, so `tgs serve --hold` can keep
//!   answering queries after the stream ends.

pub mod client;
pub mod fault;
pub mod frame;
pub mod router;
pub mod server;
pub mod supervise;
pub mod wire;

pub use client::{NetConfig, ServerInfo, TcpShard};
pub use fault::{FaultKind, FaultPolicy};
pub use router::{attach_fleet, deploy_fleet, deploy_supervised, RouterEndpoint};
pub use server::ShardServer;
pub use supervise::{SupervisedShard, Supervisor, SupervisorConfig};

// Re-exported so downstream code can name the seam without also
// depending on tgs_engine directly.
pub use tgs_engine::ShardTransport;

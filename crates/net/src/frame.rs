//! The length-prefixed frame layer: how requests and responses travel
//! over a TCP stream, independent of what the payload bytes mean.
//!
//! Every frame is `[u32 len LE][body]`, where `len` counts the body
//! bytes only. A request body is `[u8 version][u8 opcode][u64 generation
//! LE][u64 slot LE][payload]`; a response body is `[u8 version][u8
//! status][payload]`. See `PROTOCOL.md` for the full layout and the
//! opcode table.

use std::io::{self, Read, Write};

/// Wire protocol version carried in every frame. Peers reject frames
/// whose version they do not speak instead of guessing at the layout.
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on a frame body, so a corrupt or hostile length prefix
/// cannot trigger an unbounded allocation. Checkpoint sections dominate
/// frame sizes; 1 GiB leaves generous headroom over any real fleet.
pub const MAX_FRAME: usize = 1 << 30;

/// Response status: the payload is the requested value.
pub const STATUS_OK: u8 = 0;
/// Response status: the payload is an encoded [`tgs_core::TgsError`].
pub const STATUS_ERR: u8 = 1;

/// Request header: everything before the opcode-specific payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The operation (see the opcode table in `PROTOCOL.md`).
    pub opcode: u8,
    /// Topology generation the caller routed with (0 where exempt).
    pub generation: u64,
    /// The engine slot on the server this request addresses.
    pub slot: u64,
    /// Opcode-specific payload bytes.
    pub payload: Vec<u8>,
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn read_body(r: &mut impl Read, len: usize) -> io::Result<Vec<u8>> {
    if len > MAX_FRAME {
        return Err(bad_data(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME}-byte bound"
        )));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(body)
}

/// Reads the 4-byte length prefix, distinguishing a clean EOF before the
/// first byte (`Ok(None)`, the peer hung up between frames) from a
/// truncation mid-prefix (an error).
fn read_len(r: &mut impl Read) -> io::Result<Option<usize>> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid frame-length prefix",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(Some(u32::from_le_bytes(prefix) as usize))
}

/// Writes one request frame and flushes it.
pub fn write_request(
    w: &mut impl Write,
    opcode: u8,
    generation: u64,
    slot: u64,
    payload: &[u8],
) -> io::Result<()> {
    let body_len = 1 + 1 + 8 + 8 + payload.len();
    if body_len > MAX_FRAME {
        return Err(bad_data(format!(
            "request payload of {} bytes exceeds the frame bound",
            payload.len()
        )));
    }
    let mut frame = Vec::with_capacity(4 + body_len);
    frame.extend_from_slice(&(body_len as u32).to_le_bytes());
    frame.push(WIRE_VERSION);
    frame.push(opcode);
    frame.extend_from_slice(&generation.to_le_bytes());
    frame.extend_from_slice(&slot.to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// Reads one request frame. `Ok(None)` when the peer closed the
/// connection cleanly between frames.
pub fn read_request(r: &mut impl Read) -> io::Result<Option<Request>> {
    let Some(len) = read_len(r)? else {
        return Ok(None);
    };
    if len < 18 {
        return Err(bad_data(format!(
            "request body of {len} bytes is too short"
        )));
    }
    let body = read_body(r, len)?;
    if body[0] != WIRE_VERSION {
        return Err(bad_data(format!(
            "unsupported wire version {} (this peer speaks {WIRE_VERSION})",
            body[0]
        )));
    }
    Ok(Some(Request {
        opcode: body[1],
        generation: u64::from_le_bytes(body[2..10].try_into().expect("length checked")),
        slot: u64::from_le_bytes(body[10..18].try_into().expect("length checked")),
        payload: body[18..].to_vec(),
    }))
}

/// Writes one response frame and flushes it.
pub fn write_response(w: &mut impl Write, status: u8, payload: &[u8]) -> io::Result<()> {
    let body_len = 1 + 1 + payload.len();
    if body_len > MAX_FRAME {
        return Err(bad_data(format!(
            "response payload of {} bytes exceeds the frame bound",
            payload.len()
        )));
    }
    let mut frame = Vec::with_capacity(4 + body_len);
    frame.extend_from_slice(&(body_len as u32).to_le_bytes());
    frame.push(WIRE_VERSION);
    frame.push(status);
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// Reads one response frame as `(status, payload)`.
pub fn read_response(r: &mut impl Read) -> io::Result<(u8, Vec<u8>)> {
    let len = read_len(r)?.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed while awaiting a response",
        )
    })?;
    if len < 2 {
        return Err(bad_data(format!(
            "response body of {len} bytes is too short"
        )));
    }
    let body = read_body(r, len)?;
    if body[0] != WIRE_VERSION {
        return Err(bad_data(format!(
            "unsupported wire version {} (this peer speaks {WIRE_VERSION})",
            body[0]
        )));
    }
    Ok((body[1], body[2..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_frames_roundtrip() {
        let mut wire = Vec::new();
        write_request(&mut wire, 7, 3, 11, b"payload").unwrap();
        write_request(&mut wire, 2, 0, 0, b"").unwrap();
        let mut r = wire.as_slice();
        let first = read_request(&mut r).unwrap().unwrap();
        assert_eq!(
            first,
            Request {
                opcode: 7,
                generation: 3,
                slot: 11,
                payload: b"payload".to_vec(),
            }
        );
        let second = read_request(&mut r).unwrap().unwrap();
        assert_eq!(second.opcode, 2);
        assert!(second.payload.is_empty());
        assert!(read_request(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn response_frames_roundtrip() {
        let mut wire = Vec::new();
        write_response(&mut wire, STATUS_OK, &[1, 2, 3]).unwrap();
        let (status, payload) = read_response(&mut wire.as_slice()).unwrap();
        assert_eq!((status, payload.as_slice()), (STATUS_OK, &[1u8, 2, 3][..]));
    }

    #[test]
    fn truncation_and_version_skew_are_errors() {
        let mut wire = Vec::new();
        write_request(&mut wire, 7, 3, 11, b"payload").unwrap();
        // Mid-prefix truncation.
        assert!(read_request(&mut &wire[..2]).is_err());
        // Mid-body truncation.
        assert!(read_request(&mut &wire[..wire.len() - 1]).is_err());
        // Version byte the reader does not speak.
        let mut skewed = wire.clone();
        skewed[4] = 99;
        assert!(read_request(&mut skewed.as_slice()).is_err());
        // A hostile length prefix is rejected before allocating.
        let mut huge = wire;
        huge[..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(read_request(&mut huge.as_slice()).is_err());
    }
}
